/**
 * @file
 * bgnsim — command-line driver for the BeaconGNN simulator.
 *
 * Runs any platform on any workload with any system configuration
 * without writing code:
 *
 *   bgnsim --platform BG-2 --workload amazon --batches 4 \
 *          --batch-size 128 --channels 16 --dies 8 --cores 4 \
 *          --page-kb 4 --channel-mbps 800 --traditional \
 *          --nodes 30000 --trace --csv out.csv
 *
 * Prints a human-readable summary; optionally appends a CSV row for
 * scripting sweeps.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "platforms/report.h"
#include "sim/log.h"
#include "platforms/runner.h"

using namespace beacongnn;
using namespace beacongnn::platforms;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --platform NAME     CC|GLIST|SmartSage|BG-1|BG-DG|BG-SP|"
        "BG-DGSP|BG-2 (default BG-2)\n"
        "  --workload NAME     reddit|amazon|movielens|OGBN|PPI "
        "(default amazon)\n"
        "  --nodes N           override the workload's node count\n"
        "  --batches N         mini-batches to run (default 4)\n"
        "  --batch-size N      targets per mini-batch (default 128)\n"
        "  --hops N / --fanout N   GNN sampling shape (default 3/3)\n"
        "  --channels N / --dies N / --cores N   SSD geometry\n"
        "  --page-kb N         flash page size in KiB (default 4)\n"
        "  --channel-mbps X    channel bandwidth (default 800)\n"
        "  --traditional       20 us flash instead of 3 us ULL\n"
        "  --dedupe            batch-level node deduplication\n"
        "  --no-coalesce       disable secondary coalescing\n"
        "  --seed N            target-selection seed\n"
        "  --trace             collect utilization series\n"
        "  --csv FILE          append a CSV result row to FILE\n",
        argv0);
    std::exit(2);
}

PlatformKind
parsePlatform(const std::string &name)
{
    for (auto kind : allPlatforms())
        if (platformName(kind) == name)
            return kind;
    sim::fatal("unknown platform: " + name);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string platform_name = "BG-2";
    std::string workload_name = "amazon";
    std::string csv_path;
    graph::NodeId nodes = 0;
    RunConfig rc;
    rc.batchSize = 128;
    rc.batches = 4;
    gnn::ModelConfig model;
    bool dedupe = false, no_coalesce = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--platform") platform_name = next();
        else if (a == "--workload") workload_name = next();
        else if (a == "--nodes") nodes = static_cast<graph::NodeId>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--batches") rc.batches = static_cast<std::uint32_t>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--batch-size") rc.batchSize =
            static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
        else if (a == "--hops") model.hops = static_cast<std::uint8_t>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--fanout") model.fanout = static_cast<std::uint8_t>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--channels") rc.system.flash.channels =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--dies") rc.system.flash.diesPerChannel =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--cores") rc.system.controller.cores =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--page-kb") rc.system.flash.pageSize =
            static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10)) * 1024;
        else if (a == "--channel-mbps") rc.system.flash.channelMBps =
            std::strtod(next(), nullptr);
        else if (a == "--traditional")
            rc.system.flash.readLatency = sim::microseconds(20);
        else if (a == "--dedupe") dedupe = true;
        else if (a == "--no-coalesce") no_coalesce = true;
        else if (a == "--seed") rc.targetSeed =
            std::strtoull(next(), nullptr, 10);
        else if (a == "--trace") rc.traceUtilization = true;
        else if (a == "--csv") csv_path = next();
        else usage(argv[0]);
    }

    auto platform = makePlatform(parsePlatform(platform_name));
    platform.flags.dedupeNodes = dedupe;
    platform.flags.coalesceSecondary = !no_coalesce;

    auto bundle = makeBundle(graph::workload(workload_name),
                             rc.system.flash, model, nodes);
    std::printf("bgnsim: %s on %s (%u nodes, avg degree %.0f, "
                "%u-dim features)\n",
                platform.name.c_str(), bundle->name.c_str(),
                bundle->graph.numNodes(), bundle->graph.avgDegree(),
                bundle->features.dim());

    RunResult r = runPlatform(platform, rc, *bundle);
    std::printf("%s\n", summaryLine(r).c_str());
    std::printf("  prep %.2f ms | die util %.3f | channel util %.3f | "
                "core util %.3f\n",
                sim::toMillis(r.prepTime), r.dieUtil, r.channelUtil,
                r.coreUtil);
    std::printf("  flash reads %llu | channel %.1f MB | PCIe %.1f MB | "
                "aborted %llu\n",
                static_cast<unsigned long long>(r.tally.flashReads),
                r.tally.channelBytes / 1048576.0,
                r.tally.pcieBytes / 1048576.0,
                static_cast<unsigned long long>(
                    r.tally.abortedCommands));
    std::printf("  cmd lifetime %.1f us (wait %.1f + flash %.1f + "
                "wait %.1f)\n",
                r.cmdStats.lifetime.mean(),
                r.cmdStats.waitBefore.mean(),
                r.cmdStats.flashTime.mean(),
                r.cmdStats.waitAfter.mean());

    if (!csv_path.empty()) {
        bool fresh = !std::ifstream(csv_path).good();
        std::ofstream out(csv_path, std::ios::app);
        if (fresh)
            writeCsvHeader(out);
        writeCsvRow(out, r);
        std::printf("  appended CSV row to %s\n", csv_path.c_str());
    }
    return r.ok ? 0 : 1;
}
