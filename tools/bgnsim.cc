/**
 * @file
 * bgnsim — command-line driver for the BeaconGNN simulator.
 *
 * Runs any platform on any workload with any system configuration
 * without writing code:
 *
 *   bgnsim --platform BG-2 --workload amazon --batches 4 \
 *          --batch-size 128 --channels 16 --dies 8 --cores 4 \
 *          --page-kb 4 --channel-mbps 800 --traditional \
 *          --nodes 30000 --trace-util --csv out.csv
 *
 * Prints a human-readable summary; optionally appends a CSV row for
 * scripting sweeps. --platform and --workload accept comma-separated
 * lists; the resulting grid runs in parallel on --jobs workers
 * (BGN_JOBS env var / hardware cores by default) with output in
 * deterministic grid order.
 *
 * Observability (DESIGN.md §10): --metrics/--metrics-csv dump every
 * registered instrument of every run; --trace (single run only)
 * writes a Chrome-trace-format event file loadable in Perfetto.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "platforms/algo_runner.h"
#include "platforms/report.h"
#include "sim/executor.h"
#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/trace_events.h"
#include "platforms/runner.h"

using namespace beacongnn;
using namespace beacongnn::platforms;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --platform NAME[,NAME...]  CC|GLIST|SmartSage|BG-1|BG-DG|"
        "BG-SP|BG-DGSP|BG-2 (default BG-2)\n"
        "  --workload NAME[,NAME...]  reddit|amazon|movielens|OGBN|PPI "
        "(default amazon)\n"
        "  --jobs N            parallel workers: grid cells, and the "
        "device queues\n"
        "                      within one multi-device run "
        "(default: BGN_JOBS or cores)\n"
        "  --nodes N           override the workload's node count\n"
        "  --batches N         mini-batches to run (default 4)\n"
        "  --batch-size N      targets per mini-batch (default 128)\n"
        "  --hops N / --fanout N   GNN sampling shape (default 3/3)\n"
        "  --model NAME        gcn|gin|gat aggregate/combine pair "
        "(default gcn)\n"
        "  --fanouts N[,N...]  per-hop fanout schedule (overrides "
        "--fanout)\n"
        "  --algo NAME         run a vertex program instead of GNN "
        "inference:\n"
        "                      pagerank|bfs|kcore, iterated to "
        "convergence\n"
        "  --channels N / --dies N / --cores N   SSD geometry\n"
        "  --page-kb N         flash page size in KiB (default 4)\n"
        "  --channel-mbps X    channel bandwidth (default 800)\n"
        "  --traditional       20 us flash instead of 3 us ULL\n"
        "  --dedupe            batch-level node deduplication\n"
        "  --no-coalesce       disable secondary coalescing\n"
        "  --seed N            target-selection seed\n"
        "  --devices N         SSDs in a scale-out array (default 1; "
        ">1 needs a streaming platform)\n"
        "  --p2p-mbps X        per-device P2P link bandwidth "
        "(default 4000)\n"
        "  --p2p-latency-us X  P2P hop latency in us (default 1; the "
        "parallel\n"
        "                      simulator's lookahead — 0 serializes)\n"
        "  --partition NAME    hash|range|balanced graph partition "
        "(default hash)\n"
        "  --replication N     replicas per node (chained "
        "declustering, clamped to --devices; default 1)\n"
        "  --retry-prob X      per-die flash read-retry probability "
        "scale (default 0 = off)\n"
        "  --die-kill SPEC[,SPEC...]  kill schedule: DEV@US kills a "
        "whole device,\n"
        "                      DEV.DIE@US one die, at US "
        "microseconds\n"
        "  --cache-mb X        per-device DRAM vertex cache capacity "
        "in MiB (default 0 = off)\n"
        "  --cache-policy NAME lru|mslru|fifo eviction policy "
        "(default lru)\n"
        "  --zipf-theta X      Zipf(theta) skew of the target stream "
        "(default 0 = uniform)\n"
        "  --trace-util        collect utilization series\n"
        "  --csv FILE          append a CSV result row to FILE\n"
        "  --metrics FILE      dump every instrument as JSON\n"
        "  --metrics-csv FILE  dump every instrument as CSV\n"
        "  --trace FILE        Chrome-trace event file (single run "
        "only; open in Perfetto)\n",
        argv0);
    std::exit(2);
}

/** Parse one --die-kill spec: "DEV@US" (whole device) or
 *  "DEV.DIE@US" (one die), US in microseconds. */
std::optional<platforms::KillEvent>
parseKillEvent(const std::string &spec)
{
    const std::size_t at = spec.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= spec.size())
        return std::nullopt;
    const std::string target = spec.substr(0, at);
    const std::string when = spec.substr(at + 1);
    platforms::KillEvent k;
    char *end = nullptr;
    k.device = static_cast<unsigned>(
        std::strtoul(target.c_str(), &end, 10));
    if (end == target.c_str())
        return std::nullopt;
    if (*end == '.') {
        const char *die_s = end + 1;
        long die = std::strtol(die_s, &end, 10);
        if (end == die_s || *end != '\0' || die < 0)
            return std::nullopt;
        k.die = static_cast<int>(die);
    } else if (*end != '\0') {
        return std::nullopt;
    }
    const unsigned long long us =
        std::strtoull(when.c_str(), &end, 10);
    if (end == when.c_str() || *end != '\0')
        return std::nullopt;
    k.at = sim::microseconds(static_cast<sim::Tick>(us));
    return k;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > pos)
            out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string platform_name = "BG-2";
    std::string workload_name = "amazon";
    std::string csv_path, metrics_path, metrics_csv_path, trace_path;
    graph::NodeId nodes = 0;
    RunConfig rc;
    rc.batchSize = 128;
    rc.batches = 4;
    gnn::ModelConfig model;
    std::optional<gnn::AlgoKind> algo;
    bool dedupe = false, no_coalesce = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--platform") platform_name = next();
        else if (a == "--workload") workload_name = next();
        else if (a == "--nodes") nodes = static_cast<graph::NodeId>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--batches") rc.batches = static_cast<std::uint32_t>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--batch-size") rc.batchSize =
            static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
        else if (a == "--hops") model.hops = static_cast<std::uint8_t>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--fanout") model.fanout = static_cast<std::uint8_t>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--model") {
            std::string n = next();
            auto k = gnn::findModelKind(n);
            if (!k) {
                std::fprintf(stderr,
                             "bgnsim: unknown model '%s' (valid: %s)\n",
                             n.c_str(), gnn::modelKindList().c_str());
                return 2;
            }
            model.kind = *k;
        }
        else if (a == "--fanouts") {
            std::string n = next();
            auto f = gnn::parseFanouts(n);
            if (!f) {
                std::fprintf(stderr,
                             "bgnsim: bad --fanouts '%s' (want a "
                             "comma-separated list of 1..255)\n",
                             n.c_str());
                return 2;
            }
            model.fanouts = std::move(*f);
            model.normalizeFanouts();
        }
        else if (a == "--algo") {
            std::string n = next();
            auto k = gnn::findAlgoKind(n);
            if (!k) {
                std::fprintf(stderr,
                             "bgnsim: unknown algo '%s' (valid: %s)\n",
                             n.c_str(), gnn::algoKindList().c_str());
                return 2;
            }
            algo = *k;
        }
        else if (a == "--channels") rc.system.flash.channels =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--dies") rc.system.flash.diesPerChannel =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--cores") rc.system.controller.cores =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--page-kb") rc.system.flash.pageSize =
            static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10)) * 1024;
        else if (a == "--channel-mbps") rc.system.flash.channelMBps =
            std::strtod(next(), nullptr);
        else if (a == "--traditional")
            rc.system.flash.readLatency = sim::microseconds(20);
        else if (a == "--dedupe") dedupe = true;
        else if (a == "--no-coalesce") no_coalesce = true;
        else if (a == "--seed") rc.targetSeed =
            std::strtoull(next(), nullptr, 10);
        else if (a == "--devices") rc.topology.devices =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--p2p-mbps") rc.topology.p2pMBps =
            std::strtod(next(), nullptr);
        else if (a == "--p2p-latency-us") rc.topology.p2pLatency =
            sim::microseconds(static_cast<sim::Tick>(
                std::strtoul(next(), nullptr, 10)));
        else if (a == "--partition") {
            std::string n = next();
            auto p = findPartitionPolicy(n);
            if (!p) {
                std::fprintf(stderr,
                             "bgnsim: unknown partition '%s' "
                             "(valid: %s)\n",
                             n.c_str(), partitionPolicyList().c_str());
                return 2;
            }
            rc.topology.partition = *p;
        }
        else if (a == "--replication") rc.topology.replication =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--retry-prob") {
            rc.system.disturb.retryProb = std::strtod(next(), nullptr);
            if (rc.system.disturb.retryProb < 0.0 ||
                rc.system.disturb.retryProb > 1.0) {
                std::fprintf(stderr, "bgnsim: --retry-prob must be "
                                     "in [0, 1]\n");
                return 2;
            }
        }
        else if (a == "--die-kill") {
            for (const std::string &spec : splitList(next())) {
                auto k = parseKillEvent(spec);
                if (!k) {
                    std::fprintf(stderr,
                                 "bgnsim: bad --die-kill '%s' (want "
                                 "DEV@US or DEV.DIE@US)\n",
                                 spec.c_str());
                    return 2;
                }
                rc.kills.push_back(*k);
            }
        }
        else if (a == "--cache-mb") {
            rc.cache.capacityMB = std::strtod(next(), nullptr);
            if (rc.cache.capacityMB <= 0.0) {
                std::fprintf(stderr,
                             "bgnsim: --cache-mb must be positive "
                             "(omit the flag to disable the cache)\n");
                return 2;
            }
        }
        else if (a == "--cache-policy") {
            std::string n = next();
            auto p = cache::findCachePolicy(n);
            if (!p) {
                std::fprintf(stderr,
                             "bgnsim: unknown cache policy '%s' "
                             "(valid: %s)\n",
                             n.c_str(),
                             cache::cachePolicyList().c_str());
                return 2;
            }
            rc.cache.policy = *p;
        }
        else if (a == "--zipf-theta") {
            rc.zipfTheta = std::strtod(next(), nullptr);
            if (rc.zipfTheta <= 0.0) {
                std::fprintf(stderr,
                             "bgnsim: --zipf-theta must be positive "
                             "(omit the flag for uniform targets)\n");
                return 2;
            }
        }
        else if (a == "--jobs") {
            long v = std::strtol(next(), nullptr, 10);
            if (v >= 1)
                sim::SimExecutor::setDefaultJobs(
                    static_cast<unsigned>(v));
        }
        else if (a == "--trace-util") rc.traceUtilization = true;
        else if (a == "--csv") csv_path = next();
        else if (a == "--metrics") metrics_path = next();
        else if (a == "--metrics-csv") metrics_csv_path = next();
        else if (a == "--trace") trace_path = next();
        else usage(argv[0]);
    }

    // Validate both sweep axes up front: a bad name exits nonzero
    // with the valid choices instead of dying mid-sweep.
    std::vector<PlatformKind> kinds;
    for (const auto &n : splitList(platform_name)) {
        auto k = findPlatform(n);
        if (!k) {
            std::fprintf(stderr,
                         "bgnsim: unknown platform '%s' (valid: %s)\n",
                         n.c_str(), platformNameList().c_str());
            return 2;
        }
        kinds.push_back(*k);
    }
    std::vector<std::string> workloads = splitList(workload_name);
    for (auto &n : workloads) {
        const graph::WorkloadSpec *w = graph::findWorkload(n);
        if (!w) {
            std::fprintf(stderr,
                         "bgnsim: unknown workload '%s' (valid: %s)\n",
                         n.c_str(), graph::workloadNameList().c_str());
            return 2;
        }
        n = w->name; // Canonical capitalization.
    }
    if (kinds.empty() || workloads.empty())
        usage(argv[0]);
    if (rc.topology.devices == 0) {
        std::fprintf(stderr, "bgnsim: --devices must be >= 1\n");
        return 2;
    }
    if (rc.topology.replication == 0) {
        std::fprintf(stderr, "bgnsim: --replication must be >= 1\n");
        return 2;
    }
    for (const platforms::KillEvent &k : rc.kills) {
        if (k.device >= rc.topology.devices) {
            std::fprintf(stderr,
                         "bgnsim: --die-kill names device %u of a "
                         "%u-device topology\n",
                         k.device, rc.topology.devices);
            return 2;
        }
    }
    if (rc.topology.multi()) {
        for (PlatformKind k : kinds) {
            auto p = makePlatform(k);
            if (!p.flags.directGraph) {
                std::fprintf(stderr,
                             "bgnsim: --devices %u needs a streaming "
                             "(DirectGraph) platform; '%s' is not\n",
                             rc.topology.devices, p.name.c_str());
                return 2;
            }
        }
    }

    auto configured = [&](PlatformKind kind) {
        auto p = makePlatform(kind);
        p.flags.dedupeNodes = dedupe;
        p.flags.coalesceSecondary = !no_coalesce;
        return p;
    };

    // One bundle per workload, shared read-only across all runs.
    std::vector<std::unique_ptr<WorkloadBundle>> bundles;
    for (const auto &w : workloads)
        bundles.push_back(makeBundle(graph::workload(w),
                                     rc.system.flash, model, nodes));

    const std::size_t nw = workloads.size();
    const std::size_t total = kinds.size() * nw;

    if (!trace_path.empty() && total != 1) {
        std::fprintf(stderr, "bgnsim: --trace requires a single "
                             "platform/workload run\n");
        return 2;
    }
    const bool want_metrics =
        !metrics_path.empty() || !metrics_csv_path.empty();
    std::vector<sim::MetricRegistry> regs(want_metrics ? total : 0);
    sim::TraceSink sink;
    if (!trace_path.empty())
        rc.traceSink = &sink;

    if (algo) {
        // Vertex-program mode: iterate-until-convergence supersteps
        // instead of fixed mini-batches, same platform x workload grid.
        AlgoRunConfig ac;
        ac.program.algo = *algo;
        std::vector<AlgoRunResult> ares;
        if (total == 1) {
            ares.push_back(runVertexProgram(
                configured(kinds[0]), rc, *bundles[0], ac,
                want_metrics ? &regs[0] : nullptr));
        } else {
            sim::SimExecutor ex;
            std::printf("bgnsim: %zu-run grid on %u worker(s)\n", total,
                        ex.jobs());
            ares = ex.map<AlgoRunResult>(total, [&](std::size_t i) {
                return runVertexProgram(
                    configured(kinds[i / nw]), rc, *bundles[i % nw], ac,
                    want_metrics ? &regs[i] : nullptr);
            });
        }
        bool aok = true;
        for (std::size_t i = 0; i < total; ++i) {
            const AlgoRunResult &r = ares[i];
            const WorkloadBundle &b = *bundles[i % nw];
            aok = aok && r.ok;
            std::printf("bgnsim: %s on %s via %s (%u nodes, avg "
                        "degree %.0f)\n",
                        r.algo.c_str(), b.name.c_str(),
                        r.platform.c_str(), b.graph.numNodes(),
                        b.graph.avgDegree());
            std::printf("  %s in %u superstep(s) | %llu frontier "
                        "reads | %.2f ms | %.2f Knodes/s | checksum "
                        "%.6g\n",
                        r.converged ? "converged" : "iteration cap",
                        r.iterations,
                        static_cast<unsigned long long>(
                            r.frontierNodes),
                        sim::toMillis(r.totalTime),
                        r.throughput / 1e3, r.checksum);
        }
        if (!csv_path.empty()) {
            bool fresh = !std::ifstream(csv_path).good();
            std::ofstream out(csv_path, std::ios::app);
            if (fresh)
                out << "platform,workload,algo,ok,converged,"
                       "iterations,frontier_nodes,total_time_us,"
                       "frontier_per_sec,checksum,devices\n";
            for (const AlgoRunResult &r : ares)
                out << r.platform << ',' << r.workload << ','
                    << r.algo << ',' << (r.ok ? 1 : 0) << ','
                    << (r.converged ? 1 : 0) << ',' << r.iterations
                    << ',' << r.frontierNodes << ','
                    << sim::toMicros(r.totalTime) << ','
                    << r.throughput << ',' << r.checksum << ','
                    << r.devices << '\n';
            std::printf("  appended %zu CSV row(s) to %s\n",
                        ares.size(), csv_path.c_str());
        }
        if (!metrics_path.empty()) {
            std::ofstream out(metrics_path);
            out << "{\"runs\": [";
            for (std::size_t i = 0; i < total; ++i) {
                out << (i == 0 ? "\n" : ",\n");
                out << "{\"platform\": \"" << ares[i].platform
                    << "\", \"workload\": \"" << ares[i].workload
                    << "\", \"algo\": \"" << ares[i].algo
                    << "\", \"metrics\": ";
                regs[i].writeJson(out);
                out << "}";
            }
            out << "\n]}\n";
            std::printf("  wrote metrics snapshot to %s\n",
                        metrics_path.c_str());
        }
        if (!metrics_csv_path.empty()) {
            std::ofstream out(metrics_csv_path);
            sim::MetricRegistry::writeCsvHeader(out,
                                                "platform,workload,");
            for (std::size_t i = 0; i < total; ++i)
                regs[i].writeCsv(out, ares[i].platform + "," +
                                          ares[i].workload + ",");
            std::printf("  wrote metrics CSV to %s\n",
                        metrics_csv_path.c_str());
        }
        if (!trace_path.empty()) {
            std::ofstream out(trace_path);
            sink.write(out);
            std::printf("  wrote %zu trace event(s) to %s%s\n",
                        sink.events(), trace_path.c_str(),
                        sink.dropped() ? " (truncated)" : "");
        }
        return aok ? 0 : 1;
    }

    std::vector<RunResult> results;
    if (total == 1) {
        results.push_back(runPlatform(configured(kinds[0]), rc,
                                      *bundles[0],
                                      want_metrics ? &regs[0] : nullptr));
    } else {
        sim::SimExecutor ex;
        std::printf("bgnsim: %zu-run grid on %u worker(s)\n", total,
                    ex.jobs());
        results = ex.map<RunResult>(total, [&](std::size_t i) {
            return runPlatform(configured(kinds[i / nw]), rc,
                               *bundles[i % nw],
                               want_metrics ? &regs[i] : nullptr);
        });
    }

    bool ok = true;
    for (std::size_t i = 0; i < total; ++i) {
        const RunResult &r = results[i];
        const WorkloadBundle &b = *bundles[i % nw];
        ok = ok && r.ok;
        std::printf("bgnsim: %s on %s (%u nodes, avg degree %.0f, "
                    "%u-dim features)\n",
                    r.platform.c_str(), b.name.c_str(),
                    b.graph.numNodes(), b.graph.avgDegree(),
                    b.features.dim());
        std::printf("%s\n", summaryLine(r).c_str());
        std::printf("  prep %.2f ms | die util %.3f | channel util "
                    "%.3f | core util %.3f\n",
                    sim::toMillis(r.prepTime), r.dieUtil,
                    r.channelUtil, r.coreUtil);
        std::printf("  flash reads %llu | channel %.1f MB | PCIe "
                    "%.1f MB | aborted %llu\n",
                    static_cast<unsigned long long>(
                        r.tally.flashReads),
                    static_cast<double>(r.tally.channelBytes) /
                        1048576.0,
                    static_cast<double>(r.tally.pcieBytes) / 1048576.0,
                    static_cast<unsigned long long>(
                        r.tally.abortedCommands));
        std::printf("  cmd lifetime %.1f us (wait %.1f + flash %.1f "
                    "+ wait %.1f)\n",
                    r.cmdStats.lifetime.mean(),
                    r.cmdStats.waitBefore.mean(),
                    r.cmdStats.flashTime.mean(),
                    r.cmdStats.waitAfter.mean());
        if (r.devices > 1) {
            std::uint64_t lo = ~0ull, hi = 0;
            for (const auto &d : r.perDevice) {
                lo = std::min(lo, d.commands);
                hi = std::max(hi, d.commands);
            }
            std::printf("  array: %u devices (%s) | cross-device "
                        "%.1f%% | per-device commands %llu..%llu\n",
                        r.devices,
                        partitionPolicyName(rc.topology.partition),
                        100.0 * r.crossFraction,
                        static_cast<unsigned long long>(lo),
                        static_cast<unsigned long long>(hi));
        }
    }

    if (!csv_path.empty()) {
        bool fresh = !std::ifstream(csv_path).good();
        std::ofstream out(csv_path, std::ios::app);
        if (fresh)
            writeCsvHeader(out);
        for (const RunResult &r : results)
            writeCsvRow(out, r);
        std::printf("  appended %zu CSV row(s) to %s\n", results.size(),
                    csv_path.c_str());
    }

    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        out << "{\"runs\": [";
        for (std::size_t i = 0; i < total; ++i) {
            out << (i == 0 ? "\n" : ",\n");
            out << "{\"platform\": \"" << results[i].platform
                << "\", \"workload\": \"" << results[i].workload
                << "\", \"metrics\": ";
            regs[i].writeJson(out);
            out << "}";
        }
        out << "\n]}\n";
        std::printf("  wrote metrics snapshot to %s\n",
                    metrics_path.c_str());
    }
    if (!metrics_csv_path.empty()) {
        std::ofstream out(metrics_csv_path);
        sim::MetricRegistry::writeCsvHeader(out, "platform,workload,");
        for (std::size_t i = 0; i < total; ++i)
            regs[i].writeCsv(out, results[i].platform + "," +
                                      results[i].workload + ",");
        std::printf("  wrote metrics CSV to %s\n",
                    metrics_csv_path.c_str());
    }
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        sink.write(out);
        std::printf("  wrote %zu trace event(s) to %s%s\n",
                    sink.events(), trace_path.c_str(),
                    sink.dropped() ? " (truncated)" : "");
    }
    return ok ? 0 : 1;
}
