/**
 * @file
 * bgnlint — BeaconGNN's determinism/invariant static-analysis pass
 * (DESIGN.md §11).
 *
 * Nine repo-specific rules, each a named, suppressible diagnostic:
 *
 *  - BGN001  no wall-clock / ambient randomness in simulation code
 *            (std::rand, srand, random_device, time(), any
 *            chrono *_clock) — sim code draws from sim::Pcg32 /
 *            keyedRandom() and tells time in sim::Tick only;
 *  - BGN002  no iteration over std::unordered_map/unordered_set:
 *            hash order is not stable across builds/libraries, so any
 *            range-for or .begin() walk can leak nondeterminism into
 *            metrics, CSV/JSON emitters or event scheduling;
 *  - BGN003  no raw new/delete outside the SBO kernel in src/sim/;
 *  - BGN004  MetricRegistry instrument-name literals must match the
 *            DESIGN.md §10 namespace grammar
 *            (flash.|ssd.|engine.|accel.|energy.|serve.|run.|array.
 *            roots, lower_snake components);
 *  - BGN005  no float/double accumulation inside parallelMap/runGrid
 *            call regions without a `bgnlint:deterministic-order`
 *            comment tag vouching for a fixed reduction order;
 *  - BGN006  no direct schedule()/scheduleAt()/bulkScheduleAt() on a
 *            queue reached through a member — `port.queue->scheduleAt`
 *            or `ctx->queue().schedule`: under the conservative
 *            parallel simulator (DESIGN.md §13) cross-device work must
 *            travel as a timestamped sim::Mailbox message; the handful
 *            of sanctioned sync seams carry an allow tag;
 *  - BGN007  no write to lane-owned state (a cross-TU symbol table of
 *            containers whose elements are per-device lanes —
 *            Batch::Lane, DevicePort, DeviceContext, SimStation,
 *            per-device TraceSink/VertexCache/EventQueue shards, plus
 *            any declaration tagged `bgnlint:lane-owned`) unless the
 *            access is indexed by a single owning-device identifier;
 *            literal/compound indices and mutable range-fors over a
 *            lane container are the merge/setup seams and must carry
 *            an allow tag justifying why the driver is quiescent;
 *  - BGN008  stale `bgnlint:allow(ID)` suppressions: a tag that masks
 *            no finding on its line span (or names no catalog rule)
 *            is itself a finding, so dead suppressions cannot
 *            accumulate and silently re-open holes;
 *  - BGN009  include-graph layering: src/sim is the foundation and
 *            may include no other src/ directory; src/flash and
 *            src/ssd (device-level) may not include src/platforms or
 *            src/serve (orchestration); directory-level include
 *            cycles are errors.
 *
 * Suppression: `// bgnlint:allow(BGN002)` (comma-separate several
 * IDs) on the finding's line or the line directly above it.
 *
 * Scope: BGN001, BGN006 and BGN007 apply under src/ and tools/
 * (bench/ is host-side measurement harness and may read wall clocks;
 * tools/bgnlint itself names the banned constructs and is excluded);
 * BGN003 exempts src/sim/ (InlineCallback's small-buffer kernel);
 * BGN007 additionally exempts src/sim/parallel_sim.* (the driver
 * implements the window protocol the rule enforces); BGN009 applies
 * to files under src/; the rest apply to every scanned file.
 *
 * The analysis is a lightweight tokenizer pass, not a compiler: name
 * resolution is "nearest preceding declaration in the same file, else
 * any file that declares the name as an unordered container". That
 * catches every real pattern in this codebase; the escape hatch for a
 * false positive is the allow-comment, which doubles as in-source
 * documentation of why the site is safe.
 */

#ifndef BEACONGNN_BGNLINT_LINT_H
#define BEACONGNN_BGNLINT_LINT_H

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace bgnlint {

struct Finding
{
    std::string file; ///< Path as given (relative to scan root).
    int line = 0;
    std::string rule; ///< "BGN001".."BGN009".
    std::string message;
    bool suppressed = false;
};

struct RuleInfo
{
    std::string id;
    std::string title;
    std::string hint; ///< Suggested fix, printed with --hints.
};

/** Static catalog of all rules, in ID order. */
const std::vector<RuleInfo> &ruleCatalog();

struct FileInput
{
    std::string path; ///< Forward-slash path relative to the repo
                      ///< root; used for per-rule applicability.
    std::string content;
};

struct LintOptions
{
    bool showSuppressed = false; ///< Include suppressed findings.
    std::vector<std::string> onlyRules; ///< Empty = all rules.
};

/**
 * Lint @p files. Findings come back sorted by (file, line, rule) —
 * the linter's own output must be deterministic. Suppressed findings
 * are dropped unless @p opt.showSuppressed.
 */
std::vector<Finding> lintFiles(const std::vector<FileInput> &files,
                               const LintOptions &opt = {});

/**
 * Collect .h/.hpp/.cc/.cpp/.cxx sources under @p paths (files or
 * directories, relative to @p root), sorted by path. Directories
 * named build*, results or starting with '.' are skipped.
 */
std::vector<FileInput> loadTree(const std::filesystem::path &root,
                                const std::vector<std::string> &paths,
                                std::string *error);

/** `file:line: RULE: message` per finding (compiler-style). */
void writeText(std::ostream &os, const std::vector<Finding> &findings,
               bool hints);

/** Machine-readable report for CI. */
void writeJson(std::ostream &os, const std::vector<Finding> &findings);

} // namespace bgnlint

#endif // BEACONGNN_BGNLINT_LINT_H
