/**
 * @file
 * Minimal C++ tokenizer for bgnlint (DESIGN.md §11).
 *
 * Deliberately not a compiler front end: bgnlint's rules only need
 * identifiers, punctuation, literals and comments with line numbers.
 * Comments and string/char literals are materialised as single tokens
 * so rule code can (a) never false-positive on banned identifiers
 * inside strings or comments and (b) still read suppression
 * annotations (`bgnlint:allow(...)`) out of comment text.
 */

#ifndef BEACONGNN_BGNLINT_LEXER_H
#define BEACONGNN_BGNLINT_LEXER_H

#include <string>
#include <string_view>
#include <vector>

namespace bgnlint {

enum class TokKind {
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< numeric literal (incl. hex/float/suffixes)
    String,     ///< "..." or R"(...)" — text excludes the quotes
    CharLit,    ///< '...'
    Punct,      ///< operators/punctuation; multi-char ops are one token
    Comment,    ///< // or /* */ — text excludes the comment markers
};

struct Token
{
    TokKind kind;
    std::string text;
    int line; ///< 1-based line of the token's first character.
};

/**
 * Tokenize @p src. Never fails: unterminated constructs are closed at
 * end of input. Multi-char punctuation that matters to the rules
 * (`::`, `->`, `+=`, `-=`, `*=`, `/=`, `==`, `<=`, `>=`, `&&`, `||`,
 * `<<`, `>>`) is emitted as one token so e.g. a lone `:` reliably
 * means a range-for separator or a label.
 */
std::vector<Token> tokenize(std::string_view src);

} // namespace bgnlint

#endif // BEACONGNN_BGNLINT_LEXER_H
