#include "lint.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "lexer.h"

namespace bgnlint {

namespace {

// ==================================================================
// Rule catalog.
// ==================================================================

const std::vector<RuleInfo> kRules = {
    {"BGN001",
     "wall-clock or ambient randomness in simulation code",
     "draw randomness from sim::Pcg32 / sim::keyedRandom() and tell "
     "time in sim::Tick (SimTime); wall clocks belong to bench/ only"},
    {"BGN002",
     "iteration over an unordered container",
     "hash order is not stable across builds; iterate a std::map/"
     "std::set, or collect keys and std::sort before walking"},
    {"BGN003",
     "raw new/delete outside src/sim/",
     "use std::make_unique / std::vector; only the InlineCallback "
     "SBO kernel in src/sim/ manages raw storage"},
    {"BGN004",
     "metric name violates the DESIGN.md §10 namespace grammar",
     "instrument names are lower_snake dot paths rooted at flash./"
     "ssd./engine./accel./energy./serve./run./array./model.; the "
     "model. root takes a closed second segment (a model-zoo kind, "
     "algo, or a session leaf)"},
    {"BGN005",
     "float accumulation in a parallelMap/runGrid region without a "
     "deterministic-order tag",
     "reduce in submission order over the collected results and tag "
     "the site with // bgnlint:deterministic-order"},
    {"BGN006",
     "direct schedule on a foreign device queue",
     "cross-device work must travel as a timestamped sim::Mailbox "
     "message (DESIGN.md §13); only the conservative-sync seams may "
     "touch another device's queue, tagged // bgnlint:allow(BGN006)"},
    {"BGN007",
     "write to lane-owned state not indexed by the owning device",
     "per-device state is touched only through its owner's lane "
     "(DESIGN.md §16): index lane containers with a single "
     "owning-device identifier; merge/setup seams where the driver "
     "is quiescent carry // bgnlint:allow(BGN007) plus a comment "
     "justifying why"},
    {"BGN008",
     "stale bgnlint:allow suppression",
     "the tag masks no finding on its line span — delete it; if it "
     "names no catalog rule, fix the rule ID"},
    {"BGN009",
     "include-graph layering violation",
     "src/sim includes no other src/ directory; src/flash and "
     "src/ssd may not include src/platforms or src/serve; "
     "directory-level include cycles are errors (DESIGN.md §16)"},
};

bool
startsWith(const std::string &s, std::string_view prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
isPunct(const Token &t, std::string_view s)
{
    return t.kind == TokKind::Punct && t.text == s;
}

bool
isIdent(const Token &t, std::string_view s)
{
    return t.kind == TokKind::Identifier && t.text == s;
}

// ==================================================================
// Declaration tracking (for BGN002 / BGN005 name resolution).
// ==================================================================

enum class DeclKind { Unordered, Ordered, Floating };

struct Decl
{
    int line;
    DeclKind kind;
};

using DeclMap = std::map<std::string, std::vector<Decl>>;

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
const std::set<std::string> kOrderedTypes = {
    "map", "set", "multimap", "multiset", "vector",
    "deque", "list", "array", "span"};
const std::set<std::string> kFloatTypes = {"float", "double"};

/** Skip a balanced <...> starting at the '<' token; returns the index
 *  one past the matching '>' (or tokens.size() when unbalanced). */
std::size_t
skipAngles(const std::vector<Token> &t, std::size_t i)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Punct)
            continue;
        if (t[i].text == "<")
            ++depth;
        else if (t[i].text == "<<")
            depth += 2;
        else if (t[i].text == ">")
            --depth;
        else if (t[i].text == ">>")
            depth -= 2;
        else if (t[i].text == ";")
            return i; // Not a template after all (a < comparison).
        if (depth <= 0)
            return i + 1;
    }
    return t.size();
}

/**
 * One pass over a file's tokens recording container/floating-point
 * declarations: `TYPE<...> [&*] NAME` and `float|double NAME`.
 */
void
collectDecls(const std::vector<Token> &t, DeclMap &decls,
             std::set<std::string> &globalUnordered)
{
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier)
            continue;
        const std::string &id = t[i].text;

        DeclKind kind;
        std::size_t after = 0;
        if ((kUnorderedTypes.count(id) || kOrderedTypes.count(id)) &&
            i + 1 < t.size() && t[i + 1].kind == TokKind::Punct &&
            t[i + 1].text == "<") {
            kind = kUnorderedTypes.count(id) ? DeclKind::Unordered
                                             : DeclKind::Ordered;
            after = skipAngles(t, i + 1);
        } else if (kFloatTypes.count(id)) {
            // Skip template-argument positions: vector<double> etc.
            if (i > 0 && t[i - 1].kind == TokKind::Punct &&
                (t[i - 1].text == "<" || t[i - 1].text == ","))
                continue;
            kind = DeclKind::Floating;
            after = i + 1;
        } else {
            continue;
        }

        // Optional ref/pointer sigils, then the declared name.
        while (after < t.size() && t[after].kind == TokKind::Punct &&
               (t[after].text == "&" || t[after].text == "*"))
            ++after;
        if (after >= t.size() ||
            t[after].kind != TokKind::Identifier)
            continue;
        const Token &name = t[after];
        decls[name.text].push_back({name.line, kind});
        if (kind == DeclKind::Unordered)
            globalUnordered.insert(name.text);
    }
}

/** Nearest same-file declaration of @p name at or before @p line. */
const Decl *
nearestDecl(const DeclMap &decls, const std::string &name, int line)
{
    auto it = decls.find(name);
    if (it == decls.end())
        return nullptr;
    const Decl *best = nullptr;
    for (const Decl &d : it->second)
        if (d.line <= line && (!best || d.line > best->line))
            best = &d;
    return best;
}

// ==================================================================
// Suppression / tag comments.
// ==================================================================

/** One bgnlint:allow(ID) occurrence; BGN008 reports it when no
 *  finding of rule @ref id was suppressed through it. */
struct AllowTag
{
    std::string id;
    int line;          ///< Line the tag comment starts on.
    bool used = false; ///< Set when the tag suppresses a finding.
};

struct Annotations
{
    std::vector<AllowTag> tags;
    /** rule -> covered line -> index into @ref tags. */
    std::map<std::string, std::map<int, std::size_t>> allow;
    /** Lines carrying a bgnlint:deterministic-order tag. */
    std::set<int> orderTag;
    /** Lines carrying a bgnlint:lane-owned tag (BGN007 table). */
    std::set<int> laneOwned;
};

Annotations
collectAnnotations(const std::vector<Token> &all)
{
    Annotations ann;
    for (const Token &tok : all) {
        if (tok.kind != TokKind::Comment)
            continue;
        const std::string &c = tok.text;
        int extra = static_cast<int>(
            std::count(c.begin(), c.end(), '\n'));
        if (c.find("bgnlint:deterministic-order") != std::string::npos)
            for (int l = tok.line; l <= tok.line + extra + 1; ++l)
                ann.orderTag.insert(l);
        if (c.find("bgnlint:lane-owned") != std::string::npos)
            for (int l = tok.line; l <= tok.line + extra + 1; ++l)
                ann.laneOwned.insert(l);
        std::size_t pos = c.find("bgnlint:allow(");
        while (pos != std::string::npos) {
            std::size_t open = pos + 14;
            std::size_t close = c.find(')', open);
            if (close == std::string::npos)
                break;
            std::stringstream ids(c.substr(open, close - open));
            std::string id;
            while (std::getline(ids, id, ',')) {
                id.erase(std::remove_if(id.begin(), id.end(),
                                        [](unsigned char ch) {
                                            return std::isspace(ch);
                                        }),
                         id.end());
                if (id.empty())
                    continue;
                ann.tags.push_back({id, tok.line, false});
                // The annotation covers its own line span plus the
                // following line, so both trailing and preceding-line
                // comments work.
                for (int l = tok.line; l <= tok.line + extra + 1; ++l)
                    ann.allow[id].emplace(l, ann.tags.size() - 1);
            }
            pos = c.find("bgnlint:allow(", close);
        }
    }
    return ann;
}

// ==================================================================
// Lane-owned symbol table (BGN007).
// ==================================================================

/**
 * Cross-TU table of lane-owned state (DESIGN.md §16). Two name sets:
 *
 *  - @ref containers — names ever declared as a vector/array whose
 *    element type is a per-device lane (Batch::Lane, DevicePort,
 *    DeviceContext, SimStation) or a per-device shard
 *    (TraceSink, VertexCache, EventQueue, possibly unique_ptr
 *    wrapped), plus any container declaration carrying a
 *    `bgnlint:lane-owned` tag;
 *  - @ref members — field names of the lane classes themselves, so a
 *    badly-indexed write is caught even when the container name is
 *    not in the table (`anything[0].tally.merge(...)`).
 */
struct LaneTable
{
    std::set<std::string> containers;
    std::set<std::string> members;
};

const std::set<std::string> kLaneElementTypes = {
    "Lane",      "DevicePort",  "DeviceContext", "SimStation",
    "TraceSink", "VertexCache", "EventQueue"};
const std::set<std::string> kLaneClasses = {
    "Lane", "DeviceContext", "DevicePort", "SimStation"};

/** Record container declarations whose element type is a lane type:
 *  `vector<...LaneType...> [&*] NAME`. */
void
collectLaneContainers(const std::vector<Token> &t, LaneTable &lane)
{
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            !(t[i].text == "vector" || t[i].text == "array"))
            continue;
        if (i + 1 >= t.size() || !isPunct(t[i + 1], "<"))
            continue;
        std::size_t after = skipAngles(t, i + 1);
        bool laneElem = false;
        for (std::size_t j = i + 2; j + 1 < after; ++j)
            if (t[j].kind == TokKind::Identifier &&
                kLaneElementTypes.count(t[j].text) &&
                // A name followed by :: is a scope qualifier
                // (EventQueue::TimedEvent), not the element type.
                !isPunct(t[j + 1], "::"))
                laneElem = true;
        if (!laneElem)
            continue;
        while (after < t.size() && t[after].kind == TokKind::Punct &&
               (t[after].text == "&" || t[after].text == "*"))
            ++after;
        if (after < t.size() && t[after].kind == TokKind::Identifier)
            lane.containers.insert(t[after].text);
    }
}

/** Record the field names of lane-class bodies: inside
 *  `struct|class LaneClass ... { ... }`, a depth-1 identifier
 *  followed by `;`, `=` or `{` (and preceded by type tokens) is a
 *  field; identifiers followed by `(` are methods and skipped. */
void
collectLaneMembers(const std::vector<Token> &t, LaneTable &lane)
{
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            !kLaneClasses.count(t[i].text))
            continue;
        if (!(isIdent(t[i - 1], "struct") || isIdent(t[i - 1], "class")))
            continue;
        // Skip to the class body's '{' (past any base clause); give
        // up at ';' (forward declaration).
        std::size_t open = i + 1;
        while (open < t.size() && !isPunct(t[open], "{") &&
               !isPunct(t[open], ";"))
            ++open;
        if (open >= t.size() || !isPunct(t[open], "{"))
            continue;
        int depth = 0;
        for (std::size_t j = open; j < t.size(); ++j) {
            if (isPunct(t[j], "{")) {
                ++depth;
            } else if (isPunct(t[j], "}")) {
                if (--depth == 0)
                    break;
            } else if (depth == 1 && j > 0 &&
                       t[j].kind == TokKind::Identifier &&
                       j + 1 < t.size()) {
                bool fieldish = isPunct(t[j + 1], ";") ||
                                isPunct(t[j + 1], "=") ||
                                isPunct(t[j + 1], "{");
                bool typed =
                    t[j - 1].kind == TokKind::Identifier ||
                    isPunct(t[j - 1], ">") || isPunct(t[j - 1], "*") ||
                    isPunct(t[j - 1], "&");
                if (fieldish && typed)
                    lane.members.insert(t[j].text);
            }
        }
    }
}

// ==================================================================
// Per-file rule pass.
// ==================================================================

struct FileContext
{
    const FileInput *input;
    std::vector<Token> all;  ///< Including comments.
    std::vector<Token> code; ///< Comments stripped.
    DeclMap decls;
    Annotations ann;
};

class Linter
{
  public:
    Linter(const std::set<std::string> &global_unordered,
           const LaneTable &lane_table)
        : globalUnordered(global_unordered), laneTable(lane_table)
    {
    }

    /** Rules BGN001–BGN007 on one file. */
    void runCore(FileContext &ctx);
    /** BGN009 over the whole tree (cross-file include graph). */
    void runIncludeGraph(std::vector<FileContext> &ctxs);
    /** BGN008 on one file — must run after every other rule has had
     *  a chance to consume the file's allow tags. */
    void runStale(FileContext &ctx);

    std::vector<Finding> take() { return std::move(out); }

  private:
    const std::set<std::string> &globalUnordered;
    const LaneTable &laneTable;
    std::vector<Finding> out;

    void emit(FileContext &ctx, int line, const std::string &rule,
              std::string message)
    {
        bool suppressed = false;
        auto it = ctx.ann.allow.find(rule);
        if (it != ctx.ann.allow.end()) {
            auto at = it->second.find(line);
            if (at != it->second.end()) {
                suppressed = true;
                ctx.ann.tags[at->second].used = true;
            }
        }
        out.push_back({ctx.input->path, line, rule,
                       std::move(message), suppressed});
    }

    bool unorderedAt(const FileContext &ctx, const std::string &name,
                     int line) const
    {
        if (const Decl *d = nearestDecl(ctx.decls, name, line))
            return d->kind == DeclKind::Unordered;
        return globalUnordered.count(name) != 0;
    }

    bool floatingAt(const FileContext &ctx, const std::string &name,
                    int line) const
    {
        const Decl *d = nearestDecl(ctx.decls, name, line);
        return d && d->kind == DeclKind::Floating;
    }

    void rule001(FileContext &ctx);
    void rule002(FileContext &ctx);
    void rule003(FileContext &ctx);
    void rule004(FileContext &ctx);
    void rule005(FileContext &ctx);
    void rule006(FileContext &ctx);
    void rule007(FileContext &ctx);
    void rule008(FileContext &ctx);
};

// ---- BGN001: wall clock / ambient randomness ----------------------

const std::set<std::string> kClockTypes = {
    "system_clock", "steady_clock", "high_resolution_clock"};
const std::set<std::string> kTimeCalls = {
    "time", "gettimeofday", "clock_gettime", "timespec_get"};

void
Linter::rule001(FileContext &ctx)
{
    const std::string &path = ctx.input->path;
    bool simCode = startsWith(path, "src/") ||
                   (startsWith(path, "tools/") &&
                    !startsWith(path, "tools/bgnlint/"));
    if (!simCode)
        return;
    const auto &t = ctx.code;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier)
            continue;
        const std::string &id = t[i].text;
        bool memberCall =
            i > 0 && (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->"));
        bool called = i + 1 < t.size() && isPunct(t[i + 1], "(");

        if (id == "random_device") {
            emit(ctx, t[i].line, "BGN001",
                 "std::random_device is nondeterministic; seed a "
                 "sim::Pcg32 instead");
        } else if (kClockTypes.count(id)) {
            emit(ctx, t[i].line, "BGN001",
                 "chrono " + id +
                     " reads the wall clock; simulation time is "
                     "sim::Tick only");
        } else if ((id == "rand" || id == "srand") && called &&
                   !memberCall) {
            emit(ctx, t[i].line, "BGN001",
                 id + "() uses hidden global state; use sim::Pcg32 / "
                      "sim::keyedRandom()");
        } else if (kTimeCalls.count(id) && called && !memberCall) {
            emit(ctx, t[i].line, "BGN001",
                 id + "() reads the wall clock; simulation time is "
                      "sim::Tick only");
        }
    }
}

// ---- BGN002: unordered-container iteration -------------------------

const std::set<std::string> kBeginNames = {"begin", "cbegin", "rbegin",
                                           "crbegin"};

void
Linter::rule002(FileContext &ctx)
{
    const auto &t = ctx.code;
    for (std::size_t i = 0; i < t.size(); ++i) {
        // Range-for:  for ( decl : EXPR )
        if (isIdent(t[i], "for") && i + 1 < t.size() &&
            isPunct(t[i + 1], "(")) {
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t j = i + 1; j < t.size(); ++j) {
                if (isPunct(t[j], "("))
                    ++depth;
                else if (isPunct(t[j], ")")) {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (depth == 1 && isPunct(t[j], ":") && !colon) {
                    colon = j;
                }
            }
            if (colon && close > colon) {
                // Last identifier of the iterated expression. An
                // expression containing a call (e.g. the audited
                // sim::sortedKeys(...) snapshot) yields a fresh value
                // of unknown — by construction ordered — type; skip.
                std::string name;
                int nameLine = t[colon].line;
                for (std::size_t j = colon + 1; j < close; ++j) {
                    if (isPunct(t[j], "(")) {
                        name.clear();
                        break;
                    }
                    if (t[j].kind == TokKind::Identifier) {
                        name = t[j].text;
                        nameLine = t[j].line;
                    }
                }
                if (!name.empty() && unorderedAt(ctx, name, nameLine))
                    emit(ctx, t[i].line, "BGN002",
                         "range-for over unordered container '" +
                             name +
                             "' — hash order leaks into results; use "
                             "an ordered container or sort a snapshot");
            }
        }
        // Iterator walk:  X.begin() / X->cbegin() ...
        if (t[i].kind == TokKind::Identifier && i + 3 < t.size() &&
            (isPunct(t[i + 1], ".") || isPunct(t[i + 1], "->")) &&
            t[i + 2].kind == TokKind::Identifier &&
            kBeginNames.count(t[i + 2].text) &&
            isPunct(t[i + 3], "(") &&
            unorderedAt(ctx, t[i].text, t[i].line)) {
            emit(ctx, t[i].line, "BGN002",
                 "iterator over unordered container '" + t[i].text +
                     "' — hash order leaks into results; use an "
                     "ordered container or sort a snapshot");
        }
    }
}

// ---- BGN003: raw new/delete ----------------------------------------

void
Linter::rule003(FileContext &ctx)
{
    if (startsWith(ctx.input->path, "src/sim/"))
        return; // The SBO kernel owns raw storage by design.
    const auto &t = ctx.code;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier)
            continue;
        if (t[i].text == "new") {
            if (i > 0 && isIdent(t[i - 1], "operator"))
                continue;
            emit(ctx, t[i].line, "BGN003",
                 "raw 'new' outside src/sim/ — use std::make_unique "
                 "or a container");
        } else if (t[i].text == "delete") {
            if (i > 0 && isPunct(t[i - 1], "="))
                continue; // Deleted special member.
            emit(ctx, t[i].line, "BGN003",
                 "raw 'delete' outside src/sim/ — ownership belongs "
                 "in std::unique_ptr / containers");
        }
    }
}

// ---- BGN004: metric-name grammar -----------------------------------

const std::set<std::string> kRegistryAccessors = {
    "counter", "gauge", "accum", "histogram", "interval"};
const std::set<std::string> kMetricRoots = {
    "flash", "ssd", "engine", "accel", "energy", "serve", "run",
    "array", "model"};
// The cache namespace (engine.cache.*, array.devD.cache.*) has a
// closed leaf set: a "cache" segment must be followed by exactly one
// of these, so a misspelled cache metric fails lint instead of
// silently forking the namespace.
const std::set<std::string> kCacheLeaves = {
    "hits", "misses", "fills", "evictions", "bytes", "hit_rate"};
// The health namespace (array.devD.health.*) has a closed leaf set,
// same rationale: the fault-injection instruments must not fork.
const std::set<std::string> kHealthLeaves = {"latency_ewma_us",
                                             "samples", "alive"};
// engine.router.* covers both the channel router (DESIGN.md §6) and
// the replica router (§17); a closed leaf set keeps the two from
// silently forking.
const std::set<std::string> kRouterLeaves = {
    "commands_routed", "frames_parsed", "cross_channel", "peak_queue",
    "replica_fallbacks"};
// The model namespace has a closed second segment: a model-zoo kind
// or the algo sub-namespace (which take further leaves), or one of
// the session-level leaves (terminal). A misspelled model metric
// fails lint instead of silently forking the namespace.
const std::set<std::string> kModelGroups = {"gcn", "gin", "gat",
                                            "algo"};
const std::set<std::string> kModelLeaves = {
    "kind_id", "hops",       "fanout_total",
    "feature_dim", "hidden_dim", "edge_coeff_bytes"};

bool
metricNameOk(const std::string &s)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : s) {
        if (c == '.') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    if (parts.size() < 2 || !kMetricRoots.count(parts[0]))
        return false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i].empty())
            return false;
        for (char c : parts[i])
            if (!(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) ||
                  c == '_'))
                return false;
    }
    for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i] == "cache") {
            // "cache" must be second-to-last with a known leaf.
            if (i + 2 != parts.size() ||
                !kCacheLeaves.count(parts[i + 1]))
                return false;
        } else if (parts[i] == "health") {
            if (i + 2 != parts.size() ||
                !kHealthLeaves.count(parts[i + 1]))
                return false;
        } else if (parts[i] == "router") {
            if (i + 2 != parts.size() ||
                !kRouterLeaves.count(parts[i + 1]))
                return false;
        }
    }
    if (parts[0] == "model") {
        if (kModelGroups.count(parts[1]))
            return parts.size() >= 3; // model.<kind|algo>.<leaf...>
        // Session-level leaves are terminal two-segment names.
        return parts.size() == 2 && kModelLeaves.count(parts[1]) != 0;
    }
    return true;
}

void
Linter::rule004(FileContext &ctx)
{
    const auto &t = ctx.code;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (!(isPunct(t[i], ".") || isPunct(t[i], "->")))
            continue;
        if (t[i + 1].kind != TokKind::Identifier ||
            !kRegistryAccessors.count(t[i + 1].text))
            continue;
        if (!isPunct(t[i + 2], "(") ||
            t[i + 3].kind != TokKind::String)
            continue;
        const std::string &name = t[i + 3].text;
        if (!metricNameOk(name))
            emit(ctx, t[i + 3].line, "BGN004",
                 "metric name \"" + name +
                     "\" violates the §10 grammar: "
                     "(flash|ssd|engine|accel|energy|serve|run|array|"
                     "model).lower_snake[.lower_snake...]; a cache "
                     "segment takes exactly one leaf of hits|misses|"
                     "fills|evictions|bytes|hit_rate; a health segment "
                     "takes exactly one leaf of latency_ewma_us|"
                     "samples|alive; a router segment takes exactly "
                     "one leaf of commands_routed|frames_parsed|"
                     "cross_channel|peak_queue|replica_fallbacks; "
                     "the model root "
                     "takes gcn|gin|gat|algo (with leaves) or a "
                     "session leaf (kind_id|hops|fanout_total|"
                     "feature_dim|hidden_dim|edge_coeff_bytes)");
    }
}

// ---- BGN005: float accumulation in parallel regions ----------------

const std::set<std::string> kParallelCalls = {"parallelMap", "runGrid"};

void
Linter::rule005(FileContext &ctx)
{
    const auto &t = ctx.code;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Identifier ||
            !kParallelCalls.count(t[i].text))
            continue;
        std::size_t open = i + 1;
        if (open < t.size() && isPunct(t[open], "<"))
            open = skipAngles(t, open);
        if (open >= t.size() || !isPunct(t[open], "("))
            continue;
        int depth = 0;
        std::size_t close = open;
        for (std::size_t j = open; j < t.size(); ++j) {
            if (isPunct(t[j], "("))
                ++depth;
            else if (isPunct(t[j], ")") && --depth == 0) {
                close = j;
                break;
            }
        }
        for (std::size_t j = open + 1; j < close; ++j) {
            if (!(isPunct(t[j], "+=") || isPunct(t[j], "-=")))
                continue;
            if (j == 0 || t[j - 1].kind != TokKind::Identifier)
                continue;
            const std::string &lhs = t[j - 1].text;
            if (!floatingAt(ctx, lhs, t[j].line))
                continue;
            if (ctx.ann.orderTag.count(t[j].line) ||
                ctx.ann.orderTag.count(t[i].line))
                continue;
            emit(ctx, t[j].line, "BGN005",
                 "float accumulation into '" + lhs + "' inside " +
                     t[i].text +
                     "() — FP addition does not commute; make the "
                     "reduction order deterministic and tag it "
                     "// bgnlint:deterministic-order");
        }
    }
}

// ---- BGN006: direct schedule on a foreign device queue -------------

const std::set<std::string> kScheduleNames = {"schedule", "scheduleAt",
                                              "bulkScheduleAt"};

void
Linter::rule006(FileContext &ctx)
{
    const std::string &path = ctx.input->path;
    bool simCode = startsWith(path, "src/") ||
                   (startsWith(path, "tools/") &&
                    !startsWith(path, "tools/bgnlint/"));
    if (!simCode)
        return;
    const auto &t = ctx.code;
    for (std::size_t i = 1; i < t.size(); ++i) {
        // `EXPR.queue->scheduleAt(` / `EXPR->queue.schedule(`: reaching
        // through a member named `queue` marks the queue as belonging
        // to some *other* object — a station's own queue is named
        // plainly (`queue.scheduleAt(...)`, `homeQueue(dev)...`).
        if (t[i].kind != TokKind::Identifier || t[i].text != "queue")
            continue;
        if (!(isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->")))
            continue;
        std::size_t m = i + 1; // Member access after `queue`...
        if (m + 1 < t.size() && isPunct(t[m], "(") &&
            isPunct(t[m + 1], ")"))
            m += 2; // ...or after a `queue()` accessor call.
        if (m + 2 >= t.size() ||
            !(isPunct(t[m], ".") || isPunct(t[m], "->")))
            continue;
        if (t[m + 1].kind != TokKind::Identifier ||
            !kScheduleNames.count(t[m + 1].text) ||
            !isPunct(t[m + 2], "("))
            continue;
        emit(ctx, t[m + 1].line, "BGN006",
             t[m + 1].text +
                 "() on a foreign device queue bypasses conservative "
                 "sync; post a timestamped sim::Mailbox message "
                 "(DESIGN.md §13) or, at a sanctioned sync seam, tag "
                 "the line // bgnlint:allow(BGN006)");
    }
}

// ---- BGN007: write to lane-owned state ----------------------------

/** Calls that mutate the object they are invoked on — used to decide
 *  whether a member chain hanging off a subscripted lane access
 *  writes lane-owned state. Conservative by construction: the rule
 *  only fires when the subscript is not a plain device identifier. */
const std::set<std::string> kMutatingCalls = {
    "absorb",       "acquire",      "add",         "assign",
    "bulkScheduleAt", "clear",      "cover",       "drain",
    "emplace_back", "erase",        "insert",      "merge",
    "pop_back",     "post",         "push_back",   "record",
    "reserve",      "reset",        "resize",      "run",
    "runUntil",     "schedule",     "scheduleAt",  "setGnnConfig",
    "setModel",     "setTraceSink", "setValidator", "swap"};

const std::set<std::string> kAssignOps = {
    "=",  "+=", "-=",  "*=",  "/=", "%=",
    "|=", "&=", "^=", "<<=", ">>=", "++", "--"};

/** Skip a balanced (...) starting at the '(' token. */
std::size_t
skipParens(const std::vector<Token> &t, std::size_t i)
{
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (isPunct(t[i], "("))
            ++depth;
        else if (isPunct(t[i], ")") && --depth == 0)
            return i + 1;
    }
    return t.size();
}

void
Linter::rule007(FileContext &ctx)
{
    const std::string &path = ctx.input->path;
    bool simCode = startsWith(path, "src/") ||
                   (startsWith(path, "tools/") &&
                    !startsWith(path, "tools/bgnlint/"));
    // The conservative-sync driver implements the window protocol
    // this rule enforces; it owns every lane by construction.
    if (!simCode || startsWith(path, "src/sim/parallel_sim."))
        return;
    const auto &t = ctx.code;

    for (std::size_t i = 0; i < t.size(); ++i) {
        // (a) Subscripted access: NAME [ idx ] chain...
        if (t[i].kind == TokKind::Identifier && i + 1 < t.size() &&
            isPunct(t[i + 1], "[")) {
            const std::string &container = t[i].text;
            // First subscript decides ownership: a single plain
            // identifier is "indexed by the owning device".
            int depth = 0;
            std::size_t closeIdx = 0;
            std::size_t idxTokens = 0;
            bool idxIdent = false;
            for (std::size_t j = i + 1; j < t.size(); ++j) {
                if (isPunct(t[j], "[")) {
                    ++depth;
                } else if (isPunct(t[j], "]")) {
                    if (--depth == 0) {
                        closeIdx = j;
                        break;
                    }
                } else if (depth == 1) {
                    ++idxTokens;
                    idxIdent = t[j].kind == TokKind::Identifier;
                }
            }
            if (!closeIdx)
                continue;
            bool deviceIndexed = idxTokens == 1 && idxIdent;

            // Walk the trailing member chain; further subscripts are
            // fine (the device dimension is the first one).
            std::size_t j = closeIdx + 1;
            std::string firstMember;
            bool mutated = false;
            while (j < t.size()) {
                if (isPunct(t[j], "[")) {
                    depth = 0;
                    for (; j < t.size(); ++j) {
                        if (isPunct(t[j], "["))
                            ++depth;
                        else if (isPunct(t[j], "]") && --depth == 0) {
                            ++j;
                            break;
                        }
                    }
                    continue;
                }
                if ((isPunct(t[j], ".") || isPunct(t[j], "->")) &&
                    j + 1 < t.size() &&
                    t[j + 1].kind == TokKind::Identifier) {
                    const std::string &member = t[j + 1].text;
                    if (firstMember.empty())
                        firstMember = member;
                    if (j + 2 < t.size() && isPunct(t[j + 2], "(")) {
                        if (kMutatingCalls.count(member))
                            mutated = true;
                        j = skipParens(t, j + 2);
                    } else {
                        j += 2;
                    }
                    continue;
                }
                break;
            }
            if (!mutated && j < t.size() &&
                t[j].kind == TokKind::Punct &&
                kAssignOps.count(t[j].text))
                mutated = true;

            bool laneState =
                laneTable.containers.count(container) != 0 ||
                (!firstMember.empty() &&
                 laneTable.members.count(firstMember) != 0);
            if (mutated && !deviceIndexed && laneState)
                emit(ctx, t[i].line, "BGN007",
                     "write to lane-owned state '" + container +
                         "[...]' not indexed by a single owning-"
                         "device identifier — per-device state is "
                         "touched only through its owner's lane "
                         "(DESIGN.md §16); a quiescent merge/setup "
                         "seam is tagged // bgnlint:allow(BGN007)");
        }

        // (b) Mutable range-for over a lane container.
        if (isIdent(t[i], "for") && i + 1 < t.size() &&
            isPunct(t[i + 1], "(")) {
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t j = i + 1; j < t.size(); ++j) {
                if (isPunct(t[j], "("))
                    ++depth;
                else if (isPunct(t[j], ")")) {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (depth == 1 && isPunct(t[j], ":") && !colon) {
                    colon = j;
                }
            }
            if (!colon || close <= colon)
                continue;
            bool hasRef = false, hasConst = false;
            for (std::size_t j = i + 2; j < colon; ++j) {
                if (isPunct(t[j], "&") || isPunct(t[j], "&&"))
                    hasRef = true;
                if (isIdent(t[j], "const"))
                    hasConst = true;
            }
            // Last identifier of the iterated expression; a call in
            // the expression yields a fresh value — skip, as BGN002.
            std::string name;
            for (std::size_t j = colon + 1; j < close; ++j) {
                if (isPunct(t[j], "(")) {
                    name.clear();
                    break;
                }
                if (t[j].kind == TokKind::Identifier)
                    name = t[j].text;
            }
            if (hasRef && !hasConst && !name.empty() &&
                laneTable.containers.count(name))
                emit(ctx, t[i].line, "BGN007",
                     "mutable range-for over lane container '" + name +
                         "' touches every device's lane (DESIGN.md "
                         "§16); only a quiescent merge/setup seam may "
                         "do this, tagged // bgnlint:allow(BGN007) "
                         "with a justification");
        }
    }
}

// ---- BGN008: stale allow suppressions ------------------------------

void
Linter::rule008(FileContext &ctx)
{
    // The linter's own sources spell out annotation syntax in doc
    // comments; auditing those for staleness is self-reference.
    if (startsWith(ctx.input->path, "tools/bgnlint/"))
        return;
    std::set<std::string> catalog;
    for (const RuleInfo &r : kRules)
        catalog.insert(r.id);
    for (const AllowTag &tag : ctx.ann.tags) {
        // allow(BGN008) tags only mask BGN008 findings; auditing them
        // for staleness would chase its own tail.
        if (tag.id == "BGN008")
            continue;
        if (!catalog.count(tag.id))
            emit(ctx, tag.line, "BGN008",
                 "bgnlint:allow(" + tag.id +
                     ") names no catalog rule — fix the ID or delete "
                     "the tag");
        else if (!tag.used)
            emit(ctx, tag.line, "BGN008",
                 "stale suppression: bgnlint:allow(" + tag.id +
                     ") masks no finding on its line span — delete "
                     "it");
    }
}

// ---- BGN009: include-graph layering --------------------------------

void
Linter::runIncludeGraph(std::vector<FileContext> &ctxs)
{
    // Directory-level include graph over src/: an edge src/A ->
    // src/B for every `#include "B/..."` in a file under src/A.
    struct Site
    {
        FileContext *ctx;
        int line;
        std::string from, to;
    };
    std::set<std::string> srcDirs;
    for (const FileContext &ctx : ctxs) {
        const std::string &p = ctx.input->path;
        if (!startsWith(p, "src/"))
            continue;
        std::size_t slash = p.find('/', 4);
        if (slash != std::string::npos)
            srcDirs.insert(p.substr(4, slash - 4));
    }

    std::vector<Site> sites;
    std::map<std::string, std::set<std::string>> adj;
    for (FileContext &ctx : ctxs) {
        const std::string &p = ctx.input->path;
        if (!startsWith(p, "src/"))
            continue;
        std::size_t slash = p.find('/', 4);
        if (slash == std::string::npos)
            continue;
        std::string from = p.substr(4, slash - 4);
        const auto &t = ctx.code;
        for (std::size_t i = 0; i + 2 < t.size(); ++i) {
            if (!isPunct(t[i], "#") || !isIdent(t[i + 1], "include") ||
                t[i + 2].kind != TokKind::String)
                continue;
            const std::string &inc = t[i + 2].text;
            std::size_t sl = inc.find('/');
            if (sl == std::string::npos)
                continue; // Same-directory include.
            std::string to = inc.substr(0, sl);
            if (!srcDirs.count(to) || to == from)
                continue;
            sites.push_back({&ctx, t[i + 2].line, from, to});
            adj[from].insert(to);
        }
    }

    // Reachability closure for cycle detection (the graph is a
    // handful of directories; a DFS per node is plenty).
    auto reaches = [&adj](const std::string &a,
                          const std::string &b) {
        std::set<std::string> seen;
        std::vector<std::string> stack = {a};
        while (!stack.empty()) {
            std::string d = stack.back();
            stack.pop_back();
            if (d == b)
                return true;
            if (!seen.insert(d).second)
                continue;
            auto it = adj.find(d);
            if (it != adj.end())
                for (const std::string &n : it->second)
                    stack.push_back(n);
        }
        return false;
    };

    for (const Site &s : sites) {
        if (s.from == "sim")
            emit(*s.ctx, s.line, "BGN009",
                 "src/sim is the foundation layer and may include no "
                 "other src/ directory, but includes src/" + s.to);
        else if ((s.from == "flash" || s.from == "ssd") &&
                 (s.to == "platforms" || s.to == "serve"))
            emit(*s.ctx, s.line, "BGN009",
                 "device-level src/" + s.from +
                     " may not include orchestration layer src/" +
                     s.to);
        if (reaches(s.to, s.from))
            emit(*s.ctx, s.line, "BGN009",
                 "include cycle: src/" + s.from + " -> src/" + s.to +
                     " closes a loop back to src/" + s.from +
                     " — break the layering cycle");
    }
}

void
Linter::runCore(FileContext &ctx)
{
    rule001(ctx);
    rule002(ctx);
    rule003(ctx);
    rule004(ctx);
    rule005(ctx);
    rule006(ctx);
    rule007(ctx);
}

void
Linter::runStale(FileContext &ctx)
{
    rule008(ctx);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

// ==================================================================
// Public API.
// ==================================================================

const std::vector<RuleInfo> &
ruleCatalog()
{
    return kRules;
}

std::vector<Finding>
lintFiles(const std::vector<FileInput> &files, const LintOptions &opt)
{
    // Pass 1: tokenize everything and build the cross-file tables —
    // names ever declared as unordered containers (members declared
    // in headers are iterated from other translation units) and the
    // lane-owned symbol table for BGN007.
    std::vector<FileContext> ctxs(files.size());
    std::set<std::string> globalUnordered;
    LaneTable laneTable;
    for (std::size_t i = 0; i < files.size(); ++i) {
        ctxs[i].input = &files[i];
        ctxs[i].all = tokenize(files[i].content);
        for (const Token &tok : ctxs[i].all)
            if (tok.kind != TokKind::Comment)
                ctxs[i].code.push_back(tok);
        collectDecls(ctxs[i].code, ctxs[i].decls, globalUnordered);
        ctxs[i].ann = collectAnnotations(ctxs[i].all);
        collectLaneContainers(ctxs[i].code, laneTable);
        collectLaneMembers(ctxs[i].code, laneTable);
        // A container declaration tagged bgnlint:lane-owned joins
        // the table by name, whatever its element type.
        for (const auto &[name, decls] : ctxs[i].decls)
            for (const Decl &d : decls)
                if (d.kind != DeclKind::Floating &&
                    ctxs[i].ann.laneOwned.count(d.line))
                    laneTable.containers.insert(name);
    }

    // Pass 2: per-file rules BGN001–BGN007, then the cross-file
    // include graph (BGN009), and last the staleness audit (BGN008)
    // — it must see which allow tags the other rules consumed. All
    // rules always run; onlyRules filters post-hoc so BGN008's
    // notion of "masks a finding" never depends on the filter.
    std::vector<Finding> all;
    Linter linter(globalUnordered, laneTable);
    for (FileContext &ctx : ctxs)
        linter.runCore(ctx);
    linter.runIncludeGraph(ctxs);
    for (FileContext &ctx : ctxs)
        linter.runStale(ctx);
    all = linter.take();

    if (!opt.onlyRules.empty()) {
        std::set<std::string> keep(opt.onlyRules.begin(),
                                   opt.onlyRules.end());
        std::erase_if(all, [&](const Finding &f) {
            return keep.count(f.rule) == 0;
        });
    }
    if (!opt.showSuppressed)
        std::erase_if(all,
                      [](const Finding &f) { return f.suppressed; });

    std::sort(all.begin(), all.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return all;
}

std::vector<FileInput>
loadTree(const std::filesystem::path &root,
         const std::vector<std::string> &paths, std::string *error)
{
    namespace fs = std::filesystem;
    const std::set<std::string> exts = {".h", ".hpp", ".cc", ".cpp",
                                        ".cxx"};
    std::vector<std::string> rel;

    auto skippable = [](const fs::path &dir) {
        std::string name = dir.filename().string();
        return name.rfind("build", 0) == 0 || name == "results" ||
               (!name.empty() && name[0] == '.');
    };

    for (const std::string &p : paths) {
        fs::path abs = root / p;
        std::error_code ec;
        if (fs::is_regular_file(abs, ec)) {
            rel.push_back(p);
        } else if (fs::is_directory(abs, ec)) {
            fs::recursive_directory_iterator it(
                abs, fs::directory_options::skip_permission_denied,
                ec),
                end;
            for (; it != end; ++it) {
                if (it->is_directory() && skippable(it->path())) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (!it->is_regular_file())
                    continue;
                if (!exts.count(it->path().extension().string()))
                    continue;
                rel.push_back(
                    fs::relative(it->path(), root).generic_string());
            }
        } else if (error) {
            *error = "no such file or directory: " + abs.string();
            return {};
        }
    }
    std::sort(rel.begin(), rel.end());
    rel.erase(std::unique(rel.begin(), rel.end()), rel.end());

    std::vector<FileInput> out;
    out.reserve(rel.size());
    for (const std::string &r : rel) {
        std::ifstream in(root / r, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        out.push_back({r, ss.str()});
    }
    return out;
}

void
writeText(std::ostream &os, const std::vector<Finding> &findings,
          bool hints)
{
    std::map<std::string, const RuleInfo *> byId;
    for (const RuleInfo &r : kRules)
        byId[r.id] = &r;
    for (const Finding &f : findings) {
        os << f.file << ":" << f.line << ": " << f.rule << ": "
           << f.message;
        if (f.suppressed)
            os << " [suppressed]";
        os << "\n";
        if (hints && byId.count(f.rule))
            os << "    hint: " << byId[f.rule]->hint << "\n";
    }
}

void
writeJson(std::ostream &os, const std::vector<Finding> &findings)
{
    std::map<std::string, int> counts;
    int unsuppressed = 0;
    for (const Finding &f : findings) {
        ++counts[f.rule];
        if (!f.suppressed)
            ++unsuppressed;
    }
    os << "{\n  \"version\": 1,\n  \"tool\": \"bgnlint\",\n"
       << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << f.rule << "\", \"message\": \""
           << jsonEscape(f.message) << "\", \"suppressed\": "
           << (f.suppressed ? "true" : "false") << "}";
    }
    os << (findings.empty() ? "" : "\n  ") << "],\n  \"counts\": {";
    bool first = true;
    for (const auto &[rule, count] : counts) {
        os << (first ? "" : ", ") << "\"" << rule << "\": " << count;
        first = false;
    }
    os << "},\n  \"total\": " << findings.size()
       << ",\n  \"unsuppressed\": " << unsuppressed << "\n}\n";
}

} // namespace bgnlint
