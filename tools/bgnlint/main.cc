/**
 * @file
 * bgnlint CLI. Exit codes: 0 clean, 1 unsuppressed findings,
 * 2 usage/IO error — CI gates on the exit code and parses --json.
 */

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void
usage(std::ostream &os)
{
    os << "usage: bgnlint [options] [path...]\n"
          "\n"
          "BeaconGNN determinism/invariant linter (DESIGN.md §11).\n"
          "Paths are files or directories relative to --root;\n"
          "default: src tools bench.\n"
          "\n"
          "  --root DIR         repo root paths are resolved against "
          "(default: .)\n"
          "  --json             machine-readable report on stdout\n"
          "  --rule ID[,ID...]  only run the given rules\n"
          "  --show-suppressed  include bgnlint:allow'd findings\n"
          "  --hints            print a fix hint under each finding\n"
          "  --list-rules       print the rule catalog and exit\n"
          "  -h, --help         this text\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::filesystem::path root = ".";
    std::vector<std::string> paths;
    bgnlint::LintOptions opt;
    bool json = false, hints = false, listRules = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "bgnlint: " << a << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--root") {
            root = next();
        } else if (a == "--json") {
            json = true;
        } else if (a == "--show-suppressed") {
            opt.showSuppressed = true;
        } else if (a == "--hints") {
            hints = true;
        } else if (a == "--rule") {
            std::string ids = next();
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                std::size_t comma = ids.find(',', pos);
                std::string id =
                    ids.substr(pos, comma == std::string::npos
                                        ? comma
                                        : comma - pos);
                if (!id.empty())
                    opt.onlyRules.push_back(id);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (a == "--list-rules") {
            // Handled after the full parse so a --rule filter given
            // in either order narrows the listing too.
            listRules = true;
        } else if (a == "-h" || a == "--help") {
            usage(std::cout);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "bgnlint: unknown option " << a << "\n";
            usage(std::cerr);
            return 2;
        } else {
            paths.push_back(a);
        }
    }
    if (paths.empty())
        paths = {"src", "tools", "bench"};

    for (const std::string &id : opt.onlyRules) {
        bool known = false;
        for (const auto &r : bgnlint::ruleCatalog())
            known = known || r.id == id;
        if (!known) {
            std::cerr << "bgnlint: unknown rule '" << id
                      << "'; valid rules:";
            for (const auto &r : bgnlint::ruleCatalog())
                std::cerr << " " << r.id;
            std::cerr << "\n";
            return 2;
        }
    }

    if (listRules) {
        for (const auto &r : bgnlint::ruleCatalog()) {
            if (!opt.onlyRules.empty() &&
                std::find(opt.onlyRules.begin(), opt.onlyRules.end(),
                          r.id) == opt.onlyRules.end())
                continue;
            std::cout << r.id << "  " << r.title << "\n"
                      << "        " << r.hint << "\n";
        }
        return 0;
    }

    std::string error;
    std::vector<bgnlint::FileInput> files =
        bgnlint::loadTree(root, paths, &error);
    if (!error.empty()) {
        std::cerr << "bgnlint: " << error << "\n";
        return 2;
    }

    std::vector<bgnlint::Finding> findings =
        bgnlint::lintFiles(files, opt);
    if (json)
        bgnlint::writeJson(std::cout, findings);
    else
        bgnlint::writeText(std::cout, findings, hints);

    for (const auto &f : findings)
        if (!f.suppressed)
            return 1;
    if (!json)
        std::cout << "bgnlint: " << files.size()
                  << " files clean\n";
    return 0;
}
