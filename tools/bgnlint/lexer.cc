#include "lexer.h"

#include <cctype>

namespace bgnlint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Two-character operators the rules care about (one token each). */
bool
isTwoCharOp(char a, char b)
{
    switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '=' || b == '-';
    case '+': return b == '=' || b == '+';
    case '*': return b == '=';
    case '/': return b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=' || b == '<';
    case '>': return b == '=' || b == '>';
    case '&': return b == '&';
    case '|': return b == '|';
    default: return false;
    }
}

} // namespace

std::vector<Token>
tokenize(std::string_view src)
{
    std::vector<Token> out;
    std::size_t i = 0;
    const std::size_t n = src.size();
    int line = 1;

    auto advanceLines = [&](std::string_view s) {
        for (char c : s)
            if (c == '\n')
                ++line;
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t end = src.find('\n', i);
            if (end == std::string_view::npos)
                end = n;
            out.push_back({TokKind::Comment,
                           std::string(src.substr(i + 2, end - i - 2)),
                           line});
            i = end;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t end = src.find("*/", i + 2);
            std::size_t stop = end == std::string_view::npos ? n : end;
            std::string_view body = src.substr(i + 2, stop - i - 2);
            out.push_back({TokKind::Comment, std::string(body), line});
            advanceLines(body);
            i = end == std::string_view::npos ? n : end + 2;
            continue;
        }

        // Raw string literal  R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            std::size_t open = src.find('(', i + 2);
            if (open != std::string_view::npos) {
                std::string delim(src.substr(i + 2, open - i - 2));
                std::string close = ")" + delim + "\"";
                std::size_t end = src.find(close, open + 1);
                std::size_t stop =
                    end == std::string_view::npos ? n : end;
                std::string_view body =
                    src.substr(open + 1, stop - open - 1);
                out.push_back(
                    {TokKind::String, std::string(body), line});
                advanceLines(src.substr(i, (end == std::string_view::npos
                                                ? n
                                                : end + close.size()) -
                                               i));
                i = end == std::string_view::npos ? n
                                                  : end + close.size();
                continue;
            }
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t j = i + 1;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                if (src[j] == '\n')
                    break; // Unterminated on this line: stop.
                ++j;
            }
            out.push_back({quote == '"' ? TokKind::String
                                        : TokKind::CharLit,
                           std::string(src.substr(i + 1, j - i - 1)),
                           line});
            i = j < n ? j + 1 : n;
            continue;
        }

        // Identifier / keyword.
        if (identStart(c)) {
            std::size_t j = i + 1;
            while (j < n && identCont(src[j]))
                ++j;
            out.push_back({TokKind::Identifier,
                           std::string(src.substr(i, j - i)), line});
            i = j;
            continue;
        }

        // Number (digits, hex, separators, float suffixes — coarse).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t j = i + 1;
            while (j < n &&
                   (identCont(src[j]) || src[j] == '.' ||
                    src[j] == '\'' ||
                    ((src[j] == '+' || src[j] == '-') &&
                     (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                      src[j - 1] == 'p' || src[j - 1] == 'P'))))
                ++j;
            out.push_back({TokKind::Number,
                           std::string(src.substr(i, j - i)), line});
            i = j;
            continue;
        }

        // Punctuation.
        if (i + 1 < n && isTwoCharOp(c, src[i + 1])) {
            out.push_back(
                {TokKind::Punct, std::string(src.substr(i, 2)), line});
            i += 2;
            continue;
        }
        out.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

} // namespace bgnlint
