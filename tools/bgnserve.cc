/**
 * @file
 * bgnserve — online serving driver for the BeaconGNN simulator.
 *
 * Sweeps platform x workload x arrival-rate points of an open-loop
 * serving experiment and prints, per (platform, workload), a
 * latency-vs-load table with throughput, mean/p50/p95/p99 latency
 * and SLO-violation rates, plus the saturation rate each platform
 * sustains:
 *
 *   bgnserve --platform CC,BG2 --workload amazon \
 *            --rates 500,1000,2000,4000 --requests 512 --seed 7 \
 *            --max-batch 32 --timeout-us 200 --jobs 8
 *
 * Sweep points run in parallel on --jobs workers (BGN_JOBS env var /
 * hardware cores by default); output is in deterministic sweep order
 * and byte-identical across worker counts and repeated runs with the
 * same seed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/report.h"
#include "serve/serve.h"
#include "sim/executor.h"
#include "sim/metrics.h"
#include "sim/trace_events.h"

using namespace beacongnn;
using namespace beacongnn::serve;

namespace {

[[noreturn]] void
usage(const char *argv0, int status = 2)
{
    std::printf(
        "usage: %s [options]\n"
        "  --platform NAME[,NAME...]  platform list (default CC,BG-2)\n"
        "  --workload NAME[,NAME...]  workload list (default amazon)\n"
        "  --rates R[,R...]    offered arrival rates, req/s "
        "(default 500,1000,2000,4000)\n"
        "  --requests N        requests per stream (default 512)\n"
        "  --seed N            arrival-stream seed (default 0x5EED)\n"
        "  --arrival P         poisson|bursty (default poisson)\n"
        "  --burst-factor X    bursty: rate multiplier in bursts\n"
        "  --max-batch N       micro-batch dispatch threshold "
        "(default 32)\n"
        "  --timeout-us N      micro-batch timeout (default 200)\n"
        "  --tenants N         tenant count; QoS class = tenant %% 3\n"
        "  --model NAME[,NAME...]  serve this model mix: each request "
        "runs the\n"
        "                      model of its tenant (tenant %% count); "
        "gcn|gin|gat\n"
        "  --slo-ms A,B,C      per-class SLO targets, ms "
        "(default 5,20,100)\n"
        "  --nodes N           override the workload's node count\n"
        "  --devices N         SSDs in a scale-out array (default 1; "
        ">1 needs a streaming platform)\n"
        "  --p2p-mbps X        per-device P2P link bandwidth "
        "(default 4000)\n"
        "  --p2p-latency-us X  P2P hop latency in us (default 1; the "
        "parallel simulator's lookahead)\n"
        "  --partition NAME    hash|range|balanced graph partition "
        "(default hash)\n"
        "  --replication N     replicas per node (chained "
        "declustering, clamped to --devices; default 1)\n"
        "  --retry-prob X      per-die flash read-retry probability "
        "scale (default 0 = off)\n"
        "  --die-kill SPEC[,SPEC...]  kill schedule: DEV@US kills a "
        "whole device,\n"
        "                      DEV.DIE@US one die, at US "
        "microseconds\n"
        "  --cache-mb X        per-device DRAM vertex cache capacity "
        "in MiB (default 0 = off)\n"
        "  --cache-policy NAME lru|mslru|fifo eviction policy "
        "(default lru)\n"
        "  --zipf-theta X      Zipf(theta) skew of request targets "
        "(default 0 = uniform)\n"
        "  --channels N / --dies N   SSD geometry\n"
        "  --jobs N            parallel workers: sweep points, and the "
        "device queues within one multi-device run\n"
        "  --csv FILE          append CSV rows to FILE\n"
        "  --breakdown         print per-QoS-class breakdown per rate\n"
        "  --metrics FILE      dump every instrument as JSON\n"
        "  --metrics-csv FILE  dump every instrument as CSV\n"
        "  --trace FILE        Chrome-trace event file (single sweep "
        "point only)\n",
        argv0);
    std::exit(status);
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > pos)
            out.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** Parse one --die-kill spec: "DEV@US" (whole device) or
 *  "DEV.DIE@US" (one die), US in microseconds. */
std::optional<platforms::KillEvent>
parseKillEvent(const std::string &spec)
{
    const std::size_t at = spec.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= spec.size())
        return std::nullopt;
    const std::string target = spec.substr(0, at);
    const std::string when = spec.substr(at + 1);
    platforms::KillEvent k;
    char *end = nullptr;
    k.device = static_cast<unsigned>(
        std::strtoul(target.c_str(), &end, 10));
    if (end == target.c_str())
        return std::nullopt;
    if (*end == '.') {
        const char *die_s = end + 1;
        long die = std::strtol(die_s, &end, 10);
        if (end == die_s || *end != '\0' || die < 0)
            return std::nullopt;
        k.die = static_cast<int>(die);
    } else if (*end != '\0') {
        return std::nullopt;
    }
    const unsigned long long us =
        std::strtoull(when.c_str(), &end, 10);
    if (end == when.c_str() || *end != '\0')
        return std::nullopt;
    k.at = sim::microseconds(static_cast<sim::Tick>(us));
    return k;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string platform_list = "CC,BG-2";
    std::string workload_list = "amazon";
    std::string rate_list = "500,1000,2000,4000";
    std::string slo_list;
    std::string csv_path, metrics_path, metrics_csv_path, trace_path;
    graph::NodeId nodes = 0;
    bool breakdown = false;

    platforms::RunConfig rc;
    ServeConfig sc;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--platform") platform_list = next();
        else if (a == "--workload") workload_list = next();
        else if (a == "--rates") rate_list = next();
        else if (a == "--requests") sc.arrivals.requests =
            std::strtoull(next(), nullptr, 10);
        else if (a == "--seed") sc.arrivals.seed =
            std::strtoull(next(), nullptr, 10);
        else if (a == "--arrival") {
            std::string p = next();
            if (p == "poisson")
                sc.arrivals.process = ArrivalProcess::Poisson;
            else if (p == "bursty")
                sc.arrivals.process = ArrivalProcess::Bursty;
            else {
                std::fprintf(stderr,
                             "bgnserve: unknown arrival process '%s' "
                             "(valid: poisson, bursty)\n",
                             p.c_str());
                return 2;
            }
        }
        else if (a == "--burst-factor") sc.arrivals.burstFactor =
            std::strtod(next(), nullptr);
        else if (a == "--max-batch") sc.policy.maxBatch =
            static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
        else if (a == "--timeout-us") sc.policy.timeout =
            sim::microseconds(std::strtoull(next(), nullptr, 10));
        else if (a == "--tenants") sc.arrivals.tenants =
            static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
        else if (a == "--model") {
            sc.models.clear();
            for (const auto &n : splitList(next())) {
                auto k = gnn::findModelKind(n);
                if (!k) {
                    std::fprintf(stderr,
                                 "bgnserve: unknown model '%s' "
                                 "(valid: %s)\n",
                                 n.c_str(),
                                 gnn::modelKindList().c_str());
                    return 2;
                }
                sc.models.push_back(*k);
            }
            if (sc.models.empty()) {
                std::fprintf(stderr,
                             "bgnserve: --model needs at least one "
                             "name (valid: %s)\n",
                             gnn::modelKindList().c_str());
                return 2;
            }
        }
        else if (a == "--slo-ms") slo_list = next();
        else if (a == "--nodes") nodes = static_cast<graph::NodeId>(
            std::strtoul(next(), nullptr, 10));
        else if (a == "--devices") rc.topology.devices =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--p2p-mbps") rc.topology.p2pMBps =
            std::strtod(next(), nullptr);
        else if (a == "--p2p-latency-us") rc.topology.p2pLatency =
            sim::microseconds(static_cast<sim::Tick>(
                std::strtoul(next(), nullptr, 10)));
        else if (a == "--partition") {
            std::string n = next();
            auto p = platforms::findPartitionPolicy(n);
            if (!p) {
                std::fprintf(stderr,
                             "bgnserve: unknown partition '%s' "
                             "(valid: %s)\n",
                             n.c_str(),
                             platforms::partitionPolicyList().c_str());
                return 2;
            }
            rc.topology.partition = *p;
        }
        else if (a == "--replication") rc.topology.replication =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--retry-prob") {
            rc.system.disturb.retryProb = std::strtod(next(), nullptr);
            if (rc.system.disturb.retryProb < 0.0 ||
                rc.system.disturb.retryProb > 1.0) {
                std::fprintf(stderr, "bgnserve: --retry-prob must be "
                                     "in [0, 1]\n");
                return 2;
            }
        }
        else if (a == "--die-kill") {
            for (const std::string &spec : splitList(next())) {
                auto k = parseKillEvent(spec);
                if (!k) {
                    std::fprintf(stderr,
                                 "bgnserve: bad --die-kill '%s' (want "
                                 "DEV@US or DEV.DIE@US)\n",
                                 spec.c_str());
                    return 2;
                }
                rc.kills.push_back(*k);
            }
        }
        else if (a == "--cache-mb") {
            rc.cache.capacityMB = std::strtod(next(), nullptr);
            if (rc.cache.capacityMB <= 0.0) {
                std::fprintf(stderr,
                             "bgnserve: --cache-mb must be positive "
                             "(omit the flag to disable the cache)\n");
                return 2;
            }
        }
        else if (a == "--cache-policy") {
            std::string n = next();
            auto p = cache::findCachePolicy(n);
            if (!p) {
                std::fprintf(stderr,
                             "bgnserve: unknown cache policy '%s' "
                             "(valid: %s)\n",
                             n.c_str(),
                             cache::cachePolicyList().c_str());
                return 2;
            }
            rc.cache.policy = *p;
        }
        else if (a == "--zipf-theta") {
            sc.arrivals.zipfTheta = std::strtod(next(), nullptr);
            if (sc.arrivals.zipfTheta <= 0.0) {
                std::fprintf(stderr,
                             "bgnserve: --zipf-theta must be positive "
                             "(omit the flag for uniform targets)\n");
                return 2;
            }
        }
        else if (a == "--channels") rc.system.flash.channels =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--dies") rc.system.flash.diesPerChannel =
            static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        else if (a == "--jobs") {
            long v = std::strtol(next(), nullptr, 10);
            if (v >= 1)
                sim::SimExecutor::setDefaultJobs(
                    static_cast<unsigned>(v));
        }
        else if (a == "--csv") csv_path = next();
        else if (a == "--metrics") metrics_path = next();
        else if (a == "--metrics-csv") metrics_csv_path = next();
        else if (a == "--trace") trace_path = next();
        else if (a == "--breakdown") breakdown = true;
        else if (a == "--help" || a == "-h") usage(argv[0], 0);
        else {
            std::fprintf(stderr, "bgnserve: unknown option '%s'\n",
                         a.c_str());
            usage(argv[0]);
        }
    }

    // Resolve the sweep axes up front so bad names fail fast with the
    // valid choices, before any expensive layout build.
    std::vector<platforms::PlatformKind> kinds;
    for (const auto &n : splitList(platform_list)) {
        auto k = platforms::findPlatform(n);
        if (!k) {
            std::fprintf(stderr,
                         "bgnserve: unknown platform '%s' (valid: %s)\n",
                         n.c_str(),
                         platforms::platformNameList().c_str());
            return 2;
        }
        kinds.push_back(*k);
    }
    std::vector<const graph::WorkloadSpec *> specs;
    for (const auto &n : splitList(workload_list)) {
        const graph::WorkloadSpec *w = graph::findWorkload(n);
        if (!w) {
            std::fprintf(stderr,
                         "bgnserve: unknown workload '%s' (valid: %s)\n",
                         n.c_str(), graph::workloadNameList().c_str());
            return 2;
        }
        specs.push_back(w);
    }
    std::vector<double> rates;
    for (const auto &r : splitList(rate_list)) {
        double v = std::strtod(r.c_str(), nullptr);
        if (v <= 0) {
            std::fprintf(stderr, "bgnserve: bad rate '%s'\n", r.c_str());
            return 2;
        }
        rates.push_back(v);
    }
    if (kinds.empty() || specs.empty() || rates.empty())
        usage(argv[0]);
    if (rc.topology.devices == 0) {
        std::fprintf(stderr, "bgnserve: --devices must be >= 1\n");
        return 2;
    }
    if (rc.topology.replication == 0) {
        std::fprintf(stderr, "bgnserve: --replication must be >= 1\n");
        return 2;
    }
    for (const platforms::KillEvent &k : rc.kills) {
        if (k.device >= rc.topology.devices) {
            std::fprintf(stderr,
                         "bgnserve: --die-kill names device %u of a "
                         "%u-device topology\n",
                         k.device, rc.topology.devices);
            return 2;
        }
    }
    if (rc.topology.multi()) {
        for (platforms::PlatformKind k : kinds) {
            auto p = platforms::makePlatform(k);
            if (!p.flags.directGraph) {
                std::fprintf(stderr,
                             "bgnserve: --devices %u needs a streaming "
                             "(DirectGraph) platform; '%s' is not\n",
                             rc.topology.devices, p.name.c_str());
                return 2;
            }
        }
    }
    if (!slo_list.empty()) {
        auto parts = splitList(slo_list);
        if (parts.size() != kQosClasses) {
            std::fprintf(stderr,
                         "bgnserve: --slo-ms needs %zu values\n",
                         kQosClasses);
            return 2;
        }
        for (std::size_t q = 0; q < kQosClasses; ++q)
            sc.slo.target[q] = sim::milliseconds(
                std::strtoull(parts[q].c_str(), nullptr, 10));
    }

    if (!sc.models.empty())
        sc.arrivals.modelCount =
            static_cast<std::uint32_t>(sc.models.size());

    // One bundle per workload, shared read-only across the sweep.
    gnn::ModelConfig model;
    std::vector<std::unique_ptr<platforms::WorkloadBundle>> bundles;
    for (const auto *w : specs)
        bundles.push_back(
            platforms::makeBundle(*w, rc.system.flash, model, nodes));

    const std::size_t nr = rates.size();
    const std::size_t nw = specs.size();
    const std::size_t total = kinds.size() * nw * nr;

    if (!trace_path.empty() && total != 1) {
        std::fprintf(stderr, "bgnserve: --trace requires a single "
                             "sweep point\n");
        return 2;
    }
    const bool want_metrics =
        !metrics_path.empty() || !metrics_csv_path.empty();
    std::vector<sim::MetricRegistry> regs(want_metrics ? total : 0);
    sim::TraceSink sink;
    if (!trace_path.empty())
        rc.traceSink = &sink;

    sim::SimExecutor ex;
    if (total > 1)
        // stderr: stdout stays byte-identical across worker counts.
        std::fprintf(stderr, "bgnserve: %zu-point sweep on %u worker(s)\n",
                     total, ex.jobs());
    auto results = ex.map<ServeResult>(total, [&](std::size_t i) {
        std::size_t k = i / (nw * nr);
        std::size_t w = (i / nr) % nw;
        std::size_t r = i % nr;
        ServeConfig point = sc;
        point.arrivals.ratePerSec = rates[r];
        return serveWorkload(platforms::makePlatform(kinds[k]), rc,
                             *bundles[w], point, nullptr,
                             want_metrics ? &regs[i] : nullptr);
    });

    std::ofstream csv;
    if (!csv_path.empty()) {
        bool fresh = !std::ifstream(csv_path).good();
        csv.open(csv_path, std::ios::app);
        if (fresh)
            writeServeCsvHeader(csv);
    }

    bool ok = true;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        for (std::size_t w = 0; w < nw; ++w) {
            const auto *first = &results[(k * nw + w) * nr];
            std::printf("\n%s on %s (%s arrivals, %llu requests, "
                        "max batch %u, timeout %llu us, seed %llu)\n",
                        first->platform.c_str(), first->workload.c_str(),
                        arrivalName(sc.arrivals.process),
                        static_cast<unsigned long long>(
                            sc.arrivals.requests),
                        sc.policy.maxBatch,
                        static_cast<unsigned long long>(
                            sc.policy.timeout / 1000),
                        static_cast<unsigned long long>(
                            sc.arrivals.seed));
            printRateHeader();
            std::vector<ServeResult> curve;
            for (std::size_t r = 0; r < nr; ++r) {
                const ServeResult &res = results[(k * nw + w) * nr + r];
                ok = ok && res.ok;
                printRateRow(res);
                printDegraded(res);
                if (breakdown)
                    printClassBreakdown(res);
                if (csv.is_open())
                    writeServeCsvRow(csv, res);
                curve.push_back(res);
            }
            printSaturation(curve);
            if (!sc.models.empty()) {
                const ServeResult &last = curve.back();
                std::printf("  model mix (last rate):");
                for (std::size_t m = 0;
                     m < last.perModelRequests.size(); ++m)
                    std::printf(" %s %llu",
                                gnn::modelKindName(sc.models[m]),
                                static_cast<unsigned long long>(
                                    last.perModelRequests[m]));
                std::printf(" request(s)\n");
            }
            if (first->devices > 1) {
                const ServeResult &last = curve.back();
                std::printf("  array: %u devices, command share",
                            last.devices);
                for (std::size_t d = 0; d < last.perDevice.size(); ++d)
                    std::printf(" dev%zu %.2f", d, last.deviceShare(d));
                std::printf(", cross-device %.1f%%\n",
                            100.0 * last.crossFraction);
            }
        }
    }
    if (csv.is_open())
        std::printf("\nappended %zu CSV row(s) to %s\n", total,
                    csv_path.c_str());

    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        out << "{\"runs\": [";
        for (std::size_t i = 0; i < total; ++i) {
            out << (i == 0 ? "\n" : ",\n");
            out << "{\"platform\": \"" << results[i].platform
                << "\", \"workload\": \"" << results[i].workload
                << "\", \"offered_rate\": " << results[i].offeredRate
                << ", \"metrics\": ";
            regs[i].writeJson(out);
            out << "}";
        }
        out << "\n]}\n";
        std::printf("wrote metrics snapshot to %s\n",
                    metrics_path.c_str());
    }
    if (!metrics_csv_path.empty()) {
        std::ofstream out(metrics_csv_path);
        sim::MetricRegistry::writeCsvHeader(out, "platform,workload,");
        for (std::size_t i = 0; i < total; ++i)
            regs[i].writeCsv(out, results[i].platform + "," +
                                      results[i].workload + ",");
        std::printf("wrote metrics CSV to %s\n",
                    metrics_csv_path.c_str());
    }
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        sink.write(out);
        std::printf("wrote %zu trace event(s) to %s%s\n",
                    sink.events(), trace_path.c_str(),
                    sink.dropped() ? " (truncated)" : "");
    }
    return ok ? 0 : 1;
}
