# Empty dependencies file for test_platforms.
# This may be replaced when dependencies are built.
