file(REMOVE_RECURSE
  "CMakeFiles/test_platforms.dir/test_platforms.cc.o"
  "CMakeFiles/test_platforms.dir/test_platforms.cc.o.d"
  "test_platforms"
  "test_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
