file(REMOVE_RECURSE
  "CMakeFiles/test_ssd.dir/test_ssd.cc.o"
  "CMakeFiles/test_ssd.dir/test_ssd.cc.o.d"
  "test_ssd"
  "test_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
