# Empty dependencies file for test_ssd.
# This may be replaced when dependencies are built.
