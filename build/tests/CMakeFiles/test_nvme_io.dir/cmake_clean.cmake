file(REMOVE_RECURSE
  "CMakeFiles/test_nvme_io.dir/test_nvme_io.cc.o"
  "CMakeFiles/test_nvme_io.dir/test_nvme_io.cc.o.d"
  "test_nvme_io"
  "test_nvme_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvme_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
