file(REMOVE_RECURSE
  "CMakeFiles/test_training.dir/test_training.cc.o"
  "CMakeFiles/test_training.dir/test_training.cc.o.d"
  "test_training"
  "test_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
