# Empty compiler generated dependencies file for test_training.
# This may be replaced when dependencies are built.
