
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/test_sim.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bgn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/CMakeFiles/bgn_platforms.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bgn_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/bgn_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/bgn_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/bgn_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/bgn_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/directgraph/CMakeFiles/bgn_directgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bgn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/bgn_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
