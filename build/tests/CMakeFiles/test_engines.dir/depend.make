# Empty dependencies file for test_engines.
# This may be replaced when dependencies are built.
