file(REMOVE_RECURSE
  "CMakeFiles/test_engines.dir/test_engines.cc.o"
  "CMakeFiles/test_engines.dir/test_engines.cc.o.d"
  "test_engines"
  "test_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
