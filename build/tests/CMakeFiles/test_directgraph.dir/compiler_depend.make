# Empty compiler generated dependencies file for test_directgraph.
# This may be replaced when dependencies are built.
