file(REMOVE_RECURSE
  "CMakeFiles/test_directgraph.dir/test_directgraph.cc.o"
  "CMakeFiles/test_directgraph.dir/test_directgraph.cc.o.d"
  "test_directgraph"
  "test_directgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
