file(REMOVE_RECURSE
  "CMakeFiles/test_flash.dir/test_flash.cc.o"
  "CMakeFiles/test_flash.dir/test_flash.cc.o.d"
  "test_flash"
  "test_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
