# Empty dependencies file for test_flash.
# This may be replaced when dependencies are built.
