file(REMOVE_RECURSE
  "CMakeFiles/test_router_array.dir/test_router_array.cc.o"
  "CMakeFiles/test_router_array.dir/test_router_array.cc.o.d"
  "test_router_array"
  "test_router_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
