# Empty compiler generated dependencies file for test_router_array.
# This may be replaced when dependencies are built.
