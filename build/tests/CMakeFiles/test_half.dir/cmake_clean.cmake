file(REMOVE_RECURSE
  "CMakeFiles/test_half.dir/test_half.cc.o"
  "CMakeFiles/test_half.dir/test_half.cc.o.d"
  "test_half"
  "test_half.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_half.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
