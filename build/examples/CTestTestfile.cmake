# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_recommendation "/root/repo/build/examples/recommendation")
set_tests_properties(example_recommendation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gnn_query "/root/repo/build/examples/gnn_query")
set_tests_properties(example_gnn_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reliability_ops "/root/repo/build/examples/reliability_ops")
set_tests_properties(example_reliability_ops PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_train_epochs "/root/repo/build/examples/train_epochs")
set_tests_properties(example_train_epochs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
