# Empty dependencies file for train_epochs.
# This may be replaced when dependencies are built.
