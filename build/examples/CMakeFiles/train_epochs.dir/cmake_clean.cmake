file(REMOVE_RECURSE
  "CMakeFiles/train_epochs.dir/train_epochs.cpp.o"
  "CMakeFiles/train_epochs.dir/train_epochs.cpp.o.d"
  "train_epochs"
  "train_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
