# Empty compiler generated dependencies file for reliability_ops.
# This may be replaced when dependencies are built.
