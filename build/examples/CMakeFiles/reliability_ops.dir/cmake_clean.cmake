file(REMOVE_RECURSE
  "CMakeFiles/reliability_ops.dir/reliability_ops.cpp.o"
  "CMakeFiles/reliability_ops.dir/reliability_ops.cpp.o.d"
  "reliability_ops"
  "reliability_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
