# Empty compiler generated dependencies file for recommendation.
# This may be replaced when dependencies are built.
