file(REMOVE_RECURSE
  "CMakeFiles/recommendation.dir/recommendation.cpp.o"
  "CMakeFiles/recommendation.dir/recommendation.cpp.o.d"
  "recommendation"
  "recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
