file(REMOVE_RECURSE
  "CMakeFiles/gnn_query.dir/gnn_query.cpp.o"
  "CMakeFiles/gnn_query.dir/gnn_query.cpp.o.d"
  "gnn_query"
  "gnn_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
