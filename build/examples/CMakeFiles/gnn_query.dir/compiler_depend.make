# Empty compiler generated dependencies file for gnn_query.
# This may be replaced when dependencies are built.
