file(REMOVE_RECURSE
  "CMakeFiles/bgnsim.dir/bgnsim.cc.o"
  "CMakeFiles/bgnsim.dir/bgnsim.cc.o.d"
  "bgnsim"
  "bgnsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgnsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
