# Empty compiler generated dependencies file for bgnsim.
# This may be replaced when dependencies are built.
