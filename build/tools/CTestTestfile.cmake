# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bgnsim_bg2 "/root/repo/build/tools/bgnsim" "--workload" "OGBN" "--nodes" "2000" "--batches" "1" "--batch-size" "16")
set_tests_properties(bgnsim_bg2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bgnsim_cc_traditional "/root/repo/build/tools/bgnsim" "--platform" "CC" "--workload" "movielens" "--nodes" "2000" "--batches" "1" "--batch-size" "16" "--traditional")
set_tests_properties(bgnsim_cc_traditional PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
