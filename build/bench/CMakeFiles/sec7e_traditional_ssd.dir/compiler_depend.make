# Empty compiler generated dependencies file for sec7e_traditional_ssd.
# This may be replaced when dependencies are built.
