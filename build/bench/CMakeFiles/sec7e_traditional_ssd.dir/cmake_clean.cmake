file(REMOVE_RECURSE
  "CMakeFiles/sec7e_traditional_ssd.dir/sec7e_traditional_ssd.cc.o"
  "CMakeFiles/sec7e_traditional_ssd.dir/sec7e_traditional_ssd.cc.o.d"
  "sec7e_traditional_ssd"
  "sec7e_traditional_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7e_traditional_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
