file(REMOVE_RECURSE
  "CMakeFiles/fig17_cmd_latency.dir/fig17_cmd_latency.cc.o"
  "CMakeFiles/fig17_cmd_latency.dir/fig17_cmd_latency.cc.o.d"
  "fig17_cmd_latency"
  "fig17_cmd_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cmd_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
