# Empty dependencies file for fig17_cmd_latency.
# This may be replaced when dependencies are built.
