file(REMOVE_RECURSE
  "CMakeFiles/fig07_motivation.dir/fig07_motivation.cc.o"
  "CMakeFiles/fig07_motivation.dir/fig07_motivation.cc.o.d"
  "fig07_motivation"
  "fig07_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
