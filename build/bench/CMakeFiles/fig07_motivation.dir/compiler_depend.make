# Empty compiler generated dependencies file for fig07_motivation.
# This may be replaced when dependencies are built.
