file(REMOVE_RECURSE
  "CMakeFiles/fig19_energy.dir/fig19_energy.cc.o"
  "CMakeFiles/fig19_energy.dir/fig19_energy.cc.o.d"
  "fig19_energy"
  "fig19_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
