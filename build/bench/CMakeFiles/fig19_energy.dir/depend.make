# Empty dependencies file for fig19_energy.
# This may be replaced when dependencies are built.
