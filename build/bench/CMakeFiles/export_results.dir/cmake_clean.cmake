file(REMOVE_RECURSE
  "CMakeFiles/export_results.dir/export_results.cc.o"
  "CMakeFiles/export_results.dir/export_results.cc.o.d"
  "export_results"
  "export_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
