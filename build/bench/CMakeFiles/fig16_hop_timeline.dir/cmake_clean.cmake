file(REMOVE_RECURSE
  "CMakeFiles/fig16_hop_timeline.dir/fig16_hop_timeline.cc.o"
  "CMakeFiles/fig16_hop_timeline.dir/fig16_hop_timeline.cc.o.d"
  "fig16_hop_timeline"
  "fig16_hop_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_hop_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
