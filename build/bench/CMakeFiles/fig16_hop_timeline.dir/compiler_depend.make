# Empty compiler generated dependencies file for fig16_hop_timeline.
# This may be replaced when dependencies are built.
