# Empty dependencies file for table4_inflation.
# This may be replaced when dependencies are built.
