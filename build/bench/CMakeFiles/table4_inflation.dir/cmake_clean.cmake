file(REMOVE_RECURSE
  "CMakeFiles/table4_inflation.dir/table4_inflation.cc.o"
  "CMakeFiles/table4_inflation.dir/table4_inflation.cc.o.d"
  "table4_inflation"
  "table4_inflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
