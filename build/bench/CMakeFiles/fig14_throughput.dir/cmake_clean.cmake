file(REMOVE_RECURSE
  "CMakeFiles/fig14_throughput.dir/fig14_throughput.cc.o"
  "CMakeFiles/fig14_throughput.dir/fig14_throughput.cc.o.d"
  "fig14_throughput"
  "fig14_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
