# Empty dependencies file for fig14_throughput.
# This may be replaced when dependencies are built.
