file(REMOVE_RECURSE
  "CMakeFiles/scaleout_array.dir/scaleout_array.cc.o"
  "CMakeFiles/scaleout_array.dir/scaleout_array.cc.o.d"
  "scaleout_array"
  "scaleout_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
