# Empty compiler generated dependencies file for scaleout_array.
# This may be replaced when dependencies are built.
