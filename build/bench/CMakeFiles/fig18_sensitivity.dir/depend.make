# Empty dependencies file for fig18_sensitivity.
# This may be replaced when dependencies are built.
