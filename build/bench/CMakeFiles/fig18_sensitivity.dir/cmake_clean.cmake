file(REMOVE_RECURSE
  "CMakeFiles/fig18_sensitivity.dir/fig18_sensitivity.cc.o"
  "CMakeFiles/fig18_sensitivity.dir/fig18_sensitivity.cc.o.d"
  "fig18_sensitivity"
  "fig18_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
