# Empty dependencies file for fig15_utilization.
# This may be replaced when dependencies are built.
