file(REMOVE_RECURSE
  "CMakeFiles/fig15_utilization.dir/fig15_utilization.cc.o"
  "CMakeFiles/fig15_utilization.dir/fig15_utilization.cc.o.d"
  "fig15_utilization"
  "fig15_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
