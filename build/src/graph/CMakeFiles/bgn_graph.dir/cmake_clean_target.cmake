file(REMOVE_RECURSE
  "libbgn_graph.a"
)
