# Empty dependencies file for bgn_graph.
# This may be replaced when dependencies are built.
