file(REMOVE_RECURSE
  "CMakeFiles/bgn_graph.dir/dataset.cc.o"
  "CMakeFiles/bgn_graph.dir/dataset.cc.o.d"
  "CMakeFiles/bgn_graph.dir/generator.cc.o"
  "CMakeFiles/bgn_graph.dir/generator.cc.o.d"
  "libbgn_graph.a"
  "libbgn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
