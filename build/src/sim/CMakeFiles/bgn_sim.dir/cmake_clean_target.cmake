file(REMOVE_RECURSE
  "libbgn_sim.a"
)
