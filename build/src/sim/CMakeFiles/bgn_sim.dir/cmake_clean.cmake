file(REMOVE_RECURSE
  "CMakeFiles/bgn_sim.dir/log.cc.o"
  "CMakeFiles/bgn_sim.dir/log.cc.o.d"
  "CMakeFiles/bgn_sim.dir/stats.cc.o"
  "CMakeFiles/bgn_sim.dir/stats.cc.o.d"
  "libbgn_sim.a"
  "libbgn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
