# Empty dependencies file for bgn_sim.
# This may be replaced when dependencies are built.
