# Empty dependencies file for bgn_platforms.
# This may be replaced when dependencies are built.
