file(REMOVE_RECURSE
  "libbgn_platforms.a"
)
