file(REMOVE_RECURSE
  "CMakeFiles/bgn_platforms.dir/array.cc.o"
  "CMakeFiles/bgn_platforms.dir/array.cc.o.d"
  "CMakeFiles/bgn_platforms.dir/platform.cc.o"
  "CMakeFiles/bgn_platforms.dir/platform.cc.o.d"
  "CMakeFiles/bgn_platforms.dir/report.cc.o"
  "CMakeFiles/bgn_platforms.dir/report.cc.o.d"
  "CMakeFiles/bgn_platforms.dir/runner.cc.o"
  "CMakeFiles/bgn_platforms.dir/runner.cc.o.d"
  "libbgn_platforms.a"
  "libbgn_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
