# Empty dependencies file for bgn_core.
# This may be replaced when dependencies are built.
