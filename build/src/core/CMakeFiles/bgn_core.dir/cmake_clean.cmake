file(REMOVE_RECURSE
  "CMakeFiles/bgn_core.dir/beacongnn.cc.o"
  "CMakeFiles/bgn_core.dir/beacongnn.cc.o.d"
  "libbgn_core.a"
  "libbgn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
