file(REMOVE_RECURSE
  "libbgn_core.a"
)
