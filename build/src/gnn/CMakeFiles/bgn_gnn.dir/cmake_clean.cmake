file(REMOVE_RECURSE
  "CMakeFiles/bgn_gnn.dir/compute.cc.o"
  "CMakeFiles/bgn_gnn.dir/compute.cc.o.d"
  "CMakeFiles/bgn_gnn.dir/sampler.cc.o"
  "CMakeFiles/bgn_gnn.dir/sampler.cc.o.d"
  "CMakeFiles/bgn_gnn.dir/training.cc.o"
  "CMakeFiles/bgn_gnn.dir/training.cc.o.d"
  "libbgn_gnn.a"
  "libbgn_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
