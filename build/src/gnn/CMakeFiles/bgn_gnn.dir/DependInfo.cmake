
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/compute.cc" "src/gnn/CMakeFiles/bgn_gnn.dir/compute.cc.o" "gcc" "src/gnn/CMakeFiles/bgn_gnn.dir/compute.cc.o.d"
  "/root/repo/src/gnn/sampler.cc" "src/gnn/CMakeFiles/bgn_gnn.dir/sampler.cc.o" "gcc" "src/gnn/CMakeFiles/bgn_gnn.dir/sampler.cc.o.d"
  "/root/repo/src/gnn/training.cc" "src/gnn/CMakeFiles/bgn_gnn.dir/training.cc.o" "gcc" "src/gnn/CMakeFiles/bgn_gnn.dir/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/directgraph/CMakeFiles/bgn_directgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bgn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/bgn_flash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
