# Empty compiler generated dependencies file for bgn_gnn.
# This may be replaced when dependencies are built.
