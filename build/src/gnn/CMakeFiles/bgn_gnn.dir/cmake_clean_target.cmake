file(REMOVE_RECURSE
  "libbgn_gnn.a"
)
