file(REMOVE_RECURSE
  "libbgn_directgraph.a"
)
