file(REMOVE_RECURSE
  "CMakeFiles/bgn_directgraph.dir/builder.cc.o"
  "CMakeFiles/bgn_directgraph.dir/builder.cc.o.d"
  "CMakeFiles/bgn_directgraph.dir/codec.cc.o"
  "CMakeFiles/bgn_directgraph.dir/codec.cc.o.d"
  "CMakeFiles/bgn_directgraph.dir/verify.cc.o"
  "CMakeFiles/bgn_directgraph.dir/verify.cc.o.d"
  "libbgn_directgraph.a"
  "libbgn_directgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_directgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
