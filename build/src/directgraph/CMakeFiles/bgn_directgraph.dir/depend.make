# Empty dependencies file for bgn_directgraph.
# This may be replaced when dependencies are built.
