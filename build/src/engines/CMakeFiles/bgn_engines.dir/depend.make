# Empty dependencies file for bgn_engines.
# This may be replaced when dependencies are built.
