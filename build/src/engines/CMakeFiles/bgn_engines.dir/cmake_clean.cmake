file(REMOVE_RECURSE
  "CMakeFiles/bgn_engines.dir/die_sampler.cc.o"
  "CMakeFiles/bgn_engines.dir/die_sampler.cc.o.d"
  "CMakeFiles/bgn_engines.dir/gnn_engine.cc.o"
  "CMakeFiles/bgn_engines.dir/gnn_engine.cc.o.d"
  "libbgn_engines.a"
  "libbgn_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
