file(REMOVE_RECURSE
  "libbgn_engines.a"
)
