file(REMOVE_RECURSE
  "CMakeFiles/bgn_flash.dir/backend.cc.o"
  "CMakeFiles/bgn_flash.dir/backend.cc.o.d"
  "libbgn_flash.a"
  "libbgn_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
