# Empty dependencies file for bgn_flash.
# This may be replaced when dependencies are built.
