file(REMOVE_RECURSE
  "libbgn_flash.a"
)
