file(REMOVE_RECURSE
  "CMakeFiles/bgn_accel.dir/accelerator.cc.o"
  "CMakeFiles/bgn_accel.dir/accelerator.cc.o.d"
  "CMakeFiles/bgn_accel.dir/systolic.cc.o"
  "CMakeFiles/bgn_accel.dir/systolic.cc.o.d"
  "CMakeFiles/bgn_accel.dir/systolic_functional.cc.o"
  "CMakeFiles/bgn_accel.dir/systolic_functional.cc.o.d"
  "libbgn_accel.a"
  "libbgn_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
