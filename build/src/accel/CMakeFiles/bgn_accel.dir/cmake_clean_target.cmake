file(REMOVE_RECURSE
  "libbgn_accel.a"
)
