# Empty dependencies file for bgn_accel.
# This may be replaced when dependencies are built.
