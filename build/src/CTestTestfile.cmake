# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("flash")
subdirs("graph")
subdirs("directgraph")
subdirs("gnn")
subdirs("accel")
subdirs("ssd")
subdirs("energy")
subdirs("engines")
subdirs("platforms")
subdirs("core")
