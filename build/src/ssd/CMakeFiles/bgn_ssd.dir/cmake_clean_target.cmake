file(REMOVE_RECURSE
  "libbgn_ssd.a"
)
