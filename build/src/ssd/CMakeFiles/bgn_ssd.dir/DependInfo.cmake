
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/ecc.cc" "src/ssd/CMakeFiles/bgn_ssd.dir/ecc.cc.o" "gcc" "src/ssd/CMakeFiles/bgn_ssd.dir/ecc.cc.o.d"
  "/root/repo/src/ssd/firmware.cc" "src/ssd/CMakeFiles/bgn_ssd.dir/firmware.cc.o" "gcc" "src/ssd/CMakeFiles/bgn_ssd.dir/firmware.cc.o.d"
  "/root/repo/src/ssd/ftl.cc" "src/ssd/CMakeFiles/bgn_ssd.dir/ftl.cc.o" "gcc" "src/ssd/CMakeFiles/bgn_ssd.dir/ftl.cc.o.d"
  "/root/repo/src/ssd/io_path.cc" "src/ssd/CMakeFiles/bgn_ssd.dir/io_path.cc.o" "gcc" "src/ssd/CMakeFiles/bgn_ssd.dir/io_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/directgraph/CMakeFiles/bgn_directgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/bgn_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bgn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
