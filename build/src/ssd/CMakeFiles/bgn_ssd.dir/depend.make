# Empty dependencies file for bgn_ssd.
# This may be replaced when dependencies are built.
