file(REMOVE_RECURSE
  "CMakeFiles/bgn_ssd.dir/ecc.cc.o"
  "CMakeFiles/bgn_ssd.dir/ecc.cc.o.d"
  "CMakeFiles/bgn_ssd.dir/firmware.cc.o"
  "CMakeFiles/bgn_ssd.dir/firmware.cc.o.d"
  "CMakeFiles/bgn_ssd.dir/ftl.cc.o"
  "CMakeFiles/bgn_ssd.dir/ftl.cc.o.d"
  "CMakeFiles/bgn_ssd.dir/io_path.cc.o"
  "CMakeFiles/bgn_ssd.dir/io_path.cc.o.d"
  "libbgn_ssd.a"
  "libbgn_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
