# Empty dependencies file for bgn_energy.
# This may be replaced when dependencies are built.
