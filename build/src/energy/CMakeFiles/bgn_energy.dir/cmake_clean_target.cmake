file(REMOVE_RECURSE
  "libbgn_energy.a"
)
