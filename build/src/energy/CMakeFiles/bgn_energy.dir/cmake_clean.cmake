file(REMOVE_RECURSE
  "CMakeFiles/bgn_energy.dir/energy.cc.o"
  "CMakeFiles/bgn_energy.dir/energy.cc.o.d"
  "libbgn_energy.a"
  "libbgn_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgn_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
