#include "serve/arrival.h"

#include <cmath>
#include <memory>

#include "sim/log.h"
#include "sim/rng.h"
#include "sim/zipf.h"

namespace beacongnn::serve {

const char *
qosName(QosClass q)
{
    switch (q) {
      case QosClass::Interactive: return "interactive";
      case QosClass::Standard: return "standard";
      case QosClass::Batch: return "batch";
    }
    return "?";
}

const char *
arrivalName(ArrivalProcess p)
{
    switch (p) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Bursty: return "bursty";
    }
    return "?";
}

namespace {

/** Exponential draw with mean @p mean_ticks (>= 0, finite). */
sim::Tick
expDraw(sim::Pcg32 &rng, double mean_ticks)
{
    // 1 - uniform() is in (0, 1], so the log argument never hits 0.
    double u = 1.0 - rng.uniform();
    double t = -std::log(u) * mean_ticks;
    return static_cast<sim::Tick>(t);
}

} // namespace

std::vector<Request>
generateArrivals(const ArrivalConfig &cfg, graph::NodeId numNodes)
{
    if (cfg.ratePerSec <= 0.0)
        sim::fatal("generateArrivals: rate must be positive");
    if (numNodes == 0)
        sim::fatal("generateArrivals: empty graph");

    sim::Pcg32 rng(cfg.seed, 0x0A51);
    std::vector<Request> out;
    out.reserve(cfg.requests);

    // Skewed target popularity (θ > 0): one uniform per draw, exactly
    // like the historical rng.below() path, so the rest of the stream
    // (gaps, tenants) is unchanged by the distribution choice.
    std::unique_ptr<sim::ZipfSampler> zipf;
    if (cfg.zipfTheta > 0.0)
        zipf = std::make_unique<sim::ZipfSampler>(cfg.zipfTheta,
                                                  numNodes);

    // Mean inter-arrival gap at the long-run rate, in ticks.
    const double mean_gap = 1e9 / cfg.ratePerSec;

    // Bursty: the burst state runs at burstFactor x the mean rate for
    // burstFraction of the time; the calm state's rate preserves the
    // long-run mean (clamped at a trickle when burstFactor is so high
    // that bursts alone exceed the mean).
    double burst_gap = mean_gap / cfg.burstFactor;
    double calm_rate_scale =
        (1.0 - cfg.burstFraction * cfg.burstFactor) /
        (1.0 - cfg.burstFraction);
    double calm_gap = calm_rate_scale > 1e-3 ? mean_gap / calm_rate_scale
                                             : mean_gap * 1e3;
    double burst_mean = static_cast<double>(cfg.burstMeanTicks);
    double calm_mean =
        burst_mean * (1.0 - cfg.burstFraction) / cfg.burstFraction;

    sim::Tick now = 0;
    bool in_burst = false;
    // End of the current modulation state (bursty only).
    sim::Tick state_end =
        cfg.process == ArrivalProcess::Bursty
            ? expDraw(rng, calm_mean)
            : sim::kTickMax;

    for (std::uint64_t i = 0; i < cfg.requests; ++i) {
        if (cfg.process == ArrivalProcess::Poisson) {
            now += expDraw(rng, mean_gap);
        } else {
            sim::Tick gap = expDraw(rng, in_burst ? burst_gap : calm_gap);
            // Cross however many state boundaries the gap spans. The
            // residual gap re-scales with the new state's rate so the
            // process stays Markov-modulated rather than carrying one
            // state's gap into the other.
            while (now + gap >= state_end) {
                double frac =
                    state_end > now
                        ? 1.0 - static_cast<double>(state_end - now) /
                                    static_cast<double>(gap == 0 ? 1 : gap)
                        : 0.0;
                now = state_end;
                in_burst = !in_burst;
                state_end =
                    now + expDraw(rng, in_burst ? burst_mean : calm_mean);
                double scale = in_burst ? burst_gap / calm_gap
                                        : calm_gap / burst_gap;
                gap = static_cast<sim::Tick>(
                    frac * static_cast<double>(gap) * scale);
            }
            now += gap;
        }

        Request r;
        r.id = i;
        r.arrival = now;
        r.tenant = cfg.tenants ? rng.below(cfg.tenants) : 0;
        r.qos = static_cast<QosClass>(r.tenant % kQosClasses);
        r.modelId = static_cast<std::uint8_t>(
            cfg.modelCount > 1 ? r.tenant % cfg.modelCount : 0);
        r.target = zipf ? static_cast<graph::NodeId>(zipf->draw(rng))
                        : rng.below(numNodes);
        out.push_back(r);
    }
    return out;
}

} // namespace beacongnn::serve
