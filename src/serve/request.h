/**
 * @file
 * Online inference requests and their measured outcomes.
 *
 * The serving model is open-loop: every request has an arrival time
 * drawn from a configured arrival process, independent of how fast
 * the platform drains the queue — exactly the regime where queueing
 * delay and tail latency appear (and the regime the offline bench
 * grid cannot express).
 */

#ifndef BEACONGNN_SERVE_REQUEST_H
#define BEACONGNN_SERVE_REQUEST_H

#include <cstdint>

#include "graph/graph.h"
#include "sim/types.h"

namespace beacongnn::serve {

/**
 * Tenant QoS classes, in strict priority order: the scheduler fills
 * micro-batches from Interactive first, and SLO targets tighten with
 * priority.
 */
enum class QosClass : std::uint8_t
{
    Interactive = 0, ///< User-facing recommendation / fraud lookup.
    Standard = 1,    ///< Default API traffic.
    Batch = 2,       ///< Background / analytics traffic.
};

inline constexpr std::size_t kQosClasses = 3;

/** Display name ("interactive"). */
const char *qosName(QosClass q);

/** One inference request: infer the embedding of one target node. */
struct Request
{
    std::uint64_t id = 0;      ///< Sequential in arrival order.
    std::uint32_t tenant = 0;  ///< Originating tenant.
    QosClass qos = QosClass::Standard;
    graph::NodeId target = 0;  ///< Node whose embedding is requested.
    sim::Tick arrival = 0;     ///< Open-loop arrival time.
    /** Model-zoo entry serving this request (index into the serve
     *  config's model list; 0 = the bundle's model). Tenants map to
     *  models statically, so the assignment is reproducible. */
    std::uint8_t modelId = 0;
};

/** Per-request latency breakdown recorded by the serve driver. */
struct RequestOutcome
{
    std::uint64_t id = 0;
    QosClass qos = QosClass::Standard;
    sim::Tick arrival = 0;   ///< Request entered the admission queue.
    sim::Tick dispatch = 0;  ///< Its micro-batch began data prep.
    sim::Tick prepDone = 0;  ///< Data preparation finished.
    sim::Tick done = 0;      ///< Compute drained; response ready.

    sim::Tick queueing() const { return dispatch - arrival; }
    sim::Tick prep() const { return prepDone - dispatch; }
    sim::Tick compute() const { return done - prepDone; }
    sim::Tick total() const { return done - arrival; }
};

} // namespace beacongnn::serve

#endif // BEACONGNN_SERVE_REQUEST_H
