#include "serve/serve.h"

#include <algorithm>

namespace beacongnn::serve {

ServeResult
serveWorkload(const platforms::PlatformConfig &platform,
              const platforms::RunConfig &run,
              const platforms::WorkloadBundle &bundle,
              const ServeConfig &cfg,
              std::vector<RequestOutcome> *outcomes,
              sim::MetricRegistry *metrics)
{
    ServeResult res;
    res.platform = platform.name;
    res.workload = bundle.name;
    res.offeredRate = cfg.arrivals.ratePerSec;
    res.requests = cfg.arrivals.requests;

    MicroBatcher batcher(
        cfg.policy,
        generateArrivals(cfg.arrivals, bundle.graph.numNodes()));
    platforms::PlatformSession session(platform, run, bundle);

    // Per-request model selection: each configured kind becomes a
    // spec over the bundle's sampling shape; requests pick a spec via
    // their modelId. Empty = single-model, the historical path.
    std::vector<gnn::ModelSpec> specs;
    specs.reserve(cfg.models.size());
    for (gnn::ModelKind k : cfg.models) {
        gnn::ModelSpec sp = bundle.model;
        sp.kind = k;
        specs.push_back(sp);
    }
    res.perModelRequests.assign(specs.size(), 0);

    auto record = [&](const Request &r,
                      const platforms::BatchService &svc) {
        RequestOutcome o;
        o.id = r.id;
        o.qos = r.qos;
        o.arrival = r.arrival;
        o.dispatch = svc.prepStart;
        o.prepDone = svc.prepFinish;
        o.done = svc.computeEnd;

        res.queueingUs.add(sim::toMicros(o.queueing()));
        res.prepUs.add(sim::toMicros(o.prep()));
        res.computeUs.add(sim::toMicros(o.compute()));
        double total_us = sim::toMicros(o.total());
        res.totalUs.add(total_us);
        res.latencyUs.add(total_us);

        ClassReport &c = res.perClass[static_cast<std::size_t>(r.qos)];
        ++c.requests;
        c.totalUs.add(total_us);
        if (o.total() > cfg.slo.target[static_cast<std::size_t>(r.qos)])
            ++c.violations;

        if (outcomes)
            outcomes->push_back(o);
    };

    std::vector<graph::NodeId> targets;
    Dispatch d;
    while (batcher.next(session.prepFree(), d)) {
        if (specs.empty()) {
            targets.clear();
            for (const Request &r : d.batch)
                targets.push_back(r.target);

            platforms::BatchService svc = session.runBatch(d.at, targets);
            if (!svc.ok)
                res.ok = false;

            for (const Request &r : d.batch)
                record(r, svc);
            res.makespan = std::max(res.makespan, svc.computeEnd);
            ++res.batches;
            continue;
        }
        // Split the dispatch into model-homogeneous sub-batches in
        // stable model order; each sub-batch switches the engine to
        // its spec (re-broadcasting the die configuration) and runs
        // as its own platform batch on the serial prep stream.
        for (std::size_t mid = 0; mid < specs.size(); ++mid) {
            targets.clear();
            for (const Request &r : d.batch)
                if (std::size_t{r.modelId} == mid)
                    targets.push_back(r.target);
            if (targets.empty())
                continue;

            platforms::BatchService svc =
                session.runBatch(d.at, targets, specs[mid]);
            if (!svc.ok)
                res.ok = false;

            for (const Request &r : d.batch)
                if (std::size_t{r.modelId} == mid)
                    record(r, svc);
            res.perModelRequests[mid] += targets.size();
            res.makespan = std::max(res.makespan, svc.computeEnd);
            ++res.batches;
        }
    }

    res.meanBatchSize =
        res.batches == 0 ? 0.0
                         : static_cast<double>(res.requests) /
                               static_cast<double>(res.batches);
    res.peakQueueDepth = batcher.peakDepth();
    res.achievedRate = res.makespan == 0
                           ? 0.0
                           : static_cast<double>(res.requests) /
                                 sim::toSeconds(res.makespan);

    // finish() makes every platform component publish into the
    // session registry and yields the run-level measurement, which
    // carries the scale-out view (per-device tallies, P2P traffic).
    platforms::RunResult rr = session.finish();
    if (!rr.ok)
        res.ok = false;
    res.devices = rr.devices;
    res.commands = rr.commands;
    res.crossDevice = rr.crossDevice;
    res.crossFraction = rr.crossFraction;
    res.perDevice = rr.perDevice;
    res.replication = rr.replication;
    res.faults = rr.faults;
    res.replicaFallbacks = rr.replicaFallbacks;

    if (metrics) {
        // Fold the session registry in, then the serving layer's own
        // instruments on top.
        metrics->merge(session.metrics());
        metrics->counter("serve.requests").add(res.requests);
        metrics->counter("serve.batches").add(res.batches);
        metrics->counter("serve.makespan_ticks").add(res.makespan);
        metrics->counter("serve.violations").add(res.violations());
        metrics->gauge("serve.offered_rate").set(res.offeredRate);
        metrics->gauge("serve.achieved_rate").set(res.achievedRate);
        metrics->gauge("serve.mean_batch_size").set(res.meanBatchSize);
        metrics->gauge("serve.peak_queue_depth")
            .set(static_cast<double>(res.peakQueueDepth));
        metrics->accum("serve.queueing_us").merge(res.queueingUs);
        metrics->accum("serve.prep_us").merge(res.prepUs);
        metrics->accum("serve.compute_us").merge(res.computeUs);
        metrics->accum("serve.total_us").merge(res.totalUs);
        metrics
            ->histogram("serve.latency_us_hist",
                        res.latencyUs.bucketWidth(),
                        res.latencyUs.buckets().size())
            .merge(res.latencyUs);
        for (std::size_t q = 0; q < res.perClass.size(); ++q) {
            const ClassReport &c = res.perClass[q];
            std::string prefix =
                "serve.class" + std::to_string(q) + ".";
            metrics->counter(prefix + "requests").add(c.requests);
            metrics->counter(prefix + "violations").add(c.violations);
            metrics->accum(prefix + "total_us").merge(c.totalUs);
        }
        // Per-model request counters only exist on multi-model runs,
        // keeping single-model snapshots byte-identical.
        for (std::size_t mid = 0; mid < specs.size(); ++mid) {
            metrics
                ->counter(std::string("model.") +
                          gnn::modelKindName(specs[mid].kind) +
                          ".requests")
                .add(res.perModelRequests[mid]);
        }
        // Fault/degraded instruments exist only when a fault model or
        // replication is armed, so default snapshots stay identical.
        if (res.degraded() || res.replication > 1) {
            metrics->gauge("serve.replication")
                .set(static_cast<double>(res.replication));
            metrics->gauge("serve.degraded")
                .set(res.degraded() ? 1.0 : 0.0);
            metrics->counter("serve.replica_fallbacks")
                .add(res.replicaFallbacks);
        }
        if (res.devices > 1) {
            metrics->gauge("serve.devices")
                .set(static_cast<double>(res.devices));
            for (std::size_t dev = 0; dev < res.perDevice.size();
                 ++dev) {
                std::string prefix =
                    "serve.dev" + std::to_string(dev) + ".";
                metrics->counter(prefix + "commands")
                    .add(res.perDevice[dev].commands);
                metrics->gauge(prefix + "command_share")
                    .set(res.deviceShare(dev));
            }
        }
    }
    return res;
}

} // namespace beacongnn::serve
