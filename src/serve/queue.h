/**
 * @file
 * Admission queue with per-tenant QoS classes.
 *
 * Strict priority across classes (Interactive > Standard > Batch) and
 * FIFO within a class. The batching timeout, however, is anchored on
 * the oldest queued request of *any* class, so low-priority work ages
 * the queue and cannot starve forever behind a full Interactive
 * stream: once its deadline fires the dispatched batch still prefers
 * high-priority requests, but a dispatch does happen.
 */

#ifndef BEACONGNN_SERVE_QUEUE_H
#define BEACONGNN_SERVE_QUEUE_H

#include <array>
#include <cstddef>
#include <deque>

#include "serve/request.h"
#include "sim/log.h"

namespace beacongnn::serve {

class AdmissionQueue
{
  public:
    /** Enqueue in FIFO position of the request's class. */
    void
    push(const Request &r)
    {
        classes[static_cast<std::size_t>(r.qos)].push_back(r);
        ++count;
        peak = std::max(peak, count);
    }

    /** Dequeue: highest-priority nonempty class, FIFO within it. */
    Request
    pop()
    {
        for (auto &q : classes) {
            if (q.empty())
                continue;
            Request r = q.front();
            q.pop_front();
            --count;
            return r;
        }
        sim::panic("AdmissionQueue::pop on empty queue");
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    /** Deepest backlog seen so far (saturation indicator). */
    std::size_t peakDepth() const { return peak; }

    /** Earliest arrival among queued requests, any class. */
    sim::Tick
    oldestArrival() const
    {
        sim::Tick oldest = sim::kTickMax;
        for (const auto &q : classes)
            if (!q.empty())
                oldest = std::min(oldest, q.front().arrival);
        return oldest;
    }

  private:
    std::array<std::deque<Request>, kQosClasses> classes;
    std::size_t count = 0;
    std::size_t peak = 0;
};

} // namespace beacongnn::serve

#endif // BEACONGNN_SERVE_QUEUE_H
