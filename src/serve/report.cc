#include "serve/report.h"

#include <cstdio>

namespace beacongnn::serve {

void
printRateHeader()
{
    std::printf("%10s %10s %9s %9s %9s %9s %9s %8s %7s %6s %4s\n",
                "rate(r/s)", "thru(r/s)", "mean(ms)", "p50(ms)",
                "p95(ms)", "p99(ms)", "p99.9(ms)", "viol(%)", "batch",
                "peakQ", "sat");
}

void
printRateRow(const ServeResult &r)
{
    // One bucket walk resolves the whole percentile set.
    const std::vector<double> ps =
        r.percentiles({0.5, 0.95, 0.99, 0.999});
    std::printf("%10.0f %10.0f %9.2f %9.2f %9.2f %9.2f %9.2f %8.1f "
                "%7.1f %6zu %4s\n",
                r.offeredRate, r.achievedRate, r.totalUs.mean() / 1e3,
                ps[0] / 1e3, ps[1] / 1e3, ps[2] / 1e3, ps[3] / 1e3,
                r.violationPct(), r.meanBatchSize, r.peakQueueDepth,
                r.saturated() ? "*" : "");
}

void
printDegraded(const ServeResult &r)
{
    if (!r.degraded())
        return;
    std::printf("    degraded: down =");
    for (const platforms::KillEvent &k : r.faults) {
        std::printf(" dev%u", k.device);
        if (k.die >= 0)
            std::printf(".die%d", k.die);
    }
    std::printf(", R = %u, %llu replica fallbacks, %.0f req/s "
                "degraded throughput\n",
                r.replication,
                static_cast<unsigned long long>(r.replicaFallbacks),
                r.achievedRate);
}

void
printClassBreakdown(const ServeResult &r)
{
    for (std::size_t q = 0; q < kQosClasses; ++q) {
        const ClassReport &c = r.perClass[q];
        if (c.requests == 0)
            continue;
        std::printf("    %-11s %6llu req | mean %8.2f ms | max %8.2f "
                    "ms | SLO viol %5.1f%%\n",
                    qosName(static_cast<QosClass>(q)),
                    static_cast<unsigned long long>(c.requests),
                    c.totalUs.mean() / 1e3, c.totalUs.max() / 1e3,
                    c.violationPct());
    }
}

double
printSaturation(const std::vector<ServeResult> &results)
{
    double best = 0;
    for (const ServeResult &r : results)
        if (!r.saturated())
            best = std::max(best, r.offeredRate);
    if (results.empty())
        return 0;
    if (best > 0)
        std::printf("  -> %s on %s sustains up to %.0f req/s\n",
                    results.front().platform.c_str(),
                    results.front().workload.c_str(), best);
    else
        std::printf("  -> %s on %s saturates at every tested rate\n",
                    results.front().platform.c_str(),
                    results.front().workload.c_str());
    return best;
}

void
writeServeCsvHeader(std::ostream &os)
{
    os << "platform,workload,offered_rps,achieved_rps,requests,"
          "batches,mean_batch,peak_queue,makespan_ms,queue_us,prep_us,"
          "compute_us,mean_us,p50_us,p95_us,p99_us,p999_us,viol_pct,"
          "saturated\n";
}

void
writeServeCsvRow(std::ostream &os, const ServeResult &r)
{
    const std::vector<double> ps =
        r.percentiles({0.5, 0.95, 0.99, 0.999});
    os << r.platform << ',' << r.workload << ',' << r.offeredRate
       << ',' << r.achievedRate << ',' << r.requests << ','
       << r.batches << ',' << r.meanBatchSize << ','
       << r.peakQueueDepth << ',' << sim::toMillis(r.makespan) << ','
       << r.queueingUs.mean() << ',' << r.prepUs.mean() << ','
       << r.computeUs.mean() << ',' << r.totalUs.mean() << ','
       << ps[0] << ',' << ps[1] << ',' << ps[2] << ',' << ps[3] << ','
       << r.violationPct() << ',' << (r.saturated() ? 1 : 0) << '\n';
}

} // namespace beacongnn::serve
