#include "serve/scheduler.h"

#include <algorithm>

namespace beacongnn::serve {

MicroBatcher::MicroBatcher(const BatchPolicy &p,
                           std::vector<Request> arrivals)
    : policy(p), pending(std::move(arrivals))
{
    if (policy.maxBatch == 0)
        policy.maxBatch = 1;
}

void
MicroBatcher::admitUpTo(sim::Tick t)
{
    while (cursor < pending.size() && pending[cursor].arrival <= t)
        queue.push(pending[cursor++]);
}

bool
MicroBatcher::next(sim::Tick server_free, Dispatch &out)
{
    if (queue.empty() && cursor >= pending.size())
        return false;

    // Decision time: when the server frees, or — if nothing is queued
    // by then — when the next request arrives.
    sim::Tick t = server_free;
    admitUpTo(t);
    if (queue.empty()) {
        t = pending[cursor].arrival;
        admitUpTo(t);
    }

    // The oldest queued request bounds how long we may keep batching.
    sim::Tick deadline =
        std::max(t, queue.oldestArrival() + policy.timeout);

    // Wait for arrivals to fill the batch, but never past the
    // deadline: if the maxBatch-th request arrives first we dispatch
    // at its arrival, otherwise at the deadline with what we have.
    while (queue.size() < policy.maxBatch && cursor < pending.size() &&
           pending[cursor].arrival <= deadline) {
        t = std::max(t, pending[cursor].arrival);
        queue.push(pending[cursor++]);
    }

    out.at = queue.size() >= policy.maxBatch ? t : deadline;
    out.batch.clear();
    std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::size_t>(queue.size(), policy.maxBatch));
    out.batch.reserve(take);
    for (std::uint32_t i = 0; i < take; ++i)
        out.batch.push_back(queue.pop());
    return true;
}

} // namespace beacongnn::serve
