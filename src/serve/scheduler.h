/**
 * @file
 * Micro-batching scheduler.
 *
 * Classic serving trade-off: dispatch a mini-batch as soon as
 * `maxBatch` requests are queued (throughput), or when the oldest
 * queued request has waited `timeout` ticks (latency), whichever
 * comes first. The scheduler is a pure, deterministic decision
 * procedure over a sorted arrival stream — it knows nothing about the
 * platform beyond "the prep stream frees at tick T", which makes the
 * dispatch logic unit-testable without running a simulation.
 */

#ifndef BEACONGNN_SERVE_SCHEDULER_H
#define BEACONGNN_SERVE_SCHEDULER_H

#include <vector>

#include "serve/queue.h"

namespace beacongnn::serve {

/** Micro-batching policy knobs. */
struct BatchPolicy
{
    std::uint32_t maxBatch = 32;             ///< Dispatch-now threshold.
    sim::Tick timeout = sim::microseconds(200); ///< Max age before dispatch.
};

/** One dispatch decision: when, and which requests. */
struct Dispatch
{
    sim::Tick at = 0;            ///< Batch handed to the platform.
    std::vector<Request> batch;  ///< Priority-ordered members.
};

/**
 * Drains a fixed (sorted) arrival stream into micro-batches. The
 * caller advances simulated time by asking for the next dispatch
 * given the earliest tick the platform can accept work.
 */
class MicroBatcher
{
  public:
    /**
     * @param policy   Batching policy.
     * @param arrivals Requests sorted by nondecreasing arrival time
     *                 (generateArrivals output order).
     */
    MicroBatcher(const BatchPolicy &policy,
                 std::vector<Request> arrivals);

    /**
     * Decide the next dispatch, given that the platform frees at
     * @p server_free. Returns false when the stream is exhausted.
     *
     * The dispatch fires at the earliest of:
     *  - the tick the `maxBatch`-th request becomes available
     *    (arrivals already queued count from `server_free`), or
     *  - `oldest queued arrival + timeout`,
     * never earlier than `server_free`.
     */
    bool next(sim::Tick server_free, Dispatch &out);

    /** Requests not yet dispatched (queued + future arrivals). */
    std::size_t remaining() const { return queue.size() + pending.size() - cursor; }

    /** Deepest queued backlog seen so far. */
    std::size_t peakDepth() const { return queue.peakDepth(); }

  private:
    /** Admit every arrival with arrival <= t. */
    void admitUpTo(sim::Tick t);

    BatchPolicy policy;
    std::vector<Request> pending; ///< Sorted future arrivals.
    std::size_t cursor = 0;       ///< First not-yet-admitted arrival.
    AdmissionQueue queue;
};

} // namespace beacongnn::serve

#endif // BEACONGNN_SERVE_SCHEDULER_H
