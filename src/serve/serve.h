/**
 * @file
 * The online serving driver: wires an open-loop arrival stream and
 * the micro-batching scheduler onto an open PlatformSession, records
 * each request's queueing/prep/compute breakdown, and reports
 * tail-latency percentiles and SLO-violation rates.
 *
 * Determinism: the arrival stream is a pure function of its config,
 * the scheduler is a pure decision procedure, and the platform
 * session is a pure function of (platform, run config, bundle) — so
 * a ServeResult is byte-identical across repeated runs and across
 * any worker count when sweep points run in parallel.
 */

#ifndef BEACONGNN_SERVE_SERVE_H
#define BEACONGNN_SERVE_SERVE_H

#include <array>
#include <string>

#include "platforms/runner.h"
#include "serve/arrival.h"
#include "serve/scheduler.h"

namespace beacongnn::serve {

/** Per-class latency SLO targets (total latency, arrival to done). */
struct SloConfig
{
    std::array<sim::Tick, kQosClasses> target = {
        sim::milliseconds(5),   // Interactive
        sim::milliseconds(20),  // Standard
        sim::milliseconds(100), // Batch
    };
};

/** Everything one serving experiment needs besides the platform. */
struct ServeConfig
{
    ArrivalConfig arrivals;
    BatchPolicy policy;
    SloConfig slo;
    /** Model-zoo entries served side by side: request modelId selects
     *  one (specs derive from the bundle model with the kind
     *  replaced), and each dispatch splits into model-homogeneous
     *  sub-batches so the engine switches specs between batches.
     *  Empty (default) = the bundle model for every request — the
     *  historical single-model path, byte-identical. Callers should
     *  set arrivals.modelCount = models.size(). */
    std::vector<gnn::ModelKind> models;
};

/** Latency/SLO tally of one QoS class. */
struct ClassReport
{
    std::uint64_t requests = 0;
    std::uint64_t violations = 0;
    sim::Accumulator totalUs; ///< Total latency, microseconds.

    double
    violationPct() const
    {
        return requests == 0 ? 0.0
                             : 100.0 * static_cast<double>(violations) /
                                   static_cast<double>(requests);
    }
};

/** Everything measured by one serving run. */
struct ServeResult
{
    std::string platform;
    std::string workload;
    bool ok = true;

    double offeredRate = 0;  ///< Configured arrival rate (req/s).
    double achievedRate = 0; ///< Completions / makespan (req/s).
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    double meanBatchSize = 0;
    std::size_t peakQueueDepth = 0;
    sim::Tick makespan = 0; ///< Last completion time.

    // Latency breakdown over all requests, microseconds.
    sim::Accumulator queueingUs;
    sim::Accumulator prepUs;
    sim::Accumulator computeUs;
    sim::Accumulator totalUs;
    /** Total-latency distribution: 50 us buckets, ~400 ms span (the
     *  percentile() overflow clamp covers saturated runs beyond it). */
    sim::Histogram latencyUs{50.0, 8192};

    std::array<ClassReport, kQosClasses> perClass;

    // Scale-out view (degenerate for a single-device topology).
    unsigned devices = 1;          ///< Devices serving the stream.
    std::uint64_t commands = 0;    ///< Flash commands executed.
    std::uint64_t crossDevice = 0; ///< Commands that crossed P2P links.
    /** crossDevice / commands; 0 when no command ran. */
    double crossFraction = 0;
    /** Per-device command/byte tallies (devices entries). */
    std::vector<engines::DeviceTally> perDevice;

    /** Requests served per model-zoo entry (cfg.models entries;
     *  empty on a single-model run). */
    std::vector<std::uint64_t> perModelRequests;

    // Fault-injection view (DESIGN.md §17; defaults when fault-free).
    unsigned replication = 1;      ///< Effective replication factor.
    /** The applied kill schedule (empty = fault-free run). */
    std::vector<platforms::KillEvent> faults;
    /** Commands served by a surviving replica of a killed device. */
    std::uint64_t replicaFallbacks = 0;
    /** Did the stream run with devices/dies down? */
    bool degraded() const { return !faults.empty(); }

    /** Share of all flash commands device @p d executed (0..1). */
    double
    deviceShare(std::size_t d) const
    {
        if (commands == 0 || d >= perDevice.size())
            return 0.0;
        return static_cast<double>(perDevice[d].commands) /
               static_cast<double>(commands);
    }

    /** Total-latency percentile in microseconds. */
    double p(double pct) const { return latencyUs.percentile(pct); }

    /** Batch total-latency percentiles (fractions in [0, 1], e.g.
     *  {0.5, 0.99, 0.999}), microseconds — one bucket walk for the
     *  whole set (sim::Histogram::percentiles). */
    std::vector<double>
    percentiles(const std::vector<double> &qs) const
    {
        return latencyUs.percentiles(qs);
    }

    std::uint64_t
    violations() const
    {
        std::uint64_t v = 0;
        for (const auto &c : perClass)
            v += c.violations;
        return v;
    }

    double
    violationPct() const
    {
        return requests == 0 ? 0.0
                             : 100.0 * static_cast<double>(violations()) /
                                   static_cast<double>(requests);
    }

    /**
     * Open-loop saturation test: the platform kept up with the
     * offered load iff it completed requests at (nearly) the rate
     * they arrived. Under overload the queue grows without bound and
     * the completion rate pins at the service capacity.
     */
    bool saturated() const { return achievedRate < 0.95 * offeredRate; }
};

/**
 * Serve one open-loop request stream on one platform.
 *
 * @param outcomes Optional: receives the per-request breakdowns in
 *                 completion order (batch by batch).
 * @param metrics  Optional: receives the session's full instrument
 *                 registry plus the `serve.*` instruments.
 */
ServeResult serveWorkload(const platforms::PlatformConfig &platform,
                          const platforms::RunConfig &run,
                          const platforms::WorkloadBundle &bundle,
                          const ServeConfig &cfg,
                          std::vector<RequestOutcome> *outcomes = nullptr,
                          sim::MetricRegistry *metrics = nullptr);

} // namespace beacongnn::serve

#endif // BEACONGNN_SERVE_SERVE_H
