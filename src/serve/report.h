/**
 * @file
 * Reporting for serving experiments: the per-rate latency/SLO table
 * shared by the bgnserve CLI and bench/serve_latency, plus CSV rows
 * for external plotting of latency-vs-load curves.
 */

#ifndef BEACONGNN_SERVE_REPORT_H
#define BEACONGNN_SERVE_REPORT_H

#include <ostream>
#include <vector>

#include "serve/serve.h"

namespace beacongnn::serve {

/** Print the per-rate table header. */
void printRateHeader();

/** Print one ServeResult as a table row (latencies in ms). */
void printRateRow(const ServeResult &r);

/** Print the per-QoS-class latency/SLO breakdown of one result. */
void printClassBreakdown(const ServeResult &r);

/** Print the degraded-mode line of a faulted run (down devices/dies,
 *  replication factor, replica fallbacks, degraded throughput);
 *  no-op when the run was fault-free. */
void printDegraded(const ServeResult &r);

/**
 * Print "<platform> on <workload> sustains up to N req/s": the
 * highest offered rate in @p results (all same platform/workload)
 * that did not saturate. Returns that rate (0 when every point
 * saturated).
 */
double printSaturation(const std::vector<ServeResult> &results);

/** Write the serve CSV header row. */
void writeServeCsvHeader(std::ostream &os);

/** Write one ServeResult as a CSV row. */
void writeServeCsvRow(std::ostream &os, const ServeResult &r);

} // namespace beacongnn::serve

#endif // BEACONGNN_SERVE_REPORT_H
