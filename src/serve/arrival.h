/**
 * @file
 * Open-loop arrival stream generation.
 *
 * Two arrival processes:
 *  - Poisson: exponential inter-arrival gaps at the configured mean
 *    rate — the classic open-loop serving benchmark assumption.
 *  - Bursty: a two-state Markov-modulated Poisson process. The
 *    stream alternates between a burst state (rate multiplied by
 *    `burstFactor`) and a calm state whose rate is chosen so the
 *    long-run mean stays at `ratePerSec`; state residencies are
 *    exponential with mean `burstMeanTicks` / scaled calm mean.
 *
 * Everything is drawn from one sim::Pcg32 seeded by the caller, so a
 * given (config, node count) pair always produces byte-identical
 * streams — across runs and across worker counts.
 */

#ifndef BEACONGNN_SERVE_ARRIVAL_H
#define BEACONGNN_SERVE_ARRIVAL_H

#include <vector>

#include "serve/request.h"

namespace beacongnn::serve {

/** Arrival process families. */
enum class ArrivalProcess : std::uint8_t
{
    Poisson,
    Bursty,
};

/** Configuration of one open-loop request stream. */
struct ArrivalConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    double ratePerSec = 2000.0;  ///< Long-run mean arrival rate.
    std::uint64_t requests = 512; ///< Stream length.
    std::uint64_t seed = 0x5EED;  ///< Stream seed.
    std::uint32_t tenants = 4;    ///< Tenant count; QoS = tenant % 3.

    /** Bursty process: rate multiplier while in the burst state. */
    double burstFactor = 8.0;
    /** Bursty process: long-run fraction of time in the burst state. */
    double burstFraction = 0.1;
    /** Bursty process: mean burst residency. */
    sim::Tick burstMeanTicks = sim::milliseconds(2);

    /** Zipf(θ) skew of the target popularity distribution; 0
     *  (default) keeps the historical uniform targets. Rank k maps to
     *  node id k, so the hot set is the low node ids. */
    double zipfTheta = 0.0;

    /** Model-zoo entries the stream spreads requests over (request
     *  modelId = tenant % modelCount). 1 (default) pins every request
     *  to model 0 — the historical single-model stream. The RNG draw
     *  sequence is independent of this value. */
    std::uint32_t modelCount = 1;
};

/**
 * Generate the request stream: arrival times are nondecreasing, ids
 * are sequential in arrival order, targets are uniform over
 * [0, numNodes) (Zipf(θ)-skewed when zipfTheta > 0), and tenants
 * round through the configured count with QoS class =
 * tenant % kQosClasses.
 */
std::vector<Request> generateArrivals(const ArrivalConfig &cfg,
                                      graph::NodeId numNodes);

/** Display name of an arrival process ("poisson"). */
const char *arrivalName(ArrivalProcess p);

} // namespace beacongnn::serve

#endif // BEACONGNN_SERVE_ARRIVAL_H
