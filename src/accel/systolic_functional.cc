#include "accel/systolic_functional.h"

#include "sim/log.h"

namespace beacongnn::accel {

namespace {

/** A value flowing through the array, tagged with its M-row. */
struct Tagged
{
    float v = 0.0f;
    std::int64_t row = -1;
    bool valid = false;
};

} // namespace

FunctionalRunResult
runSystolic(const SystolicConfig &cfg, std::uint32_t m, std::uint32_t n,
            std::uint32_t k, const std::vector<float> &a,
            const std::vector<float> &b)
{
    if (cfg.dataflow != Dataflow::WeightStationary)
        sim::fatal("runSystolic: functional model implements the "
                   "weight-stationary dataflow only");
    if (a.size() != std::size_t{m} * k || b.size() != std::size_t{k} * n)
        sim::fatal("runSystolic: operand shapes do not match m/n/k");

    const std::uint32_t R = cfg.rows;
    const std::uint32_t C = cfg.cols;
    FunctionalRunResult res;
    res.output.assign(std::size_t{m} * n, 0.0f);
    if (m == 0 || n == 0 || k == 0)
        return res;

    const std::uint32_t k_tiles = (k + R - 1) / R;
    const std::uint32_t n_tiles = (n + C - 1) / C;

    std::vector<float> w(std::size_t{R} * C);
    std::vector<Tagged> act(std::size_t{R} * C), act2(act.size());
    std::vector<Tagged> psum(act.size()), psum2(act.size());
    auto at = [C](std::uint32_t r, std::uint32_t c) {
        return std::size_t{r} * C + c;
    };

    for (std::uint32_t kt = 0; kt < k_tiles; ++kt) {
        for (std::uint32_t nt = 0; nt < n_tiles; ++nt) {
            // ---- Weight load: R cycles to stream the tile in. ----
            res.cycles += R;
            for (std::uint32_t r = 0; r < R; ++r) {
                for (std::uint32_t c = 0; c < C; ++c) {
                    std::uint32_t kk = kt * R + r;
                    std::uint32_t nn = nt * C + c;
                    w[at(r, c)] = (kk < k && nn < n)
                                      ? b[std::size_t{kk} * n + nn]
                                      : 0.0f;
                }
            }
            std::fill(act.begin(), act.end(), Tagged{});
            std::fill(psum.begin(), psum.end(), Tagged{});

            // ---- Stream M rows with the systolic skew. -----------
            std::uint64_t stream_cycles =
                std::uint64_t{m} + R + C - 2;
            for (std::uint64_t t = 0; t < stream_cycles; ++t) {
                for (std::uint32_t r = 0; r < R; ++r) {
                    for (std::uint32_t c = 0; c < C; ++c) {
                        // Activation: from the west edge (skewed) or
                        // the left neighbour.
                        Tagged in_act;
                        if (c == 0) {
                            std::int64_t i =
                                static_cast<std::int64_t>(t) - r;
                            if (i >= 0 && i < static_cast<std::int64_t>(m)) {
                                std::uint32_t kk = kt * R + r;
                                in_act.v =
                                    kk < k ? a[static_cast<std::size_t>(
                                                   i) * k + kk]
                                           : 0.0f;
                                in_act.row = i;
                                in_act.valid = true;
                            }
                        } else {
                            in_act = act[at(r, c - 1)];
                        }
                        // Partial sum: zero from the north edge or
                        // the upper neighbour.
                        Tagged in_psum;
                        if (r == 0) {
                            in_psum.v = 0.0f;
                            in_psum.row = in_act.row;
                            in_psum.valid = in_act.valid;
                        } else {
                            in_psum = psum[at(r - 1, c)];
                        }

                        Tagged out_psum;
                        if (in_act.valid) {
                            if (!in_psum.valid ||
                                in_psum.row != in_act.row) {
                                sim::panic(
                                    "systolic skew misalignment");
                            }
                            out_psum.v =
                                in_psum.v + w[at(r, c)] * in_act.v;
                            out_psum.row = in_act.row;
                            out_psum.valid = true;
                            ++res.macs;
                        }
                        act2[at(r, c)] = in_act;
                        psum2[at(r, c)] = out_psum;
                    }
                }
                std::swap(act, act2);
                std::swap(psum, psum2);
                // Outputs drain from the bottom row.
                for (std::uint32_t c = 0; c < C; ++c) {
                    const Tagged &out = psum[at(R - 1, c)];
                    std::uint32_t nn = nt * C + c;
                    if (out.valid && nn < n) {
                        res.output[static_cast<std::size_t>(out.row) *
                                       n +
                                   nn] += out.v;
                    }
                }
            }
            res.cycles += stream_cycles;
        }
    }
    return res;
}

} // namespace beacongnn::accel
