/**
 * @file
 * Analytical weight-stationary systolic-array model (ScaleSim-2.0
 * style, §VII-A "Performance modeling").
 *
 * A GEMM of shape M x N x K runs on an R x C array as
 * ceil(K/R) * ceil(N/C) weight tiles; each tile loads its weights
 * (R cycles) and streams the M activations through the array with a
 * (R + C - 1)-cycle fill/drain skew:
 *
 *   cycles = tiles * (R + M + R + C - 2)
 *
 * SRAM traffic is counted per tile (activations re-fetched for every
 * K/N tile pair, partial sums written per N tile), matching ScaleSim's
 * double-buffered operand model.
 */

#ifndef BEACONGNN_ACCEL_SYSTOLIC_H
#define BEACONGNN_ACCEL_SYSTOLIC_H

#include <cstdint>

#include "gnn/model.h"
#include "sim/types.h"

namespace beacongnn::accel {

/** Mapping dataflow (ScaleSim-2.0 supports both). */
enum class Dataflow : std::uint8_t
{
    WeightStationary, ///< Weights pinned; activations stream (default).
    OutputStationary, ///< Outputs pinned; operands stream.
};

/** Geometry and clock of one systolic array. */
struct SystolicConfig
{
    std::uint32_t rows = 32;  ///< R (WS: K dimension; OS: M).
    std::uint32_t cols = 32;  ///< C (N dimension).
    double freqGHz = 0.5;     ///< Clock frequency.
    std::uint8_t bytesPerElem = 2; ///< FP16 operands.
    Dataflow dataflow = Dataflow::WeightStationary;
};

/** Cycle/traffic estimate of one GEMM on one array. */
struct GemmEstimate
{
    std::uint64_t cycles = 0;
    std::uint64_t macs = 0;
    std::uint64_t sramReadBytes = 0;
    std::uint64_t sramWriteBytes = 0;

    /** Utilization of the MAC grid during the run. */
    double
    utilization(const SystolicConfig &cfg) const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(macs) /
               (static_cast<double>(cycles) * cfg.rows * cfg.cols);
    }
};

/** Estimate one GEMM (M x N x K) on the array. */
GemmEstimate estimateGemm(const SystolicConfig &cfg,
                          const gnn::GemmShape &g);

/** Convert cycles at the array clock to simulator ticks. */
sim::Tick cyclesToTicks(const SystolicConfig &cfg, std::uint64_t cycles);

} // namespace beacongnn::accel

#endif // BEACONGNN_ACCEL_SYSTOLIC_H
