/**
 * @file
 * Cycle-level *functional* weight-stationary systolic array.
 *
 * A PE-by-PE simulation of the array the analytical model
 * (accel/systolic.h) summarizes: weights are pinned into the R x C
 * grid, activations skew in from the left, partial sums flow down and
 * accumulate, outputs drain at the bottom. It computes the actual
 * GEMM result and counts the actual cycles, which the test suite
 * compares against both a reference matrix multiply (functional
 * correctness) and the analytical cycle formula (timing-model
 * validation). Intended for small shapes — it is O(cycles * R * C).
 */

#ifndef BEACONGNN_ACCEL_SYSTOLIC_FUNCTIONAL_H
#define BEACONGNN_ACCEL_SYSTOLIC_FUNCTIONAL_H

#include <cstdint>
#include <vector>

#include "accel/systolic.h"

namespace beacongnn::accel {

/** Result of a functional systolic run. */
struct FunctionalRunResult
{
    /** Output matrix, row-major M x N. */
    std::vector<float> output;
    /** Cycles from first weight load to last output drained. */
    std::uint64_t cycles = 0;
    /** MACs actually performed (non-zero operand pairs included). */
    std::uint64_t macs = 0;
};

/**
 * Execute C = A x B on a weight-stationary R x C systolic array,
 * cycle by cycle.
 *
 * @param cfg Array geometry (dataflow must be WeightStationary).
 * @param m,n,k GEMM shape: A is m x k, B is k x n, C is m x n.
 * @param a Row-major activations (m x k).
 * @param b Row-major weights (k x n).
 */
FunctionalRunResult runSystolic(const SystolicConfig &cfg,
                                std::uint32_t m, std::uint32_t n,
                                std::uint32_t k,
                                const std::vector<float> &a,
                                const std::vector<float> &b);

} // namespace beacongnn::accel

#endif // BEACONGNN_ACCEL_SYSTOLIC_FUNCTIONAL_H
