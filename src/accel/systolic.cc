#include "accel/systolic.h"

#include <cmath>

namespace beacongnn::accel {

GemmEstimate
estimateGemm(const SystolicConfig &cfg, const gnn::GemmShape &g)
{
    GemmEstimate e;
    if (g.m == 0 || g.n == 0 || g.k == 0)
        return e;
    e.macs = g.m * g.n * g.k;
    if (cfg.dataflow == Dataflow::WeightStationary) {
        std::uint64_t k_tiles = (g.k + cfg.rows - 1) / cfg.rows;
        std::uint64_t n_tiles = (g.n + cfg.cols - 1) / cfg.cols;
        std::uint64_t tiles = k_tiles * n_tiles;
        // Per tile: R cycles weight load, M streaming cycles,
        // R + C - 2 fill/drain skew.
        std::uint64_t per_tile =
            cfg.rows + g.m + cfg.rows + cfg.cols - 2;
        e.cycles = tiles * per_tile;
        // Activations: M x K re-read per N tile; weights: K x N once;
        // outputs: M x N partial sums accumulated per K tile.
        e.sramReadBytes =
            (g.m * g.k * n_tiles + g.k * g.n) * cfg.bytesPerElem;
        e.sramWriteBytes = g.m * g.n * k_tiles * cfg.bytesPerElem;
    } else {
        // Output stationary: each PE owns one output element; a tile
        // covers R x C outputs and streams the K dimension through.
        std::uint64_t m_tiles = (g.m + cfg.rows - 1) / cfg.rows;
        std::uint64_t n_tiles = (g.n + cfg.cols - 1) / cfg.cols;
        std::uint64_t tiles = m_tiles * n_tiles;
        std::uint64_t per_tile = g.k + cfg.rows + cfg.cols - 2;
        e.cycles = tiles * per_tile;
        // Both operands re-stream per tile; outputs written once.
        e.sramReadBytes = (g.m * g.k * n_tiles +
                           g.k * g.n * m_tiles) *
                          cfg.bytesPerElem;
        e.sramWriteBytes = g.m * g.n * cfg.bytesPerElem;
    }
    return e;
}

sim::Tick
cyclesToTicks(const SystolicConfig &cfg, std::uint64_t cycles)
{
    if (cfg.freqGHz <= 0.0)
        return 0;
    return static_cast<sim::Tick>(
        std::llround(static_cast<double>(cycles) / cfg.freqGHz));
}

} // namespace beacongnn::accel
