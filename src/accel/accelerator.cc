#include "accel/accelerator.h"

namespace beacongnn::accel {

AcceleratorConfig
ssdAcceleratorConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "ssd-accel";
    cfg.systolic.rows = 32;
    cfg.systolic.cols = 32;
    cfg.systolic.freqGHz = 0.5;
    cfg.vectorLanes = 64;
    cfg.vectorFreqGHz = 0.5;
    cfg.sramKiB = 512;
    return cfg;
}

AcceleratorConfig
discreteTpuConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "discrete-tpu";
    cfg.systolic.rows = 128;
    cfg.systolic.cols = 128;
    cfg.systolic.freqGHz = 0.94;
    cfg.vectorLanes = 1024;
    cfg.vectorFreqGHz = 0.94;
    cfg.sramKiB = 24 * 1024;
    return cfg;
}

} // namespace beacongnn::accel
