/**
 * @file
 * Spatial accelerator model (§V-C): a 1-D vector array for feature
 * aggregation, a 2-D systolic array for GEMM-based embedding update,
 * and a shared SRAM buffer. Two configurations are used in the paper:
 * an SSD-bus-attached instance sized to SSD resource budgets, and a
 * discrete server-scale TPU-like device on PCIe (the CC baseline's
 * compute engine).
 */

#ifndef BEACONGNN_ACCEL_ACCELERATOR_H
#define BEACONGNN_ACCEL_ACCELERATOR_H

#include <string>

#include "accel/systolic.h"
#include "gnn/model.h"
#include "sim/metrics.h"
#include "sim/types.h"

namespace beacongnn::accel {

/** Full accelerator configuration. */
struct AcceleratorConfig
{
    std::string name = "ssd-accel";
    SystolicConfig systolic{};
    std::uint32_t vectorLanes = 64;  ///< 1-D aggregation array width.
    double vectorFreqGHz = 0.5;
    std::uint32_t sramKiB = 512;     ///< Shared operand buffer.
};

/** Time/energy-relevant result of running one mini-batch's compute. */
struct ComputeEstimate
{
    sim::Tick aggregateTime = 0;
    sim::Tick gemmTime = 0;
    std::uint64_t macs = 0;
    std::uint64_t vectorOps = 0;
    std::uint64_t sramBytes = 0;

    sim::Tick total() const { return aggregateTime + gemmTime; }
};

/**
 * Timing model of one accelerator instance. The accelerator processes
 * mini-batches serially (the firmware pipelines it against data
 * preparation, §VI-D); callers serialize jobs through a sim::Bus.
 */
class Accelerator
{
  public:
    explicit Accelerator(const AcceleratorConfig &cfg_) : cfg(cfg_) {}

    const AcceleratorConfig &config() const { return cfg; }

    /** Estimate the execution of a mini-batch compute workload. */
    ComputeEstimate
    estimate(const gnn::ComputeWorkload &w) const
    {
        ComputeEstimate e;
        for (const auto &g : w.gemms) {
            GemmEstimate ge = estimateGemm(cfg.systolic, g);
            e.gemmTime += cyclesToTicks(cfg.systolic, ge.cycles);
            e.macs += ge.macs;
            e.sramBytes += ge.sramReadBytes + ge.sramWriteBytes;
        }
        // Per-edge model work (GAT attention, GIN epsilon scaling)
        // shares the 1-D vector array with the plain aggregation; the
        // gcn workload has edgeOps == 0 and times exactly as before.
        const std::uint64_t vec_elems =
            w.aggregateElements + w.edgeOps;
        e.vectorOps = vec_elems;
        if (cfg.vectorLanes > 0 && cfg.vectorFreqGHz > 0.0) {
            std::uint64_t cycles =
                (vec_elems + cfg.vectorLanes - 1) /
                cfg.vectorLanes;
            e.aggregateTime = static_cast<sim::Tick>(
                static_cast<double>(cycles) / cfg.vectorFreqGHz);
        }
        e.sramBytes += vec_elems * 2; // FP16 operand reads.
        return e;
    }

  private:
    AcceleratorConfig cfg;
};

/** Add one mini-batch's compute estimate into `accel.*` counters. */
inline void
publishEstimate(sim::MetricRegistry &reg, const ComputeEstimate &e)
{
    reg.counter("accel.jobs").add(1);
    reg.counter("accel.macs").add(e.macs);
    reg.counter("accel.vector_ops").add(e.vectorOps);
    reg.counter("accel.sram_bytes").add(e.sramBytes);
    reg.counter("accel.aggregate_ticks").add(e.aggregateTime);
    reg.counter("accel.gemm_ticks").add(e.gemmTime);
}

/** SSD-bus-attached accelerator sized to SSD budgets (Table II). */
AcceleratorConfig ssdAcceleratorConfig();

/** Discrete server-scale TPU-like accelerator (CC baseline). */
AcceleratorConfig discreteTpuConfig();

} // namespace beacongnn::accel

#endif // BEACONGNN_ACCEL_ACCELERATOR_H
