/**
 * @file
 * Die-level sampler (§V-A, Fig. 10/11).
 *
 * The functional model of the processing logic placed in the flash
 * die's control circuitry: a section iterator (performed by the
 * SectionSource lookup), a vector retriever, a node sampler and a
 * command generator, fed by a TRNG (modelled as keyed deterministic
 * randomness so out-of-order execution is reproducible and testable).
 *
 * Behaviour per command:
 *  - primary section, hop < K: retrieve the feature vector, draw
 *    `fanout` samples over the full neighbour range; in-page hits
 *    become next-hop sampling commands at the neighbour's primary
 *    address; hits in the same secondary section coalesce into one
 *    continuation command carrying the hit count.
 *  - secondary section: re-draw `sampleCount` indices within the
 *    section (modulo a TRNG value, per the paper) and emit next-hop
 *    commands.
 *  - primary section, hop == K (final): retrieve the feature only.
 *  - section missing or of the wrong type: abort with ok = false and
 *    return control to the firmware (§VI-E).
 */

#ifndef BEACONGNN_ENGINES_DIE_SAMPLER_H
#define BEACONGNN_ENGINES_DIE_SAMPLER_H

#include "directgraph/source.h"
#include "flash/onfi.h"
#include "gnn/model.h"
#include "sim/metrics.h"
#include "ssd/config.h"

namespace beacongnn::engines {

/** Global die configuration derived from a model spec: sampling
 *  schedule, feature geometry and per-edge payload width. */
inline flash::GnnGlobalConfig
gnnGlobalConfig(const gnn::ModelSpec &m)
{
    flash::GnnGlobalConfig cfg;
    cfg.hops = m.hops;
    cfg.fanout = m.fanout;
    cfg.featureDim = m.featureDim;
    cfg.featureBytesPerElem = 2;
    cfg.seed = m.seed;
    cfg.fanouts = m.fanouts;
    cfg.edgeCoeffBytes = static_cast<std::uint8_t>(m.edgeCoeffBytes());
    return cfg;
}

/** Behavioural options (ablations). */
struct DieSamplerOptions
{
    /** Coalesce same-secondary-section hits into one command (§V-A);
     *  disabling this issues one command per hit (ablation). */
    bool coalesceSecondary = true;
};

/** Functional + latency model of the on-die sampler. */
class DieSampler
{
  public:
    DieSampler(const ssd::EngineConfig &engine_cfg,
               const flash::GnnGlobalConfig &gnn_cfg,
               const DieSamplerOptions &options = {})
        : ecfg(engine_cfg), gcfg(gnn_cfg), opts(options)
    {
    }

    const flash::GnnGlobalConfig &gnnConfig() const { return gcfg; }

    /** Re-arm the die with a new global configuration (model switch;
     *  the engine re-broadcasts the config frame afterwards). */
    void setGnnConfig(const flash::GnnGlobalConfig &gnn_cfg)
    {
        gcfg = gnn_cfg;
    }

    /**
     * Execute one sampling command against a decoded section.
     *
     * @param section Decoded content (nullopt = missing -> abort).
     * @param params  Command parameters.
     * @return Result frame including follow-up commands. Follow-up
     *         parentSlot fields are left 0 for the engine to assign.
     */
    flash::GnnSampleResult
    execute(const std::optional<dg::SectionData> &section,
            const flash::GnnSampleParams &params) const
    {
        flash::GnnSampleResult r = executeImpl(section, params);
        ++_executed;
        if (!r.ok)
            ++_aborted;
        _emitted += r.follow.size();
        return r;
    }

    /** Commands executed / aborted (§VI-E) / follow-ups emitted. */
    std::uint64_t executed() const { return _executed; }
    std::uint64_t aborted() const { return _aborted; }
    std::uint64_t emitted() const { return _emitted; }

    /** Publish sampler instruments into @p reg under @p prefix. */
    void
    publishMetrics(sim::MetricRegistry &reg,
                   const std::string &prefix = "engine.sampler") const
    {
        reg.counter(prefix + ".executed").add(_executed);
        reg.counter(prefix + ".aborted").add(_aborted);
        reg.counter(prefix + ".emitted").add(_emitted);
    }

    /** On-die execution latency of a completed command. */
    sim::Tick
    latency(const flash::GnnSampleResult &result) const
    {
        return ecfg.samplerSetup +
               ecfg.samplerPerDraw *
                   static_cast<sim::Tick>(result.follow.size());
    }

  private:
    flash::GnnSampleResult
    executeImpl(const std::optional<dg::SectionData> &section,
                const flash::GnnSampleParams &params) const;

    ssd::EngineConfig ecfg;
    flash::GnnGlobalConfig gcfg;
    DieSamplerOptions opts;
    // The sampler model is stateless; the tallies are observability
    // only (mutable so execute() stays const for callers).
    mutable std::uint64_t _executed = 0;
    mutable std::uint64_t _aborted = 0;
    mutable std::uint64_t _emitted = 0;
};

} // namespace beacongnn::engines

#endif // BEACONGNN_ENGINES_DIE_SAMPLER_H
