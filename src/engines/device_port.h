/**
 * @file
 * The engine-facing view of one SSD of a (possibly single-device)
 * array: the per-device hardware the data-preparation pipeline talks
 * to. The platform layer owns the actual components (DeviceContext in
 * src/platforms/device_context.h); the engine only borrows them, so a
 * devices = 1 run and an array run execute the exact same pipeline
 * code over one or many ports.
 */

#ifndef BEACONGNN_ENGINES_DEVICE_PORT_H
#define BEACONGNN_ENGINES_DEVICE_PORT_H

#include <cstdint>
#include <vector>

#include "sim/resources.h"

namespace beacongnn::cache {
class VertexCache;
} // namespace beacongnn::cache

namespace beacongnn::flash {
class FlashBackend;
} // namespace beacongnn::flash

namespace beacongnn::ssd {
class Firmware;
} // namespace beacongnn::ssd

namespace beacongnn::sim {
class EventQueue;
} // namespace beacongnn::sim

namespace beacongnn::engines {

class CommandRouter;
class DieSampler;

/** Borrowed hardware of one device (none owned). */
struct DevicePort
{
    flash::FlashBackend *backend = nullptr;
    ssd::Firmware *fw = nullptr;
    /** Channel-level command router (BG-2 platforms; else null). */
    CommandRouter *router = nullptr;
    /** Die-level sampler bank of this device. */
    DieSampler *sampler = nullptr;
    /** Device-DRAM vertex/feature cache tier (null = cache off;
     *  DESIGN.md §14). Touched only from this device's event lane. */
    cache::VertexCache *cache = nullptr;
    /** Outbound P2P port (null on a single device). */
    sim::BandwidthResource *p2pOut = nullptr;
    /** This device's own event queue / local clock (multi-device
     *  runs; null on the single-device convenience path, which uses
     *  the engine's shared queue). Cross-device work must reach a
     *  foreign device's queue through the mailbox, never by direct
     *  scheduling (DESIGN.md §13, bgnlint BGN006). */
    sim::EventQueue *queue = nullptr;
    /** Chrome-trace pid base of this device's tracks. */
    std::uint32_t tracePidBase = 0;
};

/** Inter-device fabric parameters of an array run. */
struct FabricConfig
{
    /** P2P link hop latency added after the descriptor transfer. */
    sim::Tick p2pLatency = 0;
    /** Forwarded command descriptor size (bytes on the link). */
    std::uint32_t commandBytes = 16;
    /** Node → primary-owner device table (null/empty = single
     *  device). Replica k of a node is (owner + k) % devices —
     *  chained declustering, mirroring platforms::Placement. */
    const std::vector<std::uint32_t> *owner = nullptr;
    /** Replication factor R of the placement (DESIGN.md §17): the
     *  router may serve a node from any of its R replicas. 1 routes
     *  every command to the primary — the historical behaviour. */
    unsigned replication = 1;
    /** Per-device kill ticks (sim::kTickMax = healthy; null = no kill
     *  schedule). A device is unhealthy for routing decisions made at
     *  or after its kill tick. Borrowed from the platform runner. */
    const std::vector<sim::Tick> *deviceKillAt = nullptr;

    /** Any device scheduled to die? */
    bool
    anyDeviceKill() const
    {
        if (!deviceKillAt)
            return false;
        for (sim::Tick t : *deviceKillAt)
            if (t != sim::kTickMax)
                return true;
        return false;
    }
};

/** Per-device byte/command tallies of one mini-batch (array runs). */
struct DeviceTally
{
    std::uint64_t commands = 0;     ///< Commands executed here.
    std::uint64_t flashReads = 0;   ///< Pages sensed here.
    std::uint64_t featureBytes = 0; ///< Feature payload staged here.
    std::uint64_t p2pForwards = 0;  ///< Commands forwarded out.
    std::uint64_t p2pBytes = 0;     ///< Bytes pushed onto the P2P port.

    void
    merge(const DeviceTally &other)
    {
        commands += other.commands;
        flashReads += other.flashReads;
        featureBytes += other.featureBytes;
        p2pForwards += other.p2pForwards;
        p2pBytes += other.p2pBytes;
    }
};

} // namespace beacongnn::engines

#endif // BEACONGNN_ENGINES_DEVICE_PORT_H
