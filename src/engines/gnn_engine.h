/**
 * @file
 * The GNN data-preparation engine: an event-driven model of one
 * mini-batch's neighbour sampling + feature retrieval, parameterized
 * by where sampling runs (host CPU / firmware cores / flash dies),
 * whether DirectGraph removes the inter-hop host barrier, and whether
 * the channel-level hardware router replaces firmware command
 * processing. All eight evaluation platforms are points in this flag
 * space (see platforms/platform.h).
 *
 * The engine is functional *and* timed: commands carry real
 * DirectGraph addresses, samplers execute on real section content
 * (or layout metadata — equivalently, see directgraph/source.h), and
 * the resulting subgraph is returned for validation and for the
 * compute-stage workload measurement.
 */

#ifndef BEACONGNN_ENGINES_GNN_ENGINE_H
#define BEACONGNN_ENGINES_GNN_ENGINE_H

#include <functional>
#include <memory>
#include <span>

#include "directgraph/source.h"
#include "engines/command_router.h"
#include "engines/device_port.h"
#include "engines/die_sampler.h"
#include "flash/backend.h"
#include "gnn/model.h"
#include "gnn/sampler.h"
#include "gnn/subgraph.h"
#include "sim/event_queue.h"
#include "sim/mailbox.h"
#include "sim/stats.h"
#include "ssd/firmware.h"

namespace beacongnn::sim {
class MetricRegistry;
class TraceSink;
} // namespace beacongnn::sim

namespace beacongnn::engines {

/** Where neighbour sampling executes. */
enum class SamplingLoc : std::uint8_t
{
    Host,     ///< Host CPU (CC, GLIST): pages cross PCIe.
    Firmware, ///< SSD embedded cores (SmartSage, BG-1, BG-DG).
    Die,      ///< Die-level samplers (BG-SP, BG-DGSP, BG-2).
};

/** Feature flags selecting the data-preparation pipeline. */
struct PrepFlags
{
    SamplingLoc sampling = SamplingLoc::Firmware;
    /** DirectGraph: physical chaining, no inter-hop host barrier. */
    bool directGraph = false;
    /** Channel-level router: hardware command path (BG-2). */
    bool hwRouter = false;
    /** PCIe legs charged per neighbour-list page (host sampling). */
    unsigned pciePageLegs = 0;
    /** Feature-table pages are host-initiated block I/O that crosses
     *  PCIe (CC, SmartSage); otherwise the lookup is offloaded
     *  in-SSD (GLIST, BG-*). */
    bool featuresViaHost = false;
    /** Sampled node ids returned to the host each hop (SmartSage). */
    bool idsToHost = false;
    /** Coalesce secondary-section hits (§V-A); off = ablation. */
    bool coalesceSecondary = true;
    /** Deduplicate repeated nodes within a mini-batch: a node whose
     *  primary section was already fetched this batch is served from
     *  SSD DRAM instead of flash (extension beyond the paper; only
     *  meaningful on the streaming platforms). */
    bool dedupeNodes = false;
    /** §VIII future-work option: direct I/O between flash and the
     *  accelerator SRAM, bypassing SSD DRAM for feature payloads
     *  (lifts the DRAM wall of Fig. 18d). */
    bool bypassDram = false;
};

/** Aggregated flash-command lifetime statistics (Fig. 17). */
struct CmdStats
{
    sim::Accumulator waitBefore; ///< created -> sense start.
    sim::Accumulator flashTime;  ///< sense + transfer durations.
    sim::Accumulator waitAfter;  ///< queueing after flash until parsed.
    sim::Accumulator lifetime;   ///< created -> parsed.
    /** Lifetime distribution for tail percentiles (10 us buckets). */
    sim::Histogram lifetimeHist{10.0, 1024};

    /** Exact merge of another batch's statistics. */
    void merge(const CmdStats &other);

    /** Merge into @p reg under `<prefix>.*` (the registry's merge
     *  path: one call per batch accumulates the run totals). */
    void publish(sim::MetricRegistry &reg,
                 const std::string &prefix = "engine.cmd") const;

    /** Rebuild the aggregate from a registry (inverse of publish;
     *  zeros when the instruments are absent). */
    static CmdStats fromRegistry(const sim::MetricRegistry &reg,
                                 const std::string &prefix = "engine.cmd");
};

/** First/last activity of one hop (Fig. 16). */
struct HopSpan
{
    sim::Tick first = sim::kTickMax;
    sim::Tick last = 0;

    void
    cover(sim::Tick a, sim::Tick b)
    {
        first = std::min(first, a);
        last = std::max(last, b);
    }
};

/** Byte/operation tallies feeding the energy model. */
struct PrepTally
{
    std::uint64_t flashReads = 0;   ///< Pages sensed.
    std::uint64_t channelBytes = 0; ///< Bytes over flash channels.
    std::uint64_t dramBytes = 0;    ///< Bytes through SSD DRAM.
    std::uint64_t pcieBytes = 0;    ///< Bytes over the host link.
    sim::Tick hostCpuBusy = 0;      ///< Host CPU time consumed.
    std::uint64_t featureBytes = 0; ///< Feature payload staged.
    std::uint64_t abortedCommands = 0; ///< §VI-E on-die aborts.

    /** Sum another batch's tallies into this one. */
    void merge(const PrepTally &other);

    /** Add into @p reg counters under `<prefix>.*`. */
    void publish(sim::MetricRegistry &reg,
                 const std::string &prefix = "engine") const;

    /** Rebuild the totals from a registry (inverse of publish). */
    static PrepTally fromRegistry(const sim::MetricRegistry &reg,
                                  const std::string &prefix = "engine");
};

/** Result of one mini-batch data preparation. */
struct PrepResult
{
    bool ok = true;
    sim::Tick start = 0;
    sim::Tick finish = 0;
    std::vector<HopSpan> hops; ///< hops+1 entries (k samplings + feat).
    CmdStats cmdStats;
    PrepTally tally;
    gnn::Subgraph subgraph;
    std::uint64_t commands = 0;
    /** Flash reads avoided by batch-level node deduplication. */
    std::uint64_t dedupedReads = 0;
    /** Channel-router statistics (BG-2 only; zeros otherwise; summed
     *  over every device of an array run). */
    DispatchStats routerStats;
    /** Commands that crossed a P2P link (array runs; else 0). */
    std::uint64_t crossDevice = 0;
    /** Commands routed to a surviving replica because their primary
     *  device was killed (DESIGN.md §17; 0 without faults). */
    std::uint64_t replicaFallbacks = 0;
    /** Per-device tallies, one entry per device of the topology. */
    std::vector<DeviceTally> perDevice;
};

/** Observed health of one device (engine's routing-side view). */
struct DeviceHealth
{
    /** EWMA of this device's observed command latency (us; 0 until
     *  the first command completes). */
    double latencyEwmaUs = 0;
    /** Commands the EWMA has absorbed. */
    std::uint64_t samples = 0;
};

/**
 * The engine. One instance per platform run; batches prepared
 * serially. The engine executes the same pipeline over one or many
 * devices: each command runs against the hardware of the device that
 * owns its node (per the fabric's partition table), and follow-up
 * commands whose child lives on another device cross that device's
 * P2P port as a small descriptor before continuing remotely. With a
 * single port the fabric degenerates and the behaviour is exactly the
 * historical single-SSD pipeline.
 *
 * Multi-device execution model (DESIGN.md §13): every port carries its
 * own EventQueue (the device's local clock) and the engine keeps all
 * per-batch mutable state in per-device *lanes*, so a conservative
 * parallel driver (sim::ParallelSimulator) may run the device queues
 * on concurrent worker threads. Cross-device children never touch a
 * foreign queue directly — they become timestamped messages in a
 * mutex-sharded mailbox, delivered by deliverInbound() at window
 * boundaries in a deterministically sorted order. After the driver
 * reaches quiescence, completePrepared() merges the lanes in fixed
 * device order, which makes the results byte-identical for every
 * worker count.
 */
class GnnEngine
{
  public:
    /**
     * @param queue    Shared event queue.
     * @param ports    Per-device hardware (size >= 1; borrowed). Multi-
     *                 device topologies require a streaming
     *                 (DirectGraph) platform.
     * @param layout   DirectGraph layout (physical placement; also
     *                 used as the page map for conventional-format
     *                 platforms — see DESIGN.md §3).
     * @param g        Graph (golden adjacency).
     * @param model    GNN task config.
     * @param flags    Pipeline selection.
     * @param source   Section resolver (layout- or byte-backed).
     * @param fabric   Inter-device link parameters + ownership table.
     */
    GnnEngine(sim::EventQueue &queue, std::vector<DevicePort> ports,
              const dg::DirectGraphLayout &layout,
              const graph::Graph &g, const gnn::ModelConfig &model,
              const PrepFlags &flags, const dg::SectionSource &source,
              const FabricConfig &fabric = {});

    /**
     * Single-device convenience: the engine builds (and owns) the die
     * sampler and — when the flags ask for it — the channel router on
     * @p backend / @p fw, exactly as a one-device DeviceContext would.
     */
    GnnEngine(sim::EventQueue &queue, flash::FlashBackend &backend,
              ssd::Firmware &fw, const dg::DirectGraphLayout &layout,
              const graph::Graph &g, const gnn::ModelConfig &model,
              const PrepFlags &flags, const dg::SectionSource &source);

    ~GnnEngine();

    /**
     * Prepare one mini-batch. Schedules events on the queue; @p done
     * fires (at the finish time) with the result. Run the queue to
     * completion (or to the finish) after calling.
     */
    void prepare(sim::Tick start, std::uint64_t batch_id,
                 std::span<const graph::NodeId> targets,
                 std::function<void(PrepResult &&)> done);

    /**
     * Conservative-driver drain hook for device @p dev (multi-device
     * runs): take the device's pending cross-device messages out of
     * the mailbox, sort them by (arrival, source device, source
     * sequence) — a pure function of the message set, independent of
     * posting interleave — and bulk-schedule them onto the device's
     * own queue. Called by the driver between windows, when no
     * station is running. @return messages delivered.
     */
    std::size_t deliverInbound(unsigned dev);

    /**
     * Finish every in-flight multi-device batch after the parallel
     * driver reached quiescence: merge the per-device lanes (fixed
     * device order), stamp the finish time and invoke the done
     * callbacks. The runner calls this right after
     * sim::ParallelSimulator::run().
     */
    void completePrepared();

    /**
     * Absorb the per-device trace shards into the attached sink in
     * device order (multi-device runs; no-op otherwise). Call once
     * after the last batch, before writing the trace.
     */
    void flushTraceShards();

    const PrepFlags &flags() const { return _flags; }

    /** Active model spec. */
    const gnn::ModelConfig &modelSpec() const { return model; }

    /**
     * Switch the engine (and every attached die sampler) to a new
     * model spec between batches. Die-sampling pipelines re-broadcast
     * the global configuration frame before the next batch, exactly
     * as on first use. Call only when no batch is in flight.
     */
    void setModel(const gnn::ModelConfig &m);

    /** Time at which the global GNN configuration finished
     *  broadcasting to every die (0 before the first batch). */
    sim::Tick configuredAt() const { return configDone; }

    /**
     * Attach a Chrome-trace sink: every subsequent flash command
     * emits a nested async lifetime span (dispatch / sense / xfer /
     * consume children) and each batch a complete span. nullptr
     * detaches.
     */
    void setTraceSink(sim::TraceSink *sink);

    /** Publish engine-level instruments (config broadcast; with
     *  faults/replication armed also `engine.router.replica_fallbacks`)
     *  into @p reg. Per-device instruments (`engine.router.*`,
     *  `engine.sampler.*`) are published by the owning DeviceContext
     *  so array runs can namespace them per device. */
    void publishMetrics(sim::MetricRegistry &reg) const;

    /** Observed health of device @p dev: the lane's latency EWMA over
     *  completed commands (runner publishes `array.devD.health.*`).
     *  Read only between batches / after the run. */
    DeviceHealth healthOf(unsigned dev) const;

    /**
     * Attach the checked-build validator (DESIGN.md §16): the engine
     * reports each device-lane entry (streamCommand) as a touch and
     * posts cross-device mailbox messages through the checked
     * overload. Nullptr detaches; OFF builds compile the checks out.
     */
    void setValidator(sim::Validator *v);

  private:
    struct Batch;
    /** One cross-device command in flight through the mailbox. */
    struct CrossMsg;

    /** More than one device port? (Implies DirectGraph streaming.) */
    bool multiDevice() const { return ports.size() > 1; }

    /** Device @p dev's event queue: its own port queue on an array,
     *  the engine's shared queue on the single-device path. */
    sim::EventQueue &homeQueue(unsigned dev);

    /** Trace sink device @p dev's events go to: its private shard on
     *  an array (worker threads must never share a sink), the real
     *  sink otherwise. */
    sim::TraceSink *laneTrace(unsigned dev);

    /** Seed a multi-device batch: group the targets by owning device
     *  and schedule one injection event per device at @p ready. */
    void seedMulti(const std::shared_ptr<Batch> &b, sim::Tick ready);

    /** Merge a finished batch's per-device lanes into its result. */
    void mergeLanes(Batch &b);

    /** The first-hop command of target @p node (parentSlot unset). */
    flash::GnnSampleParams targetParams(const Batch &b,
                                        graph::NodeId node) const;

    /**
     * Broadcast the global GNN configuration command (§VI-C) to every
     * die once, before the first mini-batch; returns its completion.
     */
    sim::Tick broadcastConfig(sim::Tick start);

    /** Out-of-order (DirectGraph) pipeline. */
    void startStreaming(std::shared_ptr<Batch> b);
    void streamCommand(const std::shared_ptr<Batch> &b,
                       flash::GnnSampleParams params, sim::Tick ready,
                       unsigned from_channel, unsigned dev);

    /** Schedule a follow-up command at @p parsed: locally on @p dev,
     *  or — when its node lives elsewhere — across the P2P fabric. */
    void scheduleChild(const std::shared_ptr<Batch> &b,
                       flash::GnnSampleParams child, sim::Tick parsed,
                       unsigned this_channel, unsigned dev);

    /** Primary-owner device of @p node (0 without a fabric table). */
    unsigned ownerOf(graph::NodeId node) const;

    /** Is device @p dev healthy for a routing decision at @p now
     *  (i.e. not yet killed by the fault schedule)? */
    bool healthyAt(unsigned dev, sim::Tick now) const;

    /** Faults or replication armed? (Gates the health instruments so
     *  default runs stay byte-identical.) */
    bool faultsArmed() const;

    /** Sentinel of routeOn: no healthy replica survives. */
    static constexpr unsigned kNoReplica = ~0u;

    /**
     * Health- and load-aware replica choice for @p node at @p now
     * (DESIGN.md §17): among the node's replicas — replica k lives on
     * (primary + k) % devices — pick the least-loaded healthy one by
     * @p routed (the chooser's own routed-command table), breaking
     * ties on the lower device id. Returns kNoReplica when every
     * replica is dead. With replication = 1 and no kill schedule this
     * is exactly ownerOf — the historical routing, byte-identical.
     */
    unsigned routeOn(std::vector<std::uint64_t> &routed,
                     graph::NodeId node, sim::Tick now,
                     std::uint64_t *fallbacks);

    /** Router statistics summed over every port (peak queue = max). */
    DispatchStats routerTotals() const;

    /** Hop-by-hop (barrier) pipeline. */
    void startBarrier(std::shared_ptr<Batch> b);
    void runHop(const std::shared_ptr<Batch> &b, unsigned hop,
                sim::Tick hop_start);

    void finishBatch(const std::shared_ptr<Batch> &b, sim::Tick when);

    sim::EventQueue &queue;
    /** Components built by the single-device convenience constructor
     *  (empty when the caller supplies the ports). Declared before
     *  `ports` so the port can reference them during construction. */
    std::unique_ptr<DieSampler> ownedSampler;
    std::unique_ptr<CommandRouter> ownedRouter;
    /** Per-device hardware (size >= 1; all components borrowed). */
    std::vector<DevicePort> ports;
    const dg::DirectGraphLayout &layout;
    const graph::Graph &g;
    gnn::ModelConfig model;
    PrepFlags _flags;
    const dg::SectionSource &source;
    FabricConfig fabric;
    /** Cross-device command mailbox (multi-device; else null). */
    std::unique_ptr<sim::Mailbox<CrossMsg>> mailbox;
    /** Per-source-device message sequence numbers: the deterministic
     *  tie-break of the mailbox sort. Each entry is touched only by
     *  its own device's worker thread. */
    std::vector<std::uint64_t> p2pSeq; // bgnlint:lane-owned
    /** Per-source-device replica routing state (DESIGN.md §17): how
     *  many commands lane `src` has routed to each destination (the
     *  "least-loaded" input) and how many fell back off a killed
     *  primary. Kept per *source* lane — a shared cross-device table
     *  would make the choice depend on worker interleave.
     *  laneRouted[src][dst] is touched only by src's worker thread. */
    std::vector<std::vector<std::uint64_t>> laneRouted; // bgnlint:lane-owned
    std::vector<std::uint64_t> laneFallbacks; // bgnlint:lane-owned
    /** Host-side routing table for batch-target seeding (seedMulti
     *  runs on the prep thread before the driver starts). */
    std::vector<std::uint64_t> hostRouted;
    std::uint64_t hostFallbacks = 0;
    /** Per-device observed-latency EWMA (array.devD.health.*): each
     *  device measures its own completions, so entry d is touched
     *  only by d's worker thread. */
    std::vector<DeviceHealth> laneHealth; // bgnlint:lane-owned
    /** Checked-build hooks (DESIGN.md §16); unused when off. */
    sim::Validator *validator = nullptr;
    /** Multi-device batches awaiting completePrepared(). */
    std::vector<std::shared_ptr<Batch>> inFlight;
    /** Completion time of the one-time GNN config broadcast. */
    sim::Tick configDone = 0;
    /** Opt-in command-lifetime trace (not owned). */
    sim::TraceSink *trace = nullptr;
    /** Per-device trace shards (multi-device runs with a sink). */
    std::vector<std::unique_ptr<sim::TraceSink>> laneShards;
};

} // namespace beacongnn::engines

#endif // BEACONGNN_ENGINES_GNN_ENGINE_H
