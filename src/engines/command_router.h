/**
 * @file
 * Channel-level command router (§V-B, Fig. 12).
 *
 * The customized flash interface controller logic of BeaconGNN-2.0:
 * per-channel, per-die dispatch queues fed through a crossbar, a
 * round-robin command issuer per channel, and a data-stream parser
 * that classifies completed sampling results into new commands
 * (forwarded to the crossbar) and feature payloads (DMAed to DRAM
 * without per-transfer firmware configuration).
 *
 * Timing semantics:
 *  - routing a command costs one crossbar hop plus a (possibly zero)
 *    wait in the destination die's dispatch queue — the queue drains
 *    at the die's service rate, which the flash backend's die
 *    occupancy already models, so the dispatch queue here bounds the
 *    number of commands the hardware can hold per die and tracks
 *    occupancy statistics;
 *  - parsing a result frame costs routerParse.
 *
 * The router also keeps the §VI-E discipline: commands whose section
 * checks fail on-die are returned to the firmware rather than
 * re-routed.
 */

#ifndef BEACONGNN_ENGINES_COMMAND_ROUTER_H
#define BEACONGNN_ENGINES_COMMAND_ROUTER_H

#include <deque>
#include <vector>

#include "flash/address.h"
#include "flash/onfi.h"
#include "sim/resources.h"
#include "ssd/config.h"

namespace beacongnn::engines {

/** Per-die dispatch-queue occupancy statistics. */
struct DispatchStats
{
    std::uint64_t routed = 0;       ///< Commands forwarded.
    std::uint64_t parsed = 0;       ///< Result frames classified.
    std::uint64_t crossChannel = 0; ///< Commands that changed channel.
    std::uint64_t peakQueue = 0;    ///< Max per-die queue occupancy.
};

/** Hardware command path of BeaconGNN-2.0. */
class CommandRouter
{
  public:
    /**
     * @param ecfg     Engine latencies (crossbar hop, parse cost).
     * @param flash    Geometry (queue per die).
     * @param depth    Dispatch-queue slots per die.
     */
    CommandRouter(const ssd::EngineConfig &ecfg_,
                  const flash::FlashConfig &flash, unsigned depth = 64)
        : ecfg(ecfg_), codec(flash), queueDepth(std::max(1u, depth))
    {
        queues.resize(flash.totalDies());
    }

    /**
     * Route a command that became available on channel @p from_channel
     * at @p ready toward the die owning @p ppa.
     *
     * @return Time at which the command sits in the destination die's
     *         dispatch queue, eligible for the round-robin issuer.
     */
    sim::Tick
    route(sim::Tick ready, unsigned from_channel, flash::Ppa ppa)
    {
        unsigned die = codec.globalDieOf(ppa);
        unsigned to_channel = codec.channelOf(ppa);
        ++stats_.routed;
        if (from_channel != to_channel)
            ++stats_.crossChannel;
        // Crossbar hop to the destination channel's in-port.
        sim::Tick arrived = ready + ecfg.crossbarHop;
        // Dispatch-queue slot: with bounded hardware queues a full
        // queue back-pressures the producer until the issuer drains
        // an entry (entries drain when the die completes commands —
        // the caller reports that via release()).
        DieQueue &q = queues[die];
        q.trim(arrived);
        if (q.inFlight.size() >= queueDepth) {
            arrived = std::max(arrived, q.inFlight.front());
            q.trim(arrived);
        }
        q.inFlight.push_back(sim::kTickMax); // Placeholder until bound.
        stats_.peakQueue =
            std::max<std::uint64_t>(stats_.peakQueue,
                                    q.inFlight.size());
        return arrived;
    }

    /**
     * Bind the most recent routed command on @p ppa's die to its
     * completion time, so the queue slot frees when the die finishes.
     */
    void
    bindCompletion(flash::Ppa ppa, sim::Tick completes)
    {
        DieQueue &q = queues[codec.globalDieOf(ppa)];
        for (auto it = q.inFlight.rbegin(); it != q.inFlight.rend();
             ++it) {
            if (*it == sim::kTickMax) {
                *it = completes;
                break;
            }
        }
    }

    /**
     * Parse one completed result frame on the channel (classify into
     * commands and feature payload).
     * @return Time the classification completes.
     */
    sim::Tick
    parse(sim::Tick frame_ready)
    {
        ++stats_.parsed;
        return frame_ready + ecfg.routerParse;
    }

    const DispatchStats &stats() const { return stats_; }

  private:
    struct DieQueue
    {
        /** Completion times of commands occupying queue slots. */
        std::deque<sim::Tick> inFlight;

        void
        trim(sim::Tick now)
        {
            while (!inFlight.empty() && inFlight.front() <= now)
                inFlight.pop_front();
        }
    };

    ssd::EngineConfig ecfg;
    flash::AddressCodec codec;
    unsigned queueDepth;
    std::vector<DieQueue> queues;
    DispatchStats stats_;
};

} // namespace beacongnn::engines

#endif // BEACONGNN_ENGINES_COMMAND_ROUTER_H
