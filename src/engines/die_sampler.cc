#include "engines/die_sampler.h"

#include "gnn/sampler.h"

namespace beacongnn::engines {

flash::GnnSampleResult
DieSampler::executeImpl(const std::optional<dg::SectionData> &section,
                        const flash::GnnSampleParams &params) const
{
    flash::GnnSampleResult res;
    res.hop = params.hop;
    res.batchId = params.batchId;
    res.parentSlot = params.parentSlot;

    // §VI-E on-die checks: the section must exist and match the
    // command's expectation; otherwise stop immediately and hand
    // control back to the firmware.
    if (!section) {
        res.ok = false;
        return res;
    }
    const dg::SectionData &s = *section;
    bool expect_secondary = params.isSecondary;
    bool is_secondary = s.type == dg::SectionType::Secondary;
    if (s.type == dg::SectionType::Invalid ||
        expect_secondary != is_secondary) {
        res.ok = false;
        return res;
    }
    res.nodeId = s.node;

    auto make_child = [&](dg::DgAddress addr) {
        flash::EmittedCommand c;
        c.params.ppa = addr.page();
        c.params.sectionIndex = static_cast<std::uint8_t>(addr.section());
        c.params.hop = static_cast<std::uint8_t>(params.hop + 1);
        c.params.batchId = params.batchId;
        c.params.retrieveFeature = true;
        c.params.isSecondary = false;
        if (c.params.hop >= gcfg.hops) {
            // Final hop: feature retrieval only.
            c.params.finalHop = true;
            c.params.sampleCount = 0;
        } else {
            c.params.sampleCount = gcfg.fanoutAt(c.params.hop);
        }
        // Attention models ship a per-edge coefficient beside each
        // next-hop sample (computed by the sampler's vector unit).
        res.edgeCoeffBytes += gcfg.edgeCoeffBytes;
        res.follow.push_back(c);
    };

    if (!params.isSecondary) {
        // Primary section: the vector retriever copies the feature
        // from the cache register to the data register.
        if (params.retrieveFeature && s.hasFeature) {
            res.featureIncluded = true;
            res.featureBytes = gcfg.featureBytes();
        }
        if (params.finalHop || params.sampleCount == 0)
            return res;

        gnn::PrimaryDraws draws = gnn::drawPrimary(
            gcfg.seed, params.batchId, params.hop, s.node,
            params.sampleCount, s.totalNeighbors, s.inPage,
            s.secondaries);
        for (std::uint32_t pick : draws.inPagePicks)
            make_child(s.neighborAddrs[pick]);
        for (std::size_t j = 0; j < draws.secondaryHits.size(); ++j) {
            std::uint32_t hits = draws.secondaryHits[j];
            if (hits == 0)
                continue;
            // Commands for the same secondary section coalesce into
            // one carrying the hit count (§V-A). The ablation mode
            // issues one single-draw command per hit instead — same
            // picks (drawSecondary is keyed by draw index), more
            // flash reads.
            std::uint32_t per_cmd = opts.coalesceSecondary ? hits : 1;
            for (std::uint32_t first = 0; first < hits;
                 first += per_cmd) {
                flash::EmittedCommand c;
                c.params.ppa = s.secondaries[j].addr.page();
                c.params.sectionIndex = static_cast<std::uint8_t>(
                    s.secondaries[j].addr.section());
                c.params.hop = params.hop; // Same-hop continuation.
                c.params.batchId = params.batchId;
                c.params.isSecondary = true;
                c.params.secondaryOrdinal =
                    static_cast<std::uint16_t>(j);
                c.params.firstDraw = static_cast<std::uint8_t>(first);
                c.params.sampleCount =
                    static_cast<std::uint8_t>(per_cmd);
                c.params.retrieveFeature = false;
                c.params.nodeHint = s.node;
                res.follow.push_back(c);
            }
        }
    } else {
        // Secondary section: re-draw within the section only.
        auto picks = gnn::drawSecondary(
            gcfg.seed, params.batchId, params.hop, s.node,
            params.secondaryOrdinal, params.firstDraw,
            params.sampleCount, s.totalNeighbors);
        for (std::uint32_t idx : picks)
            make_child(s.neighborAddrs[idx]);
    }
    return res;
}

} // namespace beacongnn::engines
