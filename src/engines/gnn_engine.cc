#include "engines/gnn_engine.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cache/vertex_cache.h"
#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/trace_events.h"

namespace beacongnn::engines {

// ====================================================================
// CmdStats / PrepTally aggregation.
// ====================================================================

void
CmdStats::merge(const CmdStats &other)
{
    waitBefore.merge(other.waitBefore);
    flashTime.merge(other.flashTime);
    waitAfter.merge(other.waitAfter);
    lifetime.merge(other.lifetime);
    lifetimeHist.merge(other.lifetimeHist);
}

void
CmdStats::publish(sim::MetricRegistry &reg,
                  const std::string &prefix) const
{
    reg.accum(prefix + ".wait_before_us").merge(waitBefore);
    reg.accum(prefix + ".flash_time_us").merge(flashTime);
    reg.accum(prefix + ".wait_after_us").merge(waitAfter);
    reg.accum(prefix + ".lifetime_us").merge(lifetime);
    reg.histogram(prefix + ".lifetime_us_hist", lifetimeHist.bucketWidth(),
                  lifetimeHist.buckets().size())
        .merge(lifetimeHist);
}

CmdStats
CmdStats::fromRegistry(const sim::MetricRegistry &reg,
                       const std::string &prefix)
{
    CmdStats s;
    if (const auto *a = reg.findAccum(prefix + ".wait_before_us"))
        s.waitBefore = *a;
    if (const auto *a = reg.findAccum(prefix + ".flash_time_us"))
        s.flashTime = *a;
    if (const auto *a = reg.findAccum(prefix + ".wait_after_us"))
        s.waitAfter = *a;
    if (const auto *a = reg.findAccum(prefix + ".lifetime_us"))
        s.lifetime = *a;
    if (const auto *h = reg.findHistogram(prefix + ".lifetime_us_hist"))
        s.lifetimeHist = *h;
    return s;
}

void
PrepTally::merge(const PrepTally &other)
{
    flashReads += other.flashReads;
    channelBytes += other.channelBytes;
    dramBytes += other.dramBytes;
    pcieBytes += other.pcieBytes;
    hostCpuBusy += other.hostCpuBusy;
    featureBytes += other.featureBytes;
    abortedCommands += other.abortedCommands;
}

void
PrepTally::publish(sim::MetricRegistry &reg,
                   const std::string &prefix) const
{
    reg.counter(prefix + ".flash_reads").add(flashReads);
    reg.counter(prefix + ".channel_bytes").add(channelBytes);
    reg.counter(prefix + ".dram_bytes").add(dramBytes);
    reg.counter(prefix + ".pcie_bytes").add(pcieBytes);
    reg.counter(prefix + ".host_cpu_busy_ticks").add(hostCpuBusy);
    reg.counter(prefix + ".feature_bytes").add(featureBytes);
    reg.counter(prefix + ".aborted_commands").add(abortedCommands);
}

PrepTally
PrepTally::fromRegistry(const sim::MetricRegistry &reg,
                        const std::string &prefix)
{
    auto get = [&](const char *name) -> std::uint64_t {
        const sim::Counter *c = reg.findCounter(prefix + "." + name);
        return c ? c->value() : 0;
    };
    PrepTally t;
    t.flashReads = get("flash_reads");
    t.channelBytes = get("channel_bytes");
    t.dramBytes = get("dram_bytes");
    t.pcieBytes = get("pcie_bytes");
    t.hostCpuBusy = get("host_cpu_busy_ticks");
    t.featureBytes = get("feature_bytes");
    t.abortedCommands = get("aborted_commands");
    return t;
}

namespace {

/** Slot value used in command metadata for "no parent" (targets). */
constexpr std::uint32_t kRootSlot = gnn::kNoParent;

// On an array, a command's parentSlot crosses the fabric, so it must
// name a subgraph entry globally: (device << 24) | lane-local index.
// Device 0's packing is the identity, kRootSlot (all ones) is never a
// legal packed value (the lane-local space stops one short), and the
// constructor rejects topologies beyond 8 device bits.
constexpr unsigned kSlotBits = 24;
constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

std::uint32_t
packSlot(unsigned dev, std::uint32_t local)
{
    return (static_cast<std::uint32_t>(dev) << kSlotBits) | local;
}

unsigned
packedDev(std::uint32_t slot)
{
    return slot >> kSlotBits;
}

std::uint32_t
packedLocal(std::uint32_t slot)
{
    return slot & kSlotMask;
}

} // namespace

/** Per-mini-batch in-flight state. */
struct GnnEngine::Batch
{
    std::uint64_t id = 0;
    PrepResult res;
    std::function<void(PrepResult &&)> done;
    bool finished = false;

    // Streaming mode: commands in flight.
    std::uint64_t outstanding = 0;
    sim::Tick finishMax = 0;

    /**
     * Multi-device runs: all mutable per-batch state a device touches
     * while its queue runs on a worker thread. One lane per device;
     * completePrepared() merges them into `res` in device order, so
     * the merged result is a pure function of the lane contents —
     * independent of the worker count.
     */
    struct Lane
    {
        CmdStats cmdStats;
        PrepTally tally;
        std::vector<HopSpan> hops;
        std::uint64_t commands = 0;
        std::uint64_t dedupedReads = 0;
        std::uint64_t crossDevice = 0;
        std::uint64_t replicaFallbacks = 0;
        bool ok = true;
        sim::Tick finishMax = 0;
        /** This device's subgraph fragment (parents packed). */
        struct Entry
        {
            graph::NodeId node;
            std::uint8_t hop;
            gnn::Slot parent;
        };
        std::vector<Entry> frag;
    };
    std::vector<Lane> lanes;
    /** Host-side submit-complete time (multi mode finish floor). */
    sim::Tick readyAt = 0;

    // Streaming dedup: nodes whose primary section this batch
    // already fetched (maps to the time its data became available).
    // One map per device — SSD DRAM caches do not span the fabric.
    // bgnlint:lane-owned
    std::vector<std::unordered_map<std::uint64_t, sim::Tick>> fetched;

    // Barrier mode: visits of the next hop, accumulated this hop.
    struct Visit
    {
        graph::NodeId node;
        gnn::Slot parent;
    };
    std::vector<Visit> nextVisits;
    std::uint64_t hopOutstanding = 0;
    sim::Tick hopLast = 0;
};

/** One cross-device command in flight through the mailbox. */
struct GnnEngine::CrossMsg
{
    sim::Tick when = 0;        ///< Arrival at the destination device.
    unsigned srcDev = 0;       ///< Posting device (sort tie-break).
    std::uint64_t srcSeq = 0;  ///< Posting order within srcDev.
    std::shared_ptr<Batch> batch;
    flash::GnnSampleParams params;
    unsigned entryChannel = 0; ///< Crossbar entry at the destination.
};

GnnEngine::GnnEngine(sim::EventQueue &queue_, std::vector<DevicePort> ports_,
                     const dg::DirectGraphLayout &layout_,
                     const graph::Graph &graph_,
                     const gnn::ModelConfig &model_,
                     const PrepFlags &flags,
                     const dg::SectionSource &source_,
                     const FabricConfig &fabric_)
    : queue(queue_), ports(std::move(ports_)), layout(layout_),
      g(graph_), model(model_), _flags(flags), source(source_),
      fabric(fabric_)
{
    if (ports.empty())
        sim::fatal("GnnEngine: no device ports");
    for (const DevicePort &p : ports) {
        if (!p.backend || !p.fw || !p.sampler)
            sim::fatal("GnnEngine: incomplete device port");
        if (_flags.hwRouter && !p.router)
            sim::fatal("GnnEngine: hwRouter platform without a router");
    }
    if (ports.size() > 1) {
        if (!_flags.directGraph)
            sim::fatal("GnnEngine: multi-device arrays require a "
                       "streaming (DirectGraph) platform");
        if (ports.size() > (1u << (32 - kSlotBits)))
            sim::fatal("GnnEngine: too many devices for packed "
                       "subgraph slots");
        for (const DevicePort &p : ports) {
            if (!p.p2pOut)
                sim::fatal("GnnEngine: array port without a P2P link");
            if (!p.queue)
                sim::fatal("GnnEngine: array port without a device "
                           "event queue");
        }
        if (!fabric.owner || fabric.owner->size() < g.numNodes())
            sim::fatal("GnnEngine: array without an ownership table");
        mailbox = std::make_unique<sim::Mailbox<CrossMsg>>(ports.size());
        p2pSeq.assign(ports.size(), 0);
        laneRouted.assign(ports.size(),
                          std::vector<std::uint64_t>(ports.size(), 0));
        laneFallbacks.assign(ports.size(), 0);
        hostRouted.assign(ports.size(), 0);
    }
    laneHealth.assign(ports.size(), DeviceHealth{});
}

GnnEngine::GnnEngine(sim::EventQueue &queue_,
                     flash::FlashBackend &backend,
                     ssd::Firmware &firmware,
                     const dg::DirectGraphLayout &layout_,
                     const graph::Graph &graph_,
                     const gnn::ModelConfig &model_,
                     const PrepFlags &flags,
                     const dg::SectionSource &source_)
    : queue(queue_),
      ownedSampler(std::make_unique<DieSampler>(
          firmware.config().engine, gnnGlobalConfig(model_),
          DieSamplerOptions{flags.coalesceSecondary})),
      ownedRouter(flags.hwRouter
                      ? std::make_unique<CommandRouter>(
                            firmware.config().engine, backend.config())
                      : nullptr),
      ports{DevicePort{&backend, &firmware, ownedRouter.get(),
                       ownedSampler.get(), nullptr, nullptr, 0}},
      layout(layout_), g(graph_), model(model_), _flags(flags),
      source(source_)
{
    // Single-device construction: device 0 is the only lane and the
    // parallel driver never runs. bgnlint:allow(BGN007)
    ports[0].queue = &queue;
    laneHealth.assign(1, DeviceHealth{});
}

GnnEngine::~GnnEngine() = default;

sim::EventQueue &
GnnEngine::homeQueue(unsigned dev)
{
    return multiDevice() ? *ports[dev].queue : queue;
}

sim::TraceSink *
GnnEngine::laneTrace(unsigned dev)
{
    if (!multiDevice())
        return trace;
    return laneShards.empty() ? nullptr : laneShards[dev].get();
}

unsigned
GnnEngine::ownerOf(graph::NodeId node) const
{
    if (!fabric.owner || fabric.owner->empty())
        return 0;
    return (*fabric.owner)[node];
}

bool
GnnEngine::healthyAt(unsigned dev, sim::Tick now) const
{
    if (!fabric.deviceKillAt || dev >= fabric.deviceKillAt->size())
        return true;
    return now < (*fabric.deviceKillAt)[dev];
}

bool
GnnEngine::faultsArmed() const
{
    return fabric.replication > 1 || fabric.anyDeviceKill();
}

unsigned
GnnEngine::routeOn(std::vector<std::uint64_t> &routed,
                   graph::NodeId node, sim::Tick now,
                   std::uint64_t *fallbacks)
{
    const unsigned prim = ownerOf(node);
    const unsigned ndev = static_cast<unsigned>(ports.size());
    const unsigned reps =
        std::min(std::max(fabric.replication, 1u), ndev);
    if (reps == 1 && !fabric.deviceKillAt)
        return prim; // Historical single-owner routing, untouched.
    unsigned best = kNoReplica;
    for (unsigned k = 0; k < reps; ++k) {
        const unsigned d = (prim + k) % ndev;
        if (!healthyAt(d, now))
            continue;
        if (best == kNoReplica || routed[d] < routed[best] ||
            (routed[d] == routed[best] && d < best))
            best = d;
    }
    if (best == kNoReplica)
        return kNoReplica;
    ++routed[best];
    if (fallbacks && best != prim && !healthyAt(prim, now))
        ++*fallbacks;
    return best;
}

DeviceHealth
GnnEngine::healthOf(unsigned dev) const
{
    if (dev >= laneHealth.size())
        return {};
    return laneHealth[dev];
}

DispatchStats
GnnEngine::routerTotals() const
{
    DispatchStats total;
    for (const DevicePort &p : ports) {
        if (!p.router)
            continue;
        DispatchStats s = p.router->stats();
        total.routed += s.routed;
        total.parsed += s.parsed;
        total.crossChannel += s.crossChannel;
        total.peakQueue = std::max(total.peakQueue, s.peakQueue);
    }
    return total;
}

void
GnnEngine::prepare(sim::Tick start, std::uint64_t batch_id,
                   std::span<const graph::NodeId> targets,
                   std::function<void(PrepResult &&)> done)
{
    auto b = std::make_shared<Batch>();
    b->id = batch_id;
    b->done = std::move(done);
    b->res.start = start;
    b->res.hops.resize(model.hops + 1u);
    b->res.perDevice.resize(ports.size());
    b->fetched.resize(ports.size());

    const auto &host = ports[0].fw->config().host;
    // Before the first batch, the firmware broadcasts the global GNN
    // configuration command (hops, fanout, feature length; §VI-C) to
    // every die over the channels.
    start = std::max(start, broadcastConfig(start));
    // The host assembles the mini-batch and submits target addresses
    // (DirectGraph: primary-section addresses; conventional: LPAs)
    // through one customized NVMe command.
    sim::Tick ready = start + host.batchOverhead + host.nvmeRoundTrip +
                      host.translatePerNode * targets.size();
    b->res.tally.hostCpuBusy += host.translatePerNode * targets.size();

    for (graph::NodeId t : targets)
        b->nextVisits.push_back({t, kRootSlot});

    if (_flags.directGraph) {
        if (multiDevice()) {
            // Array: per-device lanes, run by the conservative
            // parallel driver. The batch completes via
            // completePrepared() after the driver quiesces.
            b->readyAt = ready;
            b->lanes.resize(ports.size());
            // Pre-sizing every lane happens on the prep thread
            // before the driver starts; no lane is live yet.
            // bgnlint:allow(BGN007)
            for (Batch::Lane &l : b->lanes)
                l.hops.resize(model.hops + 1u);
            inFlight.push_back(b);
            seedMulti(b, ready);
            return;
        }
        queue.scheduleAt(ready, [this, b] { startStreaming(b); });
    } else {
        queue.scheduleAt(ready, [this, b] { startBarrier(b); });
    }
}

void
GnnEngine::seedMulti(const std::shared_ptr<Batch> &b, sim::Tick ready)
{
    auto visits = std::move(b->nextVisits);
    b->nextVisits.clear();
    // The host links to every array member: each device's targets are
    // injected at that device's frontend, preserving the submission
    // order within a device. Each target goes to the least-loaded
    // healthy replica of its node (the host's own routed table — this
    // runs on the prep thread before the driver starts).
    std::vector<std::vector<Batch::Visit>> by_dev(ports.size());
    for (const auto &v : visits) {
        std::uint64_t fb = 0;
        const unsigned dev = routeOn(hostRouted, v.node, ready, &fb);
        if (fb) {
            b->res.replicaFallbacks += fb;
            hostFallbacks += fb;
        }
        if (dev == kNoReplica) {
            // Every replica of this target is dead: the submission
            // fails host-side before any command is injected.
            ++b->res.tally.abortedCommands;
            b->res.ok = false;
            continue;
        }
        by_dev[dev].push_back(v);
    }
    for (unsigned dev = 0; dev < ports.size(); ++dev) {
        if (by_dev[dev].empty())
            continue;
        // Seeding the device's own queue before the driver starts —
        // no station is running yet, so this direct schedule is safe.
        // bgnlint:allow(BGN006)
        ports[dev].queue->scheduleAt(
            ready, [this, b, dev, mine = std::move(by_dev[dev])] {
                sim::Tick now = homeQueue(dev).now();
                for (const auto &v : mine) {
                    flash::GnnSampleParams p = targetParams(*b, v.node);
                    p.parentSlot = v.parent;
                    streamCommand(
                        b, p, now,
                        ports[dev].backend->codec().channelOf(p.ppa),
                        dev);
                }
            });
    }
}

std::size_t
GnnEngine::deliverInbound(unsigned dev)
{
    if (!mailbox)
        return 0;
    std::vector<CrossMsg> msgs = mailbox->drain(dev);
    if (msgs.empty())
        return 0;
    // (arrival, source device, source sequence) is a total order over
    // the message set itself — the posting interleave (which depends
    // on worker scheduling) cannot influence the delivery order.
    std::sort(msgs.begin(), msgs.end(),
              [](const CrossMsg &a, const CrossMsg &x) {
                  if (a.when != x.when)
                      return a.when < x.when;
                  if (a.srcDev != x.srcDev)
                      return a.srcDev < x.srcDev;
                  return a.srcSeq < x.srcSeq;
              });
    std::vector<sim::EventQueue::TimedEvent> batch;
    batch.reserve(msgs.size());
    for (CrossMsg &m : msgs) {
        batch.push_back(
            {m.when, [this, b = std::move(m.batch), child = m.params,
                      entry = m.entryChannel, dev] {
                 streamCommand(b, child, homeQueue(dev).now(), entry,
                               dev);
             }});
    }
    // Delivering onto this station's *own* queue at a window boundary
    // is the one sanctioned non-mailbox schedule.
    // bgnlint:allow(BGN006)
    ports[dev].queue->bulkScheduleAt(std::move(batch));
    return msgs.size();
}

void
GnnEngine::completePrepared()
{
    for (const std::shared_ptr<Batch> &b : inFlight) {
        mergeLanes(*b);
        b->res.routerStats = routerTotals();
        sim::Tick finish = b->readyAt;
        for (const Batch::Lane &l : b->lanes)
            finish = std::max(finish, l.finishMax);
        b->finished = true;
        b->res.finish = finish;
        if (trace) {
            trace->complete("batch", "batch", flash::kTraceEnginePid,
                            static_cast<std::uint32_t>(b->id),
                            b->res.start, finish);
        }
        if (b->done)
            b->done(std::move(b->res));
    }
    inFlight.clear();
}

void
GnnEngine::mergeLanes(Batch &b)
{
    const std::size_t ndev = b.lanes.size();
    unsigned max_hop = 0;
    for (std::size_t d = 0; d < ndev; ++d) {
        const Batch::Lane &l = b.lanes[d];
        b.res.cmdStats.merge(l.cmdStats);
        b.res.tally.merge(l.tally);
        b.res.commands += l.commands;
        b.res.dedupedReads += l.dedupedReads;
        b.res.crossDevice += l.crossDevice;
        b.res.replicaFallbacks += l.replicaFallbacks;
        if (!l.ok)
            b.res.ok = false;
        for (std::size_t h = 0;
             h < b.res.hops.size() && h < l.hops.size(); ++h)
            b.res.hops[h].cover(l.hops[h].first, l.hops[h].last);
        for (const Batch::Lane::Entry &e : l.frag)
            max_hop = std::max<unsigned>(max_hop, e.hop);
    }
    // Subgraph merge in hop-major (hop, device, lane order): a child's
    // parent always sits at a strictly lower hop, so its global slot
    // exists before the child is added — and the order is a pure
    // function of the per-device fragments, hence worker-invariant.
    std::vector<std::vector<gnn::Slot>> global_of(ndev);
    for (std::size_t d = 0; d < ndev; ++d)
        global_of[d].assign(b.lanes[d].frag.size(), gnn::kNoParent);
    for (unsigned hop = 0; hop <= max_hop; ++hop) {
        for (std::size_t d = 0; d < ndev; ++d) {
            const Batch::Lane &l = b.lanes[d];
            for (std::size_t i = 0; i < l.frag.size(); ++i) {
                const Batch::Lane::Entry &e = l.frag[i];
                if (e.hop != hop)
                    continue;
                gnn::Slot parent = gnn::kNoParent;
                if (e.parent != gnn::kNoParent) {
                    unsigned pd = packedDev(e.parent);
                    std::uint32_t pl = packedLocal(e.parent);
                    if (pd >= ndev || pl >= global_of[pd].size() ||
                        global_of[pd][pl] == gnn::kNoParent)
                        sim::fatal("GnnEngine: dangling parent slot "
                                   "in lane merge");
                    parent = global_of[pd][pl];
                }
                global_of[d][i] =
                    b.res.subgraph.add(e.node, e.hop, parent);
            }
        }
    }
}

void
GnnEngine::setTraceSink(sim::TraceSink *sink)
{
    trace = sink;
    laneShards.clear();
    if (trace && multiDevice()) {
        // Worker threads must never share a sink: each device records
        // into its own shard, absorbed in device order afterwards.
        laneShards.resize(ports.size());
        // Trace-sink configuration seam: runs between batches while
        // the driver is quiescent. bgnlint:allow(BGN007)
        for (auto &s : laneShards)
            s = std::make_unique<sim::TraceSink>();
    }
    if (trace) {
        trace->setProcessName(flash::kTraceEnginePid, "engine");
        for (std::size_t d = 0; d < ports.size(); ++d) {
            std::string name =
                ports.size() > 1
                    ? "dev" + std::to_string(d) + " ssd dram"
                    : std::string("ssd dram");
            trace->setProcessName(
                ports[d].tracePidBase + flash::kTraceDramPid, name);
        }
    }
}

void
GnnEngine::setValidator(sim::Validator *v)
{
    validator = v;
    if (mailbox)
        mailbox->setValidator(v);
}

void
GnnEngine::flushTraceShards()
{
    if (!trace)
        return;
    // Merge seam: absorbs each device's shard in fixed device order
    // after the driver has quiesced. bgnlint:allow(BGN007)
    for (auto &s : laneShards) {
        if (!s)
            continue;
        trace->absorb(*s);
        s = std::make_unique<sim::TraceSink>();
    }
}

void
GnnEngine::publishMetrics(sim::MetricRegistry &reg) const
{
    // Per-device instruments (engine.sampler.*, engine.router.*) are
    // published by the owning DeviceContext; only the engine-global
    // broadcast time lives here.
    reg.gauge("engine.config_broadcast_ticks")
        .set(static_cast<double>(configDone));
    // The fallback counter exists only when faults/replication are
    // armed, so default snapshots stay byte-identical.
    if (faultsArmed()) {
        std::uint64_t fallbacks = hostFallbacks;
        for (std::uint64_t f : laneFallbacks)
            fallbacks += f;
        reg.counter("engine.router.replica_fallbacks").add(fallbacks);
    }
}

void
GnnEngine::finishBatch(const std::shared_ptr<Batch> &b, sim::Tick when)
{
    if (b->finished)
        return;
    b->finished = true;
    b->res.finish = when;
    if (trace) {
        trace->complete("batch", "batch", flash::kTraceEnginePid,
                        static_cast<std::uint32_t>(b->id), b->res.start,
                        when);
    }
    queue.scheduleAt(when, [b] {
        if (b->done)
            b->done(std::move(b->res));
    });
}

sim::Tick
GnnEngine::broadcastConfig(sim::Tick start)
{
    if (configDone != 0 || _flags.sampling != SamplingLoc::Die)
        return configDone;
    // One GNN-configuration command per die: command cycles plus the
    // parameter frame (Fig. 13) over the channel; dies on different
    // channels configure in parallel, dies on one channel serialize.
    // Every device of an array broadcasts concurrently, and the
    // devices are identical, so one device's completion is the array's.
    const auto &cfg = ports[0].backend->config();
    // hops/fanout/dim/seed parameters; a non-uniform fanout schedule
    // appends one byte per hop to the frame.
    const std::uint32_t frame =
        16 + (model.uniformFanout() ? 0u : std::uint32_t{model.hops});
    sim::Tick done = start;
    for (unsigned ch = 0; ch < cfg.channels; ++ch) {
        sim::Tick t = start;
        for (unsigned d = 0; d < cfg.diesPerChannel; ++d) {
            t += cfg.commandOverhead + cfg.channelTime(frame);
        }
        done = std::max(done, t);
    }
    configDone = done;
    return configDone;
}

void
GnnEngine::setModel(const gnn::ModelConfig &m)
{
    if (m == model)
        return;
    model = m;
    const flash::GnnGlobalConfig cfg = gnnGlobalConfig(m);
    // Model swap is a between-batch reconfiguration seam; every
    // lane's sampler takes the same config. bgnlint:allow(BGN007)
    for (DevicePort &p : ports)
        if (p.sampler)
            p.sampler->setGnnConfig(cfg);
    // The dies must learn the new parameters: re-arm the config
    // broadcast so the next batch pays it again.
    configDone = 0;
}

// ====================================================================
// Streaming (DirectGraph) pipeline: BG-DG, BG-DGSP, BG-2.
// ====================================================================

flash::GnnSampleParams
GnnEngine::targetParams(const Batch &b, graph::NodeId node) const
{
    flash::GnnSampleParams p;
    dg::DgAddress a = layout.primaryOf(node);
    p.ppa = a.page();
    p.sectionIndex = static_cast<std::uint8_t>(a.section());
    p.hop = 0;
    p.batchId = static_cast<std::uint32_t>(b.id);
    p.parentSlot = kRootSlot;
    p.retrieveFeature = true;
    if (model.hops == 0) {
        p.finalHop = true;
        p.sampleCount = 0;
    } else {
        p.sampleCount = model.fanoutAt(0);
    }
    p.nodeHint = node;
    return p;
}

void
GnnEngine::startStreaming(std::shared_ptr<Batch> b)
{
    sim::Tick now = queue.now();
    auto visits = std::move(b->nextVisits);
    b->nextVisits.clear();
    b->outstanding += visits.size();
    for (const auto &v : visits) {
        // Targets are injected by the host interface at the frontend
        // controller; their first hop is always a crossbar traversal.
        flash::GnnSampleParams p = targetParams(*b, v.node);
        p.parentSlot = v.parent;
        streamCommand(b, p, now,
                      ports[0].backend->codec().channelOf(p.ppa), 0);
    }
    if (visits.empty())
        finishBatch(b, now);
}

void
GnnEngine::streamCommand(const std::shared_ptr<Batch> &b,
                         flash::GnnSampleParams params, sim::Tick ready,
                         unsigned from_channel, unsigned dev)
{
    if constexpr (sim::kCheckedBuild) {
        // Every stream entry is a touch of this device's lane: the
        // executing thread must own station `dev` for the window.
        if (validator)
            validator->onTouch(dev, "streamCommand");
    }
    DevicePort &port = ports[dev];
    flash::FlashBackend &backend = *port.backend;
    ssd::Firmware &fw = *port.fw;
    DieSampler &sampler = *port.sampler;
    CommandRouter *router = port.router;
    const auto &flash_cfg = backend.config();
    sim::Tick created = ready;

    // Multi-device runs write all mutable batch state into this
    // device's lane (merged in device order afterwards); the
    // single-device path keeps writing the result directly — the
    // historical byte-exact behaviour.
    const bool multi = multiDevice();
    Batch::Lane *lane = multi ? &b->lanes[dev] : nullptr;
    CmdStats &cmd_stats = multi ? lane->cmdStats : b->res.cmdStats;
    PrepTally &tally = multi ? lane->tally : b->res.tally;
    std::vector<HopSpan> &hops = multi ? lane->hops : b->res.hops;
    sim::Tick &finish_max = multi ? lane->finishMax : b->finishMax;
    sim::TraceSink *tr = laneTrace(dev);
    auto add_entry = [&](std::uint64_t node, std::uint8_t hop,
                         gnn::Slot parent) -> gnn::Slot {
        if (!multi) {
            return b->res.subgraph.add(static_cast<graph::NodeId>(node),
                                       hop, parent);
        }
        if (lane->frag.size() >= kSlotMask)
            sim::fatal("GnnEngine: device subgraph fragment overflows "
                       "the packed slot space");
        lane->frag.push_back({static_cast<graph::NodeId>(node), hop,
                              parent});
        return packSlot(dev,
                        static_cast<gnn::Slot>(lane->frag.size() - 1));
    };

    // ---- Batch-level node deduplication (extension) -----------------
    // A primary section already fetched this batch is re-served from
    // SSD DRAM: the sampler logic still runs (different draws per
    // instance), but no flash read is issued.
    dg::DgAddress self_addr(params.ppa, params.sectionIndex);
    if (_flags.dedupeNodes && !params.isSecondary) {
        auto &fetched = b->fetched[dev];
        auto it = fetched.find(self_addr.raw);
        if (it != fetched.end()) {
            auto section = source.fetch(self_addr);
            flash::GnnSampleResult result =
                sampler.execute(section, params);
            sim::Tick avail = std::max(ready, it->second);
            sim::Grant mem = fw.dram().acquire(
                avail, result.frameBytes());
            sim::Tick parsed = mem.end;
            if (multi)
                ++lane->dedupedReads;
            else
                ++b->res.dedupedReads;
            if (result.featureIncluded) {
                tally.featureBytes += result.featureBytes;
                b->res.perDevice[dev].featureBytes += result.featureBytes;
            }
            gnn::Slot parent = params.parentSlot;
            if (result.ok) {
                parent = add_entry(result.nodeId, params.hop,
                                   params.parentSlot);
            }
            if (!multi)
                b->outstanding += result.follow.size();
            unsigned ch = backend.codec().channelOf(params.ppa);
            for (auto &f : result.follow) {
                f.params.parentSlot = parent;
                scheduleChild(b, f.params, parsed, ch, dev);
            }
            unsigned span = std::min<unsigned>(params.hop, model.hops);
            if (params.finalHop)
                span = model.hops;
            hops[span].cover(created, parsed);
            finish_max = std::max(finish_max, parsed);
            if (!multi && --b->outstanding == 0) {
                b->res.routerStats = routerTotals();
                finishBatch(b, b->finishMax);
            }
            return;
        }
    }

    // ---- Device-DRAM cache tier (DESIGN.md §14) ---------------------
    // A section resident in this device's vertex cache is served on
    // the short DRAM path: the sampler logic still runs (fresh draws
    // per instance, exactly like the dedupe path above), but no flash
    // sense is issued at all. Misses fall through to the sense path
    // below and fill the cache once the frame parses. The cache is
    // per device and touched only from its event lane, so array runs
    // stay byte-identical for any worker count.
    if (port.cache) {
        if (std::optional<sim::Tick> filled =
                port.cache->lookup(self_addr.raw)) {
            auto section = source.fetch(self_addr);
            flash::GnnSampleResult result =
                sampler.execute(section, params);
            sim::Tick avail = std::max(ready, *filled);
            sim::Grant mem =
                fw.dram().acquire(avail, result.frameBytes());
            sim::Tick parsed = mem.end;
            tally.dramBytes += result.frameBytes();
            if (result.featureIncluded) {
                tally.featureBytes += result.featureBytes;
                b->res.perDevice[dev].featureBytes += result.featureBytes;
            }
            gnn::Slot parent = params.parentSlot;
            if (!params.isSecondary && result.ok) {
                parent = add_entry(result.nodeId, params.hop,
                                   params.parentSlot);
            }
            if (!result.ok) {
                ++tally.abortedCommands;
                if (multi)
                    lane->ok = false;
                else
                    b->res.ok = false;
            }
            if (!multi)
                b->outstanding += result.follow.size();
            unsigned ch = backend.codec().channelOf(params.ppa);
            for (auto &f : result.follow) {
                f.params.parentSlot = parent;
                scheduleChild(b, f.params, parsed, ch, dev);
            }
            unsigned span = std::min<unsigned>(params.hop, model.hops);
            if (params.finalHop)
                span = model.hops;
            hops[span].cover(created, parsed);
            if (tr)
                tr->complete("cache-hit", "cache",
                             port.tracePidBase + flash::kTraceDramPid,
                             0, created, parsed);
            finish_max = std::max(finish_max, parsed);
            if (!multi && --b->outstanding == 0) {
                b->res.routerStats = routerTotals();
                finishBatch(b, b->finishMax);
            }
            return;
        }
    }

    // Nestable async lifetime span per command (Perfetto: one slice
    // with dispatch / sense / xfer / consume children).
    std::uint64_t span_id = 0;
    if (tr) {
        span_id = tr->nextId();
        tr->beginAsync("cmd", "cmd", span_id, created);
        tr->beginAsync(_flags.hwRouter ? "route" : "fw-issue", "cmd",
                       span_id, created);
    }

    // ---- Dispatch: hardware router vs firmware core ----------------
    sim::Tick dispatched;
    if (_flags.hwRouter) {
        // Crossbar forward into the destination channel's per-die
        // dispatch queue; the round-robin issuer signals the channel
        // control logic when the die idles (die/channel occupancy is
        // modelled by the backend).
        dispatched = router->route(ready, from_channel, params.ppa);
    } else {
        dispatched = fw.coreIssue(ready).end;
    }
    if (tr)
        tr->endAsync(_flags.hwRouter ? "route" : "fw-issue", "cmd",
                     span_id, dispatched);

    // ---- Functional sampling ---------------------------------------
    dg::DgAddress addr(params.ppa, params.sectionIndex);
    auto section = source.fetch(addr);
    flash::GnnSampleResult result = sampler.execute(section, params);

    bool die_sampling = _flags.sampling == SamplingLoc::Die;
    std::uint32_t transfer_bytes =
        die_sampling ? result.frameBytes() : flash_cfg.pageSize;
    sim::Tick on_die = die_sampling ? sampler.latency(result) : 0;

    // ---- Flash operation --------------------------------------------
    flash::FlashOpTiming t =
        backend.read(dispatched, params.ppa, transfer_bytes, on_die);
    if (t.failed) {
        // The die was killed before the sense completed: the command
        // aborts at failure-detection time. No frame parses, no page
        // crosses the channel (the backend counted the failed read)
        // and no children spawn.
        const sim::Tick failed_at = t.xferEnd;
        if (tr)
            tr->endAsync("cmd", "cmd", span_id, failed_at);
        ++tally.abortedCommands;
        if (multi) {
            lane->ok = false;
            ++lane->commands;
        } else {
            b->res.ok = false;
            ++b->res.commands;
        }
        ++b->res.perDevice[dev].commands;
        unsigned fspan = std::min<unsigned>(params.hop, model.hops);
        if (params.finalHop)
            fspan = model.hops;
        hops[fspan].cover(created, failed_at);
        finish_max = std::max(finish_max, failed_at);
        if (!multi && --b->outstanding == 0) {
            b->res.routerStats = routerTotals();
            finishBatch(b, b->finishMax);
        }
        return;
    }
    ++tally.flashReads;
    ++b->res.perDevice[dev].flashReads;
    tally.channelBytes += transfer_bytes;
    if (_flags.hwRouter)
        router->bindCompletion(params.ppa, t.xferEnd);
    if (tr) {
        tr->beginAsync("sense", "cmd", span_id, t.senseStart);
        tr->endAsync("sense", "cmd", span_id, t.senseEnd);
        tr->beginAsync("xfer", "cmd", span_id, t.xferStart);
        tr->endAsync("xfer", "cmd", span_id, t.xferEnd);
    }

    // ---- Result consumption ------------------------------------------
    sim::Tick parsed;
    if (_flags.hwRouter) {
        // The stream parser classifies the frame; feature payload DMAs
        // into DRAM without per-transfer firmware configuration.
        parsed = router->parse(t.xferEnd);
        if (result.featureIncluded && !_flags.bypassDram) {
            // The mini-batch is only complete once its feature
            // payloads land in SSD DRAM — this is the DRAM-bandwidth
            // wall of Fig. 18d.
            sim::Grant mem =
                fw.dram().acquire(parsed, result.featureBytes);
            tally.dramBytes += result.featureBytes;
            finish_max = std::max(finish_max, mem.end);
            if (tr)
                tr->complete("feature-dma", "dram",
                             port.tracePidBase + flash::kTraceDramPid,
                             0, parsed, mem.end);
        }
    } else if (die_sampling) {
        // BG-DGSP: frames land in DRAM, a core parses each.
        sim::Grant mem = fw.dram().acquire(t.xferEnd, transfer_bytes);
        tally.dramBytes += transfer_bytes;
        parsed = fw.coreComplete(mem.end).end;
    } else {
        // BG-DG: full page to DRAM, core parses and samples in
        // firmware (same two-level DirectGraph discipline).
        sim::Grant mem = fw.dram().acquire(t.xferEnd, transfer_bytes);
        tally.dramBytes += transfer_bytes;
        parsed = fw.coreComplete(mem.end,
                                 fw.config().controller.coreSampleTime)
                     .end;
    }
    if (tr) {
        tr->beginAsync("consume", "cmd", span_id, t.xferEnd);
        tr->endAsync("consume", "cmd", span_id, parsed);
        tr->endAsync("cmd", "cmd", span_id, parsed);
    }
    if (result.featureIncluded) {
        tally.featureBytes += result.featureBytes;
        b->res.perDevice[dev].featureBytes += result.featureBytes;
    }
    if (_flags.dedupeNodes && !params.isSecondary)
        b->fetched[dev].emplace(self_addr.raw, parsed);
    if (port.cache)
        port.cache->fill(self_addr.raw, parsed);

    // ---- Bookkeeping ---------------------------------------------------
    if (multi)
        ++lane->commands;
    else
        ++b->res.commands;
    ++b->res.perDevice[dev].commands;
    sim::Tick wait_before = t.senseStart - created;
    sim::Tick flash_time =
        (t.senseEnd - t.senseStart) + (t.xferEnd - t.xferStart);
    cmd_stats.waitBefore.add(sim::toMicros(wait_before));
    cmd_stats.flashTime.add(sim::toMicros(flash_time));
    cmd_stats.waitAfter.add(
        sim::toMicros(parsed - created - wait_before - flash_time));
    cmd_stats.lifetime.add(sim::toMicros(parsed - created));
    cmd_stats.lifetimeHist.add(sim::toMicros(parsed - created));
    // Per-device health EWMA (alpha = 1/8): this device's own view of
    // its command latency, published as array.devD.health.* when
    // faults are armed. Lane-owned — never a routing input shared
    // across lanes, so determinism holds for any worker count.
    DeviceHealth &dh = laneHealth[dev];
    const double lat_us = sim::toMicros(parsed - created);
    dh.latencyEwmaUs = dh.samples == 0
                           ? lat_us
                           : 0.875 * dh.latencyEwmaUs + 0.125 * lat_us;
    ++dh.samples;
    unsigned span = std::min<unsigned>(params.hop, model.hops);
    if (params.finalHop)
        span = model.hops;
    hops[span].cover(created, parsed);

    if (!result.ok) {
        ++tally.abortedCommands;
        if (multi)
            lane->ok = false;
        else
            b->res.ok = false;
    }

    // ---- Subgraph + children ------------------------------------------
    gnn::Slot parent_for_children;
    if (!params.isSecondary && result.ok) {
        parent_for_children =
            add_entry(result.nodeId, params.hop, params.parentSlot);
    } else {
        parent_for_children = params.parentSlot;
    }

    if (!multi)
        b->outstanding += result.follow.size();
    unsigned this_channel = backend.codec().channelOf(params.ppa);
    for (auto &f : result.follow) {
        f.params.parentSlot = parent_for_children;
        scheduleChild(b, f.params, parsed, this_channel, dev);
    }

    finish_max = std::max(finish_max, parsed);
    if (!multi && --b->outstanding == 0) {
        b->res.routerStats = routerTotals();
        finishBatch(b, b->finishMax);
    }
}

void
GnnEngine::scheduleChild(const std::shared_ptr<Batch> &b,
                         flash::GnnSampleParams child, sim::Tick parsed,
                         unsigned this_channel, unsigned dev)
{
    unsigned child_dev = dev;
    if (ports.size() > 1 && !child.isSecondary) {
        // Primary follow-ups may target a node another device owns;
        // secondary sections always sit beside their primary. With
        // replication the child goes to the least-loaded healthy
        // replica (this lane's own routed table), which may well be
        // this device — replication cuts cross-device traffic too.
        if (auto sp = layout.find(
                dg::DgAddress(child.ppa, child.sectionIndex))) {
            std::uint64_t fb = 0;
            child_dev =
                routeOn(laneRouted[dev], sp->node, parsed, &fb);
            if (fb) {
                b->lanes[dev].replicaFallbacks += fb;
                laneFallbacks[dev] += fb;
            }
            if (child_dev == kNoReplica) {
                // Every replica of the child is dead: the follow-up
                // is lost and the batch degrades.
                ++b->lanes[dev].tally.abortedCommands;
                b->lanes[dev].ok = false;
                return;
            }
        }
    }
    if (child_dev == dev) {
        // Same-device follow-up: the device schedules onto its own
        // local clock (the engine's shared queue on a single device).
        homeQueue(dev).scheduleAt(
            parsed, [this, b, child, this_channel, dev] {
                streamCommand(b, child, homeQueue(dev).now(),
                              this_channel, dev);
            });
        return;
    }
    // Cross-device hop (§VIII): the command descriptor crosses the
    // source device's P2P port, then enters the owner's crossbar at
    // the child's channel like a host-injected target. The arrival is
    // at least one fabric lookahead away, so it is posted as a
    // mailbox message — never scheduled onto the foreign queue, which
    // may be mid-window on another worker thread (DESIGN.md §13).
    sim::Grant link =
        ports[dev].p2pOut->acquire(parsed, fabric.commandBytes);
    sim::Tick arrive = link.end + fabric.p2pLatency;
    ++b->lanes[dev].crossDevice;
    ++b->res.perDevice[dev].p2pForwards;
    b->res.perDevice[dev].p2pBytes += fabric.commandBytes;
    unsigned entry =
        ports[child_dev].backend->codec().channelOf(child.ppa);
    mailbox->post(child_dev,
                  CrossMsg{arrive, dev, p2pSeq[dev]++, b, child,
                           entry},
                  arrive, dev, homeQueue(dev).now());
}
// ====================================================================
// Hop-by-hop (barrier) pipeline: CC, GLIST, SmartSage, BG-1, BG-SP.
//
// Conventional (non-DirectGraph) data layout: the graph structure and
// the feature table are separate in-storage objects (Table I), so a
// visit costs neighbour-list page reads for sampling plus a separate
// feature-table page read. Hops are separated by host-SSD round trips.
// ====================================================================

void
GnnEngine::startBarrier(std::shared_ptr<Batch> b)
{
    runHop(b, 0, queue.now());
}

namespace {

/**
 * Synthetic feature-table region: vector of node v lives in a page of
 * a block region at the top of the device, striped across channels
 * and dies like any large file.
 */
flash::Ppa
featureTablePpa(const flash::FlashConfig &cfg, graph::NodeId node,
                std::uint32_t feat_bytes)
{
    std::uint32_t per_page = std::max<std::uint32_t>(
        1, cfg.pageSize / std::max<std::uint32_t>(1, feat_bytes));
    std::uint64_t page_idx = node / per_page;
    std::uint64_t total_blocks = cfg.totalBlocks();
    // Stripe the region across one block per die so feature lookups
    // spread over the whole backend (a multi-GB table does naturally).
    std::uint64_t stripe = std::max(1u, cfg.totalDies());
    std::uint64_t block =
        total_blocks - 1 - (page_idx % stripe) % total_blocks;
    std::uint64_t page_in_block =
        (page_idx / stripe) % cfg.pagesPerBlock;
    return static_cast<flash::Ppa>(block * cfg.pagesPerBlock +
                                   page_in_block);
}

} // namespace

void
GnnEngine::runHop(const std::shared_ptr<Batch> &b, unsigned hop,
                  sim::Tick hop_start)
{
    // The barrier pipeline is single-device (the constructor rejects
    // multi-device non-streaming platforms), so port 0 is the SSD.
    flash::FlashBackend &backend = *ports[0].backend;
    ssd::Firmware &fw = *ports[0].fw;
    DieSampler &sampler = *ports[0].sampler;
    const auto &ctl = fw.config().controller;
    const auto &host = fw.config().host;
    const auto &flash_cfg = backend.config();
    const std::uint32_t feat_bytes = std::uint32_t{model.featureDim} * 2;
    const bool die_sampling = _flags.sampling == SamplingLoc::Die;
    const bool host_sampling = _flags.sampling == SamplingLoc::Host;
    const bool final_hop = hop >= model.hops;

    auto visits = std::move(b->nextVisits);
    b->nextVisits.clear();
    if (visits.empty()) {
        finishBatch(b, hop_start);
        return;
    }

    // Every read of the hop is computed analytically; the hop barrier
    // is the maximum parse-complete time across them.
    sim::Tick last = hop_start;

    /**
     * One backend read through the firmware: issue core (+ FTL lookup
     * for the conventional LPA path), flash, DMA to DRAM, completion
     * core, then optionally the host path (software-stack service and
     * PCIe transfer). Records Fig. 16/17 statistics.
     */
    auto do_read = [this, &ctl, &host, &fw, &backend, b, hop](
                       sim::Tick ready, flash::Ppa ppa,
                       std::uint32_t bytes, sim::Tick on_die,
                       sim::Tick core_extra, bool to_host,
                       std::uint32_t pcie_bytes) -> sim::Tick {
        sim::Tick created = ready;
        std::uint64_t span_id = 0;
        if (trace) {
            span_id = trace->nextId();
            trace->beginAsync("cmd", "cmd", span_id, created);
            trace->beginAsync(to_host ? "host-io" : "fw-issue", "cmd",
                              span_id, created);
        }
        if (to_host) {
            // Host software stack issues the block I/O.
            sim::Grant io = fw.hostIoService(ready);
            b->res.tally.hostCpuBusy += host.ioOverhead;
            ready = io.end;
        }
        sim::Tick dispatched =
            fw.coreIssue(ready, ctl.ftlLookupTime).end;
        if (trace)
            trace->endAsync(to_host ? "host-io" : "fw-issue", "cmd",
                            span_id, dispatched);
        // ---- Device-DRAM cache probe (DESIGN.md §14) ----------------
        // Die-assisted reads (on_die > 0) always sense — the sampler
        // works beside the die — so only plain page reads participate.
        // A hit is still a host-visible command (counted, cmd-stats
        // with zero flash time) but no flash operation is issued.
        cache::VertexCache *vc = ports[0].cache;
        const bool cacheable = vc && on_die == 0;
        std::optional<sim::Tick> filled =
            cacheable ? vc->lookup(ppa) : std::nullopt;
        sim::Tick sense_start;
        sim::Tick xfer_end;
        sim::Tick flash_time;
        if (filled) {
            sense_start = dispatched;
            xfer_end = std::max(dispatched, *filled);
            flash_time = 0;
        } else {
            flash::FlashOpTiming t =
                backend.read(dispatched, ppa, bytes, on_die);
            ++b->res.tally.flashReads;
            ++b->res.perDevice[0].flashReads;
            b->res.tally.channelBytes += bytes;
            sense_start = t.senseStart;
            xfer_end = t.xferEnd;
            flash_time =
                (t.senseEnd - t.senseStart) + (t.xferEnd - t.xferStart);
            if (trace) {
                trace->beginAsync("sense", "cmd", span_id, t.senseStart);
                trace->endAsync("sense", "cmd", span_id, t.senseEnd);
                trace->beginAsync("xfer", "cmd", span_id, t.xferStart);
                trace->endAsync("xfer", "cmd", span_id, t.xferEnd);
            }
        }
        sim::Grant mem = fw.dram().acquire(xfer_end, bytes);
        b->res.tally.dramBytes += bytes;
        sim::Tick parsed = fw.coreComplete(mem.end, core_extra).end;
        if (cacheable && !filled)
            vc->fill(ppa, parsed);
        if (to_host && pcie_bytes > 0) {
            sim::Grant link = fw.pcie().acquire(parsed, pcie_bytes);
            b->res.tally.pcieBytes += pcie_bytes;
            parsed = link.end;
        }
        if (trace) {
            if (filled)
                trace->complete("cache-hit", "cache",
                                ports[0].tracePidBase +
                                    flash::kTraceDramPid,
                                0, created, parsed);
            trace->beginAsync("consume", "cmd", span_id, xfer_end);
            trace->endAsync("consume", "cmd", span_id, parsed);
            trace->endAsync("cmd", "cmd", span_id, parsed);
        }
        ++b->res.commands;
        ++b->res.perDevice[0].commands;
        sim::Tick wait_before = sense_start - created;
        b->res.cmdStats.waitBefore.add(sim::toMicros(wait_before));
        b->res.cmdStats.flashTime.add(sim::toMicros(flash_time));
        b->res.cmdStats.waitAfter.add(
            sim::toMicros(parsed - created - wait_before - flash_time));
        b->res.cmdStats.lifetime.add(sim::toMicros(parsed - created));
        b->res.cmdStats.lifetimeHist.add(sim::toMicros(parsed - created));
        b->res.hops[std::min<unsigned>(hop, model.hops)].cover(created,
                                                               parsed);
        return parsed;
    };

    // Secondary continuations discovered during the visit loop; they
    // become ready when their primary result parses, so they are
    // issued afterwards in ready-time order (exact FIFO pools).
    struct PendingContinuation
    {
        sim::Tick ready;
        flash::GnnSampleParams params;
        gnn::Slot slot;
    };
    std::vector<PendingContinuation> pending_continuations;

    for (const auto &v : visits) {
        const dg::NodeLayout &nl = layout.nodes[v.node];
        dg::DgAddress primary = nl.primary;
        gnn::Slot slot = b->res.subgraph.add(
            v.node, static_cast<std::uint8_t>(hop), v.parent);

        // ---- Feature retrieval ---------------------------------------
        // BG-SP converts the dataset into its co-located in-SSD
        // format (feature vectors beside neighbour lists — the data
        // the die-level vector retriever needs), so features arrive
        // inside the sampling frames; only final-hop nodes need a
        // dedicated feature command. The conventional platforms keep
        // the feature table as a separate object (Table I) and read
        // one of its pages per visit.
        b->res.tally.featureBytes += feat_bytes;
        b->res.perDevice[0].featureBytes += feat_bytes;
        flash::Ppa fppa =
            featureTablePpa(flash_cfg, v.node, feat_bytes);
        if (die_sampling) {
            if (final_hop) {
                // Feature frame from the node's primary page.
                sim::Tick fparsed = do_read(
                    hop_start, primary.page(), 16 + feat_bytes,
                    fw.config().engine.samplerSetup, 0, false, 0);
                last = std::max(last, fparsed);
            }
        } else if (_flags.featuresViaHost) {
            // CC / SmartSage: host block read of the feature page,
            // page over PCIe to the host, vector onward to the
            // discrete accelerator.
            sim::Tick fparsed =
                do_read(hop_start, fppa, flash_cfg.pageSize, 0, 0, true,
                        flash_cfg.pageSize + feat_bytes);
            last = std::max(last, fparsed);
        } else {
            // GLIST / BG-1: offloaded table lookup, page to SSD DRAM.
            sim::Tick fparsed = do_read(hop_start, fppa,
                                        flash_cfg.pageSize, 0, 0, false,
                                        0);
            last = std::max(last, fparsed);
        }

        if (final_hop)
            continue;

        // ---- Neighbour-list fetch + sampling ------------------------
        if (die_sampling) {
            // BG-SP: die-level sampler on the graph-structure pages;
            // next-hop node ids still return to the host for
            // translation each hop.
            flash::GnnSampleParams p;
            p.ppa = primary.page();
            p.sectionIndex = static_cast<std::uint8_t>(primary.section());
            p.hop = static_cast<std::uint8_t>(std::min<unsigned>(hop, 255));
            p.batchId = static_cast<std::uint32_t>(b->id);
            p.retrieveFeature = true; // Co-located format (see above).
            p.sampleCount = model.fanoutAt(
                static_cast<unsigned>(std::min<unsigned>(hop, 255)));

            auto section = source.fetch(primary);
            flash::GnnSampleResult r = sampler.execute(section, p);
            if (!r.ok) {
                ++b->res.tally.abortedCommands;
                b->res.ok = false;
            }
            for (auto &f : r.follow) {
                if (f.params.isSecondary) {
                    // Coalesced secondary continuations chase the
                    // primary result within the same hop; they are
                    // deferred and issued in ready-time order below
                    // so the firmware pools stay exact FIFO.
                    pending_continuations.push_back({0, f.params, slot});
                } else if (auto sp = layout.find(dg::DgAddress(
                               f.params.ppa, f.params.sectionIndex))) {
                    b->nextVisits.push_back({sp->node, slot});
                }
            }
            std::size_t first_new =
                pending_continuations.size() - std::count_if(
                    r.follow.begin(), r.follow.end(),
                    [](const flash::EmittedCommand &f) {
                        return f.params.isSecondary;
                    });
            sim::Tick parsed =
                do_read(hop_start, primary.page(), r.frameBytes(),
                        sampler.latency(r), 0, false, 0);
            last = std::max(last, parsed);
            for (std::size_t i = first_new;
                 i < pending_continuations.size(); ++i) {
                pending_continuations[i].ready = parsed;
            }
        } else {
            // Host (CC, GLIST) or firmware (SmartSage, BG-1) sampling:
            // the full neighbour list is fetched — the primary page
            // plus every secondary page (read amplification,
            // Challenge 2).
            std::vector<flash::Ppa> pages;
            pages.push_back(primary.page());
            std::unordered_set<flash::Ppa> seen;
            for (const auto &r : nl.secondaries) {
                if (seen.insert(r.addr.page()).second)
                    pages.push_back(r.addr.page());
            }

            // Functional sampling: plain uniform draws over the full
            // neighbour list (csrSample semantics).
            if (nl.degree > 0) {
                const std::uint8_t fan = model.fanoutAt(
                    static_cast<unsigned>(std::min<unsigned>(hop, 255)));
                for (std::uint8_t i = 0; i < fan; ++i) {
                    auto r = static_cast<std::uint32_t>(sim::keyedBelow(
                        model.seed, b->id,
                        static_cast<std::uint8_t>(hop), v.node, i,
                        nl.degree));
                    b->nextVisits.push_back({g.neighbor(v.node, r), slot});
                }
            }

            for (std::size_t i = 0; i < pages.size(); ++i) {
                // Firmware sampling pays the software sampler cost on
                // the visit's last page.
                sim::Tick extra =
                    (!host_sampling && i + 1 == pages.size())
                        ? ctl.coreSampleTime
                        : 0;
                sim::Tick parsed = do_read(
                    hop_start, pages[i], flash_cfg.pageSize, 0, extra,
                    host_sampling,
                    host_sampling ? flash_cfg.pageSize *
                                        _flags.pciePageLegs
                                  : 0);
                last = std::max(last, parsed);
            }
        }
    }

    // Issue the deferred secondary continuations in ready order.
    std::stable_sort(pending_continuations.begin(),
                     pending_continuations.end(),
                     [](const PendingContinuation &a,
                        const PendingContinuation &x) {
                         return a.ready < x.ready;
                     });
    for (const auto &pc : pending_continuations) {
        auto csec = source.fetch(
            dg::DgAddress(pc.params.ppa, pc.params.sectionIndex));
        flash::GnnSampleResult cr = sampler.execute(csec, pc.params);
        if (!cr.ok) {
            ++b->res.tally.abortedCommands;
            b->res.ok = false;
        }
        for (auto &f : cr.follow) {
            if (auto sp = layout.find(dg::DgAddress(
                    f.params.ppa, f.params.sectionIndex))) {
                b->nextVisits.push_back({sp->node, pc.slot});
            }
        }
        sim::Tick cparsed = do_read(pc.ready, pc.params.ppa,
                                    cr.frameBytes(),
                                    sampler.latency(cr), 0, false, 0);
        last = std::max(last, cparsed);
    }

    if (final_hop || b->nextVisits.empty()) {
        finishBatch(b, last);
        return;
    }

    // Inter-hop host-SSD communication barrier (§III Challenge 1).
    std::size_t n_children = b->nextVisits.size();
    sim::Tick host_time = host.translatePerNode * n_children;
    if (host_sampling)
        host_time += host.samplePerNode * visits.size();
    b->res.tally.hostCpuBusy += host_time;
    if (_flags.idsToHost) {
        sim::Grant link = fw.pcie().acquire(last, 4ull * n_children);
        b->res.tally.pcieBytes += 4ull * n_children;
        last = link.end;
    }
    sim::Tick next_start = last + host_time + host.nvmeRoundTrip;
    unsigned next_hop = hop + 1;
    queue.scheduleAt(next_start, [this, b, next_hop] {
        runHop(b, next_hop, queue.now());
    });
}

} // namespace beacongnn::engines
