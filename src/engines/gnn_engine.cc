#include "engines/gnn_engine.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/trace_events.h"

namespace beacongnn::engines {

// ====================================================================
// CmdStats / PrepTally aggregation.
// ====================================================================

void
CmdStats::merge(const CmdStats &other)
{
    waitBefore.merge(other.waitBefore);
    flashTime.merge(other.flashTime);
    waitAfter.merge(other.waitAfter);
    lifetime.merge(other.lifetime);
    lifetimeHist.merge(other.lifetimeHist);
}

void
CmdStats::publish(sim::MetricRegistry &reg,
                  const std::string &prefix) const
{
    reg.accum(prefix + ".wait_before_us").merge(waitBefore);
    reg.accum(prefix + ".flash_time_us").merge(flashTime);
    reg.accum(prefix + ".wait_after_us").merge(waitAfter);
    reg.accum(prefix + ".lifetime_us").merge(lifetime);
    reg.histogram(prefix + ".lifetime_us_hist", lifetimeHist.bucketWidth(),
                  lifetimeHist.buckets().size())
        .merge(lifetimeHist);
}

CmdStats
CmdStats::fromRegistry(const sim::MetricRegistry &reg,
                       const std::string &prefix)
{
    CmdStats s;
    if (const auto *a = reg.findAccum(prefix + ".wait_before_us"))
        s.waitBefore = *a;
    if (const auto *a = reg.findAccum(prefix + ".flash_time_us"))
        s.flashTime = *a;
    if (const auto *a = reg.findAccum(prefix + ".wait_after_us"))
        s.waitAfter = *a;
    if (const auto *a = reg.findAccum(prefix + ".lifetime_us"))
        s.lifetime = *a;
    if (const auto *h = reg.findHistogram(prefix + ".lifetime_us_hist"))
        s.lifetimeHist = *h;
    return s;
}

void
PrepTally::merge(const PrepTally &other)
{
    flashReads += other.flashReads;
    channelBytes += other.channelBytes;
    dramBytes += other.dramBytes;
    pcieBytes += other.pcieBytes;
    hostCpuBusy += other.hostCpuBusy;
    featureBytes += other.featureBytes;
    abortedCommands += other.abortedCommands;
}

void
PrepTally::publish(sim::MetricRegistry &reg,
                   const std::string &prefix) const
{
    reg.counter(prefix + ".flash_reads").add(flashReads);
    reg.counter(prefix + ".channel_bytes").add(channelBytes);
    reg.counter(prefix + ".dram_bytes").add(dramBytes);
    reg.counter(prefix + ".pcie_bytes").add(pcieBytes);
    reg.counter(prefix + ".host_cpu_busy_ticks").add(hostCpuBusy);
    reg.counter(prefix + ".feature_bytes").add(featureBytes);
    reg.counter(prefix + ".aborted_commands").add(abortedCommands);
}

PrepTally
PrepTally::fromRegistry(const sim::MetricRegistry &reg,
                        const std::string &prefix)
{
    auto get = [&](const char *name) -> std::uint64_t {
        const sim::Counter *c = reg.findCounter(prefix + "." + name);
        return c ? c->value() : 0;
    };
    PrepTally t;
    t.flashReads = get("flash_reads");
    t.channelBytes = get("channel_bytes");
    t.dramBytes = get("dram_bytes");
    t.pcieBytes = get("pcie_bytes");
    t.hostCpuBusy = get("host_cpu_busy_ticks");
    t.featureBytes = get("feature_bytes");
    t.abortedCommands = get("aborted_commands");
    return t;
}

namespace {

/** Slot value used in command metadata for "no parent" (targets). */
constexpr std::uint32_t kRootSlot = gnn::kNoParent;

} // namespace

/** Per-mini-batch in-flight state. */
struct GnnEngine::Batch
{
    std::uint64_t id = 0;
    PrepResult res;
    std::function<void(PrepResult &&)> done;
    bool finished = false;

    // Streaming mode: commands in flight.
    std::uint64_t outstanding = 0;
    sim::Tick finishMax = 0;

    // Streaming dedup: nodes whose primary section this batch
    // already fetched (maps to the time its data became available).
    // One map per device — SSD DRAM caches do not span the fabric.
    std::vector<std::unordered_map<std::uint64_t, sim::Tick>> fetched;

    // Barrier mode: visits of the next hop, accumulated this hop.
    struct Visit
    {
        graph::NodeId node;
        gnn::Slot parent;
    };
    std::vector<Visit> nextVisits;
    std::uint64_t hopOutstanding = 0;
    sim::Tick hopLast = 0;
};

GnnEngine::GnnEngine(sim::EventQueue &queue_, std::vector<DevicePort> ports_,
                     const dg::DirectGraphLayout &layout_,
                     const graph::Graph &graph_,
                     const gnn::ModelConfig &model_,
                     const PrepFlags &flags,
                     const dg::SectionSource &source_,
                     const FabricConfig &fabric_)
    : queue(queue_), ports(std::move(ports_)), layout(layout_),
      g(graph_), model(model_), _flags(flags), source(source_),
      fabric(fabric_)
{
    if (ports.empty())
        sim::fatal("GnnEngine: no device ports");
    for (const DevicePort &p : ports) {
        if (!p.backend || !p.fw || !p.sampler)
            sim::fatal("GnnEngine: incomplete device port");
        if (_flags.hwRouter && !p.router)
            sim::fatal("GnnEngine: hwRouter platform without a router");
    }
    if (ports.size() > 1) {
        if (!_flags.directGraph)
            sim::fatal("GnnEngine: multi-device arrays require a "
                       "streaming (DirectGraph) platform");
        for (const DevicePort &p : ports)
            if (!p.p2pOut)
                sim::fatal("GnnEngine: array port without a P2P link");
        if (!fabric.owner || fabric.owner->size() < g.numNodes())
            sim::fatal("GnnEngine: array without an ownership table");
    }
}

GnnEngine::GnnEngine(sim::EventQueue &queue_,
                     flash::FlashBackend &backend,
                     ssd::Firmware &firmware,
                     const dg::DirectGraphLayout &layout_,
                     const graph::Graph &graph_,
                     const gnn::ModelConfig &model_,
                     const PrepFlags &flags,
                     const dg::SectionSource &source_)
    : queue(queue_),
      ownedSampler(std::make_unique<DieSampler>(
          firmware.config().engine,
          flash::GnnGlobalConfig{model_.hops, model_.fanout,
                                 model_.featureDim, 2, model_.seed},
          DieSamplerOptions{flags.coalesceSecondary})),
      ownedRouter(flags.hwRouter
                      ? std::make_unique<CommandRouter>(
                            firmware.config().engine, backend.config())
                      : nullptr),
      ports{DevicePort{&backend, &firmware, ownedRouter.get(),
                       ownedSampler.get(), nullptr, 0}},
      layout(layout_), g(graph_), model(model_), _flags(flags),
      source(source_)
{
}

unsigned
GnnEngine::ownerOf(graph::NodeId node) const
{
    if (!fabric.owner || fabric.owner->empty())
        return 0;
    return (*fabric.owner)[node];
}

DispatchStats
GnnEngine::routerTotals() const
{
    DispatchStats total;
    for (const DevicePort &p : ports) {
        if (!p.router)
            continue;
        DispatchStats s = p.router->stats();
        total.routed += s.routed;
        total.parsed += s.parsed;
        total.crossChannel += s.crossChannel;
        total.peakQueue = std::max(total.peakQueue, s.peakQueue);
    }
    return total;
}

void
GnnEngine::prepare(sim::Tick start, std::uint64_t batch_id,
                   std::span<const graph::NodeId> targets,
                   std::function<void(PrepResult &&)> done)
{
    auto b = std::make_shared<Batch>();
    b->id = batch_id;
    b->done = std::move(done);
    b->res.start = start;
    b->res.hops.resize(model.hops + 1u);
    b->res.perDevice.resize(ports.size());
    b->fetched.resize(ports.size());

    const auto &host = ports[0].fw->config().host;
    // Before the first batch, the firmware broadcasts the global GNN
    // configuration command (hops, fanout, feature length; §VI-C) to
    // every die over the channels.
    start = std::max(start, broadcastConfig(start));
    // The host assembles the mini-batch and submits target addresses
    // (DirectGraph: primary-section addresses; conventional: LPAs)
    // through one customized NVMe command.
    sim::Tick ready = start + host.batchOverhead + host.nvmeRoundTrip +
                      host.translatePerNode * targets.size();
    b->res.tally.hostCpuBusy += host.translatePerNode * targets.size();

    for (graph::NodeId t : targets)
        b->nextVisits.push_back({t, kRootSlot});

    if (_flags.directGraph) {
        queue.scheduleAt(ready, [this, b] { startStreaming(b); });
    } else {
        queue.scheduleAt(ready, [this, b] { startBarrier(b); });
    }
}

void
GnnEngine::setTraceSink(sim::TraceSink *sink)
{
    trace = sink;
    if (trace) {
        trace->setProcessName(flash::kTraceEnginePid, "engine");
        for (std::size_t d = 0; d < ports.size(); ++d) {
            std::string name =
                ports.size() > 1
                    ? "dev" + std::to_string(d) + " ssd dram"
                    : std::string("ssd dram");
            trace->setProcessName(
                ports[d].tracePidBase + flash::kTraceDramPid, name);
        }
    }
}

void
GnnEngine::publishMetrics(sim::MetricRegistry &reg) const
{
    // Per-device instruments (engine.sampler.*, engine.router.*) are
    // published by the owning DeviceContext; only the engine-global
    // broadcast time lives here.
    reg.gauge("engine.config_broadcast_ticks")
        .set(static_cast<double>(configDone));
}

void
GnnEngine::finishBatch(const std::shared_ptr<Batch> &b, sim::Tick when)
{
    if (b->finished)
        return;
    b->finished = true;
    b->res.finish = when;
    if (trace) {
        trace->complete("batch", "batch", flash::kTraceEnginePid,
                        static_cast<std::uint32_t>(b->id), b->res.start,
                        when);
    }
    queue.scheduleAt(when, [b] {
        if (b->done)
            b->done(std::move(b->res));
    });
}

sim::Tick
GnnEngine::broadcastConfig(sim::Tick start)
{
    if (configDone != 0 || _flags.sampling != SamplingLoc::Die)
        return configDone;
    // One GNN-configuration command per die: command cycles plus the
    // parameter frame (Fig. 13) over the channel; dies on different
    // channels configure in parallel, dies on one channel serialize.
    // Every device of an array broadcasts concurrently, and the
    // devices are identical, so one device's completion is the array's.
    const auto &cfg = ports[0].backend->config();
    const std::uint32_t frame = 16; // hops/fanout/dim/seed parameters.
    sim::Tick done = start;
    for (unsigned ch = 0; ch < cfg.channels; ++ch) {
        sim::Tick t = start;
        for (unsigned d = 0; d < cfg.diesPerChannel; ++d) {
            t += cfg.commandOverhead + cfg.channelTime(frame);
        }
        done = std::max(done, t);
    }
    configDone = done;
    return configDone;
}

// ====================================================================
// Streaming (DirectGraph) pipeline: BG-DG, BG-DGSP, BG-2.
// ====================================================================

void
GnnEngine::startStreaming(std::shared_ptr<Batch> b)
{
    sim::Tick now = queue.now();
    auto visits = std::move(b->nextVisits);
    b->nextVisits.clear();
    b->outstanding += visits.size();
    for (const auto &v : visits) {
        flash::GnnSampleParams p;
        dg::DgAddress a = layout.primaryOf(v.node);
        p.ppa = a.page();
        p.sectionIndex = static_cast<std::uint8_t>(a.section());
        p.hop = 0;
        p.batchId = static_cast<std::uint32_t>(b->id);
        p.parentSlot = v.parent;
        p.retrieveFeature = true;
        if (model.hops == 0) {
            p.finalHop = true;
            p.sampleCount = 0;
        } else {
            p.sampleCount = model.fanout;
        }
        p.nodeHint = v.node;
        // Targets are injected by the host interface at the frontend
        // controller of the device that owns them (the host links to
        // every array member); their first hop is always a crossbar
        // traversal.
        unsigned dev = ports.size() > 1 ? ownerOf(v.node) : 0;
        streamCommand(b, p, now,
                      ports[dev].backend->codec().channelOf(p.ppa), dev);
    }
    if (visits.empty())
        finishBatch(b, now);
}

void
GnnEngine::streamCommand(const std::shared_ptr<Batch> &b,
                         flash::GnnSampleParams params, sim::Tick ready,
                         unsigned from_channel, unsigned dev)
{
    DevicePort &port = ports[dev];
    flash::FlashBackend &backend = *port.backend;
    ssd::Firmware &fw = *port.fw;
    DieSampler &sampler = *port.sampler;
    CommandRouter *router = port.router;
    const auto &flash_cfg = backend.config();
    sim::Tick created = ready;

    // ---- Batch-level node deduplication (extension) -----------------
    // A primary section already fetched this batch is re-served from
    // SSD DRAM: the sampler logic still runs (different draws per
    // instance), but no flash read is issued.
    dg::DgAddress self_addr(params.ppa, params.sectionIndex);
    if (_flags.dedupeNodes && !params.isSecondary) {
        auto &fetched = b->fetched[dev];
        auto it = fetched.find(self_addr.raw);
        if (it != fetched.end()) {
            auto section = source.fetch(self_addr);
            flash::GnnSampleResult result =
                sampler.execute(section, params);
            sim::Tick avail = std::max(ready, it->second);
            sim::Grant mem = fw.dram().acquire(
                avail, result.frameBytes());
            sim::Tick parsed = mem.end;
            ++b->res.dedupedReads;
            if (result.featureIncluded) {
                b->res.tally.featureBytes += result.featureBytes;
                b->res.perDevice[dev].featureBytes += result.featureBytes;
            }
            gnn::Slot parent = params.parentSlot;
            if (result.ok) {
                parent = b->res.subgraph.add(
                    static_cast<graph::NodeId>(result.nodeId),
                    params.hop, params.parentSlot);
            }
            b->outstanding += result.follow.size();
            unsigned ch = backend.codec().channelOf(params.ppa);
            for (auto &f : result.follow) {
                f.params.parentSlot = parent;
                scheduleChild(b, f.params, parsed, ch, dev);
            }
            unsigned span = std::min<unsigned>(params.hop, model.hops);
            if (params.finalHop)
                span = model.hops;
            b->res.hops[span].cover(created, parsed);
            b->finishMax = std::max(b->finishMax, parsed);
            if (--b->outstanding == 0) {
                b->res.routerStats = routerTotals();
                finishBatch(b, b->finishMax);
            }
            return;
        }
    }

    // Nestable async lifetime span per command (Perfetto: one slice
    // with dispatch / sense / xfer / consume children).
    std::uint64_t span_id = 0;
    if (trace) {
        span_id = trace->nextId();
        trace->beginAsync("cmd", "cmd", span_id, created);
        trace->beginAsync(_flags.hwRouter ? "route" : "fw-issue", "cmd",
                          span_id, created);
    }

    // ---- Dispatch: hardware router vs firmware core ----------------
    sim::Tick dispatched;
    if (_flags.hwRouter) {
        // Crossbar forward into the destination channel's per-die
        // dispatch queue; the round-robin issuer signals the channel
        // control logic when the die idles (die/channel occupancy is
        // modelled by the backend).
        dispatched = router->route(ready, from_channel, params.ppa);
    } else {
        dispatched = fw.coreIssue(ready).end;
    }
    if (trace)
        trace->endAsync(_flags.hwRouter ? "route" : "fw-issue", "cmd",
                        span_id, dispatched);

    // ---- Functional sampling ---------------------------------------
    dg::DgAddress addr(params.ppa, params.sectionIndex);
    auto section = source.fetch(addr);
    flash::GnnSampleResult result = sampler.execute(section, params);

    bool die_sampling = _flags.sampling == SamplingLoc::Die;
    std::uint32_t transfer_bytes =
        die_sampling ? result.frameBytes() : flash_cfg.pageSize;
    sim::Tick on_die = die_sampling ? sampler.latency(result) : 0;

    // ---- Flash operation --------------------------------------------
    flash::FlashOpTiming t =
        backend.read(dispatched, params.ppa, transfer_bytes, on_die);
    ++b->res.tally.flashReads;
    ++b->res.perDevice[dev].flashReads;
    b->res.tally.channelBytes += transfer_bytes;
    if (_flags.hwRouter)
        router->bindCompletion(params.ppa, t.xferEnd);
    if (trace) {
        trace->beginAsync("sense", "cmd", span_id, t.senseStart);
        trace->endAsync("sense", "cmd", span_id, t.senseEnd);
        trace->beginAsync("xfer", "cmd", span_id, t.xferStart);
        trace->endAsync("xfer", "cmd", span_id, t.xferEnd);
    }

    // ---- Result consumption ------------------------------------------
    sim::Tick parsed;
    if (_flags.hwRouter) {
        // The stream parser classifies the frame; feature payload DMAs
        // into DRAM without per-transfer firmware configuration.
        parsed = router->parse(t.xferEnd);
        if (result.featureIncluded && !_flags.bypassDram) {
            // The mini-batch is only complete once its feature
            // payloads land in SSD DRAM — this is the DRAM-bandwidth
            // wall of Fig. 18d.
            sim::Grant mem =
                fw.dram().acquire(parsed, result.featureBytes);
            b->res.tally.dramBytes += result.featureBytes;
            b->finishMax = std::max(b->finishMax, mem.end);
            if (trace)
                trace->complete("feature-dma", "dram",
                                port.tracePidBase + flash::kTraceDramPid,
                                0, parsed, mem.end);
        }
    } else if (die_sampling) {
        // BG-DGSP: frames land in DRAM, a core parses each.
        sim::Grant mem = fw.dram().acquire(t.xferEnd, transfer_bytes);
        b->res.tally.dramBytes += transfer_bytes;
        parsed = fw.coreComplete(mem.end).end;
    } else {
        // BG-DG: full page to DRAM, core parses and samples in
        // firmware (same two-level DirectGraph discipline).
        sim::Grant mem = fw.dram().acquire(t.xferEnd, transfer_bytes);
        b->res.tally.dramBytes += transfer_bytes;
        parsed = fw.coreComplete(mem.end,
                                 fw.config().controller.coreSampleTime)
                     .end;
    }
    if (trace) {
        trace->beginAsync("consume", "cmd", span_id, t.xferEnd);
        trace->endAsync("consume", "cmd", span_id, parsed);
        trace->endAsync("cmd", "cmd", span_id, parsed);
    }
    if (result.featureIncluded) {
        b->res.tally.featureBytes += result.featureBytes;
        b->res.perDevice[dev].featureBytes += result.featureBytes;
    }
    if (_flags.dedupeNodes && !params.isSecondary)
        b->fetched[dev].emplace(self_addr.raw, parsed);

    // ---- Bookkeeping ---------------------------------------------------
    ++b->res.commands;
    ++b->res.perDevice[dev].commands;
    sim::Tick wait_before = t.senseStart - created;
    sim::Tick flash_time =
        (t.senseEnd - t.senseStart) + (t.xferEnd - t.xferStart);
    b->res.cmdStats.waitBefore.add(sim::toMicros(wait_before));
    b->res.cmdStats.flashTime.add(sim::toMicros(flash_time));
    b->res.cmdStats.waitAfter.add(
        sim::toMicros(parsed - created - wait_before - flash_time));
    b->res.cmdStats.lifetime.add(sim::toMicros(parsed - created));
    b->res.cmdStats.lifetimeHist.add(sim::toMicros(parsed - created));
    unsigned span = std::min<unsigned>(params.hop, model.hops);
    if (params.finalHop)
        span = model.hops;
    b->res.hops[span].cover(created, parsed);

    if (!result.ok) {
        ++b->res.tally.abortedCommands;
        b->res.ok = false;
    }

    // ---- Subgraph + children ------------------------------------------
    gnn::Slot parent_for_children;
    if (!params.isSecondary && result.ok) {
        parent_for_children = b->res.subgraph.add(
            static_cast<graph::NodeId>(result.nodeId), params.hop,
            params.parentSlot);
    } else {
        parent_for_children = params.parentSlot;
    }

    b->outstanding += result.follow.size();
    unsigned this_channel = backend.codec().channelOf(params.ppa);
    for (auto &f : result.follow) {
        f.params.parentSlot = parent_for_children;
        scheduleChild(b, f.params, parsed, this_channel, dev);
    }

    b->finishMax = std::max(b->finishMax, parsed);
    if (--b->outstanding == 0) {
        b->res.routerStats = routerTotals();
        finishBatch(b, b->finishMax);
    }
}

void
GnnEngine::scheduleChild(const std::shared_ptr<Batch> &b,
                         flash::GnnSampleParams child, sim::Tick parsed,
                         unsigned this_channel, unsigned dev)
{
    unsigned child_dev = dev;
    if (ports.size() > 1 && !child.isSecondary) {
        // Primary follow-ups may target a node another device owns;
        // secondary sections always sit beside their primary.
        if (auto sp = layout.find(
                dg::DgAddress(child.ppa, child.sectionIndex)))
            child_dev = ownerOf(sp->node);
    }
    if (child_dev == dev) {
        queue.scheduleAt(parsed, [this, b, child, this_channel, dev] {
            streamCommand(b, child, queue.now(), this_channel, dev);
        });
        return;
    }
    // Cross-device hop (§VIII): the command descriptor crosses the
    // source device's P2P port, then enters the owner's crossbar at
    // the child's channel like a host-injected target.
    sim::Grant link =
        ports[dev].p2pOut->acquire(parsed, fabric.commandBytes);
    sim::Tick arrive = link.end + fabric.p2pLatency;
    ++b->res.crossDevice;
    ++b->res.perDevice[dev].p2pForwards;
    b->res.perDevice[dev].p2pBytes += fabric.commandBytes;
    unsigned entry =
        ports[child_dev].backend->codec().channelOf(child.ppa);
    queue.scheduleAt(arrive, [this, b, child, entry, child_dev] {
        streamCommand(b, child, queue.now(), entry, child_dev);
    });
}
// ====================================================================
// Hop-by-hop (barrier) pipeline: CC, GLIST, SmartSage, BG-1, BG-SP.
//
// Conventional (non-DirectGraph) data layout: the graph structure and
// the feature table are separate in-storage objects (Table I), so a
// visit costs neighbour-list page reads for sampling plus a separate
// feature-table page read. Hops are separated by host-SSD round trips.
// ====================================================================

void
GnnEngine::startBarrier(std::shared_ptr<Batch> b)
{
    runHop(b, 0, queue.now());
}

namespace {

/**
 * Synthetic feature-table region: vector of node v lives in a page of
 * a block region at the top of the device, striped across channels
 * and dies like any large file.
 */
flash::Ppa
featureTablePpa(const flash::FlashConfig &cfg, graph::NodeId node,
                std::uint32_t feat_bytes)
{
    std::uint32_t per_page = std::max<std::uint32_t>(
        1, cfg.pageSize / std::max<std::uint32_t>(1, feat_bytes));
    std::uint64_t page_idx = node / per_page;
    std::uint64_t total_blocks = cfg.totalBlocks();
    // Stripe the region across one block per die so feature lookups
    // spread over the whole backend (a multi-GB table does naturally).
    std::uint64_t stripe = std::max(1u, cfg.totalDies());
    std::uint64_t block =
        total_blocks - 1 - (page_idx % stripe) % total_blocks;
    std::uint64_t page_in_block =
        (page_idx / stripe) % cfg.pagesPerBlock;
    return static_cast<flash::Ppa>(block * cfg.pagesPerBlock +
                                   page_in_block);
}

} // namespace

void
GnnEngine::runHop(const std::shared_ptr<Batch> &b, unsigned hop,
                  sim::Tick hop_start)
{
    // The barrier pipeline is single-device (the constructor rejects
    // multi-device non-streaming platforms), so port 0 is the SSD.
    flash::FlashBackend &backend = *ports[0].backend;
    ssd::Firmware &fw = *ports[0].fw;
    DieSampler &sampler = *ports[0].sampler;
    const auto &ctl = fw.config().controller;
    const auto &host = fw.config().host;
    const auto &flash_cfg = backend.config();
    const std::uint32_t feat_bytes = std::uint32_t{model.featureDim} * 2;
    const bool die_sampling = _flags.sampling == SamplingLoc::Die;
    const bool host_sampling = _flags.sampling == SamplingLoc::Host;
    const bool final_hop = hop >= model.hops;

    auto visits = std::move(b->nextVisits);
    b->nextVisits.clear();
    if (visits.empty()) {
        finishBatch(b, hop_start);
        return;
    }

    // Every read of the hop is computed analytically; the hop barrier
    // is the maximum parse-complete time across them.
    sim::Tick last = hop_start;

    /**
     * One backend read through the firmware: issue core (+ FTL lookup
     * for the conventional LPA path), flash, DMA to DRAM, completion
     * core, then optionally the host path (software-stack service and
     * PCIe transfer). Records Fig. 16/17 statistics.
     */
    auto do_read = [this, &ctl, &host, &fw, &backend, b, hop](
                       sim::Tick ready, flash::Ppa ppa,
                       std::uint32_t bytes, sim::Tick on_die,
                       sim::Tick core_extra, bool to_host,
                       std::uint32_t pcie_bytes) -> sim::Tick {
        sim::Tick created = ready;
        std::uint64_t span_id = 0;
        if (trace) {
            span_id = trace->nextId();
            trace->beginAsync("cmd", "cmd", span_id, created);
            trace->beginAsync(to_host ? "host-io" : "fw-issue", "cmd",
                              span_id, created);
        }
        if (to_host) {
            // Host software stack issues the block I/O.
            sim::Grant io = fw.hostIoService(ready);
            b->res.tally.hostCpuBusy += host.ioOverhead;
            ready = io.end;
        }
        sim::Tick dispatched =
            fw.coreIssue(ready, ctl.ftlLookupTime).end;
        if (trace)
            trace->endAsync(to_host ? "host-io" : "fw-issue", "cmd",
                            span_id, dispatched);
        flash::FlashOpTiming t =
            backend.read(dispatched, ppa, bytes, on_die);
        ++b->res.tally.flashReads;
        ++b->res.perDevice[0].flashReads;
        b->res.tally.channelBytes += bytes;
        sim::Grant mem = fw.dram().acquire(t.xferEnd, bytes);
        b->res.tally.dramBytes += bytes;
        sim::Tick parsed = fw.coreComplete(mem.end, core_extra).end;
        if (to_host && pcie_bytes > 0) {
            sim::Grant link = fw.pcie().acquire(parsed, pcie_bytes);
            b->res.tally.pcieBytes += pcie_bytes;
            parsed = link.end;
        }
        if (trace) {
            trace->beginAsync("sense", "cmd", span_id, t.senseStart);
            trace->endAsync("sense", "cmd", span_id, t.senseEnd);
            trace->beginAsync("xfer", "cmd", span_id, t.xferStart);
            trace->endAsync("xfer", "cmd", span_id, t.xferEnd);
            trace->beginAsync("consume", "cmd", span_id, t.xferEnd);
            trace->endAsync("consume", "cmd", span_id, parsed);
            trace->endAsync("cmd", "cmd", span_id, parsed);
        }
        ++b->res.commands;
        ++b->res.perDevice[0].commands;
        sim::Tick wait_before = t.senseStart - created;
        sim::Tick flash_time =
            (t.senseEnd - t.senseStart) + (t.xferEnd - t.xferStart);
        b->res.cmdStats.waitBefore.add(sim::toMicros(wait_before));
        b->res.cmdStats.flashTime.add(sim::toMicros(flash_time));
        b->res.cmdStats.waitAfter.add(
            sim::toMicros(parsed - created - wait_before - flash_time));
        b->res.cmdStats.lifetime.add(sim::toMicros(parsed - created));
        b->res.cmdStats.lifetimeHist.add(sim::toMicros(parsed - created));
        b->res.hops[std::min<unsigned>(hop, model.hops)].cover(created,
                                                               parsed);
        return parsed;
    };

    // Secondary continuations discovered during the visit loop; they
    // become ready when their primary result parses, so they are
    // issued afterwards in ready-time order (exact FIFO pools).
    struct PendingContinuation
    {
        sim::Tick ready;
        flash::GnnSampleParams params;
        gnn::Slot slot;
    };
    std::vector<PendingContinuation> pending_continuations;

    for (const auto &v : visits) {
        const dg::NodeLayout &nl = layout.nodes[v.node];
        dg::DgAddress primary = nl.primary;
        gnn::Slot slot = b->res.subgraph.add(
            v.node, static_cast<std::uint8_t>(hop), v.parent);

        // ---- Feature retrieval ---------------------------------------
        // BG-SP converts the dataset into its co-located in-SSD
        // format (feature vectors beside neighbour lists — the data
        // the die-level vector retriever needs), so features arrive
        // inside the sampling frames; only final-hop nodes need a
        // dedicated feature command. The conventional platforms keep
        // the feature table as a separate object (Table I) and read
        // one of its pages per visit.
        b->res.tally.featureBytes += feat_bytes;
        b->res.perDevice[0].featureBytes += feat_bytes;
        flash::Ppa fppa =
            featureTablePpa(flash_cfg, v.node, feat_bytes);
        if (die_sampling) {
            if (final_hop) {
                // Feature frame from the node's primary page.
                sim::Tick fparsed = do_read(
                    hop_start, primary.page(), 16 + feat_bytes,
                    fw.config().engine.samplerSetup, 0, false, 0);
                last = std::max(last, fparsed);
            }
        } else if (_flags.featuresViaHost) {
            // CC / SmartSage: host block read of the feature page,
            // page over PCIe to the host, vector onward to the
            // discrete accelerator.
            sim::Tick fparsed =
                do_read(hop_start, fppa, flash_cfg.pageSize, 0, 0, true,
                        flash_cfg.pageSize + feat_bytes);
            last = std::max(last, fparsed);
        } else {
            // GLIST / BG-1: offloaded table lookup, page to SSD DRAM.
            sim::Tick fparsed = do_read(hop_start, fppa,
                                        flash_cfg.pageSize, 0, 0, false,
                                        0);
            last = std::max(last, fparsed);
        }

        if (final_hop)
            continue;

        // ---- Neighbour-list fetch + sampling ------------------------
        if (die_sampling) {
            // BG-SP: die-level sampler on the graph-structure pages;
            // next-hop node ids still return to the host for
            // translation each hop.
            flash::GnnSampleParams p;
            p.ppa = primary.page();
            p.sectionIndex = static_cast<std::uint8_t>(primary.section());
            p.hop = static_cast<std::uint8_t>(std::min<unsigned>(hop, 255));
            p.batchId = static_cast<std::uint32_t>(b->id);
            p.retrieveFeature = true; // Co-located format (see above).
            p.sampleCount = model.fanout;

            auto section = source.fetch(primary);
            flash::GnnSampleResult r = sampler.execute(section, p);
            if (!r.ok) {
                ++b->res.tally.abortedCommands;
                b->res.ok = false;
            }
            for (auto &f : r.follow) {
                if (f.params.isSecondary) {
                    // Coalesced secondary continuations chase the
                    // primary result within the same hop; they are
                    // deferred and issued in ready-time order below
                    // so the firmware pools stay exact FIFO.
                    pending_continuations.push_back({0, f.params, slot});
                } else if (auto sp = layout.find(dg::DgAddress(
                               f.params.ppa, f.params.sectionIndex))) {
                    b->nextVisits.push_back({sp->node, slot});
                }
            }
            std::size_t first_new =
                pending_continuations.size() - std::count_if(
                    r.follow.begin(), r.follow.end(),
                    [](const flash::EmittedCommand &f) {
                        return f.params.isSecondary;
                    });
            sim::Tick parsed =
                do_read(hop_start, primary.page(), r.frameBytes(),
                        sampler.latency(r), 0, false, 0);
            last = std::max(last, parsed);
            for (std::size_t i = first_new;
                 i < pending_continuations.size(); ++i) {
                pending_continuations[i].ready = parsed;
            }
        } else {
            // Host (CC, GLIST) or firmware (SmartSage, BG-1) sampling:
            // the full neighbour list is fetched — the primary page
            // plus every secondary page (read amplification,
            // Challenge 2).
            std::vector<flash::Ppa> pages;
            pages.push_back(primary.page());
            std::unordered_set<flash::Ppa> seen;
            for (const auto &r : nl.secondaries) {
                if (seen.insert(r.addr.page()).second)
                    pages.push_back(r.addr.page());
            }

            // Functional sampling: plain uniform draws over the full
            // neighbour list (csrSample semantics).
            if (nl.degree > 0) {
                for (std::uint8_t i = 0; i < model.fanout; ++i) {
                    auto r = static_cast<std::uint32_t>(sim::keyedBelow(
                        model.seed, b->id,
                        static_cast<std::uint8_t>(hop), v.node, i,
                        nl.degree));
                    b->nextVisits.push_back({g.neighbor(v.node, r), slot});
                }
            }

            for (std::size_t i = 0; i < pages.size(); ++i) {
                // Firmware sampling pays the software sampler cost on
                // the visit's last page.
                sim::Tick extra =
                    (!host_sampling && i + 1 == pages.size())
                        ? ctl.coreSampleTime
                        : 0;
                sim::Tick parsed = do_read(
                    hop_start, pages[i], flash_cfg.pageSize, 0, extra,
                    host_sampling,
                    host_sampling ? flash_cfg.pageSize *
                                        _flags.pciePageLegs
                                  : 0);
                last = std::max(last, parsed);
            }
        }
    }

    // Issue the deferred secondary continuations in ready order.
    std::stable_sort(pending_continuations.begin(),
                     pending_continuations.end(),
                     [](const PendingContinuation &a,
                        const PendingContinuation &x) {
                         return a.ready < x.ready;
                     });
    for (const auto &pc : pending_continuations) {
        auto csec = source.fetch(
            dg::DgAddress(pc.params.ppa, pc.params.sectionIndex));
        flash::GnnSampleResult cr = sampler.execute(csec, pc.params);
        if (!cr.ok) {
            ++b->res.tally.abortedCommands;
            b->res.ok = false;
        }
        for (auto &f : cr.follow) {
            if (auto sp = layout.find(dg::DgAddress(
                    f.params.ppa, f.params.sectionIndex))) {
                b->nextVisits.push_back({sp->node, pc.slot});
            }
        }
        sim::Tick cparsed = do_read(pc.ready, pc.params.ppa,
                                    cr.frameBytes(),
                                    sampler.latency(cr), 0, false, 0);
        last = std::max(last, cparsed);
    }

    if (final_hop || b->nextVisits.empty()) {
        finishBatch(b, last);
        return;
    }

    // Inter-hop host-SSD communication barrier (§III Challenge 1).
    std::size_t n_children = b->nextVisits.size();
    sim::Tick host_time = host.translatePerNode * n_children;
    if (host_sampling)
        host_time += host.samplePerNode * visits.size();
    b->res.tally.hostCpuBusy += host_time;
    if (_flags.idsToHost) {
        sim::Grant link = fw.pcie().acquire(last, 4ull * n_children);
        b->res.tally.pcieBytes += 4ull * n_children;
        last = link.end;
    }
    sim::Tick next_start = last + host_time + host.nvmeRoundTrip;
    unsigned next_hop = hop + 1;
    queue.scheduleAt(next_start, [this, b, next_hop] {
        runHop(b, next_hop, queue.now());
    });
}

} // namespace beacongnn::engines
