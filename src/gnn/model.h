/**
 * @file
 * GNN task configuration. The historical configuration (§VII-A) is
 * K-hop subgraphs with a fixed fanout, vector_sum aggregation and a
 * perceptron update per layer, FP16 128-dim intermediate embeddings —
 * the `gcn` entry of the model zoo. ModelSpec generalizes it into a
 * named aggregate/combine pair (gcn | gin | gat) plus an optional
 * per-hop fanout schedule; the in-storage engines consume the same
 * spec, so every platform runs every model.
 */

#ifndef BEACONGNN_GNN_MODEL_H
#define BEACONGNN_GNN_MODEL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace beacongnn::gnn {

/** Aggregation operator of the message-passing rule. */
enum class Aggregation : std::uint8_t
{
    VectorSum, ///< Element-wise sum (the paper's configuration).
    Mean,      ///< Element-wise mean (extension).
};

/**
 * Named aggregate/combine pairs of the model zoo. The kind selects
 * the functional forward pass, the per-layer GEMM/vector-op shapes
 * the accelerator times, and the per-edge payload bytes the sampling
 * frames carry.
 */
enum class ModelKind : std::uint8_t
{
    GCN, ///< vector_sum + single perceptron — the historical task.
    GIN, ///< (1+eps)·own + sum, two-layer MLP combine.
    GAT, ///< attention-weighted sum with per-edge coefficients.
};

/** Display name of a model kind ("gcn"). */
const char *modelKindName(ModelKind k);

/** Case-insensitive lookup; nullopt for unknown names. */
std::optional<ModelKind> findModelKind(std::string_view name);

/** Comma-separated valid model names (for CLI error messages). */
std::string modelKindList();

/** One GEMM of the update step (timing input for the accelerator). */
struct GemmShape
{
    std::uint64_t m = 0; ///< Rows (nodes updated).
    std::uint64_t n = 0; ///< Output dimension.
    std::uint64_t k = 0; ///< Input dimension.

    std::uint64_t macs() const { return m * n * k; }
};

/** Aggregate compute demand of one mini-batch. */
struct ComputeWorkload
{
    std::vector<GemmShape> gemms;       ///< Update-step GEMMs.
    std::uint64_t aggregateElements = 0; ///< Vector-sum element ops.
    /** Per-edge element ops beyond the plain sum: GAT attention
     *  coefficient math, GIN epsilon scaling. Zero for gcn, so the
     *  historical accelerator timing is untouched. */
    std::uint64_t edgeOps = 0;

    std::uint64_t
    totalMacs() const
    {
        std::uint64_t t = 0;
        for (const auto &g : gemms)
            t += g.macs();
        return t;
    }
};

/** Static description of the GNN task. */
struct ModelSpec
{
    ModelKind kind = ModelKind::GCN; ///< Aggregate/combine pair.
    std::uint8_t hops = 3;       ///< K (sampling depth).
    std::uint8_t fanout = 3;     ///< Neighbours sampled per node/hop.
    /** Per-hop fanout schedule: fanouts[h] children per hop-h node.
     *  Empty = uniform `fanout` every hop (the historical shape).
     *  normalizeFanouts() collapses an all-equal schedule back to the
     *  uniform scalar, so `--fanouts 3,3,3` is byte-identical to
     *  `fanout=3` everywhere (config frames included). */
    std::vector<std::uint8_t> fanouts;
    std::uint16_t featureDim = 128; ///< Input feature dimension.
    std::uint16_t hiddenDim = 128;  ///< Intermediate embedding dim.
    Aggregation aggregation = Aggregation::VectorSum;
    std::uint64_t seed = 1;      ///< Sampling / weight seed.
    float epsilon = 0.1f;        ///< GIN self-loop weight (1+eps).
    std::uint8_t heads = 1;      ///< GAT attention heads.

    /** Fanout of hop @p h (children per hop-h node). */
    std::uint8_t
    fanoutAt(unsigned h) const
    {
        if (fanouts.empty())
            return fanout;
        return h < fanouts.size() ? fanouts[h] : fanouts.back();
    }

    /** True when every hop samples the same `fanout`. */
    bool uniformFanout() const { return fanouts.empty(); }

    /**
     * Canonicalize the fanout schedule: an all-equal (or empty)
     * schedule collapses to the uniform scalar, and a short schedule
     * is padded semantics-preserving by fanoutAt(). Call after
     * parsing CLI input so equal specs compare equal and broadcast
     * identical config frames.
     */
    void normalizeFanouts();

    /** Per-edge coefficient bytes the sampling frames carry (GAT
     *  attention logits, FP16 per head); zero otherwise. */
    std::uint32_t
    edgeCoeffBytes() const
    {
        return kind == ModelKind::GAT ? 2u * heads : 0u;
    }

    /** Nodes in a full k-hop subgraph per target (40 for 3/3). */
    std::uint32_t
    subgraphNodes() const
    {
        return nodesThroughHop(hops);
    }

    /** Nodes at hops 0..h inclusive. */
    std::uint32_t
    nodesThroughHop(unsigned h) const
    {
        std::uint32_t total = 0;
        std::uint32_t level = 1;
        for (unsigned i = 0; i <= h && i <= hops; ++i) {
            total += level;
            level *= fanoutAt(i);
        }
        return total;
    }

    /** Nodes at exactly hop @p h of a full subgraph per target. */
    std::uint32_t
    nodesAtHop(unsigned h) const
    {
        std::uint32_t level = 1;
        for (unsigned i = 0; i < h && i <= hops; ++i)
            level *= fanoutAt(i);
        return level;
    }

    /**
     * Expected compute demand of @p batch_size targets, shaped by the
     * model kind: gcn reproduces the historical single-GEMM estimate
     * exactly; gin adds the second MLP matrix and epsilon scaling;
     * gat adds per-edge attention vector work.
     */
    ComputeWorkload workFor(std::uint32_t batch_size) const;

    friend bool operator==(const ModelSpec &,
                           const ModelSpec &) = default;
};

/** Historical name; every layer consumes the same spec. */
using ModelConfig = ModelSpec;

/**
 * Parse a comma-separated per-hop fanout list ("3,2,2"); nullopt on
 * malformed input (empty, non-numeric, zero, or > 255 entries).
 */
std::optional<std::vector<std::uint8_t>>
parseFanouts(std::string_view list);

/**
 * Expected compute demand of @p batch_size targets (used by the
 * timing model; the functional path computes the real thing).
 */
inline ComputeWorkload
estimateCompute(const ModelConfig &m, std::uint32_t batch_size)
{
    return m.workFor(batch_size);
}

} // namespace beacongnn::gnn

#endif // BEACONGNN_GNN_MODEL_H
