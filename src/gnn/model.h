/**
 * @file
 * GNN task configuration (§VII-A): K-hop subgraphs with a fixed
 * fanout, vector_sum aggregation and a perceptron update per layer,
 * FP16 128-dim intermediate embeddings.
 */

#ifndef BEACONGNN_GNN_MODEL_H
#define BEACONGNN_GNN_MODEL_H

#include <cstdint>
#include <vector>

namespace beacongnn::gnn {

/** Aggregation operator of the message-passing rule. */
enum class Aggregation : std::uint8_t
{
    VectorSum, ///< Element-wise sum (the paper's configuration).
    Mean,      ///< Element-wise mean (extension).
};

/** Static description of the GNN task. */
struct ModelConfig
{
    std::uint8_t hops = 3;       ///< K (sampling depth).
    std::uint8_t fanout = 3;     ///< Neighbours sampled per node/hop.
    std::uint16_t featureDim = 128; ///< Input feature dimension.
    std::uint16_t hiddenDim = 128;  ///< Intermediate embedding dim.
    Aggregation aggregation = Aggregation::VectorSum;
    std::uint64_t seed = 1;      ///< Sampling / weight seed.

    /** Nodes in a full k-hop subgraph per target (40 for 3/3). */
    std::uint32_t
    subgraphNodes() const
    {
        std::uint32_t total = 0;
        std::uint32_t level = 1;
        for (unsigned h = 0; h <= hops; ++h) {
            total += level;
            level *= fanout;
        }
        return total;
    }

    /** Nodes at hops 0..h inclusive. */
    std::uint32_t
    nodesThroughHop(unsigned h) const
    {
        std::uint32_t total = 0;
        std::uint32_t level = 1;
        for (unsigned i = 0; i <= h && i <= hops; ++i) {
            total += level;
            level *= fanout;
        }
        return total;
    }
};

/** One GEMM of the update step (timing input for the accelerator). */
struct GemmShape
{
    std::uint64_t m = 0; ///< Rows (nodes updated).
    std::uint64_t n = 0; ///< Output dimension.
    std::uint64_t k = 0; ///< Input dimension.

    std::uint64_t macs() const { return m * n * k; }
};

/** Aggregate compute demand of one mini-batch. */
struct ComputeWorkload
{
    std::vector<GemmShape> gemms;       ///< One per layer.
    std::uint64_t aggregateElements = 0; ///< Vector-sum element ops.

    std::uint64_t
    totalMacs() const
    {
        std::uint64_t t = 0;
        for (const auto &g : gemms)
            t += g.macs();
        return t;
    }
};

/**
 * Expected compute demand of @p batch_size targets (used by the
 * timing model; the functional path computes the real thing).
 */
inline ComputeWorkload
estimateCompute(const ModelConfig &m, std::uint32_t batch_size)
{
    ComputeWorkload w;
    for (unsigned l = 1; l <= m.hops; ++l) {
        GemmShape g;
        g.m = std::uint64_t{batch_size} * m.nodesThroughHop(m.hops - l);
        g.n = m.hiddenDim;
        g.k = (l == 1) ? m.featureDim : m.hiddenDim;
        w.gemms.push_back(g);
        // Each updated node sums `fanout` child vectors plus itself.
        w.aggregateElements += g.m * (m.fanout + 1) * g.k;
    }
    return w;
}

} // namespace beacongnn::gnn

#endif // BEACONGNN_GNN_MODEL_H
