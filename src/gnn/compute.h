/**
 * @file
 * Functional GNN forward pass over a sampled subgraph (Eq. 1):
 * K iterations of message passing with vector_sum aggregation and a
 * single perceptron (GEMV per node) update. Weights are deterministic
 * pseudo-random matrices derived from the model seed, so any two
 * platforms computing the same subgraph produce bit-identical (FP32)
 * results — used to validate the end-to-end functional path.
 */

#ifndef BEACONGNN_GNN_COMPUTE_H
#define BEACONGNN_GNN_COMPUTE_H

#include <vector>

#include "gnn/model.h"
#include "gnn/subgraph.h"
#include "graph/graph.h"

namespace beacongnn::gnn {

/** Deterministic weight matrix (row-major n_out x n_in). */
std::vector<float> makeWeights(std::uint64_t seed, unsigned layer,
                               std::uint32_t n_out, std::uint32_t n_in);

/**
 * Run the K-layer forward pass.
 *
 * @param sg       Mini-batch subgraph (forest; hop-0 entries are
 *                 targets).
 * @param features Feature table (h^0).
 * @param m        Model config.
 * @return One hiddenDim-sized embedding per hop-0 entry, in subgraph
 *         order.
 */
std::vector<std::vector<float>> forward(const Subgraph &sg,
                                        const graph::FeatureTable &features,
                                        const ModelConfig &m);

/**
 * FP16-accurate forward pass: features, aggregates and layer outputs
 * are rounded through IEEE binary16 after every operation, matching
 * the paper's FP16 datapath. Results track forward() within half-
 * precision rounding error (validated by the test suite).
 */
std::vector<std::vector<float>> forwardFp16(
    const Subgraph &sg, const graph::FeatureTable &features,
    const ModelConfig &m);

/** Exact compute demand of @p sg (for accelerator timing). */
ComputeWorkload measureCompute(const Subgraph &sg, const ModelConfig &m);

} // namespace beacongnn::gnn

#endif // BEACONGNN_GNN_COMPUTE_H
