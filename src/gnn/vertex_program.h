/**
 * @file
 * Classical graph algorithms as vertex programs over the in-storage
 * engines. A VertexProgram exposes the per-superstep *frontier* — the
 * vertices whose state the next superstep must read from flash — and
 * a step() that folds the fetched state into per-vertex values until
 * convergence. The platform driver (platforms/algo_runner) turns each
 * frontier into feature-retrieval batches on the same sampling /
 * streaming pipelines the GNN models use, replacing the fixed-K-hop
 * loop with iterate-until-convergence.
 */

#ifndef BEACONGNN_GNN_VERTEX_PROGRAM_H
#define BEACONGNN_GNN_VERTEX_PROGRAM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace beacongnn::gnn {

/** Vertex programs of the algorithm zoo. */
enum class AlgoKind : std::uint8_t
{
    PageRank, ///< Pull-based damped PageRank to an L1 tolerance.
    Bfs,      ///< Breadth-first distances from a source vertex.
    KCore,    ///< Iterative k-core peeling.
};

/** Display name of an algorithm ("pagerank"). */
const char *algoKindName(AlgoKind k);

/** Case-insensitive lookup; nullopt for unknown names. */
std::optional<AlgoKind> findAlgoKind(std::string_view name);

/** Comma-separated valid algorithm names (for CLI error messages). */
std::string algoKindList();

/** Static parameters of a vertex-program run. */
struct VertexProgramConfig
{
    AlgoKind algo = AlgoKind::PageRank;
    std::uint32_t maxIters = 50; ///< Superstep cap (safety net).
    double tolerance = 1e-4;     ///< PageRank total L1 residual.
    double damping = 0.85;       ///< PageRank damping factor.
    graph::NodeId source = 0;    ///< BFS source vertex.
    std::uint32_t k = 3;         ///< k-core threshold.
};

/**
 * One iterate-until-convergence graph algorithm. Contract: call
 * init() once, then alternate frontier() (the vertices whose state
 * superstep i reads — what the driver fetches from flash) and step()
 * (fold that state; returns true once converged, after which
 * frontier() is empty and step() must not be called again).
 */
class VertexProgram
{
  public:
    virtual ~VertexProgram() = default;

    virtual const char *name() const = 0;

    /** Reset all per-vertex state for @p g. */
    virtual void init(const graph::Graph &g) = 0;

    /** Vertices the next superstep must read from storage. */
    virtual const std::vector<graph::NodeId> &frontier() const = 0;

    /** Run one superstep. @return true when converged. */
    virtual bool step(const graph::Graph &g) = 0;

    /** Per-vertex result values (rank / distance / core flag). */
    virtual const std::vector<double> &values() const = 0;
};

/** Build the program selected by @p cfg. */
std::unique_ptr<VertexProgram>
makeVertexProgram(const VertexProgramConfig &cfg);

} // namespace beacongnn::gnn

#endif // BEACONGNN_GNN_VERTEX_PROGRAM_H
