/**
 * @file
 * Sampled subgraph representation: a forest of (node, hop, parent)
 * entries per mini-batch, reconstructible from streaming sampling
 * results (batch id / parent slot metadata of Fig. 13).
 */

#ifndef BEACONGNN_GNN_SUBGRAPH_H
#define BEACONGNN_GNN_SUBGRAPH_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace beacongnn::gnn {

/** Slot index inside a mini-batch subgraph. */
using Slot = std::uint32_t;

inline constexpr Slot kNoParent = ~Slot{0};

/** One sampled node instance. */
struct SubgraphEntry
{
    graph::NodeId node = 0;
    std::uint8_t hop = 0;
    Slot parent = kNoParent; ///< Slot of the parent instance.
};

/** The sampled subgraphs of one mini-batch (all targets together). */
class Subgraph
{
  public:
    /** Append an entry; @return its slot. */
    Slot
    add(graph::NodeId node, std::uint8_t hop, Slot parent)
    {
        entries.push_back({node, hop, parent});
        return static_cast<Slot>(entries.size() - 1);
    }

    const std::vector<SubgraphEntry> &all() const { return entries; }
    std::size_t size() const { return entries.size(); }
    const SubgraphEntry &operator[](Slot s) const { return entries[s]; }

    /** Children slots per slot (built on demand). */
    std::vector<std::vector<Slot>>
    childrenIndex() const
    {
        std::vector<std::vector<Slot>> idx(entries.size());
        for (Slot s = 0; s < entries.size(); ++s) {
            if (entries[s].parent != kNoParent)
                idx[entries[s].parent].push_back(s);
        }
        return idx;
    }

    /** Number of entries at each hop (size = max hop + 1). */
    std::vector<std::uint32_t>
    hopCounts() const
    {
        std::vector<std::uint32_t> counts;
        for (const auto &e : entries) {
            if (counts.size() <= e.hop)
                counts.resize(e.hop + 1, 0);
            ++counts[e.hop];
        }
        return counts;
    }

    void clear() { entries.clear(); }

  private:
    std::vector<SubgraphEntry> entries;
};

} // namespace beacongnn::gnn

#endif // BEACONGNN_GNN_SUBGRAPH_H
