#include "gnn/sampler.h"

#include "sim/rng.h"

namespace beacongnn::gnn {

PrimaryDraws
drawPrimary(std::uint64_t seed, std::uint64_t batch, std::uint8_t hop,
            graph::NodeId node, std::uint8_t fanout, std::uint32_t degree,
            std::uint32_t in_page,
            std::span<const dg::SecondaryRef> secondaries)
{
    PrimaryDraws out;
    out.secondaryHits.assign(secondaries.size(), 0);
    if (degree == 0)
        return out;
    for (std::uint8_t i = 0; i < fanout; ++i) {
        auto r = static_cast<std::uint32_t>(
            sim::keyedBelow(seed, batch, hop, node, i, degree));
        if (r < in_page) {
            out.inPagePicks.push_back(r);
        } else {
            // Locate the secondary section covering index r.
            std::uint32_t start = in_page;
            for (std::size_t j = 0; j < secondaries.size(); ++j) {
                if (r < start + secondaries[j].count) {
                    ++out.secondaryHits[j];
                    break;
                }
                start += secondaries[j].count;
            }
        }
    }
    return out;
}

std::vector<std::uint32_t>
drawSecondary(std::uint64_t seed, std::uint64_t batch, std::uint8_t hop,
              graph::NodeId node, std::uint32_t secondary_idx,
              std::uint32_t first_draw, std::uint32_t count,
              std::uint32_t section_size)
{
    std::vector<std::uint32_t> picks;
    picks.reserve(count);
    for (std::uint32_t t = first_draw; t < first_draw + count; ++t) {
        std::uint32_t draw = kSecondaryDrawBase +
                             secondary_idx * kSecondaryDrawStride + t;
        picks.push_back(static_cast<std::uint32_t>(sim::keyedBelow(
            seed, batch, hop, node, draw, section_size)));
    }
    return picks;
}

namespace {

/** Recursive expansion shared by both disciplines. */
template <typename ChildFn>
void
expand(Subgraph &sg, const ModelConfig &m, graph::NodeId node,
       std::uint8_t hop, Slot parent, ChildFn &&children)
{
    Slot slot = sg.add(node, hop, parent);
    if (hop >= m.hops)
        return;
    for (graph::NodeId c : children(node, hop)) {
        expand(sg, m, c, static_cast<std::uint8_t>(hop + 1), slot,
               children);
    }
}

} // namespace

Subgraph
csrSample(const graph::Graph &g, const ModelConfig &m, std::uint64_t batch,
          std::span<const graph::NodeId> targets)
{
    Subgraph sg;
    auto children = [&](graph::NodeId v,
                        std::uint8_t hop) -> std::vector<graph::NodeId> {
        std::vector<graph::NodeId> out;
        std::uint32_t deg = g.degree(v);
        if (deg == 0)
            return out;
        const std::uint8_t fan = m.fanoutAt(hop);
        out.reserve(fan);
        for (std::uint8_t i = 0; i < fan; ++i) {
            auto r = static_cast<std::uint32_t>(
                sim::keyedBelow(m.seed, batch, hop, v, i, deg));
            out.push_back(g.neighbor(v, r));
        }
        return out;
    };
    for (graph::NodeId t : targets)
        expand(sg, m, t, 0, kNoParent, children);
    return sg;
}

Subgraph
layoutSample(const graph::Graph &g, const dg::DirectGraphLayout &layout,
             const ModelConfig &m, std::uint64_t batch,
             std::span<const graph::NodeId> targets)
{
    Subgraph sg;
    auto children = [&](graph::NodeId v,
                        std::uint8_t hop) -> std::vector<graph::NodeId> {
        std::vector<graph::NodeId> out;
        const dg::NodeLayout &nl = layout.nodes[v];
        if (nl.degree == 0)
            return out;
        const std::uint8_t fan = m.fanoutAt(hop);
        PrimaryDraws d = drawPrimary(m.seed, batch, hop, v, fan,
                                     nl.degree, nl.inPage, nl.secondaries);
        out.reserve(fan);
        for (std::uint32_t r : d.inPagePicks)
            out.push_back(g.neighbor(v, r));
        for (std::size_t j = 0; j < d.secondaryHits.size(); ++j) {
            std::uint32_t c = d.secondaryHits[j];
            if (c == 0)
                continue;
            std::uint32_t start = nl.inPage;
            for (std::size_t k = 0; k < j; ++k)
                start += nl.secondaries[k].count;
            for (std::uint32_t idx : drawSecondary(
                     m.seed, batch, hop, v,
                     static_cast<std::uint32_t>(j), 0, c,
                     nl.secondaries[j].count)) {
                out.push_back(g.neighbor(v, start + idx));
            }
        }
        return out;
    };
    for (graph::NodeId t : targets)
        expand(sg, m, t, 0, kNoParent, children);
    return sg;
}

} // namespace beacongnn::gnn
