#include "gnn/compute.h"

#include <algorithm>
#include <cmath>

#include "gnn/half.h"
#include "sim/rng.h"

namespace beacongnn::gnn {

std::vector<float>
makeWeights(std::uint64_t seed, unsigned layer, std::uint32_t n_out,
            std::uint32_t n_in)
{
    std::vector<float> w(std::size_t{n_out} * n_in);
    // Xavier scale keeps activation magnitudes stable across layers.
    float scale = 1.7f / std::sqrt(static_cast<float>(n_in));
    for (std::size_t i = 0; i < w.size(); ++i) {
        auto bits = sim::splitmix64(seed ^ (std::uint64_t{layer} << 48) ^ i);
        float u = static_cast<float>(bits & 0xffff) / 65536.0f;
        w[i] = (2.0f * u - 1.0f) * scale;
    }
    return w;
}

namespace {

/** Layer tag offsets keep the extra GIN/GAT matrices on independent
 *  pseudo-random streams from the layer-l update weights. */
constexpr unsigned kMlpLayerTag = 64;
constexpr unsigned kAttnLayerTag = 128;

/** y = relu(W x), W row-major n_out x n_in. */
void
perceptron(const std::vector<float> &w, std::uint32_t n_out,
           std::uint32_t n_in, const std::vector<float> &x,
           std::vector<float> &y)
{
    y.assign(n_out, 0.0f);
    for (std::uint32_t o = 0; o < n_out; ++o) {
        float acc = 0.0f;
        const float *row = w.data() + std::size_t{o} * n_in;
        for (std::uint32_t i = 0; i < n_in; ++i)
            acc += row[i] * x[i];
        y[o] = std::max(0.0f, acc);
    }
}

float
leakyRelu(float x)
{
    return x > 0.0f ? x : 0.2f * x;
}

/** Attention logit of one edge: <a_self, h_self> + <a_nbr, h_nbr>
 *  through a leaky ReLU; `a` is row-major 2 x n_in (self row 0). */
float
attnScore(const std::vector<float> &a, std::uint32_t n_in,
          const std::vector<float> &self, const std::vector<float> &nbr)
{
    float acc = 0.0f;
    for (std::uint32_t i = 0; i < n_in; ++i)
        acc += a[i] * self[i] + a[std::size_t{n_in} + i] * nbr[i];
    return leakyRelu(acc);
}

} // namespace

std::vector<std::vector<float>>
forward(const Subgraph &sg, const graph::FeatureTable &features,
        const ModelConfig &m)
{
    const auto &entries = sg.all();
    auto children = sg.childrenIndex();

    // h^0: raw features for every subgraph entry.
    std::vector<std::vector<float>> cur(entries.size());
    for (Slot s = 0; s < entries.size(); ++s) {
        cur[s].resize(m.featureDim);
        for (std::uint16_t i = 0; i < m.featureDim; ++i)
            cur[s][i] = features.value(entries[s].node, i);
    }

    std::vector<std::vector<float>> next(entries.size());
    std::vector<float> agg;
    std::vector<float> hidden;
    std::vector<float> scores;
    for (unsigned l = 1; l <= m.hops; ++l) {
        std::uint32_t n_in = (l == 1) ? m.featureDim : m.hiddenDim;
        std::uint32_t n_out = m.hiddenDim;
        auto w = makeWeights(m.seed, l, n_out, n_in);
        std::vector<float> w2;
        std::vector<float> attn;
        if (m.kind == ModelKind::GIN)
            w2 = makeWeights(m.seed, l + kMlpLayerTag, n_out, n_out);
        else if (m.kind == ModelKind::GAT)
            attn = makeWeights(m.seed, l + kAttnLayerTag, 2, n_in);
        unsigned max_hop = m.hops - l; // Entries still needed at layer l.
        for (Slot s = 0; s < entries.size(); ++s) {
            if (entries[s].hop > max_hop) {
                next[s].clear();
                continue;
            }
            if (m.kind == ModelKind::GIN) {
                // AGGREGATE: (1 + eps) * own + sum of children,
                // COMBINE: two-layer MLP.
                agg = cur[s];
                for (auto &v : agg)
                    v *= 1.0f + m.epsilon;
                for (Slot c : children[s])
                    for (std::uint32_t i = 0; i < n_in; ++i)
                        agg[i] += cur[c][i];
                perceptron(w, n_out, n_in, agg, hidden);
                perceptron(w2, n_out, n_out, hidden, next[s]);
                continue;
            }
            if (m.kind == ModelKind::GAT) {
                // AGGREGATE: softmax-attention weighted sum over
                // N(u) u {u}, COMBINE: perceptron.
                scores.clear();
                scores.push_back(
                    attnScore(attn, n_in, cur[s], cur[s]));
                for (Slot c : children[s])
                    scores.push_back(
                        attnScore(attn, n_in, cur[s], cur[c]));
                float peak =
                    *std::max_element(scores.begin(), scores.end());
                float norm = 0.0f;
                for (auto &sc : scores) {
                    sc = std::exp(sc - peak);
                    norm += sc;
                }
                agg.assign(n_in, 0.0f);
                for (std::uint32_t i = 0; i < n_in; ++i)
                    agg[i] = (scores[0] / norm) * cur[s][i];
                for (std::size_t ci = 0; ci < children[s].size(); ++ci) {
                    const float alpha = scores[ci + 1] / norm;
                    const auto &child = cur[children[s][ci]];
                    for (std::uint32_t i = 0; i < n_in; ++i)
                        agg[i] += alpha * child[i];
                }
                perceptron(w, n_out, n_in, agg, next[s]);
                continue;
            }
            // AGGREGATE: own embedding plus children (N(u) u {u}).
            agg = cur[s];
            double inv = 1.0;
            for (Slot c : children[s]) {
                for (std::uint32_t i = 0; i < n_in; ++i)
                    agg[i] += cur[c][i];
            }
            if (m.aggregation == Aggregation::Mean &&
                !children[s].empty()) {
                inv = 1.0 / (1.0 + static_cast<double>(
                                       children[s].size()));
                for (auto &v : agg)
                    v = static_cast<float>(static_cast<double>(v) *
                                           inv);
            }
            perceptron(w, n_out, n_in, agg, next[s]);
        }
        std::swap(cur, next);
    }

    std::vector<std::vector<float>> out;
    for (Slot s = 0; s < entries.size(); ++s)
        if (entries[s].hop == 0)
            out.push_back(cur[s]);
    return out;
}

std::vector<std::vector<float>>
forwardFp16(const Subgraph &sg, const graph::FeatureTable &features,
            const ModelConfig &m)
{
    const auto &entries = sg.all();
    auto children = sg.childrenIndex();

    std::vector<std::vector<float>> cur(entries.size());
    for (Slot s = 0; s < entries.size(); ++s) {
        cur[s].resize(m.featureDim);
        for (std::uint16_t i = 0; i < m.featureDim; ++i)
            cur[s][i] = toHalfPrecision(features.value(entries[s].node, i));
    }

    // GEMV with FP32 accumulation, FP16 output (the systolic array
    // accumulates wide and stores narrow).
    auto gemvFp16 = [](const std::vector<float> &w, std::uint32_t n_out,
                       std::uint32_t n_in, const std::vector<float> &x,
                       std::vector<float> &y) {
        y.assign(n_out, 0.0f);
        for (std::uint32_t o = 0; o < n_out; ++o) {
            float acc = 0.0f;
            const float *row = w.data() + std::size_t{o} * n_in;
            for (std::uint32_t i = 0; i < n_in; ++i)
                acc += row[i] * x[i];
            y[o] = toHalfPrecision(std::max(0.0f, acc));
        }
    };

    std::vector<std::vector<float>> next(entries.size());
    std::vector<float> agg;
    std::vector<float> hidden;
    std::vector<float> scores;
    for (unsigned l = 1; l <= m.hops; ++l) {
        std::uint32_t n_in = (l == 1) ? m.featureDim : m.hiddenDim;
        std::uint32_t n_out = m.hiddenDim;
        auto w = makeWeights(m.seed, l, n_out, n_in);
        for (auto &x : w)
            x = toHalfPrecision(x); // FP16 weights.
        std::vector<float> w2;
        std::vector<float> attn;
        if (m.kind == ModelKind::GIN) {
            w2 = makeWeights(m.seed, l + kMlpLayerTag, n_out, n_out);
            for (auto &x : w2)
                x = toHalfPrecision(x);
        } else if (m.kind == ModelKind::GAT) {
            attn = makeWeights(m.seed, l + kAttnLayerTag, 2, n_in);
            for (auto &x : attn)
                x = toHalfPrecision(x);
        }
        unsigned max_hop = m.hops - l;
        for (Slot s = 0; s < entries.size(); ++s) {
            if (entries[s].hop > max_hop) {
                next[s].clear();
                continue;
            }
            if (m.kind == ModelKind::GIN) {
                agg = cur[s];
                const float gain = toHalfPrecision(1.0f + m.epsilon);
                for (auto &v : agg)
                    v = toHalfPrecision(v * gain);
                for (Slot c : children[s])
                    for (std::uint32_t i = 0; i < n_in; ++i)
                        agg[i] = toHalfPrecision(agg[i] + cur[c][i]);
                gemvFp16(w, n_out, n_in, agg, hidden);
                gemvFp16(w2, n_out, n_out, hidden, next[s]);
                continue;
            }
            if (m.kind == ModelKind::GAT) {
                // Attention logits in FP32 (tiny per-edge scalars),
                // weighted sum rounded per element.
                scores.clear();
                scores.push_back(
                    attnScore(attn, n_in, cur[s], cur[s]));
                for (Slot c : children[s])
                    scores.push_back(
                        attnScore(attn, n_in, cur[s], cur[c]));
                float peak =
                    *std::max_element(scores.begin(), scores.end());
                float norm = 0.0f;
                for (auto &sc : scores) {
                    sc = std::exp(sc - peak);
                    norm += sc;
                }
                agg.assign(n_in, 0.0f);
                for (std::uint32_t i = 0; i < n_in; ++i)
                    agg[i] = toHalfPrecision(
                        toHalfPrecision(scores[0] / norm) * cur[s][i]);
                for (std::size_t ci = 0; ci < children[s].size(); ++ci) {
                    const float alpha =
                        toHalfPrecision(scores[ci + 1] / norm);
                    const auto &child = cur[children[s][ci]];
                    for (std::uint32_t i = 0; i < n_in; ++i)
                        agg[i] = toHalfPrecision(
                            agg[i] + toHalfPrecision(alpha * child[i]));
                }
                gemvFp16(w, n_out, n_in, agg, next[s]);
                continue;
            }
            agg = cur[s];
            for (Slot c : children[s])
                for (std::uint32_t i = 0; i < n_in; ++i)
                    agg[i] = toHalfPrecision(agg[i] + cur[c][i]);
            if (m.aggregation == Aggregation::Mean &&
                !children[s].empty()) {
                float inv = toHalfPrecision(
                    1.0f / (1.0f + static_cast<float>(
                                       children[s].size())));
                for (auto &v : agg)
                    v = toHalfPrecision(v * inv);
            }
            // GEMV with FP32 accumulation, FP16 output (the systolic
            // array accumulates wide and stores narrow).
            next[s].assign(n_out, 0.0f);
            for (std::uint32_t o = 0; o < n_out; ++o) {
                float acc = 0.0f;
                const float *row = w.data() + std::size_t{o} * n_in;
                for (std::uint32_t i = 0; i < n_in; ++i)
                    acc += row[i] * agg[i];
                next[s][o] = toHalfPrecision(std::max(0.0f, acc));
            }
        }
        std::swap(cur, next);
    }

    std::vector<std::vector<float>> out;
    for (Slot s = 0; s < entries.size(); ++s)
        if (entries[s].hop == 0)
            out.push_back(cur[s]);
    return out;
}

ComputeWorkload
measureCompute(const Subgraph &sg, const ModelConfig &m)
{
    ComputeWorkload w;
    auto counts = sg.hopCounts();
    auto through = [&](unsigned h) {
        std::uint64_t t = 0;
        for (unsigned i = 0; i <= h && i < counts.size(); ++i)
            t += counts[i];
        return t;
    };
    auto children = sg.childrenIndex();
    std::vector<std::uint64_t> child_elems(m.hops + 1, 0);
    for (Slot s = 0; s < sg.size(); ++s)
        if (sg[s].hop <= m.hops)
            child_elems[sg[s].hop] += children[s].size();

    for (unsigned l = 1; l <= m.hops; ++l) {
        unsigned max_hop = m.hops - l;
        GemmShape g;
        g.m = through(max_hop);
        g.n = m.hiddenDim;
        g.k = (l == 1) ? m.featureDim : m.hiddenDim;
        w.gemms.push_back(g);
        std::uint64_t kids = 0;
        for (unsigned h = 0; h <= max_hop; ++h)
            kids += child_elems[h];
        w.aggregateElements += (kids + g.m) * g.k;
        if (m.kind == ModelKind::GIN) {
            GemmShape g2{g.m, g.n, g.n};
            w.gemms.push_back(g2);
            w.edgeOps += g.m * g.k;
        } else if (m.kind == ModelKind::GAT) {
            w.edgeOps += std::uint64_t(m.heads) * kids * (g.k + 2u);
        }
    }
    return w;
}

} // namespace beacongnn::gnn
