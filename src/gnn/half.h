/**
 * @file
 * IEEE 754 binary16 (FP16) software implementation.
 *
 * The paper stores features and intermediate embeddings as FP16
 * vectors (§VII-A). This header provides bit-exact conversions
 * (round-to-nearest-even, with subnormal, infinity and NaN handling)
 * and a small value type used by the FP16-accurate forward pass.
 */

#ifndef BEACONGNN_GNN_HALF_H
#define BEACONGNN_GNN_HALF_H

#include <cstdint>
#include <cstring>

namespace beacongnn::gnn {

/** Convert a float to FP16 bits (round to nearest even). */
constexpr std::uint16_t
floatToHalfBits(float f)
{
    std::uint32_t x = __builtin_bit_cast(std::uint32_t, f);
    std::uint32_t sign = (x >> 16) & 0x8000u;
    std::uint32_t exp = (x >> 23) & 0xffu;
    std::uint32_t mant = x & 0x7fffffu;

    if (exp == 0xff) {
        // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
        return static_cast<std::uint16_t>(
            sign | 0x7c00u | (mant ? 0x200u | (mant >> 13) : 0u));
    }
    // Re-bias 127 -> 15.
    std::int32_t e = static_cast<std::int32_t>(exp) - 127 + 15;
    if (e >= 0x1f) {
        return static_cast<std::uint16_t>(sign | 0x7c00u); // Overflow.
    }
    if (e <= 0) {
        // Subnormal half (or underflow to zero).
        if (e < -10)
            return static_cast<std::uint16_t>(sign);
        mant |= 0x800000u; // Implicit leading one.
        unsigned shift = static_cast<unsigned>(14 - e);
        std::uint32_t half_mant = mant >> shift;
        // Round to nearest even.
        std::uint32_t rem = mant & ((1u << shift) - 1);
        std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1)))
            ++half_mant;
        return static_cast<std::uint16_t>(sign | half_mant);
    }
    std::uint32_t half = sign | (static_cast<std::uint32_t>(e) << 10) |
                         (mant >> 13);
    // Round to nearest even on the dropped 13 bits.
    std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1)))
        ++half; // May carry into the exponent; that is correct.
    return static_cast<std::uint16_t>(half);
}

/** Convert FP16 bits to a float. */
constexpr float
halfBitsToFloat(std::uint16_t h)
{
    std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
    std::uint32_t exp = (h >> 10) & 0x1fu;
    std::uint32_t mant = h & 0x3ffu;

    std::uint32_t out;
    if (exp == 0) {
        if (mant == 0) {
            out = sign; // Signed zero.
        } else {
            // Subnormal: normalize.
            std::int32_t e = -1;
            std::uint32_t m = mant;
            while ((m & 0x400u) == 0) {
                m <<= 1;
                ++e;
            }
            m &= 0x3ffu;
            out = sign |
                  (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
                  (m << 13);
        }
    } else if (exp == 0x1f) {
        out = sign | 0x7f800000u | (mant << 13); // Inf / NaN.
    } else {
        out = sign | ((exp + 127 - 15) << 23) | (mant << 13);
    }
    return __builtin_bit_cast(float, out);
}

/** Round a float through FP16 precision. */
constexpr float
toHalfPrecision(float f)
{
    return halfBitsToFloat(floatToHalfBits(f));
}

/** Small FP16 value type (storage type; arithmetic via float). */
class Half
{
  public:
    Half() = default;
    explicit Half(float f) : bits_(floatToHalfBits(f)) {}

    static Half
    fromBits(std::uint16_t b)
    {
        Half h;
        h.bits_ = b;
        return h;
    }

    std::uint16_t bits() const { return bits_; }
    float toFloat() const { return halfBitsToFloat(bits_); }

    Half
    operator+(Half o) const
    {
        return Half(toFloat() + o.toFloat());
    }
    Half
    operator*(Half o) const
    {
        return Half(toFloat() * o.toFloat());
    }
    bool operator==(Half o) const { return bits_ == o.bits_; }

  private:
    std::uint16_t bits_ = 0;
};

} // namespace beacongnn::gnn

#endif // BEACONGNN_GNN_HALF_H
