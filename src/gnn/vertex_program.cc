#include "gnn/vertex_program.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace beacongnn::gnn {

namespace {

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

constexpr AlgoKind kAlgoKinds[] = {AlgoKind::PageRank, AlgoKind::Bfs,
                                   AlgoKind::KCore};

/**
 * Pull-based damped PageRank. Every superstep reads the rank of every
 * vertex (dense frontier), so each iteration streams the full vertex
 * state from flash; convergence is a total L1 residual below the
 * tolerance. Dangling mass is dropped (deterministic, matches the
 * simple pull formulation).
 */
class PageRankProgram final : public VertexProgram
{
  public:
    explicit PageRankProgram(const VertexProgramConfig &cfg_)
        : cfg(cfg_)
    {
    }

    const char *name() const override { return "pagerank"; }

    void
    init(const graph::Graph &g) override
    {
        const std::size_t n = g.numNodes();
        rank.assign(n, n ? 1.0 / static_cast<double>(n) : 0.0);
        active.resize(n);
        for (std::size_t v = 0; v < n; ++v)
            active[v] = static_cast<graph::NodeId>(v);
        done = n == 0;
        if (done)
            active.clear();
    }

    const std::vector<graph::NodeId> &
    frontier() const override
    {
        return active;
    }

    bool
    step(const graph::Graph &g) override
    {
        const std::size_t n = g.numNodes();
        std::vector<double> next(n, (1.0 - cfg.damping) /
                                        static_cast<double>(n));
        for (std::size_t u = 0; u < n; ++u) {
            const std::uint32_t deg = g.degree(
                static_cast<graph::NodeId>(u));
            if (deg == 0)
                continue;
            const double share =
                cfg.damping * rank[u] / static_cast<double>(deg);
            for (graph::NodeId w :
                 g.neighbors(static_cast<graph::NodeId>(u)))
                next[w] += share;
        }
        double residual = 0.0;
        for (std::size_t v = 0; v < n; ++v)
            residual += std::abs(next[v] - rank[v]);
        rank = std::move(next);
        done = residual < cfg.tolerance;
        if (done)
            active.clear();
        return done;
    }

    const std::vector<double> &values() const override { return rank; }

  private:
    VertexProgramConfig cfg;
    std::vector<double> rank;
    std::vector<graph::NodeId> active;
    bool done = false;
};

/**
 * Breadth-first distances. The frontier is exactly the wave of newly
 * discovered vertices, so the flash traffic per superstep tracks the
 * true BFS expansion; unreached vertices keep value -1.
 */
class BfsProgram final : public VertexProgram
{
  public:
    explicit BfsProgram(const VertexProgramConfig &cfg_) : cfg(cfg_) {}

    const char *name() const override { return "bfs"; }

    void
    init(const graph::Graph &g) override
    {
        dist.assign(g.numNodes(), -1.0);
        wave.clear();
        depth = 0;
        if (cfg.source < g.numNodes()) {
            dist[cfg.source] = 0.0;
            wave.push_back(cfg.source);
        }
    }

    const std::vector<graph::NodeId> &
    frontier() const override
    {
        return wave;
    }

    bool
    step(const graph::Graph &g) override
    {
        ++depth;
        std::vector<graph::NodeId> next;
        for (graph::NodeId u : wave) {
            for (graph::NodeId w : g.neighbors(u)) {
                if (dist[w] < 0.0) {
                    dist[w] = static_cast<double>(depth);
                    next.push_back(w);
                }
            }
        }
        wave = std::move(next);
        return wave.empty();
    }

    const std::vector<double> &values() const override { return dist; }

  private:
    VertexProgramConfig cfg;
    std::vector<double> dist;
    std::vector<graph::NodeId> wave;
    std::uint32_t depth = 0;
};

/**
 * k-core peeling: repeatedly remove vertices whose degree among the
 * surviving vertices is below k. The frontier of superstep i is the
 * set of vertices whose effective degree must be re-read — all alive
 * vertices on the first round, then the alive neighbours of the last
 * peel. values() is 1 for core members, 0 for peeled vertices.
 */
class KCoreProgram final : public VertexProgram
{
  public:
    explicit KCoreProgram(const VertexProgramConfig &cfg_) : cfg(cfg_)
    {
    }

    const char *name() const override { return "kcore"; }

    void
    init(const graph::Graph &g) override
    {
        const std::size_t n = g.numNodes();
        inCore.assign(n, 1.0);
        deg.resize(n);
        for (std::size_t v = 0; v < n; ++v)
            deg[v] = g.degree(static_cast<graph::NodeId>(v));
        check.resize(n);
        for (std::size_t v = 0; v < n; ++v)
            check[v] = static_cast<graph::NodeId>(v);
        done = n == 0;
        if (done)
            check.clear();
    }

    const std::vector<graph::NodeId> &
    frontier() const override
    {
        return check;
    }

    bool
    step(const graph::Graph &g) override
    {
        std::vector<graph::NodeId> peeled;
        for (graph::NodeId v : check) {
            if (inCore[v] > 0.0 && deg[v] < cfg.k) {
                inCore[v] = 0.0;
                peeled.push_back(v);
            }
        }
        std::vector<graph::NodeId> next;
        for (graph::NodeId v : peeled) {
            for (graph::NodeId w : g.neighbors(v)) {
                if (inCore[w] > 0.0) {
                    --deg[w];
                    next.push_back(w);
                }
            }
        }
        // A vertex may appear once per lost edge; deduplicate so the
        // next superstep reads each candidate once.
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        check = std::move(next);
        done = check.empty();
        return done;
    }

    const std::vector<double> &
    values() const override
    {
        return inCore;
    }

  private:
    VertexProgramConfig cfg;
    std::vector<double> inCore;
    std::vector<std::uint32_t> deg;
    std::vector<graph::NodeId> check;
    bool done = false;
};

} // namespace

const char *
algoKindName(AlgoKind k)
{
    switch (k) {
    case AlgoKind::PageRank:
        return "pagerank";
    case AlgoKind::Bfs:
        return "bfs";
    case AlgoKind::KCore:
        return "kcore";
    }
    return "?";
}

std::optional<AlgoKind>
findAlgoKind(std::string_view name)
{
    for (AlgoKind k : kAlgoKinds)
        if (iequals(name, algoKindName(k)))
            return k;
    return std::nullopt;
}

std::string
algoKindList()
{
    std::string out;
    for (AlgoKind k : kAlgoKinds) {
        if (!out.empty())
            out += ", ";
        out += algoKindName(k);
    }
    return out;
}

std::unique_ptr<VertexProgram>
makeVertexProgram(const VertexProgramConfig &cfg)
{
    switch (cfg.algo) {
    case AlgoKind::PageRank:
        return std::make_unique<PageRankProgram>(cfg);
    case AlgoKind::Bfs:
        return std::make_unique<BfsProgram>(cfg);
    case AlgoKind::KCore:
        return std::make_unique<KCoreProgram>(cfg);
    }
    return nullptr;
}

} // namespace beacongnn::gnn
