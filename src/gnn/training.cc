#include "gnn/training.h"

#include <cmath>

#include "sim/log.h"
#include "sim/rng.h"

namespace beacongnn::gnn {

TrainState
TrainState::init(const ModelConfig &m)
{
    TrainState st;
    for (unsigned l = 1; l <= m.hops; ++l) {
        st.weights.push_back(
            makeWeights(m.seed, l, m.hiddenDim, layerInputDim(m, l)));
    }
    return st;
}

float
pseudoLabel(graph::NodeId v, std::uint16_t i, std::uint16_t dim,
            std::uint64_t seed)
{
    (void)dim;
    auto bits = sim::splitmix64(seed ^ 0xfeedf00dull ^
                                (std::uint64_t{v} << 17) ^ i);
    return (static_cast<float>(bits & 0xffff) / 32768.0f - 1.0f) * 0.1f;
}

namespace {

/** Per-layer cached state of one forward pass. */
struct ForwardCache
{
    /** act[l][slot] — activations after layer l (l = 0 is h^0). */
    std::vector<std::vector<std::vector<float>>> act;
    /** agg[l][slot] — aggregated inputs fed to layer l (l >= 1). */
    std::vector<std::vector<std::vector<float>>> agg;
};

/** Forward with caching; returns MAC count. */
std::uint64_t
cachedForward(const Subgraph &sg, const graph::FeatureTable &features,
              const ModelConfig &m, const TrainState &state,
              const std::vector<std::vector<Slot>> &children,
              ForwardCache &fc)
{
    const auto &entries = sg.all();
    std::uint64_t macs = 0;
    fc.act.assign(m.hops + 1u, {});
    fc.agg.assign(m.hops + 1u, {});
    fc.act[0].resize(entries.size());
    for (Slot s = 0; s < entries.size(); ++s) {
        fc.act[0][s].resize(m.featureDim);
        for (std::uint16_t i = 0; i < m.featureDim; ++i)
            fc.act[0][s][i] = features.value(entries[s].node, i);
    }

    for (unsigned l = 1; l <= m.hops; ++l) {
        std::uint32_t n_in = TrainState::layerInputDim(m, l);
        std::uint32_t n_out = m.hiddenDim;
        const auto &w = state.weights[l - 1];
        unsigned max_hop = m.hops - l;
        fc.act[l].resize(entries.size());
        fc.agg[l].resize(entries.size());
        for (Slot s = 0; s < entries.size(); ++s) {
            if (entries[s].hop > max_hop)
                continue;
            auto &a = fc.agg[l][s];
            a = fc.act[l - 1][s];
            for (Slot c : children[s])
                for (std::uint32_t i = 0; i < n_in; ++i)
                    a[i] += fc.act[l - 1][c][i];
            auto &out = fc.act[l][s];
            out.assign(n_out, 0.0f);
            for (std::uint32_t o = 0; o < n_out; ++o) {
                float acc = 0.0f;
                const float *row = w.data() + std::size_t{o} * n_in;
                for (std::uint32_t i = 0; i < n_in; ++i)
                    acc += row[i] * a[i];
                out[o] = std::max(0.0f, acc);
            }
            macs += std::uint64_t{n_in} * n_out;
        }
    }
    return macs;
}

} // namespace

StepResult
trainStep(const Subgraph &sg, const graph::FeatureTable &features,
          const ModelConfig &m, TrainState &state, float lr,
          std::vector<std::vector<float>> *grad_out)
{
    if (m.aggregation != Aggregation::VectorSum)
        sim::fatal("trainStep: only vector_sum aggregation is "
                   "differentiable in this build");
    if (state.weights.size() != m.hops)
        sim::fatal("trainStep: state does not match the model depth");

    StepResult res;
    const auto &entries = sg.all();
    auto children = sg.childrenIndex();
    ForwardCache fc;
    res.macsForward = cachedForward(sg, features, m, state, children, fc);

    // ---- Loss on the hop-0 embeddings --------------------------------
    std::vector<Slot> targets;
    for (Slot s = 0; s < entries.size(); ++s)
        if (entries[s].hop == 0)
            targets.push_back(s);
    if (targets.empty())
        return res;
    double n = static_cast<double>(targets.size()) * m.hiddenDim;

    // dAct at the top layer.
    std::vector<std::vector<float>> d_act(entries.size());
    double loss = 0;
    for (Slot t : targets) {
        d_act[t].assign(m.hiddenDim, 0.0f);
        for (std::uint16_t i = 0; i < m.hiddenDim; ++i) {
            float y = pseudoLabel(entries[t].node, i, m.hiddenDim,
                                  m.seed);
            float diff = fc.act[m.hops][t][i] - y;
            double d = static_cast<double>(diff);
            loss += 0.5 * d * d;
            d_act[t][i] = static_cast<float>(d / n);
        }
    }
    res.loss = loss / n;

    // ---- Backward -----------------------------------------------------
    std::vector<std::vector<float>> grads(m.hops);
    for (unsigned l = m.hops; l >= 1; --l) {
        std::uint32_t n_in = TrainState::layerInputDim(m, l);
        std::uint32_t n_out = m.hiddenDim;
        const auto &w = state.weights[l - 1];
        auto &dw = grads[l - 1];
        dw.assign(w.size(), 0.0f);
        unsigned max_hop = m.hops - l;

        std::vector<std::vector<float>> d_prev(entries.size());
        for (Slot s = 0; s < entries.size(); ++s) {
            if (entries[s].hop > max_hop || d_act[s].empty())
                continue;
            // Through the ReLU: act > 0 <=> pre > 0.
            std::vector<float> d_pre(n_out);
            for (std::uint32_t o = 0; o < n_out; ++o)
                d_pre[o] = fc.act[l][s][o] > 0.0f ? d_act[s][o] : 0.0f;
            // Weight gradient and input gradient.
            std::vector<float> d_agg(n_in, 0.0f);
            const auto &a = fc.agg[l][s];
            for (std::uint32_t o = 0; o < n_out; ++o) {
                float dp = d_pre[o];
                if (dp == 0.0f)
                    continue;
                float *dw_row = dw.data() + std::size_t{o} * n_in;
                const float *w_row = w.data() + std::size_t{o} * n_in;
                for (std::uint32_t i = 0; i < n_in; ++i) {
                    dw_row[i] += dp * a[i];
                    d_agg[i] += dp * w_row[i];
                }
            }
            res.macsBackward += 2ull * n_in * n_out;
            // Sum aggregation distributes the gradient to the slot
            // itself and every child.
            auto add_to = [&](Slot dst) {
                if (d_prev[dst].empty())
                    d_prev[dst].assign(n_in, 0.0f);
                for (std::uint32_t i = 0; i < n_in; ++i)
                    d_prev[dst][i] += d_agg[i];
            };
            add_to(s);
            for (Slot c : children[s])
                add_to(c);
        }
        d_act = std::move(d_prev);
    }

    // ---- Gradient norm + SGD update -----------------------------------
    double norm2 = 0;
    for (const auto &gw : grads)
        for (float v : gw)
            norm2 += static_cast<double>(v) * static_cast<double>(v);
    res.gradNorm = std::sqrt(norm2);
    if (lr != 0.0f) {
        for (unsigned l = 0; l < m.hops; ++l)
            for (std::size_t i = 0; i < grads[l].size(); ++i)
                state.weights[l][i] -= lr * grads[l][i];
    }
    if (grad_out)
        *grad_out = std::move(grads);
    return res;
}

std::vector<std::vector<float>>
forwardWith(const Subgraph &sg, const graph::FeatureTable &features,
            const ModelConfig &m, const TrainState &state)
{
    auto children = sg.childrenIndex();
    ForwardCache fc;
    cachedForward(sg, features, m, state, children, fc);
    std::vector<std::vector<float>> out;
    const auto &entries = sg.all();
    for (Slot s = 0; s < entries.size(); ++s)
        if (entries[s].hop == 0)
            out.push_back(fc.act[m.hops][s]);
    return out;
}

double
evaluateLoss(const Subgraph &sg, const graph::FeatureTable &features,
             const ModelConfig &m, const TrainState &state)
{
    auto out = forwardWith(sg, features, m, state);
    const auto &entries = sg.all();
    std::vector<Slot> targets;
    for (Slot s = 0; s < entries.size(); ++s)
        if (entries[s].hop == 0)
            targets.push_back(s);
    double loss = 0;
    double n = static_cast<double>(targets.size()) * m.hiddenDim;
    for (std::size_t t = 0; t < targets.size(); ++t) {
        for (std::uint16_t i = 0; i < m.hiddenDim; ++i) {
            float y = pseudoLabel(entries[targets[t]].node, i,
                                  m.hiddenDim, m.seed);
            float diff = out[t][i] - y;
            double d = static_cast<double>(diff);
            loss += 0.5 * d * d;
        }
    }
    return n == 0 ? 0.0 : loss / n;
}

} // namespace beacongnn::gnn
