/**
 * @file
 * Golden (host-side) neighbour samplers.
 *
 * Two sampling disciplines exist in the system:
 *
 *  - csrSample(): plain uniform sampling over the full neighbour list
 *    (what the host CPU of the CC/GLIST platforms and the firmware of
 *    SmartSage/BG-1 do).
 *
 *  - layoutSample(): the DirectGraph two-level discipline of §V-A —
 *    fanout draws over the full range; draws landing in the in-page
 *    portion resolve immediately, draws landing in a secondary
 *    section are *re-drawn within that section* by the coalesced
 *    secondary command (modulo a TRNG value, per the paper). This is
 *    exactly what the die-level sampler executes, so the two must
 *    produce identical subgraphs — the core equivalence property.
 *
 * Both use keyed, order-independent randomness (sim/rng.h), so any
 * execution order (hop-by-hop, out-of-order, streaming) yields the
 * same subgraph for the same seed.
 */

#ifndef BEACONGNN_GNN_SAMPLER_H
#define BEACONGNN_GNN_SAMPLER_H

#include <cstdint>
#include <span>

#include "directgraph/layout.h"
#include "gnn/model.h"
#include "gnn/subgraph.h"
#include "graph/graph.h"

namespace beacongnn::gnn {

/** Draw-index base for secondary-section re-draws (see sampler.cc). */
inline constexpr std::uint32_t kSecondaryDrawBase = 1024;
inline constexpr std::uint32_t kSecondaryDrawStride = 64;

/**
 * Sample the full mini-batch subgraph with plain CSR semantics.
 *
 * @param g       Graph.
 * @param m       Model (hops, fanout, seed).
 * @param batch   Mini-batch id (keys the RNG).
 * @param targets Target nodes of this mini-batch.
 */
Subgraph csrSample(const graph::Graph &g, const ModelConfig &m,
                   std::uint64_t batch,
                   std::span<const graph::NodeId> targets);

/**
 * Sample the full mini-batch subgraph with DirectGraph two-level
 * semantics, following the layout's in-page/secondary split.
 */
Subgraph layoutSample(const graph::Graph &g,
                      const dg::DirectGraphLayout &layout,
                      const ModelConfig &m, std::uint64_t batch,
                      std::span<const graph::NodeId> targets);

/**
 * The primary-section sampling kernel shared by layoutSample() and
 * the die-level sampler model: draw @p m.fanout indices over
 * [0, degree), return the in-page picks directly and the per-
 * secondary-section hit counts for coalesced continuation commands.
 */
struct PrimaryDraws
{
    /** In-page picks: indices < inPage (resolve on this page). */
    std::vector<std::uint32_t> inPagePicks;
    /** Hits per secondary section (size = #secondaries). */
    std::vector<std::uint32_t> secondaryHits;
};

PrimaryDraws drawPrimary(std::uint64_t seed, std::uint64_t batch,
                         std::uint8_t hop, graph::NodeId node,
                         std::uint8_t fanout, std::uint32_t degree,
                         std::uint32_t in_page,
                         std::span<const dg::SecondaryRef> secondaries);

/**
 * The secondary-section re-draw kernel: draw indices
 * [first_draw, first_draw + count) within a section of
 * @p section_size entries, keyed on the owning node, the hop and the
 * secondary index — so a coalesced command (first_draw = 0, count =
 * hits) and `hits` non-coalesced single-draw commands produce the
 * exact same picks (the coalescing ablation relies on this).
 */
std::vector<std::uint32_t> drawSecondary(std::uint64_t seed,
                                         std::uint64_t batch,
                                         std::uint8_t hop,
                                         graph::NodeId node,
                                         std::uint32_t secondary_idx,
                                         std::uint32_t first_draw,
                                         std::uint32_t count,
                                         std::uint32_t section_size);

} // namespace beacongnn::gnn

#endif // BEACONGNN_GNN_SAMPLER_H
