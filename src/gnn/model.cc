#include "gnn/model.h"

#include <algorithm>
#include <cctype>

namespace beacongnn::gnn {

namespace {

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

constexpr ModelKind kModelKinds[] = {ModelKind::GCN, ModelKind::GIN,
                                     ModelKind::GAT};

} // namespace

const char *
modelKindName(ModelKind k)
{
    switch (k) {
    case ModelKind::GCN:
        return "gcn";
    case ModelKind::GIN:
        return "gin";
    case ModelKind::GAT:
        return "gat";
    }
    return "?";
}

std::optional<ModelKind>
findModelKind(std::string_view name)
{
    for (ModelKind k : kModelKinds)
        if (iequals(name, modelKindName(k)))
            return k;
    return std::nullopt;
}

std::string
modelKindList()
{
    std::string out;
    for (ModelKind k : kModelKinds) {
        if (!out.empty())
            out += ", ";
        out += modelKindName(k);
    }
    return out;
}

void
ModelSpec::normalizeFanouts()
{
    if (fanouts.empty())
        return;
    const bool uniform = std::all_of(
        fanouts.begin(), fanouts.end(),
        [&](std::uint8_t f) { return f == fanouts.front(); });
    if (uniform) {
        fanout = fanouts.front();
        fanouts.clear();
    }
}

std::optional<std::vector<std::uint8_t>>
parseFanouts(std::string_view list)
{
    std::vector<std::uint8_t> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        const std::string_view item = list.substr(pos, comma - pos);
        if (item.empty())
            return std::nullopt;
        unsigned value = 0;
        for (char c : item) {
            if (!std::isdigit(static_cast<unsigned char>(c)))
                return std::nullopt;
            value = value * 10 + unsigned(c - '0');
            if (value > 255)
                return std::nullopt;
        }
        if (value == 0)
            return std::nullopt;
        out.push_back(static_cast<std::uint8_t>(value));
        if (comma == list.size())
            break;
        pos = comma + 1;
    }
    if (out.empty() || out.size() > 255)
        return std::nullopt;
    return out;
}

ComputeWorkload
ModelSpec::workFor(std::uint32_t batch_size) const
{
    ComputeWorkload w;
    for (unsigned l = 1; l <= hops; ++l) {
        const unsigned max_hop = hops - l;
        GemmShape g;
        g.m = std::uint64_t(batch_size) * nodesThroughHop(max_hop);
        g.n = hiddenDim;
        g.k = (l == 1) ? featureDim : hiddenDim;

        // Per-hop aggregation demand: a hop-h node sums fanoutAt(h)
        // children plus itself. With a uniform schedule this equals
        // the historical g.m * (fanout + 1) * g.k.
        std::uint64_t children = 0;
        for (unsigned h = 0; h <= max_hop; ++h) {
            const std::uint64_t level =
                std::uint64_t(batch_size) * nodesAtHop(h);
            w.aggregateElements += level * (fanoutAt(h) + 1u) * g.k;
            children += level * fanoutAt(h);
        }

        switch (kind) {
        case ModelKind::GCN:
            w.gemms.push_back(g);
            break;
        case ModelKind::GIN: {
            // Two-layer MLP combine plus epsilon scaling of the
            // self term.
            w.gemms.push_back(g);
            GemmShape g2{g.m, hiddenDim, hiddenDim};
            w.gemms.push_back(g2);
            w.edgeOps += g.m * g.k;
            break;
        }
        case ModelKind::GAT:
            // Attention: per-edge coefficient math over the input
            // dimension plus the softmax normalization per edge.
            w.gemms.push_back(g);
            w.edgeOps += std::uint64_t(heads) * children * (g.k + 2u);
            break;
        }
    }
    return w;
}

} // namespace beacongnn::gnn
