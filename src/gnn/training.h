/**
 * @file
 * GNN training substrate: backpropagation through the message-passing
 * forward pass (sum-aggregation + perceptron layers) and SGD weight
 * updates. The paper's evaluation runs GNN *training* (§VII-A); this
 * module makes the reproduction's mini-batches real training steps
 * rather than inference-only passes.
 *
 * The objective is a regression against deterministic pseudo-labels
 * (a stand-in for the task head — gradients through the GNN body are
 * identical in structure for any differentiable head). Gradients are
 * validated against numerical differentiation in the test suite.
 */

#ifndef BEACONGNN_GNN_TRAINING_H
#define BEACONGNN_GNN_TRAINING_H

#include <vector>

#include "gnn/compute.h"
#include "gnn/model.h"
#include "gnn/subgraph.h"
#include "graph/graph.h"

namespace beacongnn::gnn {

/** Trainable parameters: one weight matrix per layer. */
struct TrainState
{
    /** weights[l-1] is layer l's matrix, row-major n_out x n_in. */
    std::vector<std::vector<float>> weights;

    /** Initialize from the deterministic makeWeights() seeds. */
    static TrainState init(const ModelConfig &m);

    /** Layer l's input dimension. */
    static std::uint32_t
    layerInputDim(const ModelConfig &m, unsigned l)
    {
        return l == 1 ? m.featureDim : m.hiddenDim;
    }
};

/** Deterministic pseudo-label for node @p v (regression target). */
float pseudoLabel(graph::NodeId v, std::uint16_t i, std::uint16_t dim,
                  std::uint64_t seed);

/** Result of one training step. */
struct StepResult
{
    double loss = 0;        ///< Mean squared error over targets.
    double gradNorm = 0;    ///< L2 norm of all weight gradients.
    std::uint64_t macsForward = 0;
    std::uint64_t macsBackward = 0;
};

/**
 * One SGD step on a sampled mini-batch subgraph: forward with cached
 * activations, MSE loss on the hop-0 embeddings against pseudo-
 * labels, full backpropagation through aggregation and ReLU, and an
 * in-place weight update.
 *
 * @param sg       Mini-batch subgraph.
 * @param features h^0 features.
 * @param m        Model config.
 * @param state    Parameters (updated in place).
 * @param lr       Learning rate (0 = compute gradients only).
 * @param grad_out If nonnull, receives the raw gradients (same
 *                 shapes as state.weights) — used by the tests.
 */
StepResult trainStep(const Subgraph &sg,
                     const graph::FeatureTable &features,
                     const ModelConfig &m, TrainState &state, float lr,
                     std::vector<std::vector<float>> *grad_out = nullptr);

/**
 * Forward pass using explicit weights (rather than the deterministic
 * makeWeights) — evaluation companion to trainStep.
 */
std::vector<std::vector<float>> forwardWith(
    const Subgraph &sg, const graph::FeatureTable &features,
    const ModelConfig &m, const TrainState &state);

/** Mean squared error of @p state on a subgraph (no update). */
double evaluateLoss(const Subgraph &sg,
                    const graph::FeatureTable &features,
                    const ModelConfig &m, const TrainState &state);

} // namespace beacongnn::gnn

#endif // BEACONGNN_GNN_TRAINING_H
