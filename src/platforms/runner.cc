#include "platforms/runner.h"

#include <algorithm>

#include "gnn/compute.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "ssd/firmware.h"

namespace beacongnn::platforms {

std::unique_ptr<WorkloadBundle>
makeBundle(const graph::WorkloadSpec &spec,
           const flash::FlashConfig &flash_cfg, gnn::ModelConfig model,
           graph::NodeId node_override)
{
    auto bundle = std::make_unique<WorkloadBundle>();
    WorkloadBundle &b = *bundle;
    b.name = spec.name;
    graph::WorkloadSpec s = spec;
    if (node_override != 0)
        s.simNodes = node_override;
    b.graph = s.makeGraph();
    b.features = s.makeFeatures();
    model.featureDim = s.featureDim;
    b.model = model;

    // Reserve enough blocks for the layout: raw volume with generous
    // headroom for inflation, rounded up.
    std::uint64_t raw =
        b.graph.numEdges() * 4 +
        std::uint64_t{b.graph.numNodes()} * b.features.bytesPerNode();
    std::uint64_t block_bytes =
        std::uint64_t{flash_cfg.pagesPerBlock} * flash_cfg.pageSize;
    std::uint64_t blocks =
        std::max<std::uint64_t>((raw * 3) / block_bytes + 16,
                                flash_cfg.totalDies() + 8);
    ssd::Ftl ftl(flash_cfg);
    auto reserved = ftl.reserveBlocks(blocks);
    if (reserved.empty())
        sim::fatal("makeBundle: cannot reserve " +
                   std::to_string(blocks) + " blocks");
    b.layout = dg::buildLayout(b.graph, b.features, flash_cfg, reserved);
    b.source = std::make_unique<dg::LayoutSource>(b.layout, b.graph);
    return bundle;
}

/** The component tree of one open platform run. */
struct PlatformSession::Impl
{
    PlatformConfig platform;
    RunConfig run;
    const WorkloadBundle &bundle;

    sim::EventQueue queue;
    flash::FlashBackend backend;
    ssd::Firmware fw;
    accel::Accelerator accelerator;
    sim::Bus accelBus{"accel"};
    engines::GnnEngine engine;

    RunResult res;
    sim::Tick prepFree = 0;
    sim::Tick lastComputeEnd = 0;
    std::uint32_t batches = 0;
    std::uint64_t accelMacs = 0;
    std::uint64_t accelSram = 0;

    Impl(const PlatformConfig &p, const RunConfig &r,
         const WorkloadBundle &b)
        : platform(p), run(r), bundle(b),
          backend(r.system.flash, r.traceUtilization), fw(r.system),
          accelerator(p.ssdCompute ? accel::ssdAcceleratorConfig()
                                   : accel::discreteTpuConfig()),
          engine(queue, backend, fw, b.layout, b.graph, b.model,
                 p.flags, *b.source)
    {
        // Mirror the bundle's block reservation in this run's FTL so
        // the isolation invariants hold during the run.
        fw.ftl().reserveBlocks(bundle.layout.blocks.size());
        res.platform = platform.name;
        res.workload = bundle.name;
    }
};

PlatformSession::PlatformSession(const PlatformConfig &platform,
                                 const RunConfig &run,
                                 const WorkloadBundle &bundle)
    : impl(std::make_unique<Impl>(platform, run, bundle))
{
}

PlatformSession::~PlatformSession() = default;

sim::Tick
PlatformSession::prepFree() const
{
    return impl->prepFree;
}

std::uint32_t
PlatformSession::batches() const
{
    return impl->batches;
}

BatchService
PlatformSession::runBatch(sim::Tick ready,
                          std::span<const graph::NodeId> targets)
{
    Impl &s = *impl;
    BatchService svc;

    engines::PrepResult pr;
    bool got = false;
    s.engine.prepare(std::max(ready, s.prepFree), s.batches, targets,
                     [&](engines::PrepResult &&r) {
                         pr = std::move(r);
                         got = true;
                     });
    s.queue.run();
    if (!got)
        sim::panic("runBatch: prep did not complete");
    if (!pr.ok)
        s.res.ok = false;
    svc.ok = pr.ok;
    svc.prepStart = pr.start;
    svc.prepFinish = pr.finish;

    // Compute of this batch overlaps the next batch's prep.
    gnn::ComputeWorkload w =
        gnn::measureCompute(pr.subgraph, s.bundle.model);
    accel::ComputeEstimate est = s.accelerator.estimate(w);
    sim::Grant cg = s.accelBus.acquire(pr.finish, est.total());
    if (s.platform.ssdCompute && pr.tally.featureBytes > 0 &&
        !s.platform.flags.bypassDram) {
        // Staged features stream DRAM -> accelerator SRAM (the
        // §VIII direct flash->SRAM option skips both DRAM legs).
        s.fw.dram().acquire(cg.start, pr.tally.featureBytes);
    }
    svc.computeStart = cg.start;
    svc.computeEnd = cg.end;
    s.lastComputeEnd = cg.end;
    s.accelMacs += est.macs;
    s.accelSram += est.sramBytes;

    // Merge statistics.
    RunResult &res = s.res;
    res.cmdStats.waitBefore =
        merged(res.cmdStats.waitBefore, pr.cmdStats.waitBefore);
    res.cmdStats.flashTime =
        merged(res.cmdStats.flashTime, pr.cmdStats.flashTime);
    res.cmdStats.waitAfter =
        merged(res.cmdStats.waitAfter, pr.cmdStats.waitAfter);
    res.cmdStats.lifetime =
        merged(res.cmdStats.lifetime, pr.cmdStats.lifetime);
    res.cmdStats.lifetimeHist.merge(pr.cmdStats.lifetimeHist);

    res.tally.flashReads += pr.tally.flashReads;
    res.tally.channelBytes += pr.tally.channelBytes;
    res.tally.dramBytes += pr.tally.dramBytes;
    res.tally.pcieBytes += pr.tally.pcieBytes;
    res.tally.hostCpuBusy += pr.tally.hostCpuBusy;
    res.tally.featureBytes += pr.tally.featureBytes;
    res.tally.abortedCommands += pr.tally.abortedCommands;

    res.hops = pr.hops;
    res.lastBatchStart = pr.start;
    res.lastSubgraph = std::move(pr.subgraph);
    res.targets += targets.size();
    s.prepFree = pr.finish;
    res.prepTime = pr.finish;
    ++s.batches;
    return svc;
}

RunResult
PlatformSession::finish()
{
    Impl &s = *impl;
    RunResult res = std::move(s.res);

    res.totalTime = std::max(s.prepFree, s.lastComputeEnd);
    res.throughput = res.totalTime == 0
                         ? 0.0
                         : static_cast<double>(res.targets) /
                               sim::toSeconds(res.totalTime);

    // Resource utilizations over the run.
    sim::Tick horizon = std::max<sim::Tick>(1, res.totalTime);
    res.dieUtil = static_cast<double>(s.backend.totalDieBusy()) /
                  (static_cast<double>(horizon) * s.backend.dieCount());
    res.channelUtil =
        static_cast<double>(s.backend.totalChannelBusy()) /
        (static_cast<double>(horizon) * s.backend.channelCount());
    res.coreUtil = s.fw.coreUtilization(horizon);
    res.dramUtil = s.fw.dram().utilization(horizon);
    res.pcieUtil = s.fw.pcie().utilization(horizon);
    res.accelBusy = s.accelBus.busyTime();
    res.hostBusy = res.tally.hostCpuBusy;

    if (s.run.traceUtilization) {
        std::vector<const sim::IntervalTrace *> die_traces;
        for (unsigned d = 0; d < s.backend.dieCount(); ++d)
            die_traces.push_back(&s.backend.die(d).intervals());
        res.dieSeries = sim::activeSeries(die_traces, horizon,
                                          s.run.utilizationBuckets);
        std::vector<const sim::IntervalTrace *> ch_traces;
        for (unsigned c = 0; c < s.backend.channelCount(); ++c)
            ch_traces.push_back(&s.backend.channel(c).intervals());
        res.channelSeries = sim::activeSeries(ch_traces, horizon,
                                              s.run.utilizationBuckets);
    }

    // Energy accounting.
    energy::EnergyInputs in;
    in.tally = res.tally;
    in.coreBusy = s.fw.coreBusyTime();
    in.accelMacs = s.accelMacs;
    in.accelSramBytes = s.accelSram;
    in.engineCommands = (s.platform.flags.sampling ==
                         engines::SamplingLoc::Die)
                            ? res.tally.flashReads
                            : 0;
    in.duration = res.totalTime;
    res.energy = energy::account(energy::EnergyConstants{}, in);
    res.avgPowerW = res.totalTime == 0 ? 0.0
                                       : res.energy.total() /
                                             sim::toSeconds(res.totalTime);
    return res;
}

RunResult
runPlatform(const PlatformConfig &platform, const RunConfig &run,
            const WorkloadBundle &bundle)
{
    PlatformSession session(platform, run, bundle);

    sim::Pcg32 rng(run.targetSeed, 0xACE5);
    const graph::NodeId n_nodes = bundle.graph.numNodes();

    for (std::uint32_t batch = 0; batch < run.batches; ++batch) {
        std::vector<graph::NodeId> targets(run.batchSize);
        for (auto &t : targets)
            t = rng.below(n_nodes);
        session.runBatch(session.prepFree(), targets);
    }
    return session.finish();
}

} // namespace beacongnn::platforms
