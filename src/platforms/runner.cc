#include "platforms/runner.h"

#include <algorithm>
#include <string>

#include "gnn/compute.h"
#include "platforms/device_context.h"
#include "platforms/partition.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/parallel_sim.h"
#include "sim/rng.h"
#include "sim/trace_events.h"
#include "sim/zipf.h"
#include "ssd/firmware.h"

namespace beacongnn::platforms {

std::unique_ptr<WorkloadBundle>
makeBundle(const graph::WorkloadSpec &spec,
           const flash::FlashConfig &flash_cfg, gnn::ModelConfig model,
           graph::NodeId node_override)
{
    auto bundle = std::make_unique<WorkloadBundle>();
    WorkloadBundle &b = *bundle;
    b.name = spec.name;
    graph::WorkloadSpec s = spec;
    if (node_override != 0)
        s.simNodes = node_override;
    b.graph = s.makeGraph();
    b.features = s.makeFeatures();
    model.featureDim = s.featureDim;
    b.model = model;

    // Reserve enough blocks for the layout: raw volume with generous
    // headroom for inflation, rounded up.
    std::uint64_t raw =
        b.graph.numEdges() * 4 +
        std::uint64_t{b.graph.numNodes()} * b.features.bytesPerNode();
    std::uint64_t block_bytes =
        std::uint64_t{flash_cfg.pagesPerBlock} * flash_cfg.pageSize;
    std::uint64_t blocks =
        std::max<std::uint64_t>((raw * 3) / block_bytes + 16,
                                flash_cfg.totalDies() + 8);
    ssd::Ftl ftl(flash_cfg);
    auto reserved = ftl.reserveBlocks(blocks);
    if (reserved.empty())
        sim::fatal("makeBundle: cannot reserve " +
                   std::to_string(blocks) + " blocks");
    b.layout = dg::buildLayout(b.graph, b.features, flash_cfg, reserved);
    b.source = std::make_unique<dg::LayoutSource>(b.layout, b.graph);
    return bundle;
}

/** The component tree of one open platform run. */
struct PlatformSession::Impl
{
    PlatformConfig platform;
    RunConfig run;
    const WorkloadBundle &bundle;

    /** Replica-aware node placement (degenerate for a single device;
     *  DESIGN.md §17). */
    Placement placement;
    /** Per-device whole-device kill ticks (sim::kTickMax = healthy);
     *  borrowed by the engine's replica router when the run schedules
     *  faults. */
    std::vector<sim::Tick> deviceKillAt;
    /** The SSDs of the topology (one for a plain run); each owns its
     *  event queue (its local clock, DESIGN.md §13). */
    std::vector<std::unique_ptr<DeviceContext>> devices;
    std::unique_ptr<engines::GnnEngine> engine;
    /** Conservative parallel driver over the device queues (multi-
     *  device only; a single device runs its queue directly). */
    std::unique_ptr<sim::ParallelSimulator> psim;
    /** Per-device backend trace shards (multi-device runs with a
     *  sink): worker threads never share a sink; finish() absorbs the
     *  shards in device order, so the final trace is byte-identical
     *  for every worker count. */
    std::vector<std::unique_ptr<sim::TraceSink>> backendShards;
    /** Checked-build causality/ownership validator (multi-device,
     *  BGN_CHECKED builds only; DESIGN.md §16). Owned per session —
     *  bench grids run several sessions concurrently in one
     *  process, so this must never be a global. */
    std::unique_ptr<sim::Validator> validator;

    RunResult res;
    sim::MetricRegistry reg;
    sim::Tick prepFree = 0;
    sim::Tick lastComputeEnd = 0;
    std::uint32_t batches = 0;
    /** Model spec the next batch runs (bundle model unless overridden
     *  by RunConfig::model or a per-batch runBatch() spec). */
    gnn::ModelSpec active;
    /** Per-device tallies summed over batches. */
    std::vector<engines::DeviceTally> devTallies;
    std::uint64_t crossDeviceTotal = 0;
    std::uint64_t replicaFallbacksTotal = 0;

    Impl(const PlatformConfig &p, const RunConfig &r,
         const WorkloadBundle &b)
        : platform(p), run(r), bundle(b),
          active(r.model ? *r.model : b.model)
    {
        const TopologyConfig &topo = run.topology;
        if (topo.devices == 0)
            sim::fatal("PlatformSession: zero devices");
        if (topo.multi()) {
            if (!p.flags.directGraph)
                sim::fatal("PlatformSession: multi-device topologies "
                           "require a streaming (DirectGraph) "
                           "platform, not " + p.name);
            placement = Placement::build(b.graph, topo.partition,
                                         topo.devices,
                                         topo.effectiveReplication());
        }
        std::vector<engines::DevicePort> ports;
        for (unsigned d = 0; d < topo.devices; ++d) {
            devices.push_back(std::make_unique<DeviceContext>(
                p, r.system, topo, active, b.layout.blocks, d,
                r.traceUtilization, r.cache));
            ports.push_back(devices.back()->port());
        }
        devTallies.resize(devices.size());

        // Apply the fault schedule (DESIGN.md §17): a single-die kill
        // fails only the reads landing on that die; a whole-device
        // kill fails every die *and* removes the device from the
        // engine's replica routing from its kill tick on.
        deviceKillAt.assign(topo.devices, sim::kTickMax);
        for (const KillEvent &k : run.kills) {
            if (k.device >= topo.devices)
                sim::fatal("PlatformSession: kill schedule names "
                           "device " + std::to_string(k.device) +
                           " of a " + std::to_string(topo.devices) +
                           "-device topology");
            flash::FlashBackend &be = devices[k.device]->backend();
            const unsigned dies = be.dieCount();
            if (k.die >= 0) {
                if (static_cast<unsigned>(k.die) >= dies)
                    sim::fatal("PlatformSession: kill schedule names "
                               "die " + std::to_string(k.die) +
                               " of a " + std::to_string(dies) +
                               "-die device");
                be.killDieAt(static_cast<unsigned>(k.die), k.at);
            } else {
                for (unsigned die = 0; die < dies; ++die)
                    be.killDieAt(die, k.at);
                deviceKillAt[k.device] =
                    std::min(deviceKillAt[k.device], k.at);
            }
        }

        engines::FabricConfig fabric;
        fabric.p2pLatency = topo.p2pLatency;
        fabric.commandBytes = topo.commandBytes;
        fabric.owner =
            placement.table().empty() ? nullptr : &placement.table();
        fabric.replication = topo.effectiveReplication();
        if (!run.kills.empty())
            fabric.deviceKillAt = &deviceKillAt;
        engine = std::make_unique<engines::GnnEngine>(
            devices[0]->queue(), std::move(ports), b.layout, b.graph,
            active, p.flags, *b.source, fabric);

        if (topo.multi()) {
            std::vector<sim::SimStation> stations;
            stations.reserve(devices.size());
            for (unsigned d = 0; d < topo.devices; ++d) {
                stations.push_back(sim::SimStation{
                    &devices[d]->queue(),
                    [eng = engine.get(), d] {
                        return eng->deliverInbound(d);
                    }});
            }
            psim = std::make_unique<sim::ParallelSimulator>(
                std::move(stations), topo.lookahead());
            if (sim::kCheckedBuild) {
                validator = std::make_unique<sim::Validator>(
                    devices.size(), topo.lookahead());
                for (const auto &dev : devices)
                    dev->setValidator(validator.get());
                engine->setValidator(validator.get());
                psim->setValidator(validator.get());
            }
        }

        if (r.traceSink) {
            for (const auto &dev : devices) {
                if (topo.multi()) {
                    backendShards.push_back(
                        std::make_unique<sim::TraceSink>());
                    dev->setTraceSink(backendShards.back().get(), true);
                } else {
                    dev->setTraceSink(r.traceSink, false);
                }
            }
            engine->setTraceSink(r.traceSink);
        }
        res.platform = platform.name;
        res.workload = bundle.name;
        res.devices = topo.devices;
        res.replication = topo.effectiveReplication();
        res.faults = run.kills;
    }
};

PlatformSession::PlatformSession(const PlatformConfig &platform,
                                 const RunConfig &run,
                                 const WorkloadBundle &bundle)
    : impl(std::make_unique<Impl>(platform, run, bundle))
{
}

PlatformSession::~PlatformSession() = default;

sim::Tick
PlatformSession::prepFree() const
{
    return impl->prepFree;
}

std::uint32_t
PlatformSession::batches() const
{
    return impl->batches;
}

BatchService
PlatformSession::runBatch(sim::Tick ready,
                          std::span<const graph::NodeId> targets)
{
    Impl &s = *impl;
    BatchService svc;

    engines::PrepResult pr;
    bool got = false;
    s.engine->prepare(std::max(ready, s.prepFree), s.batches, targets,
                      [&](engines::PrepResult &&r) {
                          pr = std::move(r);
                          got = true;
                      });
    if (s.psim) {
        // Conservative parallel run over the device queues; the
        // worker count (--jobs / BGN_JOBS) never changes the result.
        s.psim->run();
        s.engine->completePrepared();
    } else {
        // Single-device run path: device 0 is the only station and
        // this thread is its lane. bgnlint:allow(BGN007)
        s.devices[0]->queue().run();
    }
    if (!got)
        sim::panic("runBatch: prep did not complete");
    if (!pr.ok)
        s.res.ok = false;
    svc.ok = pr.ok;
    svc.prepStart = pr.start;
    svc.prepFinish = pr.finish;

    // Compute of this batch overlaps the next batch's prep. Every
    // device computes its 1/devices shard of the batch on its own
    // accelerator, staging the features it prepared locally.
    gnn::ComputeWorkload w =
        gnn::measureCompute(pr.subgraph, s.active);
    const sim::Tick ndev = static_cast<sim::Tick>(s.devices.size());
    accel::ComputeEstimate est = s.devices[0]->accelerator().estimate(w);
    sim::Tick compute_start = 0;
    sim::Tick compute_end = 0;
    for (std::size_t d = 0; d < s.devices.size(); ++d) {
        DeviceContext &dev = *s.devices[d];
        sim::Grant cg =
            dev.accelBus().acquire(pr.finish, est.total() / ndev);
        if (s.platform.ssdCompute && pr.perDevice[d].featureBytes > 0 &&
            !s.platform.flags.bypassDram) {
            // Staged features stream DRAM -> accelerator SRAM (the
            // §VIII direct flash->SRAM option skips both DRAM legs).
            dev.firmware().dram().acquire(cg.start,
                                          pr.perDevice[d].featureBytes);
        }
        compute_start = d == 0 ? cg.start
                               : std::min(compute_start, cg.start);
        compute_end = std::max(compute_end, cg.end);
    }
    svc.computeStart = compute_start;
    svc.computeEnd = compute_end;
    s.lastComputeEnd = std::max(s.lastComputeEnd, compute_end);
    accel::publishEstimate(s.reg, est);

    // Merge the batch's statistics into the session registry; the
    // RunResult aggregates are rebuilt from it in finish().
    pr.cmdStats.publish(s.reg);
    pr.tally.publish(s.reg);
    s.reg.counter("engine.commands").add(pr.commands);
    s.reg.counter("engine.deduped_reads").add(pr.dedupedReads);
    s.reg.counter("run.batches").add(1);
    s.reg.counter("run.targets").add(targets.size());
    s.crossDeviceTotal += pr.crossDevice;
    s.replicaFallbacksTotal += pr.replicaFallbacks;
    for (std::size_t d = 0; d < s.devTallies.size(); ++d)
        s.devTallies[d].merge(pr.perDevice[d]);

    RunResult &res = s.res;
    res.hops = pr.hops;
    res.lastBatchStart = pr.start;
    res.lastSubgraph = std::move(pr.subgraph);
    s.prepFree = pr.finish;
    ++s.batches;
    return svc;
}

BatchService
PlatformSession::runBatch(sim::Tick ready,
                          std::span<const graph::NodeId> targets,
                          const gnn::ModelSpec &model)
{
    Impl &s = *impl;
    if (!(model == s.active)) {
        s.engine->setModel(model);
        s.active = model;
    }
    return runBatch(ready, targets);
}

const gnn::ModelSpec &
PlatformSession::activeModel() const
{
    return impl->active;
}

RunResult
PlatformSession::finish()
{
    Impl &s = *impl;
    sim::MetricRegistry &reg = s.reg;
    RunResult res = std::move(s.res);

    // Every component publishes its instruments; RunResult is then
    // populated *from the registry* so the snapshot exporters and the
    // figure outputs read the same numbers. A single device publishes
    // straight into the session registry (the historical names); an
    // array publishes each device into a scratch registry first, then
    // merges it twice — unprefixed for the aggregate view and under
    // `array.dev<D>.` for the per-device view.
    const std::size_t ndev = s.devices.size();
    if (ndev == 1) {
        s.devices[0]->publishMetrics(reg);
    } else {
        for (const auto &dev : s.devices) {
            sim::MetricRegistry dev_reg;
            dev->publishMetrics(dev_reg);
            reg.merge(dev_reg);
            reg.merge(dev_reg,
                      "array.dev" + std::to_string(dev->index()) + ".");
        }
    }
    s.engine->publishMetrics(reg);

    res.cmdStats = engines::CmdStats::fromRegistry(reg);
    res.tally = engines::PrepTally::fromRegistry(reg);
    res.targets = reg.counter("run.targets").value();
    if (const sim::Counter *c = reg.findCounter("engine.commands"))
        res.commands = c->value();
    res.crossDevice = s.crossDeviceTotal;
    res.crossFraction =
        res.commands == 0 ? 0.0
                          : static_cast<double>(res.crossDevice) /
                                static_cast<double>(res.commands);
    res.perDevice = s.devTallies;
    res.replicaFallbacks = s.replicaFallbacksTotal;

    res.prepTime = s.prepFree;
    res.totalTime = std::max(s.prepFree, s.lastComputeEnd);
    res.throughput = res.totalTime == 0
                         ? 0.0
                         : static_cast<double>(res.targets) /
                               sim::toSeconds(res.totalTime);
    reg.counter("run.prep_ticks").add(res.prepTime);
    reg.counter("run.total_ticks").add(res.totalTime);

    // Resource utilizations over the run, from the published busy
    // tick counters (identical uint64 values the components held).
    // Busy counters aggregate over every device of the topology, so
    // the unit counts scale by the device count.
    flash::FlashBackend &backend0 = s.devices[0]->backend();
    ssd::Firmware &fw0 = s.devices[0]->firmware();
    sim::Tick horizon = std::max<sim::Tick>(1, res.totalTime);
    res.dieUtil =
        static_cast<double>(reg.counter("flash.die_busy_ticks").value()) /
        (static_cast<double>(horizon) * backend0.dieCount() *
         static_cast<double>(ndev));
    res.channelUtil =
        static_cast<double>(
            reg.counter("flash.channel_busy_ticks").value()) /
        (static_cast<double>(horizon) * backend0.channelCount() *
         static_cast<double>(ndev));
    res.coreUtil =
        static_cast<double>(
            reg.counter("ssd.firmware.core_busy").value()) /
        (static_cast<double>(horizon) *
         static_cast<double>(fw0.issueCores().size() +
                             fw0.completeCores().size()) *
         static_cast<double>(ndev));
    res.dramUtil =
        static_cast<double>(reg.counter("ssd.dram.busy_ticks").value()) /
        (static_cast<double>(horizon) * static_cast<double>(ndev));
    res.pcieUtil =
        static_cast<double>(reg.counter("ssd.pcie.busy_ticks").value()) /
        (static_cast<double>(horizon) * static_cast<double>(ndev));
    res.accelBusy = reg.counter("accel.busy_ticks").value();
    res.hostBusy = res.tally.hostCpuBusy;

    if (s.run.traceUtilization) {
        // The per-unit interval traces of device D live under the
        // historical names (single device) or `array.devD.` (array);
        // the series then counts active units across the whole fleet.
        std::vector<const sim::IntervalTrace *> die_traces;
        std::vector<const sim::IntervalTrace *> ch_traces;
        for (std::size_t dev = 0; dev < ndev; ++dev) {
            std::string prefix =
                ndev == 1 ? std::string()
                          : "array.dev" + std::to_string(dev) + ".";
            for (unsigned d = 0; d < backend0.dieCount(); ++d) {
                if (const auto *t = reg.findInterval(
                        prefix +
                        backend0.dieMetricName(d, "busy_intervals")))
                    die_traces.push_back(t);
            }
            for (unsigned c = 0; c < backend0.channelCount(); ++c) {
                if (const auto *t = reg.findInterval(
                        prefix +
                        backend0.channelMetricName(c, "busy_intervals")))
                    ch_traces.push_back(t);
            }
        }
        res.dieSeries = sim::activeSeries(die_traces, horizon,
                                          s.run.utilizationBuckets);
        res.channelSeries = sim::activeSeries(ch_traces, horizon,
                                              s.run.utilizationBuckets);
    }

    // Energy accounting.
    energy::EnergyInputs in;
    in.tally = res.tally;
    in.coreBusy = reg.counter("ssd.firmware.core_busy").value();
    in.accelMacs = reg.counter("accel.macs").value();
    in.accelSramBytes = reg.counter("accel.sram_bytes").value();
    in.engineCommands = (s.platform.flags.sampling ==
                         engines::SamplingLoc::Die)
                            ? res.tally.flashReads
                            : 0;
    in.duration = res.totalTime;
    res.energy = energy::account(energy::EnergyConstants{}, in);
    res.avgPowerW = res.totalTime == 0 ? 0.0
                                       : res.energy.total() /
                                             sim::toSeconds(res.totalTime);

    energy::publish(reg, res.energy);
    reg.gauge("energy.avg_power_w").set(res.avgPowerW);
    reg.gauge("run.throughput").set(res.throughput);
    reg.gauge("run.die_util").set(res.dieUtil);
    reg.gauge("run.channel_util").set(res.channelUtil);
    reg.gauge("run.core_util").set(res.coreUtil);
    reg.gauge("run.dram_util").set(res.dramUtil);
    reg.gauge("run.pcie_util").set(res.pcieUtil);
    reg.gauge("run.ok").set(res.ok ? 1.0 : 0.0);

    // Model-zoo instruments exist only when the task deviates from
    // the historical gcn / uniform-fanout configuration, so default
    // snapshots stay byte-identical to pre-model-zoo goldens.
    const gnn::ModelSpec &m = s.active;
    if (m.kind != gnn::ModelKind::GCN || !m.uniformFanout()) {
        reg.gauge("model.kind_id")
            .set(static_cast<double>(static_cast<unsigned>(m.kind)));
        reg.gauge("model.hops").set(static_cast<double>(m.hops));
        std::uint64_t fan_total = 0;
        for (unsigned h = 0; h < m.hops; ++h)
            fan_total += m.fanoutAt(h);
        reg.gauge("model.fanout_total")
            .set(static_cast<double>(fan_total));
        reg.gauge("model.feature_dim")
            .set(static_cast<double>(m.featureDim));
        reg.gauge("model.hidden_dim")
            .set(static_cast<double>(m.hiddenDim));
        reg.gauge("model.edge_coeff_bytes")
            .set(static_cast<double>(m.edgeCoeffBytes()));
    }

    // Array-level instruments exist only on multi-device runs, so a
    // devices = 1 snapshot stays byte-identical to the historical
    // single-SSD snapshot.
    if (ndev > 1) {
        // Synchronization windows of the conservative parallel driver
        // (a pure function of the event timeline: identical for every
        // worker count, so it may live in the metrics snapshot).
        if (s.psim)
            reg.gauge("run.sim_windows")
                .set(static_cast<double>(s.psim->windows()));
        if (s.run.traceSink) {
            s.engine->flushTraceShards();
            for (const auto &shard : s.backendShards)
                s.run.traceSink->absorb(*shard);
            s.backendShards.clear();
        }
        reg.gauge("array.devices").set(static_cast<double>(ndev));
        reg.counter("array.commands").add(res.commands);
        reg.counter("array.cross_device").add(res.crossDevice);
        reg.gauge("array.cross_fraction").set(res.crossFraction);
        std::uint64_t forwards = 0, p2p_bytes = 0;
        sim::Tick p2p_busy = 0;
        for (std::size_t d = 0; d < ndev; ++d) {
            const engines::DeviceTally &t = s.devTallies[d];
            const std::string prefix =
                "array.dev" + std::to_string(d) + ".";
            reg.counter(prefix + "commands").add(t.commands);
            reg.counter(prefix + "flash_reads").add(t.flashReads);
            reg.counter(prefix + "feature_bytes").add(t.featureBytes);
            reg.counter(prefix + "p2p.out_forwards").add(t.p2pForwards);
            reg.counter(prefix + "p2p.out_bytes").add(t.p2pBytes);
            const sim::BandwidthResource *link =
                s.devices[d]->p2pOut();
            sim::Tick busy = link ? link->busyTime() : 0;
            reg.counter(prefix + "p2p.busy_ticks").add(busy);
            forwards += t.p2pForwards;
            p2p_bytes += t.p2pBytes;
            p2p_busy += busy;
        }
        reg.counter("array.p2p.forwards").add(forwards);
        reg.counter("array.p2p.bytes").add(p2p_bytes);
        reg.counter("array.p2p.busy_ticks").add(p2p_busy);

        // Health/fault instruments exist only when replication or a
        // fault model is armed, so default array snapshots stay
        // byte-identical to the historical ones.
        const bool faults_armed =
            s.run.topology.effectiveReplication() > 1 ||
            !s.run.kills.empty() || s.run.system.disturb.armed();
        if (faults_armed) {
            reg.gauge("array.replication")
                .set(static_cast<double>(res.replication));
            reg.counter("array.replica_fallbacks")
                .add(res.replicaFallbacks);
            for (std::size_t d = 0; d < ndev; ++d) {
                const std::string prefix =
                    "array.dev" + std::to_string(d) + ".health.";
                const engines::DeviceHealth h = s.engine->healthOf(
                    static_cast<unsigned>(d));
                reg.gauge(prefix + "latency_ewma_us")
                    .set(h.latencyEwmaUs);
                reg.counter(prefix + "samples").add(h.samples);
                reg.gauge(prefix + "alive")
                    .set(s.deviceKillAt[d] == sim::kTickMax ? 1.0
                                                            : 0.0);
            }
        }
    }

    // Cache-tier instruments exist only when the run configured a
    // cache, so cache-off snapshots stay byte-identical to the
    // historical ones. The aggregate hit rate is computed here, once,
    // from the summed tallies (never merged as a gauge — Gauge merge
    // is last-write-wins) and 0/0 guards to 0.0 like crossFraction.
    if (s.run.cache.enabled()) {
        cache::CacheStats agg;
        for (const auto &dev : s.devices)
            agg.merge(dev->cacheStats());
        reg.counter("engine.cache.hits").add(agg.hits);
        reg.counter("engine.cache.misses").add(agg.misses);
        reg.counter("engine.cache.fills").add(agg.fills);
        reg.counter("engine.cache.evictions").add(agg.evictions);
        reg.counter("engine.cache.bytes").add(agg.bytes);
        reg.gauge("engine.cache.hit_rate").set(agg.hitRate());
        if (ndev > 1) {
            for (const auto &dev : s.devices) {
                const cache::CacheStats st = dev->cacheStats();
                const std::string prefix =
                    "array.dev" + std::to_string(dev->index()) +
                    ".cache.";
                reg.counter(prefix + "hits").add(st.hits);
                reg.counter(prefix + "misses").add(st.misses);
                reg.counter(prefix + "fills").add(st.fills);
                reg.counter(prefix + "evictions").add(st.evictions);
                reg.counter(prefix + "bytes").add(st.bytes);
                reg.gauge(prefix + "hit_rate").set(st.hitRate());
            }
        }
    }
    return res;
}

const sim::MetricRegistry &
PlatformSession::metrics() const
{
    return impl->reg;
}

RunResult
runPlatform(const PlatformConfig &platform, const RunConfig &run,
            const WorkloadBundle &bundle, sim::MetricRegistry *metrics)
{
    PlatformSession session(platform, run, bundle);

    sim::Pcg32 rng(run.targetSeed, 0xACE5);
    const graph::NodeId n_nodes = bundle.graph.numNodes();

    // Skewed target selection (cache-tier experiments): Zipf ranks
    // map to node ids directly, so low ids are the hot set. θ = 0
    // keeps the exact historical uniform draw sequence.
    std::unique_ptr<sim::ZipfSampler> zipf;
    if (run.zipfTheta > 0.0)
        zipf = std::make_unique<sim::ZipfSampler>(run.zipfTheta,
                                                  n_nodes);

    for (std::uint32_t batch = 0; batch < run.batches; ++batch) {
        std::vector<graph::NodeId> targets(run.batchSize);
        for (auto &t : targets)
            t = zipf ? static_cast<graph::NodeId>(zipf->draw(rng))
                     : rng.below(n_nodes);
        session.runBatch(session.prepFree(), targets);
    }
    RunResult res = session.finish();
    if (metrics)
        metrics->merge(session.metrics());
    return res;
}

} // namespace beacongnn::platforms
