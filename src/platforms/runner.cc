#include "platforms/runner.h"

#include <algorithm>

#include "gnn/compute.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "ssd/firmware.h"

namespace beacongnn::platforms {

std::unique_ptr<WorkloadBundle>
makeBundle(const graph::WorkloadSpec &spec,
           const flash::FlashConfig &flash_cfg, gnn::ModelConfig model,
           graph::NodeId node_override)
{
    auto bundle = std::make_unique<WorkloadBundle>();
    WorkloadBundle &b = *bundle;
    b.name = spec.name;
    graph::WorkloadSpec s = spec;
    if (node_override != 0)
        s.simNodes = node_override;
    b.graph = s.makeGraph();
    b.features = s.makeFeatures();
    model.featureDim = s.featureDim;
    b.model = model;

    // Reserve enough blocks for the layout: raw volume with generous
    // headroom for inflation, rounded up.
    std::uint64_t raw =
        b.graph.numEdges() * 4 +
        std::uint64_t{b.graph.numNodes()} * b.features.bytesPerNode();
    std::uint64_t block_bytes =
        std::uint64_t{flash_cfg.pagesPerBlock} * flash_cfg.pageSize;
    std::uint64_t blocks =
        std::max<std::uint64_t>((raw * 3) / block_bytes + 16,
                                flash_cfg.totalDies() + 8);
    ssd::Ftl ftl(flash_cfg);
    auto reserved = ftl.reserveBlocks(blocks);
    if (reserved.empty())
        sim::fatal("makeBundle: cannot reserve " +
                   std::to_string(blocks) + " blocks");
    b.layout = dg::buildLayout(b.graph, b.features, flash_cfg, reserved);
    b.source = std::make_unique<dg::LayoutSource>(b.layout, b.graph);
    return bundle;
}

/** The component tree of one open platform run. */
struct PlatformSession::Impl
{
    PlatformConfig platform;
    RunConfig run;
    const WorkloadBundle &bundle;

    sim::EventQueue queue;
    flash::FlashBackend backend;
    ssd::Firmware fw;
    accel::Accelerator accelerator;
    sim::Bus accelBus{"accel"};
    engines::GnnEngine engine;

    RunResult res;
    sim::MetricRegistry reg;
    sim::Tick prepFree = 0;
    sim::Tick lastComputeEnd = 0;
    std::uint32_t batches = 0;

    Impl(const PlatformConfig &p, const RunConfig &r,
         const WorkloadBundle &b)
        : platform(p), run(r), bundle(b),
          backend(r.system.flash, r.traceUtilization), fw(r.system),
          accelerator(p.ssdCompute ? accel::ssdAcceleratorConfig()
                                   : accel::discreteTpuConfig()),
          engine(queue, backend, fw, b.layout, b.graph, b.model,
                 p.flags, *b.source)
    {
        // Mirror the bundle's block reservation in this run's FTL.
        // The layout's addresses are only valid if this FTL reserves
        // the *same* blocks the bundle was laid out on, so mirror the
        // exact list rather than re-reserving by count.
        if (!fw.ftl().reserveExact(bundle.layout.blocks))
            sim::fatal("PlatformSession: cannot mirror the bundle's "
                       "block reservation (geometry mismatch?)");
        if (r.traceSink) {
            backend.setTraceSink(r.traceSink);
            engine.setTraceSink(r.traceSink);
        }
        res.platform = platform.name;
        res.workload = bundle.name;
    }
};

PlatformSession::PlatformSession(const PlatformConfig &platform,
                                 const RunConfig &run,
                                 const WorkloadBundle &bundle)
    : impl(std::make_unique<Impl>(platform, run, bundle))
{
}

PlatformSession::~PlatformSession() = default;

sim::Tick
PlatformSession::prepFree() const
{
    return impl->prepFree;
}

std::uint32_t
PlatformSession::batches() const
{
    return impl->batches;
}

BatchService
PlatformSession::runBatch(sim::Tick ready,
                          std::span<const graph::NodeId> targets)
{
    Impl &s = *impl;
    BatchService svc;

    engines::PrepResult pr;
    bool got = false;
    s.engine.prepare(std::max(ready, s.prepFree), s.batches, targets,
                     [&](engines::PrepResult &&r) {
                         pr = std::move(r);
                         got = true;
                     });
    s.queue.run();
    if (!got)
        sim::panic("runBatch: prep did not complete");
    if (!pr.ok)
        s.res.ok = false;
    svc.ok = pr.ok;
    svc.prepStart = pr.start;
    svc.prepFinish = pr.finish;

    // Compute of this batch overlaps the next batch's prep.
    gnn::ComputeWorkload w =
        gnn::measureCompute(pr.subgraph, s.bundle.model);
    accel::ComputeEstimate est = s.accelerator.estimate(w);
    sim::Grant cg = s.accelBus.acquire(pr.finish, est.total());
    if (s.platform.ssdCompute && pr.tally.featureBytes > 0 &&
        !s.platform.flags.bypassDram) {
        // Staged features stream DRAM -> accelerator SRAM (the
        // §VIII direct flash->SRAM option skips both DRAM legs).
        s.fw.dram().acquire(cg.start, pr.tally.featureBytes);
    }
    svc.computeStart = cg.start;
    svc.computeEnd = cg.end;
    s.lastComputeEnd = cg.end;
    accel::publishEstimate(s.reg, est);

    // Merge the batch's statistics into the session registry; the
    // RunResult aggregates are rebuilt from it in finish().
    pr.cmdStats.publish(s.reg);
    pr.tally.publish(s.reg);
    s.reg.counter("engine.commands").add(pr.commands);
    s.reg.counter("engine.deduped_reads").add(pr.dedupedReads);
    s.reg.counter("run.batches").add(1);
    s.reg.counter("run.targets").add(targets.size());

    RunResult &res = s.res;
    res.hops = pr.hops;
    res.lastBatchStart = pr.start;
    res.lastSubgraph = std::move(pr.subgraph);
    s.prepFree = pr.finish;
    ++s.batches;
    return svc;
}

RunResult
PlatformSession::finish()
{
    Impl &s = *impl;
    sim::MetricRegistry &reg = s.reg;
    RunResult res = std::move(s.res);

    // Every component publishes its instruments; RunResult is then
    // populated *from the registry* so the snapshot exporters and the
    // figure outputs read the same numbers.
    s.backend.publishMetrics(reg);
    s.fw.publishMetrics(reg);
    s.engine.publishMetrics(reg);
    reg.counter("accel.busy_ticks").add(s.accelBus.busyTime());

    res.cmdStats = engines::CmdStats::fromRegistry(reg);
    res.tally = engines::PrepTally::fromRegistry(reg);
    res.targets = reg.counter("run.targets").value();

    res.prepTime = s.prepFree;
    res.totalTime = std::max(s.prepFree, s.lastComputeEnd);
    res.throughput = res.totalTime == 0
                         ? 0.0
                         : static_cast<double>(res.targets) /
                               sim::toSeconds(res.totalTime);
    reg.counter("run.prep_ticks").add(res.prepTime);
    reg.counter("run.total_ticks").add(res.totalTime);

    // Resource utilizations over the run, from the published busy
    // tick counters (identical uint64 values the components held).
    sim::Tick horizon = std::max<sim::Tick>(1, res.totalTime);
    res.dieUtil =
        static_cast<double>(reg.counter("flash.die_busy_ticks").value()) /
        (static_cast<double>(horizon) * s.backend.dieCount());
    res.channelUtil =
        static_cast<double>(
            reg.counter("flash.channel_busy_ticks").value()) /
        (static_cast<double>(horizon) * s.backend.channelCount());
    res.coreUtil =
        static_cast<double>(
            reg.counter("ssd.firmware.core_busy").value()) /
        (static_cast<double>(horizon) *
         static_cast<double>(s.fw.issueCores().size() +
                             s.fw.completeCores().size()));
    res.dramUtil =
        static_cast<double>(reg.counter("ssd.dram.busy_ticks").value()) /
        static_cast<double>(horizon);
    res.pcieUtil =
        static_cast<double>(reg.counter("ssd.pcie.busy_ticks").value()) /
        static_cast<double>(horizon);
    res.accelBusy = reg.counter("accel.busy_ticks").value();
    res.hostBusy = res.tally.hostCpuBusy;

    if (s.run.traceUtilization) {
        std::vector<const sim::IntervalTrace *> die_traces;
        for (unsigned d = 0; d < s.backend.dieCount(); ++d) {
            if (const auto *t = reg.findInterval(
                    s.backend.dieMetricName(d, "busy_intervals")))
                die_traces.push_back(t);
        }
        res.dieSeries = sim::activeSeries(die_traces, horizon,
                                          s.run.utilizationBuckets);
        std::vector<const sim::IntervalTrace *> ch_traces;
        for (unsigned c = 0; c < s.backend.channelCount(); ++c) {
            if (const auto *t = reg.findInterval(
                    s.backend.channelMetricName(c, "busy_intervals")))
                ch_traces.push_back(t);
        }
        res.channelSeries = sim::activeSeries(ch_traces, horizon,
                                              s.run.utilizationBuckets);
    }

    // Energy accounting.
    energy::EnergyInputs in;
    in.tally = res.tally;
    in.coreBusy = reg.counter("ssd.firmware.core_busy").value();
    in.accelMacs = reg.counter("accel.macs").value();
    in.accelSramBytes = reg.counter("accel.sram_bytes").value();
    in.engineCommands = (s.platform.flags.sampling ==
                         engines::SamplingLoc::Die)
                            ? res.tally.flashReads
                            : 0;
    in.duration = res.totalTime;
    res.energy = energy::account(energy::EnergyConstants{}, in);
    res.avgPowerW = res.totalTime == 0 ? 0.0
                                       : res.energy.total() /
                                             sim::toSeconds(res.totalTime);

    energy::publish(reg, res.energy);
    reg.gauge("energy.avg_power_w").set(res.avgPowerW);
    reg.gauge("run.throughput").set(res.throughput);
    reg.gauge("run.die_util").set(res.dieUtil);
    reg.gauge("run.channel_util").set(res.channelUtil);
    reg.gauge("run.core_util").set(res.coreUtil);
    reg.gauge("run.dram_util").set(res.dramUtil);
    reg.gauge("run.pcie_util").set(res.pcieUtil);
    reg.gauge("run.ok").set(res.ok ? 1.0 : 0.0);
    return res;
}

const sim::MetricRegistry &
PlatformSession::metrics() const
{
    return impl->reg;
}

RunResult
runPlatform(const PlatformConfig &platform, const RunConfig &run,
            const WorkloadBundle &bundle, sim::MetricRegistry *metrics)
{
    PlatformSession session(platform, run, bundle);

    sim::Pcg32 rng(run.targetSeed, 0xACE5);
    const graph::NodeId n_nodes = bundle.graph.numNodes();

    for (std::uint32_t batch = 0; batch < run.batches; ++batch) {
        std::vector<graph::NodeId> targets(run.batchSize);
        for (auto &t : targets)
            t = rng.below(n_nodes);
        session.runBatch(session.prepFree(), targets);
    }
    RunResult res = session.finish();
    if (metrics)
        metrics->merge(session.metrics());
    return res;
}

} // namespace beacongnn::platforms
