#include "platforms/runner.h"

#include <algorithm>

#include "gnn/compute.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "ssd/firmware.h"

namespace beacongnn::platforms {

std::unique_ptr<WorkloadBundle>
makeBundle(const graph::WorkloadSpec &spec,
           const flash::FlashConfig &flash_cfg, gnn::ModelConfig model,
           graph::NodeId node_override)
{
    auto bundle = std::make_unique<WorkloadBundle>();
    WorkloadBundle &b = *bundle;
    b.name = spec.name;
    graph::WorkloadSpec s = spec;
    if (node_override != 0)
        s.simNodes = node_override;
    b.graph = s.makeGraph();
    b.features = s.makeFeatures();
    model.featureDim = s.featureDim;
    b.model = model;

    // Reserve enough blocks for the layout: raw volume with generous
    // headroom for inflation, rounded up.
    std::uint64_t raw =
        b.graph.numEdges() * 4 +
        std::uint64_t{b.graph.numNodes()} * b.features.bytesPerNode();
    std::uint64_t block_bytes =
        std::uint64_t{flash_cfg.pagesPerBlock} * flash_cfg.pageSize;
    std::uint64_t blocks =
        std::max<std::uint64_t>((raw * 3) / block_bytes + 16,
                                flash_cfg.totalDies() + 8);
    ssd::Ftl ftl(flash_cfg);
    auto reserved = ftl.reserveBlocks(blocks);
    if (reserved.empty())
        sim::fatal("makeBundle: cannot reserve " +
                   std::to_string(blocks) + " blocks");
    b.layout = dg::buildLayout(b.graph, b.features, flash_cfg, reserved);
    b.source = std::make_unique<dg::LayoutSource>(b.layout, b.graph);
    return bundle;
}

RunResult
runPlatform(const PlatformConfig &platform, const RunConfig &run,
            const WorkloadBundle &bundle)
{
    RunResult res;
    res.platform = platform.name;
    res.workload = bundle.name;

    sim::EventQueue queue;
    flash::FlashBackend backend(run.system.flash, run.traceUtilization);
    ssd::Firmware fw(run.system);
    // Mirror the bundle's block reservation in this run's FTL so the
    // isolation invariants hold during the run.
    fw.ftl().reserveBlocks(bundle.layout.blocks.size());

    accel::Accelerator accelerator(platform.ssdCompute
                                       ? accel::ssdAcceleratorConfig()
                                       : accel::discreteTpuConfig());
    sim::Bus accel_bus("accel");

    engines::GnnEngine engine(queue, backend, fw, bundle.layout,
                              bundle.graph, bundle.model, platform.flags,
                              *bundle.source);

    sim::Pcg32 rng(run.targetSeed, 0xACE5);
    const graph::NodeId n_nodes = bundle.graph.numNodes();

    sim::Tick prep_start = 0;
    sim::Tick last_compute_end = 0;
    std::uint64_t accel_macs = 0;
    std::uint64_t accel_sram = 0;

    for (std::uint32_t batch = 0; batch < run.batches; ++batch) {
        std::vector<graph::NodeId> targets(run.batchSize);
        for (auto &t : targets)
            t = rng.below(n_nodes);

        engines::PrepResult pr;
        bool got = false;
        engine.prepare(prep_start, batch, targets,
                       [&](engines::PrepResult &&r) {
                           pr = std::move(r);
                           got = true;
                       });
        queue.run();
        if (!got)
            sim::panic("runPlatform: prep did not complete");
        if (!pr.ok)
            res.ok = false;

        // Compute of this batch overlaps the next batch's prep.
        gnn::ComputeWorkload w =
            gnn::measureCompute(pr.subgraph, bundle.model);
        accel::ComputeEstimate est = accelerator.estimate(w);
        sim::Grant cg = accel_bus.acquire(pr.finish, est.total());
        if (platform.ssdCompute && pr.tally.featureBytes > 0 &&
            !platform.flags.bypassDram) {
            // Staged features stream DRAM -> accelerator SRAM (the
            // §VIII direct flash->SRAM option skips both DRAM legs).
            fw.dram().acquire(cg.start, pr.tally.featureBytes);
        }
        last_compute_end = cg.end;
        accel_macs += est.macs;
        accel_sram += est.sramBytes;

        // Merge statistics.
        res.cmdStats.waitBefore = merged(res.cmdStats.waitBefore,
                                         pr.cmdStats.waitBefore);
        res.cmdStats.flashTime =
            merged(res.cmdStats.flashTime, pr.cmdStats.flashTime);
        res.cmdStats.waitAfter =
            merged(res.cmdStats.waitAfter, pr.cmdStats.waitAfter);
        res.cmdStats.lifetime =
            merged(res.cmdStats.lifetime, pr.cmdStats.lifetime);
        res.cmdStats.lifetimeHist.merge(pr.cmdStats.lifetimeHist);

        res.tally.flashReads += pr.tally.flashReads;
        res.tally.channelBytes += pr.tally.channelBytes;
        res.tally.dramBytes += pr.tally.dramBytes;
        res.tally.pcieBytes += pr.tally.pcieBytes;
        res.tally.hostCpuBusy += pr.tally.hostCpuBusy;
        res.tally.featureBytes += pr.tally.featureBytes;
        res.tally.abortedCommands += pr.tally.abortedCommands;

        res.hops = pr.hops;
        res.lastBatchStart = pr.start;
        res.lastSubgraph = std::move(pr.subgraph);
        res.targets += targets.size();
        prep_start = pr.finish;
        res.prepTime = pr.finish;
    }

    res.totalTime = std::max(prep_start, last_compute_end);
    res.throughput = res.totalTime == 0
                         ? 0.0
                         : static_cast<double>(res.targets) /
                               sim::toSeconds(res.totalTime);

    // Resource utilizations over the run.
    sim::Tick horizon = std::max<sim::Tick>(1, res.totalTime);
    res.dieUtil = static_cast<double>(backend.totalDieBusy()) /
                  (static_cast<double>(horizon) * backend.dieCount());
    res.channelUtil =
        static_cast<double>(backend.totalChannelBusy()) /
        (static_cast<double>(horizon) * backend.channelCount());
    res.coreUtil = fw.coreUtilization(horizon);
    res.dramUtil = fw.dram().utilization(horizon);
    res.pcieUtil = fw.pcie().utilization(horizon);
    res.accelBusy = accel_bus.busyTime();
    res.hostBusy = res.tally.hostCpuBusy;

    if (run.traceUtilization) {
        std::vector<const sim::IntervalTrace *> die_traces;
        for (unsigned d = 0; d < backend.dieCount(); ++d)
            die_traces.push_back(&backend.die(d).intervals());
        res.dieSeries = sim::activeSeries(die_traces, horizon,
                                          run.utilizationBuckets);
        std::vector<const sim::IntervalTrace *> ch_traces;
        for (unsigned c = 0; c < backend.channelCount(); ++c)
            ch_traces.push_back(&backend.channel(c).intervals());
        res.channelSeries = sim::activeSeries(ch_traces, horizon,
                                              run.utilizationBuckets);
    }

    // Energy accounting.
    energy::EnergyInputs in;
    in.tally = res.tally;
    in.coreBusy = fw.coreBusyTime();
    in.accelMacs = accel_macs;
    in.accelSramBytes = accel_sram;
    in.engineCommands = (platform.flags.sampling ==
                         engines::SamplingLoc::Die)
                            ? res.tally.flashReads
                            : 0;
    in.duration = res.totalTime;
    res.energy = energy::account(energy::EnergyConstants{}, in);
    res.avgPowerW = res.totalTime == 0
                        ? 0.0
                        : res.energy.total() / sim::toSeconds(res.totalTime);
    return res;
}

} // namespace beacongnn::platforms
