/**
 * @file
 * DeviceContext: one SSD of the platform, fully wired — flash backend,
 * firmware frontend, optional channel-level command router, die-level
 * sampler bank, compute accelerator with its bus, and (on arrays) an
 * outbound P2P port. The single-device runner and the scale-out array
 * both build their hardware from this one class, so there is exactly
 * one place that knows how a BeaconGNN SSD is assembled and which
 * metric names its components publish.
 */

#ifndef BEACONGNN_PLATFORMS_DEVICE_CONTEXT_H
#define BEACONGNN_PLATFORMS_DEVICE_CONTEXT_H

#include <memory>

#include "accel/accelerator.h"
#include "cache/vertex_cache.h"
#include "engines/gnn_engine.h"
#include "platforms/platform.h"
#include "platforms/topology.h"
#include "sim/event_queue.h"

namespace beacongnn::sim {
class MetricRegistry;
class TraceSink;
} // namespace beacongnn::sim

namespace beacongnn::platforms {

struct WorkloadBundle;

/** One SSD of a (possibly single-device) platform run. */
class DeviceContext
{
  public:
    /**
     * Assemble the device exactly as the historical single-SSD runner
     * did: backend + firmware from the run's SystemConfig, the FTL
     * mirroring the bundle's block reservation, a router iff the
     * platform uses the hardware command path, the sampler bank
     * configured from the bundle's GNN model, and the platform's
     * accelerator. A P2P port exists only when @p topo spans more
     * than one device.
     *
     * @param platform Platform flags (router, sampling location...).
     * @param system   SSD system configuration of the run.
     * @param topo     Array topology (devices = 1 for a plain run).
     * @param model    GNN model (die-sampler global configuration).
     * @param blocks   Block reservation to mirror into this FTL.
     * @param index    Device index within the topology.
     * @param trace_utilization Record per-unit busy intervals.
     * @param cache_cfg Device-DRAM cache tier sizing (disabled by
     *                  default; DESIGN.md §14).
     */
    DeviceContext(const PlatformConfig &platform,
                  const ssd::SystemConfig &system,
                  const TopologyConfig &topo, const gnn::ModelConfig &model,
                  const std::vector<flash::BlockId> &blocks, unsigned index,
                  bool trace_utilization,
                  const cache::CacheConfig &cache_cfg = {});

    /** Engine-facing view of this device's hardware. */
    engines::DevicePort port();

    /**
     * This device's own event queue and local clock. Since PR 6 every
     * device of the topology advances on its own queue under the
     * conservative parallel simulator; a single-device run simply
     * runs this one queue to completion, which is the historical
     * sequential simulator.
     */
    sim::EventQueue &queue() { return _queue; }
    const sim::EventQueue &queue() const { return _queue; }

    flash::FlashBackend &backend() { return _backend; }
    const flash::FlashBackend &backend() const { return _backend; }
    ssd::Firmware &firmware() { return _fw; }
    accel::Accelerator &accelerator() { return _accel; }
    /** The accelerator's serializing bus (compute jobs queue here). */
    sim::Bus &accelBus() { return _accelBus; }
    const sim::Bus &accelBus() const { return _accelBus; }
    /** Outbound P2P port (nullptr on a single device). */
    sim::BandwidthResource *p2pOut() { return _p2p.get(); }
    const sim::BandwidthResource *p2pOut() const { return _p2p.get(); }
    /** Device-DRAM cache tier (nullptr when the run disables it). */
    cache::VertexCache *vertexCache() { return _cache.get(); }
    const cache::VertexCache *vertexCache() const { return _cache.get(); }
    /** This device's cache tallies (zeros when the tier is off). */
    cache::CacheStats cacheStats() const
    {
        return _cache ? _cache->stats() : cache::CacheStats{};
    }

    unsigned index() const { return _index; }
    /** Chrome-trace pid base of this device (4 pids per device). */
    std::uint32_t tracePidBase() const;

    /**
     * Publish every owned component's instruments into @p reg under
     * the historical single-device names (`flash.*`, `ssd.*`,
     * `engine.sampler.*`, `engine.router.*`, `accel.busy_ticks`).
     * Array code merges each device's registry twice — unprefixed for
     * the aggregate view and under `array.dev<D>.` for the per-device
     * view.
     */
    void publishMetrics(sim::MetricRegistry &reg) const;

    /** Attach a Chrome-trace sink on this device's pid range. */
    void setTraceSink(sim::TraceSink *sink, bool multi);

    /**
     * Attach the checked-build validator (DESIGN.md §16): registers
     * this device's queue as station `index()`'s local clock so every
     * schedule/pop is causality- and ownership-checked. Nullptr
     * detaches; OFF builds compile the checks out.
     */
    void setValidator(sim::Validator *v)
    {
        _queue.setValidator(v, _index);
    }

  private:
    unsigned _index;
    /** Local clock: all of this device's events run here. */
    sim::EventQueue _queue;
    flash::FlashBackend _backend;
    ssd::Firmware _fw;
    engines::DieSampler _sampler;
    /** Hardware command path (constructed when flags.hwRouter). */
    std::unique_ptr<engines::CommandRouter> _router;
    accel::Accelerator _accel;
    sim::Bus _accelBus{"accel"};
    std::unique_ptr<sim::BandwidthResource> _p2p;
    /** Device-DRAM vertex/feature cache (built iff the run enables
     *  it; DESIGN.md §14). */
    std::unique_ptr<cache::VertexCache> _cache;
};

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_DEVICE_CONTEXT_H
