#include "platforms/device_context.h"

#include <string>

#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/trace_events.h"

namespace beacongnn::platforms {

DeviceContext::DeviceContext(const PlatformConfig &platform,
                             const ssd::SystemConfig &system,
                             const TopologyConfig &topo,
                             const gnn::ModelConfig &model,
                             const std::vector<flash::BlockId> &blocks,
                             unsigned index, bool trace_utilization,
                             const cache::CacheConfig &cache_cfg)
    : _index(index), _backend(system.flash, trace_utilization),
      _fw(system),
      _sampler(system.engine, engines::gnnGlobalConfig(model),
               engines::DieSamplerOptions{platform.flags.coalesceSecondary}),
      _accel(platform.ssdCompute ? accel::ssdAcceleratorConfig()
                                 : accel::discreteTpuConfig())
{
    // Mirror the bundle's block reservation in this device's FTL.
    // The layout's addresses are only valid if this FTL reserves the
    // *same* blocks the bundle was laid out on, so mirror the exact
    // list rather than re-reserving by count.
    if (!_fw.ftl().reserveExact(blocks))
        sim::fatal("DeviceContext: cannot mirror the bundle's block "
                   "reservation (geometry mismatch?)");
    if (platform.flags.hwRouter) {
        _router = std::make_unique<engines::CommandRouter>(
            _fw.config().engine, _backend.config());
    }
    if (topo.multi())
        _p2p = std::make_unique<sim::BandwidthResource>(topo.p2pMBps,
                                                        "p2p");
    if (cache_cfg.enabled())
        _cache = std::make_unique<cache::VertexCache>(cache_cfg);
    if (system.disturb.armed()) {
        // Each device derives its own disturbance seed, so an array
        // does not replay identical per-die severity maps on every
        // member — while the derivation stays a pure function of
        // (run seed, device index).
        flash::DisturbConfig d = system.disturb;
        d.seed = sim::splitmix64(
            d.seed ^ (0x9E3779B97F4A7C15ull * (std::uint64_t{index} + 1)));
        _backend.setDisturb(d);
    }
}

engines::DevicePort
DeviceContext::port()
{
    engines::DevicePort p;
    p.backend = &_backend;
    p.fw = &_fw;
    p.router = _router.get();
    p.sampler = &_sampler;
    p.cache = _cache.get();
    p.p2pOut = _p2p.get();
    p.queue = &_queue;
    p.tracePidBase = tracePidBase();
    return p;
}

std::uint32_t
DeviceContext::tracePidBase() const
{
    // Four pids per device: engine spans stay on the global pid 0, so
    // device 0's range coincides with the historical single-SSD pids.
    return 4u * _index;
}

void
DeviceContext::publishMetrics(sim::MetricRegistry &reg) const
{
    _backend.publishMetrics(reg);
    _fw.publishMetrics(reg);
    _sampler.publishMetrics(reg);
    if (_router) {
        engines::DispatchStats s = _router->stats();
        reg.counter("engine.router.commands_routed").add(s.routed);
        reg.counter("engine.router.frames_parsed").add(s.parsed);
        reg.counter("engine.router.cross_channel").add(s.crossChannel);
        reg.gauge("engine.router.peak_queue")
            .set(static_cast<double>(s.peakQueue));
    }
    reg.counter("accel.busy_ticks").add(_accelBus.busyTime());
}

void
DeviceContext::setTraceSink(sim::TraceSink *sink, bool multi)
{
    std::string prefix =
        multi ? "dev" + std::to_string(_index) + " " : std::string();
    _backend.setTraceSink(sink, tracePidBase(), prefix);
}

} // namespace beacongnn::platforms
