#include "platforms/platform.h"

#include <cctype>

#include "sim/log.h"

namespace beacongnn::platforms {

PlatformConfig
makePlatform(PlatformKind kind)
{
    using engines::SamplingLoc;
    PlatformConfig p;
    p.kind = kind;
    p.name = platformName(kind);
    auto &f = p.flags;
    switch (kind) {
      case PlatformKind::CC:
        f.sampling = SamplingLoc::Host;
        f.pciePageLegs = 1;      // Neighbour-list pages to the host.
        f.featuresViaHost = true; // Feature pages host -> accel.
        p.ssdCompute = false;
        break;
      case PlatformKind::GLIST:
        f.sampling = SamplingLoc::Host;
        f.pciePageLegs = 1; // Sampling still host-side.
        p.ssdCompute = true; // Feature lookup + compute offloaded.
        break;
      case PlatformKind::SmartSage:
        f.sampling = SamplingLoc::Firmware;
        f.featuresViaHost = true; // SSD -> host -> discrete accel.
        f.idsToHost = true;
        p.ssdCompute = false;
        break;
      case PlatformKind::BG1:
        f.sampling = SamplingLoc::Firmware;
        f.idsToHost = true;   // Inter-hop host translation remains.
        p.ssdCompute = true;
        break;
      case PlatformKind::BG_DG:
        f.sampling = SamplingLoc::Firmware;
        f.directGraph = true;
        p.ssdCompute = true;
        break;
      case PlatformKind::BG_SP:
        f.sampling = SamplingLoc::Die;
        f.idsToHost = true;
        p.ssdCompute = true;
        break;
      case PlatformKind::BG_DGSP:
        f.sampling = SamplingLoc::Die;
        f.directGraph = true;
        p.ssdCompute = true;
        break;
      case PlatformKind::BG2:
        f.sampling = SamplingLoc::Die;
        f.directGraph = true;
        f.hwRouter = true;
        p.ssdCompute = true;
        break;
    }
    return p;
}

const std::vector<PlatformKind> &
allPlatforms()
{
    static const std::vector<PlatformKind> v = {
        PlatformKind::CC,      PlatformKind::SmartSage,
        PlatformKind::GLIST,   PlatformKind::BG1,
        PlatformKind::BG_DG,   PlatformKind::BG_SP,
        PlatformKind::BG_DGSP, PlatformKind::BG2,
    };
    return v;
}

const std::vector<PlatformKind> &
bgLadder()
{
    static const std::vector<PlatformKind> v = {
        PlatformKind::BG1,   PlatformKind::BG_DG,   PlatformKind::BG_SP,
        PlatformKind::BG_DGSP, PlatformKind::BG2,
    };
    return v;
}

std::string
platformName(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::CC: return "CC";
      case PlatformKind::GLIST: return "GLIST";
      case PlatformKind::SmartSage: return "SmartSage";
      case PlatformKind::BG1: return "BG-1";
      case PlatformKind::BG_DG: return "BG-DG";
      case PlatformKind::BG_SP: return "BG-SP";
      case PlatformKind::BG_DGSP: return "BG-DGSP";
      case PlatformKind::BG2: return "BG-2";
    }
    sim::panic("unknown platform kind");
}

namespace {

/** Lowercase with '-'/'_' stripped, so "BG-2" == "bg2". */
std::string
canonical(const std::string &name)
{
    std::string c;
    for (char ch : name) {
        if (ch == '-' || ch == '_')
            continue;
        c.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch))));
    }
    return c;
}

} // namespace

std::optional<PlatformKind>
findPlatform(const std::string &name)
{
    std::string want = canonical(name);
    for (auto kind : allPlatforms())
        if (canonical(platformName(kind)) == want)
            return kind;
    return std::nullopt;
}

std::string
platformNameList()
{
    std::string out;
    for (auto kind : allPlatforms()) {
        if (!out.empty())
            out += ", ";
        out += platformName(kind);
    }
    return out;
}

} // namespace beacongnn::platforms
