/**
 * @file
 * The eight evaluation platforms (§VII-A) as feature-flag
 * compositions over the unified timing model. See DESIGN.md §3 for
 * the full feature matrix.
 */

#ifndef BEACONGNN_PLATFORMS_PLATFORM_H
#define BEACONGNN_PLATFORMS_PLATFORM_H

#include <optional>
#include <string>
#include <vector>

#include "engines/gnn_engine.h"

namespace beacongnn::platforms {

/** Platform identities of the evaluation section. */
enum class PlatformKind : std::uint8_t
{
    CC,        ///< CPU-centric baseline (discrete accelerator).
    GLIST,     ///< Feature-table offload [44].
    SmartSage, ///< Sampling offload [40].
    BG1,       ///< BeaconGNN-1.0: combined prior offloads.
    BG_DG,     ///< BG-1 + DirectGraph.
    BG_SP,     ///< BG-1 + die-level samplers.
    BG_DGSP,   ///< BG-DG + BG-SP.
    BG2,       ///< BeaconGNN-2.0: + channel-level command routing.
};

/** Full platform description consumed by the runner. */
struct PlatformConfig
{
    PlatformKind kind = PlatformKind::CC;
    std::string name;
    engines::PrepFlags flags;
    /** Compute on the SSD-bus accelerator (vs the discrete TPU). */
    bool ssdCompute = false;
};

/** Build the configuration of one platform. */
PlatformConfig makePlatform(PlatformKind kind);

/** All platforms in the paper's presentation order. */
const std::vector<PlatformKind> &allPlatforms();

/** The BG-X ladder only (BG-1 ... BG-2), for the sensitivity tests. */
const std::vector<PlatformKind> &bgLadder();

/** Short display name ("BG-DGSP"). */
std::string platformName(PlatformKind kind);

/**
 * Lookup by display name, tolerant of case and punctuation ("bg2",
 * "BG2" and "BG-2" all resolve). Empty when the name is unknown.
 */
std::optional<PlatformKind> findPlatform(const std::string &name);

/** All platform display names, comma-separated (for CLI messages). */
std::string platformNameList();

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_PLATFORM_H
