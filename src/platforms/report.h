/**
 * @file
 * Result reporting: CSV serialization of RunResult rows and
 * utilization series so the bench outputs can be re-plotted with any
 * external tooling (the figures in the paper are plots of exactly
 * these series).
 */

#ifndef BEACONGNN_PLATFORMS_REPORT_H
#define BEACONGNN_PLATFORMS_REPORT_H

#include <ostream>

#include "platforms/runner.h"

namespace beacongnn::platforms {

/** Write the RunResult CSV header row. */
void writeCsvHeader(std::ostream &os);

/** Write one RunResult as a CSV row. */
void writeCsvRow(std::ostream &os, const RunResult &r);

/**
 * Write a utilization time series ("series,label,t0,t1,...") — one
 * row per traced series of @p r (dies, channels).
 */
void writeSeriesCsv(std::ostream &os, const RunResult &r);

/** Summary line for logs: platform, workload, throughput, energy. */
std::string summaryLine(const RunResult &r);

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_REPORT_H
