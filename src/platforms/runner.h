/**
 * @file
 * Platform runner: executes a GNN training workload (a stream of
 * mini-batches) on one platform configuration and collects every
 * statistic the evaluation figures need — throughput, per-hop
 * timelines, command lifetimes, flash utilization traces, byte
 * tallies and the energy breakdown.
 *
 * Data preparation of mini-batch i is pipelined with the GNN
 * computation of mini-batch i-1 (§VI-D): the prep stream is serial,
 * compute jobs serialize on the accelerator, and the run ends when
 * the last compute job drains.
 */

#ifndef BEACONGNN_PLATFORMS_RUNNER_H
#define BEACONGNN_PLATFORMS_RUNNER_H

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "accel/accelerator.h"
#include "cache/vertex_cache.h"
#include "energy/energy.h"
#include "graph/dataset.h"
#include "platforms/platform.h"
#include "platforms/topology.h"
#include "sim/metrics.h"

namespace beacongnn::sim {
class TraceSink;
} // namespace beacongnn::sim

namespace beacongnn::platforms {

/**
 * A workload instantiated and laid out on flash, shared across runs.
 *
 * The `source` member references `layout` and `graph`, so the bundle
 * must not be moved or copied after construction — makeBundle()
 * returns it on the heap for that reason.
 */
struct WorkloadBundle
{
    std::string name;
    graph::Graph graph;
    graph::FeatureTable features{0};
    dg::DirectGraphLayout layout;
    std::unique_ptr<dg::LayoutSource> source;
    gnn::ModelConfig model;

    WorkloadBundle() = default;
    WorkloadBundle(const WorkloadBundle &) = delete;
    WorkloadBundle &operator=(const WorkloadBundle &) = delete;
    WorkloadBundle(WorkloadBundle &&) = delete;
    WorkloadBundle &operator=(WorkloadBundle &&) = delete;
};

/**
 * Build a workload bundle: synthesize the graph, reserve blocks and
 * compute the DirectGraph layout for the given flash geometry.
 *
 * @param spec       Workload spec (Table III).
 * @param flash_cfg  Flash geometry (page size matters for layout).
 * @param model      GNN task config (feature dim is overridden from
 *                   the spec).
 * @param node_override If nonzero, overrides spec.simNodes.
 */
std::unique_ptr<WorkloadBundle> makeBundle(
    const graph::WorkloadSpec &spec, const flash::FlashConfig &flash_cfg,
    gnn::ModelConfig model, graph::NodeId node_override = 0);

/**
 * One scheduled fault of the run: device @ref device stops serving
 * reads at tick @ref at — the whole device when @ref die is negative,
 * one die (device-local index) otherwise. A whole-device kill also
 * removes the device from the engine's replica routing; a single-die
 * kill only fails the reads that land on that die.
 */
struct KillEvent
{
    unsigned device = 0;
    int die = -1; ///< Device-local die index; -1 = whole device.
    sim::Tick at = 0;
};

/** Run parameters. */
struct RunConfig
{
    ssd::SystemConfig system{};
    std::uint32_t batchSize = 64;
    std::uint32_t batches = 4;
    std::uint64_t targetSeed = 0xF00D;
    bool traceUtilization = false;
    std::size_t utilizationBuckets = 48;
    /** Opt-in Chrome-trace sink recording command lifetimes and flash
     *  operations (not owned; nullptr = no tracing). */
    sim::TraceSink *traceSink = nullptr;
    /** Scale-out topology (§VIII). The default single device runs the
     *  plain platform; devices > 1 shards the graph across an array
     *  of identical SSDs (streaming platforms only). */
    TopologyConfig topology{};
    /** Device-DRAM vertex/feature cache tier, per device (DESIGN.md
     *  §14). Disabled by default — capacityMB = 0 builds no cache and
     *  stays byte-identical to the historical cache-less runs. */
    cache::CacheConfig cache{};
    /** Zipf(θ) skew of runPlatform's target draws; 0 (default) keeps
     *  the historical uniform stream. Hot set = low node ids. */
    double zipfTheta = 0.0;
    /** Model override: run this spec instead of the bundle's (the
     *  bundle layout stays feature-dim compatible). nullopt (default)
     *  runs the bundle model — the historical behaviour. */
    std::optional<gnn::ModelSpec> model;
    /** Fault schedule (DESIGN.md §17): die/device kills applied to the
     *  flash backends and the replica router. Empty (default) runs the
     *  historical fault-free simulation, byte-identically. */
    std::vector<KillEvent> kills{};
};

/** Everything measured in one run. */
struct RunResult
{
    std::string platform;
    std::string workload;
    bool ok = true;

    std::uint64_t targets = 0;
    sim::Tick prepTime = 0;     ///< Last prep finish.
    sim::Tick totalTime = 0;    ///< Last compute drain.
    double throughput = 0;      ///< Targets per second.

    engines::CmdStats cmdStats; ///< Merged over batches (Fig. 17).
    engines::PrepTally tally;   ///< Summed over batches.
    std::vector<engines::HopSpan> hops; ///< Last batch (Fig. 16).
    sim::Tick lastBatchStart = 0;

    // Resource busy shares over the whole run (Fig. 15f inputs).
    double dieUtil = 0;
    double channelUtil = 0;
    double coreUtil = 0;
    double dramUtil = 0;
    double pcieUtil = 0;
    sim::Tick accelBusy = 0;
    sim::Tick hostBusy = 0;

    // Active-unit series over time (Fig. 15a-e; empty unless traced).
    std::vector<double> dieSeries;
    std::vector<double> channelSeries;

    energy::EnergyBreakdown energy;
    double avgPowerW = 0;

    gnn::Subgraph lastSubgraph; ///< For functional validation.

    // Scale-out array view (degenerate for a single-device run).
    unsigned devices = 1;          ///< Devices of the topology.
    std::uint64_t commands = 0;    ///< Flash commands executed.
    std::uint64_t crossDevice = 0; ///< Commands that crossed P2P links.
    /** crossDevice / commands; 0 when no command ran. */
    double crossFraction = 0;
    /** Per-device command/byte tallies (devices entries). */
    std::vector<engines::DeviceTally> perDevice;

    // Fault-injection view (DESIGN.md §17; defaults without faults).
    unsigned replication = 1;      ///< Effective replication factor.
    /** The applied kill schedule (empty = fault-free run). */
    std::vector<KillEvent> faults;
    /** Commands served by a surviving replica because their primary
     *  device was killed. */
    std::uint64_t replicaFallbacks = 0;
    /** Any device/die down this run? */
    bool degraded() const { return !faults.empty(); }
};

/** Timing of one mini-batch's trip through the platform pipeline. */
struct BatchService
{
    bool ok = true;
    sim::Tick prepStart = 0;    ///< When data preparation began.
    sim::Tick prepFinish = 0;   ///< Prep stream free for the next batch.
    sim::Tick computeStart = 0; ///< Accelerator grant start.
    sim::Tick computeEnd = 0;   ///< Result available to the caller.
};

/**
 * An instantiated platform held open across mini-batches: the full
 * component tree (event queue, flash backend, firmware, accelerator,
 * GNN engine) of one run, exposing per-batch execution so callers
 * can feed batches one at a time and observe each batch's service
 * timing. runPlatform() drives it over a fixed offline grid; the
 * online serving layer (src/serve) drives it from a micro-batching
 * scheduler.
 *
 * Batches are prepared serially — the prep stream is a single
 * pipeline — and compute of batch i overlaps prep of batch i+1
 * exactly as in §VI-D. All cross-batch statistics accumulate inside
 * the session; finish() folds them into a RunResult.
 */
class PlatformSession
{
  public:
    PlatformSession(const PlatformConfig &platform, const RunConfig &run,
                    const WorkloadBundle &bundle);
    ~PlatformSession();
    PlatformSession(const PlatformSession &) = delete;
    PlatformSession &operator=(const PlatformSession &) = delete;

    /** Earliest tick the (serial) prep stream accepts a new batch. */
    sim::Tick prepFree() const;

    /** Run one mini-batch whose prep starts at or after @p ready. */
    BatchService runBatch(sim::Tick ready,
                          std::span<const graph::NodeId> targets);

    /**
     * Run one mini-batch under @p model, switching the engine (and
     * re-broadcasting the die configuration) when it differs from the
     * previous batch's spec — the serving layer's per-request model
     * selection. The spec must keep the bundle's feature dimension.
     */
    BatchService runBatch(sim::Tick ready,
                          std::span<const graph::NodeId> targets,
                          const gnn::ModelSpec &model);

    /** The model spec the next batch will run (bundle model, the
     *  RunConfig override, or the last runBatch() override). */
    const gnn::ModelSpec &activeModel() const;

    /** Mini-batches run so far. */
    std::uint32_t batches() const;

    /** Fold the accumulated statistics into a RunResult. */
    RunResult finish();

    /**
     * The session's metric registry. Every component publishes into
     * it during finish(); before that it holds only the per-batch
     * engine instruments. RunResult's fields are derived from it.
     */
    const sim::MetricRegistry &metrics() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * Execute @p batches mini-batches of @p batchSize targets.
 * @param metrics When non-null, receives a merged copy of the
 *                session's full instrument registry.
 */
RunResult runPlatform(const PlatformConfig &platform,
                      const RunConfig &run, const WorkloadBundle &bundle,
                      sim::MetricRegistry *metrics = nullptr);

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_RUNNER_H
