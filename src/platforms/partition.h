/**
 * @file
 * Graph partitioner for the computational storage array (§VIII): maps
 * every node to its owning device under a pluggable policy. The map
 * is a pure function of (graph, policy, devices) — rebuilding it for
 * the same inputs yields the same ownership, so array runs stay
 * deterministic and keyed sampling produces identical subgraphs for
 * every partitioning.
 */

#ifndef BEACONGNN_PLATFORMS_PARTITION_H
#define BEACONGNN_PLATFORMS_PARTITION_H

#include <vector>

#include "graph/graph.h"
#include "platforms/topology.h"

namespace beacongnn::platforms {

/** Node → device ownership map of one array run. */
class Partition
{
  public:
    /** Degenerate single-device partition (every node on device 0). */
    Partition() = default;

    /** Build the ownership map of @p g under @p policy. */
    static Partition build(const graph::Graph &g,
                           PartitionPolicy policy, unsigned devices);

    unsigned devices() const { return _devices; }
    PartitionPolicy policy() const { return _policy; }

    /** Owning device of @p node (always 0 for a single device). */
    unsigned
    ownerOf(graph::NodeId node) const
    {
        if (_devices <= 1)
            return 0;
        return owners[node];
    }

    /** Node-indexed owner table (empty for a single device). */
    const std::vector<std::uint32_t> &table() const { return owners; }

    /** Nodes owned by device @p dev. */
    std::uint64_t nodesOn(unsigned dev) const { return nodeCount[dev]; }

    /** Total degree (adjacency work) owned by device @p dev. */
    std::uint64_t
    degreeOn(unsigned dev) const
    {
        return degreeSum[dev];
    }

    /** Max-over-min device load spread, in total degree. */
    std::uint64_t degreeSpread() const;

  private:
    unsigned _devices = 1;
    PartitionPolicy _policy = PartitionPolicy::Hash;
    std::vector<std::uint32_t> owners;
    std::vector<std::uint64_t> nodeCount{0};
    std::vector<std::uint64_t> degreeSum{0};
};

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_PARTITION_H
