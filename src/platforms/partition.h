/**
 * @file
 * Graph partitioner for the computational storage array (§VIII): maps
 * every node to its owning device under a pluggable policy. The map
 * is a pure function of (graph, policy, devices) — rebuilding it for
 * the same inputs yields the same ownership, so array runs stay
 * deterministic and keyed sampling produces identical subgraphs for
 * every partitioning.
 */

#ifndef BEACONGNN_PLATFORMS_PARTITION_H
#define BEACONGNN_PLATFORMS_PARTITION_H

#include <vector>

#include "graph/graph.h"
#include "platforms/topology.h"

namespace beacongnn::platforms {

/**
 * Node → device ownership map under a single-owner policy. Retained
 * as the building block (and byte-identity golden) of the replica-
 * aware Placement below: Placement with replication = 1 routes every
 * node exactly where Partition would.
 */
class Partition
{
  public:
    /** Degenerate single-device partition (every node on device 0). */
    Partition() = default;

    /** Build the ownership map of @p g under @p policy. */
    static Partition build(const graph::Graph &g,
                           PartitionPolicy policy, unsigned devices);

    unsigned devices() const { return _devices; }
    PartitionPolicy policy() const { return _policy; }

    /** Owning device of @p node (always 0 for a single device). */
    unsigned
    ownerOf(graph::NodeId node) const
    {
        if (_devices <= 1)
            return 0;
        return owners[node];
    }

    /** Node-indexed owner table (empty for a single device). */
    const std::vector<std::uint32_t> &table() const { return owners; }

    /** Nodes owned by device @p dev. */
    std::uint64_t nodesOn(unsigned dev) const { return nodeCount[dev]; }

    /** Total degree (adjacency work) owned by device @p dev. */
    std::uint64_t
    degreeOn(unsigned dev) const
    {
        return degreeSum[dev];
    }

    /** Max-over-min device load spread, in total degree. */
    std::uint64_t degreeSpread() const;

  private:
    unsigned _devices = 1;
    PartitionPolicy _policy = PartitionPolicy::Hash;
    std::vector<std::uint32_t> owners;
    std::vector<std::uint64_t> nodeCount{0};
    std::vector<std::uint64_t> degreeSum{0};
};

/**
 * Replica-aware placement (DESIGN.md §17): every node is served by
 * 1..R distinct devices. Replica 0 is the policy-assigned primary —
 * the exact Partition owner — and replica k is chained-declustered
 * onto device `(primary + k) % devices`, so consecutive devices back
 * each other up and the loss of one device spreads its load evenly
 * over the next R-1 ring neighbours instead of doubling one victim's.
 *
 * Like Partition, the map is a pure function of
 * (graph, policy, devices, replication); with replication = 1 the
 * replica set of every node is exactly {Partition::ownerOf(node)}, so
 * the degenerate Placement routes byte-identically to the historical
 * single-owner partition by construction.
 */
class Placement
{
  public:
    /** Degenerate single-device placement (every node on device 0). */
    Placement() = default;

    /** Build the placement of @p g: a @p policy partition for the
     *  primaries plus chained-declustered replicas. @p replication is
     *  clamped to [1, devices]. */
    static Placement build(const graph::Graph &g, PartitionPolicy policy,
                           unsigned devices, unsigned replication = 1);

    unsigned devices() const { return primary.devices(); }
    PartitionPolicy policy() const { return primary.policy(); }
    unsigned replication() const { return _replication; }

    /** Primary (replica 0) device of @p node. */
    unsigned primaryOf(graph::NodeId node) const
    {
        return primary.ownerOf(node);
    }

    /** Device of replica @p k of @p node (k < replication()); the
     *  replicas of one node are pairwise distinct. */
    unsigned
    replicaOf(graph::NodeId node, unsigned k) const
    {
        return (primary.ownerOf(node) + k) % devices();
    }

    /** All replica devices of @p node, in replica order (primary
     *  first). Size = replication(). */
    std::vector<unsigned> replicasOf(graph::NodeId node) const;

    /** The primary-owner table (empty for a single device); the
     *  engine derives replica k as (owner + k) % devices. */
    const std::vector<std::uint32_t> &table() const
    {
        return primary.table();
    }

    /** Nodes whose *primary* is device @p dev. */
    std::uint64_t nodesOn(unsigned dev) const
    {
        return primary.nodesOn(dev);
    }

    /** Total primary degree on device @p dev. */
    std::uint64_t degreeOn(unsigned dev) const
    {
        return primary.degreeOn(dev);
    }

    /** Max-over-min primary load spread, in total degree. */
    std::uint64_t degreeSpread() const
    {
        return primary.degreeSpread();
    }

  private:
    Partition primary;
    unsigned _replication = 1;
};

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_PARTITION_H
