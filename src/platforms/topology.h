/**
 * @file
 * Array topology configuration (§VIII): how many BeaconGNN SSDs run
 * one workload, how their P2P links are provisioned, and how the
 * graph is partitioned across them. `devices = 1` is exactly the
 * single-SSD platform of the evaluation section — every run carries a
 * TopologyConfig and the degenerate value changes nothing.
 */

#ifndef BEACONGNN_PLATFORMS_TOPOLOGY_H
#define BEACONGNN_PLATFORMS_TOPOLOGY_H

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

#include "sim/types.h"

namespace beacongnn::platforms {

/** Graph-partition policy of a computational storage array. */
enum class PartitionPolicy : std::uint8_t
{
    Hash,     ///< splitmix64(node) % devices (paper §VIII default).
    Range,    ///< Contiguous equal node-id ranges.
    Balanced, ///< Degree-aware greedy (LPT on node degree).
};

/** Scale-out topology of one run. devices = 1 ≡ today's single SSD. */
struct TopologyConfig
{
    unsigned devices = 1;            ///< BeaconGNN SSDs in the array.
    double p2pMBps = 4000.0;         ///< Per-device P2P port bandwidth.
    sim::Tick p2pLatency = sim::microseconds(1); ///< Link hop latency.
    std::uint32_t commandBytes = 16; ///< Forwarded command descriptor.
    PartitionPolicy partition = PartitionPolicy::Hash;
    /**
     * Replication factor R of the placement layer (DESIGN.md §17):
     * every node is served by R distinct devices (chained
     * declustering off its policy-assigned primary), clamped to the
     * device count. R = 1 (default) is exactly the historical single-
     * owner partition — byte-identical by construction.
     */
    unsigned replication = 1;

    bool multi() const { return devices > 1; }

    /** Effective replication factor (clamped to the device count). */
    unsigned
    effectiveReplication() const
    {
        return std::max(1u, std::min(replication, devices));
    }

    /**
     * Conservative-DES lookahead of the fabric (DESIGN.md §13): a
     * device cannot affect a neighbour sooner than one P2P hop, so
     * the link latency bounds how far the per-device clocks may
     * advance independently within one synchronization window. Zero
     * is legal — the parallel simulator degrades to serialized
     * single-timestamp windows (deterministic, just not concurrent).
     */
    sim::Tick lookahead() const { return p2pLatency; }
};

/** Short display name ("hash", "range", "balanced"). */
const char *partitionPolicyName(PartitionPolicy policy);

/** Lookup by display name (case-insensitive); empty when unknown. */
std::optional<PartitionPolicy>
findPartitionPolicy(const std::string &name);

/** All policy display names, comma-separated (for CLI messages). */
std::string partitionPolicyList();

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_TOPOLOGY_H
