/**
 * @file
 * Computational storage array (§VIII "Practicality and future
 * proof"): multiple BeaconGNN SSDs connected by direct P2P links,
 * working collaboratively on one GNN task.
 *
 * The graph is hash-partitioned across devices; every device runs the
 * full BG-2 stack (die samplers + channel routers) over its shard.
 * When a sampling command's destination node lives on another device,
 * the command descriptor crosses the P2P link (small transfer) and
 * continues on the owner — the out-of-order streaming discipline is
 * unchanged, and thanks to keyed sampling the array produces exactly
 * the same subgraphs as a single device.
 */

#ifndef BEACONGNN_PLATFORMS_ARRAY_H
#define BEACONGNN_PLATFORMS_ARRAY_H

#include "platforms/runner.h"

namespace beacongnn::platforms {

/** Array configuration. */
struct ArrayConfig
{
    unsigned devices = 4;            ///< BeaconGNN SSDs in the array.
    double p2pMBps = 4000.0;         ///< Per-device P2P port bandwidth.
    sim::Tick p2pLatency = sim::microseconds(1); ///< Link hop latency.
    std::uint32_t commandBytes = 16; ///< Forwarded command descriptor.
};

/** Result of an array run. */
struct ArrayRunResult
{
    unsigned devices = 0;
    std::uint64_t targets = 0;
    sim::Tick totalTime = 0;
    double throughput = 0;          ///< Targets per second.
    std::uint64_t commands = 0;
    std::uint64_t crossDevice = 0;  ///< Commands that crossed the P2P.
    double crossFraction = 0;
    gnn::Subgraph lastSubgraph;
    bool ok = true;
};

/**
 * Run a BG-2 workload on an array of @p acfg.devices SSDs.
 * Node v is owned by device hash(v) % devices; each device gets its
 * own flash backend, firmware, channel router and accelerator.
 */
ArrayRunResult runArray(const ArrayConfig &acfg, const RunConfig &run,
                        const WorkloadBundle &bundle);

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_ARRAY_H
