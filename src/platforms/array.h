/**
 * @file
 * Computational storage array (§VIII "Practicality and future
 * proof"): multiple BeaconGNN SSDs connected by direct P2P links,
 * working collaboratively on one GNN task.
 *
 * The graph is partitioned across devices (hash by default; see
 * platforms/topology.h for the policies); every device runs the full
 * BG-2 stack (die samplers + channel routers) over its shard. When a
 * sampling command's destination node lives on another device, the
 * command descriptor crosses the P2P link (small transfer) and
 * continues on the owner — the out-of-order streaming discipline is
 * unchanged, and thanks to keyed sampling the array produces exactly
 * the same subgraphs as a single device.
 *
 * runArray() is a convenience wrapper over the sharded platform
 * runner: it executes the BG-2 platform with RunConfig::topology set
 * from the ArrayConfig, so an array run measures everything a plain
 * run does (per-hop timelines, byte tallies, energy, per-device
 * `array.dev<D>.*` metrics) through the exact same code path — a
 * devices = 1 array run IS the single-SSD BG-2 run.
 */

#ifndef BEACONGNN_PLATFORMS_ARRAY_H
#define BEACONGNN_PLATFORMS_ARRAY_H

#include "platforms/runner.h"

namespace beacongnn::platforms {

/** Array configuration. */
struct ArrayConfig
{
    unsigned devices = 4;            ///< BeaconGNN SSDs in the array.
    double p2pMBps = 4000.0;         ///< Per-device P2P port bandwidth.
    sim::Tick p2pLatency = sim::microseconds(1); ///< Link hop latency.
    std::uint32_t commandBytes = 16; ///< Forwarded command descriptor.
    PartitionPolicy partition = PartitionPolicy::Hash;
    /** Replication factor R of the placement (DESIGN.md §17); 1 is
     *  the historical single-owner partition, byte-identically. */
    unsigned replication = 1;

    /** The equivalent run topology. */
    TopologyConfig
    topology() const
    {
        TopologyConfig t;
        t.devices = devices;
        t.p2pMBps = p2pMBps;
        t.p2pLatency = p2pLatency;
        t.commandBytes = commandBytes;
        t.partition = partition;
        t.replication = replication;
        return t;
    }
};

/** Result of an array run. */
struct ArrayRunResult
{
    unsigned devices = 0;
    std::uint64_t targets = 0;
    sim::Tick totalTime = 0;
    double throughput = 0;          ///< Targets per second.
    std::uint64_t commands = 0;
    std::uint64_t crossDevice = 0;  ///< Commands that crossed the P2P.
    /** crossDevice / commands; 0 when no command ran. */
    double crossFraction = 0;
    /** Commands executed on each device (devices entries). */
    std::vector<std::uint64_t> perDeviceCommands;
    gnn::Subgraph lastSubgraph;
    bool ok = true;
    /** The full platform measurement behind the summary above. */
    RunResult run;
};

/**
 * Run a BG-2 workload on an array of @p acfg.devices SSDs. Each
 * device gets its own flash backend, firmware, channel router and
 * accelerator; node ownership follows acfg.partition.
 *
 * @param metrics When non-null, receives a merged copy of the full
 *                instrument registry (aggregate + `array.dev<D>.*`).
 */
ArrayRunResult runArray(const ArrayConfig &acfg, const RunConfig &run,
                        const WorkloadBundle &bundle,
                        sim::MetricRegistry *metrics = nullptr);

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_ARRAY_H
