#include "platforms/report.h"

#include <iomanip>
#include <sstream>

namespace beacongnn::platforms {

void
writeCsvHeader(std::ostream &os)
{
    os << "platform,workload,ok,targets,total_ns,prep_ns,"
          "throughput_tps,flash_reads,channel_bytes,dram_bytes,"
          "pcie_bytes,feature_bytes,aborted,die_util,channel_util,"
          "core_util,dram_util,pcie_util,host_busy_ns,accel_busy_ns,"
          "wait_before_us,flash_us,wait_after_us,lifetime_us,"
          "energy_j,avg_power_w\n";
}

void
writeCsvRow(std::ostream &os, const RunResult &r)
{
    os << r.platform << ',' << r.workload << ',' << (r.ok ? 1 : 0)
       << ',' << r.targets << ',' << r.totalTime << ',' << r.prepTime
       << ',' << r.throughput << ',' << r.tally.flashReads << ','
       << r.tally.channelBytes << ',' << r.tally.dramBytes << ','
       << r.tally.pcieBytes << ',' << r.tally.featureBytes << ','
       << r.tally.abortedCommands << ',' << r.dieUtil << ','
       << r.channelUtil << ',' << r.coreUtil << ',' << r.dramUtil
       << ',' << r.pcieUtil << ',' << r.hostBusy << ',' << r.accelBusy
       << ',' << r.cmdStats.waitBefore.mean() << ','
       << r.cmdStats.flashTime.mean() << ','
       << r.cmdStats.waitAfter.mean() << ','
       << r.cmdStats.lifetime.mean() << ',' << r.energy.total() << ','
       << r.avgPowerW << '\n';
}

void
writeSeriesCsv(std::ostream &os, const RunResult &r)
{
    auto emit = [&](const char *label,
                    const std::vector<double> &series) {
        if (series.empty())
            return;
        os << r.platform << '-' << r.workload << ',' << label;
        for (double v : series)
            os << ',' << v;
        os << '\n';
    };
    emit("active_dies", r.dieSeries);
    emit("active_channels", r.channelSeries);
}

std::string
summaryLine(const RunResult &r)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(1);
    ss << r.platform << " on " << r.workload << ": " << r.throughput
       << " targets/s, " << sim::toMillis(r.totalTime) << " ms, "
       << std::setprecision(3)
       << 1000.0 * r.energy.total() /
              static_cast<double>(std::max<std::uint64_t>(1, r.targets))
       << " mJ/target";
    if (r.degraded()) {
        // A faulted run says *what* was down and how the placement
        // absorbed it, instead of a bare [FAILED].
        ss << (r.ok ? " [degraded:" : " [FAILED, degraded:");
        ss << " down =";
        for (const KillEvent &k : r.faults) {
            ss << " dev" << k.device;
            if (k.die >= 0)
                ss << ".die" << k.die;
        }
        ss << ", R = " << r.replication << ", "
           << r.replicaFallbacks << " replica fallbacks]";
    } else if (!r.ok) {
        ss << " [FAILED]";
    }
    return ss.str();
}

} // namespace beacongnn::platforms
