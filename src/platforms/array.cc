#include "platforms/array.h"

#include "sim/log.h"

namespace beacongnn::platforms {

ArrayRunResult
runArray(const ArrayConfig &acfg, const RunConfig &run,
         const WorkloadBundle &bundle, sim::MetricRegistry *metrics)
{
    if (acfg.devices == 0)
        sim::fatal("runArray: zero devices");

    RunConfig rc = run;
    rc.topology = acfg.topology();
    RunResult full = runPlatform(makePlatform(PlatformKind::BG2), rc,
                                 bundle, metrics);

    ArrayRunResult res;
    res.devices = acfg.devices;
    res.targets = full.targets;
    res.totalTime = full.totalTime;
    res.throughput = full.throughput;
    res.commands = full.commands;
    res.crossDevice = full.crossDevice;
    res.crossFraction = full.crossFraction;
    res.perDeviceCommands.reserve(full.perDevice.size());
    for (const engines::DeviceTally &t : full.perDevice)
        res.perDeviceCommands.push_back(t.commands);
    res.lastSubgraph = full.lastSubgraph;
    res.ok = full.ok;
    res.run = std::move(full);
    return res;
}

} // namespace beacongnn::platforms
