#include "platforms/array.h"

#include "engines/command_router.h"
#include "engines/die_sampler.h"
#include "gnn/compute.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"

namespace beacongnn::platforms {

namespace {

/** Owner device of a node (hash partitioning). */
unsigned
ownerOf(graph::NodeId node, unsigned devices)
{
    return static_cast<unsigned>(sim::splitmix64(node) % devices);
}

/** One SSD of the array: its own backend, frontend and engines. */
struct Device
{
    std::unique_ptr<flash::FlashBackend> backend;
    std::unique_ptr<ssd::Firmware> firmware;
    std::unique_ptr<engines::CommandRouter> router;
    /** Outbound P2P port (bandwidth-serialized). */
    sim::BandwidthResource p2pOut;

    Device(const ssd::SystemConfig &sys, double p2p_mbps)
        : backend(std::make_unique<flash::FlashBackend>(sys.flash)),
          firmware(std::make_unique<ssd::Firmware>(sys)),
          router(std::make_unique<engines::CommandRouter>(sys.engine,
                                                          sys.flash)),
          p2pOut(p2p_mbps, "p2p")
    {
    }
};

/** Streaming BG-2 execution across the array. */
class ArrayEngine
{
  public:
    ArrayEngine(const ArrayConfig &acfg_, const RunConfig &run,
                const WorkloadBundle &bundle_)
        : acfg(acfg_), bundle(bundle_),
          sampler(run.system.engine,
                  flash::GnnGlobalConfig{bundle.model.hops,
                                         bundle.model.fanout,
                                         bundle.model.featureDim, 2,
                                         bundle.model.seed})
    {
        for (unsigned d = 0; d < acfg.devices; ++d)
            devices.push_back(
                std::make_unique<Device>(run.system, acfg.p2pMBps));
    }

    /** Run one mini-batch; returns its finish time. */
    sim::Tick
    runBatch(sim::Tick start, std::uint64_t batch_id,
             std::span<const graph::NodeId> targets,
             ArrayRunResult &out)
    {
        outstanding = 0;
        finishMax = start;
        sg.clear();
        const auto &host = devices[0]->firmware->config().host;
        sim::Tick ready = start + host.batchOverhead +
                          host.nvmeRoundTrip +
                          host.translatePerNode * targets.size();
        for (graph::NodeId t : targets) {
            flash::GnnSampleParams p;
            dg::DgAddress a = bundle.layout.primaryOf(t);
            p.ppa = a.page();
            p.sectionIndex = static_cast<std::uint8_t>(a.section());
            p.hop = 0;
            p.batchId = static_cast<std::uint32_t>(batch_id);
            p.parentSlot = gnn::kNoParent;
            p.retrieveFeature = true;
            p.sampleCount = bundle.model.fanout;
            ++outstanding;
            unsigned dev = ownerOf(t, acfg.devices);
            queue.scheduleAt(ready, [this, p, dev, &out] {
                command(p, queue.now(), dev, out);
            });
        }
        queue.run();
        out.lastSubgraph = sg;
        return finishMax;
    }

  private:
    void
    command(flash::GnnSampleParams params, sim::Tick ready,
            unsigned dev_idx, ArrayRunResult &out)
    {
        Device &dev = *devices[dev_idx];
        // Route through the device's channel hardware.
        sim::Tick dispatched = dev.router->route(
            ready, dev.backend->codec().channelOf(params.ppa),
            params.ppa);

        dg::DgAddress addr(params.ppa, params.sectionIndex);
        auto section = bundle.source->fetch(addr);
        flash::GnnSampleResult result = sampler.execute(section, params);

        flash::FlashOpTiming t = dev.backend->read(
            dispatched, params.ppa, result.frameBytes(),
            sampler.latency(result));
        dev.router->bindCompletion(params.ppa, t.xferEnd);
        sim::Tick parsed = dev.router->parse(t.xferEnd);
        if (result.featureIncluded)
            dev.firmware->dram().acquire(parsed, result.featureBytes);

        ++out.commands;
        if (!result.ok) {
            out.ok = false;
        }

        gnn::Slot parent = params.parentSlot;
        if (!params.isSecondary && result.ok) {
            parent = sg.add(static_cast<graph::NodeId>(result.nodeId),
                            params.hop, params.parentSlot);
        }

        outstanding += result.follow.size();
        for (auto &f : result.follow) {
            f.params.parentSlot = parent;
            flash::GnnSampleParams child = f.params;
            // The child may live on another SSD: its section owner's
            // node id decides. Secondary continuations stay local
            // (same node's data); primary children go to the owner of
            // the child node.
            unsigned child_dev = dev_idx;
            if (!child.isSecondary) {
                if (auto sp = bundle.layout.find(dg::DgAddress(
                        child.ppa, child.sectionIndex))) {
                    child_dev = ownerOf(sp->node, acfg.devices);
                }
            }
            sim::Tick child_ready = parsed;
            if (child_dev != dev_idx) {
                // Command descriptor over the P2P link.
                sim::Grant link = dev.p2pOut.acquire(
                    parsed, acfg.commandBytes);
                child_ready = link.end + acfg.p2pLatency;
                ++out.crossDevice;
            }
            queue.scheduleAt(child_ready,
                             [this, child, child_dev, &out] {
                                 command(child, queue.now(), child_dev,
                                         out);
                             });
        }

        finishMax = std::max(finishMax, parsed);
        --outstanding;
        // outstanding hits zero only after the last scheduled child
        // has executed; queue.run() drains everything either way.
    }

    ArrayConfig acfg;
    const WorkloadBundle &bundle;
    engines::DieSampler sampler;
    std::vector<std::unique_ptr<Device>> devices;
    sim::EventQueue queue;
    std::uint64_t outstanding = 0;
    sim::Tick finishMax = 0;
    gnn::Subgraph sg;
};

} // namespace

ArrayRunResult
runArray(const ArrayConfig &acfg, const RunConfig &run,
         const WorkloadBundle &bundle)
{
    ArrayRunResult res;
    res.devices = acfg.devices;
    if (acfg.devices == 0)
        sim::fatal("runArray: zero devices");

    ArrayEngine engine(acfg, run, bundle);
    accel::Accelerator accelerator(accel::ssdAcceleratorConfig());
    // One accelerator per device; compute shards by target owner. We
    // model the aggregate as `devices` parallel accelerators.
    sim::ServerPool accel_pool(acfg.devices, "array-accel");

    sim::Pcg32 rng(run.targetSeed, 0xACE5);
    sim::Tick prep_start = 0;
    sim::Tick last_compute = 0;
    for (std::uint32_t batch = 0; batch < run.batches; ++batch) {
        std::vector<graph::NodeId> targets(run.batchSize);
        for (auto &t : targets)
            t = rng.below(bundle.graph.numNodes());
        sim::Tick finish = engine.runBatch(prep_start, batch, targets,
                                           res);
        gnn::ComputeWorkload w =
            gnn::measureCompute(res.lastSubgraph, bundle.model);
        // Each device computes its shard: 1/devices of the work.
        accel::ComputeEstimate est = accelerator.estimate(w);
        sim::Grant cg = accel_pool.acquire(
            finish, est.total() / std::max(1u, acfg.devices));
        last_compute = std::max(last_compute, cg.end);
        prep_start = finish;
        res.targets += targets.size();
    }
    res.totalTime = std::max(prep_start, last_compute);
    res.throughput = res.totalTime == 0
                         ? 0.0
                         : static_cast<double>(res.targets) /
                               sim::toSeconds(res.totalTime);
    res.crossFraction =
        res.commands == 0 ? 0.0
                          : static_cast<double>(res.crossDevice) /
                                static_cast<double>(res.commands);
    return res;
}

} // namespace beacongnn::platforms
