#include "platforms/algo_runner.h"

#include <algorithm>

namespace beacongnn::platforms {

AlgoRunResult
runVertexProgram(const PlatformConfig &platform, const RunConfig &run,
                 const WorkloadBundle &bundle, const AlgoRunConfig &algo,
                 sim::MetricRegistry *metrics)
{
    AlgoRunResult res;
    res.platform = platform.name;
    res.workload = bundle.name;

    std::unique_ptr<gnn::VertexProgram> program =
        gnn::makeVertexProgram(algo.program);
    res.algo = program->name();

    // Vertex state retrieval = a zero-hop model over the bundle's
    // layout: every frontier vertex costs one in-storage command that
    // returns its co-located feature section (the per-vertex state),
    // with no sampling fan-out.
    RunConfig rc = run;
    gnn::ModelSpec retrieval = bundle.model;
    retrieval.kind = gnn::ModelKind::GCN;
    retrieval.hops = 0;
    retrieval.fanouts.clear();
    rc.model = retrieval;

    PlatformSession session(platform, rc, bundle);
    const std::uint32_t chunk = std::max(1u, rc.batchSize);

    program->init(bundle.graph);
    bool converged = bundle.graph.numNodes() == 0 ||
                     program->frontier().empty();
    std::uint32_t iters = 0;
    while (!converged && iters < algo.program.maxIters) {
        // One superstep: stream the frontier's state from flash in
        // batch-size chunks on the serial prep pipeline...
        const std::vector<graph::NodeId> &frontier = program->frontier();
        res.frontierNodes += frontier.size();
        for (std::size_t at = 0; at < frontier.size(); at += chunk) {
            const std::size_t n =
                std::min<std::size_t>(chunk, frontier.size() - at);
            session.runBatch(session.prepFree(),
                             std::span<const graph::NodeId>(
                                 frontier.data() + at, n));
        }
        // ...then fold it host-side and test convergence.
        converged = program->step(bundle.graph);
        ++iters;
    }
    res.converged = converged;
    res.iterations = iters;
    for (double v : program->values())
        res.checksum += v;

    RunResult rr = session.finish();
    res.ok = rr.ok;
    res.devices = rr.devices;
    res.totalTime = rr.totalTime;
    res.throughput = rr.totalTime == 0
                         ? 0.0
                         : static_cast<double>(res.frontierNodes) /
                               sim::toSeconds(rr.totalTime);

    if (metrics) {
        metrics->merge(session.metrics());
        metrics->counter("model.algo.iterations").add(res.iterations);
        metrics->counter("model.algo.frontier_nodes")
            .add(res.frontierNodes);
        metrics->gauge("model.algo.converged")
            .set(res.converged ? 1.0 : 0.0);
        metrics->gauge("model.algo.checksum").set(res.checksum);
    }
    return res;
}

} // namespace beacongnn::platforms
