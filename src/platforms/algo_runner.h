/**
 * @file
 * Iterate-until-convergence driver for vertex programs: replaces the
 * fixed-K-hop GNN loop with supersteps. Each superstep turns the
 * program's frontier into feature-retrieval mini-batches (a hops = 0
 * model spec — one in-storage command per frontier vertex, streamed
 * or barriered exactly like GNN feature fetches on the selected
 * platform), then folds the state host-side and asks the program
 * whether it converged. Timing comes entirely from the same platform
 * session the GNN models use, so CC vs BG-2 comparisons carry over
 * to classical graph algorithms.
 */

#ifndef BEACONGNN_PLATFORMS_ALGO_RUNNER_H
#define BEACONGNN_PLATFORMS_ALGO_RUNNER_H

#include "gnn/vertex_program.h"
#include "platforms/runner.h"

namespace beacongnn::platforms {

/** Parameters of one vertex-program run. */
struct AlgoRunConfig
{
    gnn::VertexProgramConfig program;
};

/** Everything measured in one vertex-program run. */
struct AlgoRunResult
{
    std::string platform;
    std::string workload;
    std::string algo;
    bool ok = true;
    bool converged = false;
    std::uint32_t iterations = 0;   ///< Supersteps executed.
    std::uint64_t frontierNodes = 0; ///< Vertex states read from flash.
    sim::Tick totalTime = 0;        ///< Last superstep drain.
    double throughput = 0;          ///< Frontier vertices per second.
    double checksum = 0;            ///< Sum of per-vertex values.
    unsigned devices = 1;
};

/**
 * Run @p algo on one platform until convergence (or the superstep
 * cap). Batch size / topology / cache come from @p run; the model
 * override is replaced by the driver's hops = 0 retrieval spec.
 * @param metrics When non-null, receives the session registry plus
 *                `model.algo.*` instruments.
 */
AlgoRunResult runVertexProgram(const PlatformConfig &platform,
                               const RunConfig &run,
                               const WorkloadBundle &bundle,
                               const AlgoRunConfig &algo,
                               sim::MetricRegistry *metrics = nullptr);

} // namespace beacongnn::platforms

#endif // BEACONGNN_PLATFORMS_ALGO_RUNNER_H
