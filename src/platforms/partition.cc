#include "platforms/partition.h"

#include <algorithm>
#include <cctype>

#include "sim/log.h"
#include "sim/rng.h"

namespace beacongnn::platforms {

const char *
partitionPolicyName(PartitionPolicy policy)
{
    switch (policy) {
    case PartitionPolicy::Hash: return "hash";
    case PartitionPolicy::Range: return "range";
    case PartitionPolicy::Balanced: return "balanced";
    }
    return "?";
}

std::optional<PartitionPolicy>
findPartitionPolicy(const std::string &name)
{
    std::string lower;
    for (char c : name)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (lower == "hash")
        return PartitionPolicy::Hash;
    if (lower == "range")
        return PartitionPolicy::Range;
    if (lower == "balanced")
        return PartitionPolicy::Balanced;
    return std::nullopt;
}

std::string
partitionPolicyList()
{
    return "hash, range, balanced";
}

Partition
Partition::build(const graph::Graph &g, PartitionPolicy policy,
                 unsigned devices)
{
    if (devices == 0)
        sim::fatal("Partition::build: zero devices");
    Partition p;
    p._devices = devices;
    p._policy = policy;
    p.nodeCount.assign(devices, 0);
    p.degreeSum.assign(devices, 0);
    const graph::NodeId n = g.numNodes();
    if (devices == 1) {
        p.nodeCount[0] = n;
        for (graph::NodeId v = 0; v < n; ++v)
            p.degreeSum[0] += g.degree(v);
        return p;
    }

    p.owners.resize(n);
    switch (policy) {
    case PartitionPolicy::Hash:
        // The paper's §VIII scheme (and the historical array
        // behaviour): a keyed hash spreads nodes uniformly, so the
        // cross-device fraction of a random child approaches
        // (devices-1)/devices.
        for (graph::NodeId v = 0; v < n; ++v)
            p.owners[v] =
                static_cast<std::uint32_t>(sim::splitmix64(v) % devices);
        break;
    case PartitionPolicy::Range:
        // Contiguous equal node-id ranges: preserves locality of id-
        // clustered communities at the cost of degree imbalance on
        // skewed graphs.
        for (graph::NodeId v = 0; v < n; ++v)
            p.owners[v] = static_cast<std::uint32_t>(
                (std::uint64_t{v} * devices) / std::max<graph::NodeId>(1, n));
        break;
    case PartitionPolicy::Balanced: {
        // Degree-aware LPT greedy: place nodes in decreasing degree
        // order on the device with the least total degree. Guarantees
        // max load <= avg load + max node degree, so heavy-tailed
        // graphs cannot starve a device. Ties break on node id and
        // device index for determinism.
        std::vector<graph::NodeId> order(n);
        for (graph::NodeId v = 0; v < n; ++v)
            order[v] = v;
        std::stable_sort(order.begin(), order.end(),
                         [&](graph::NodeId a, graph::NodeId b) {
                             return g.degree(a) > g.degree(b);
                         });
        std::vector<std::uint64_t> load(devices, 0);
        for (graph::NodeId v : order) {
            unsigned best = 0;
            for (unsigned d = 1; d < devices; ++d)
                if (load[d] < load[best])
                    best = d;
            p.owners[v] = best;
            // Count a degree-0 node as one load unit so isolated
            // nodes still spread instead of piling on device 0.
            load[best] += std::max<std::uint64_t>(1, g.degree(v));
        }
        break;
    }
    }

    for (graph::NodeId v = 0; v < n; ++v) {
        ++p.nodeCount[p.owners[v]];
        p.degreeSum[p.owners[v]] += g.degree(v);
    }
    return p;
}

Placement
Placement::build(const graph::Graph &g, PartitionPolicy policy,
                 unsigned devices, unsigned replication)
{
    Placement pl;
    pl.primary = Partition::build(g, policy, devices);
    pl._replication =
        std::max(1u, std::min(replication, devices));
    return pl;
}

std::vector<unsigned>
Placement::replicasOf(graph::NodeId node) const
{
    std::vector<unsigned> reps(_replication);
    const unsigned prim = primary.ownerOf(node);
    const unsigned ndev = devices();
    for (unsigned k = 0; k < _replication; ++k)
        reps[k] = (prim + k) % ndev;
    return reps;
}

std::uint64_t
Partition::degreeSpread() const
{
    std::uint64_t lo = degreeSum[0], hi = degreeSum[0];
    for (std::uint64_t s : degreeSum) {
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    return hi - lo;
}

} // namespace beacongnn::platforms
