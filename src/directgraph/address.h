/**
 * @file
 * DirectGraph physical addressing (§IV-A).
 *
 * Each neighbour index maps to a 4-byte physical address: 28 bits of
 * flash page index plus 4 bits of in-page section index (1 TB device
 * with 4 KB pages: log2(1TB/4KB) = 28). Larger pages leave more bits
 * for section indexing; we keep the 4-bit split of the paper's
 * reference configuration, capping sections per page at 16.
 */

#ifndef BEACONGNN_DIRECTGRAPH_ADDRESS_H
#define BEACONGNN_DIRECTGRAPH_ADDRESS_H

#include <cstdint>

#include "flash/address.h"

namespace beacongnn::dg {

/** Max sections addressable within one page (4-bit index). */
inline constexpr unsigned kMaxSectionsPerPage = 16;

/** Packed 4-byte DirectGraph address: page (28 b) | section (4 b). */
struct DgAddress
{
    std::uint32_t raw = 0;

    DgAddress() = default;
    explicit constexpr DgAddress(std::uint32_t raw_bits) : raw(raw_bits) {}

    constexpr
    DgAddress(flash::Ppa page, unsigned section)
        : raw((page << 4) | (section & 0xf))
    {
    }

    constexpr flash::Ppa page() const { return raw >> 4; }
    constexpr unsigned section() const { return raw & 0xf; }

    constexpr bool operator==(const DgAddress &o) const
    {
        return raw == o.raw;
    }
    constexpr bool operator!=(const DgAddress &o) const
    {
        return raw != o.raw;
    }
};

} // namespace beacongnn::dg

#endif // BEACONGNN_DIRECTGRAPH_ADDRESS_H
