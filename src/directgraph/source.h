/**
 * @file
 * Section sources: how a sampler obtains the decoded content of a
 * (page, section) address.
 *
 * Two interchangeable implementations back the same sampler logic:
 *  - PageByteSource parses real flash page bytes (what the die-level
 *    sampler hardware does); used by functional tests and examples.
 *  - LayoutSource answers from builder metadata without materializing
 *    page bytes; used for large timing runs.
 * The test suite checks that both return identical SectionData for
 * every address of a materialized graph.
 */

#ifndef BEACONGNN_DIRECTGRAPH_SOURCE_H
#define BEACONGNN_DIRECTGRAPH_SOURCE_H

#include <optional>

#include "directgraph/builder.h"
#include "directgraph/codec.h"
#include "flash/page_store.h"

namespace beacongnn::dg {

/** Abstract resolver from DgAddress to decoded section content. */
class SectionSource
{
  public:
    virtual ~SectionSource() = default;

    /**
     * Decode the section at @p addr.
     * @return nullopt if the address does not name a valid section —
     *         the on-die check of §VI-E treats that as an abort.
     */
    virtual std::optional<SectionData> fetch(DgAddress addr) const = 0;
};

/** Section source over real page bytes in the flash page store. */
class PageByteSource : public SectionSource
{
  public:
    PageByteSource(const flash::PageStore &store_,
                   std::uint16_t feature_dim)
        : store(store_), featureDim(feature_dim)
    {
    }

    std::optional<SectionData>
    fetch(DgAddress addr) const override
    {
        auto page = store.read(addr.page());
        if (page.empty())
            return std::nullopt;
        return findSection(page, addr.section(), featureDim);
    }

  private:
    const flash::PageStore &store;
    std::uint16_t featureDim;
};

/** Section source over builder metadata (no page bytes needed). */
class LayoutSource : public SectionSource
{
  public:
    LayoutSource(const DirectGraphLayout &layout_,
                 const graph::Graph &graph_)
        : layout(layout_), g(graph_)
    {
    }

    std::optional<SectionData>
    fetch(DgAddress addr) const override
    {
        const SectionPlacement *sp = layout.find(addr);
        if (!sp)
            return std::nullopt;
        const NodeLayout &nl = layout.nodes[sp->node];
        SectionData s;
        s.type = sp->type;
        s.node = sp->node;
        if (sp->type == SectionType::Primary) {
            s.totalNeighbors = nl.degree;
            s.hasFeature = layout.featureDim > 0;
            s.inPage = nl.inPage;
            s.secondaries = nl.secondaries;
            s.neighborAddrs.reserve(nl.inPage);
            for (std::uint32_t i = 0; i < nl.inPage; ++i)
                s.neighborAddrs.push_back(
                    layout.nodes[g.neighbor(sp->node, i)].primary);
        } else {
            std::uint32_t start = nl.inPage;
            for (std::uint32_t j = 0; j < sp->secondaryIdx; ++j)
                start += nl.secondaries[j].count;
            std::uint32_t count = nl.secondaries[sp->secondaryIdx].count;
            s.totalNeighbors = count;
            s.hasFeature = false;
            s.neighborAddrs.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i)
                s.neighborAddrs.push_back(
                    layout.nodes[g.neighbor(sp->node, start + i)].primary);
        }
        return s;
    }

  private:
    const DirectGraphLayout &layout;
    const graph::Graph &g;
};

} // namespace beacongnn::dg

#endif // BEACONGNN_DIRECTGRAPH_SOURCE_H
