/**
 * @file
 * On-flash byte format of DirectGraph sections (§IV-A, Fig. 8).
 *
 * Section binary layout (little endian):
 *
 *   offset  size  field
 *   0       1     type (1 = primary, 2 = secondary, 0 = end of page)
 *   1       1     flags (bit 0: feature vector present)
 *   2       2     sectionBytes (total unpadded size of this section)
 *   4       4     nodeId
 *   8       4     totalNeighbors (primary: full degree;
 *                                  secondary: count in this section)
 *   12      2     secondaryCount (primary only)
 *   14      2     reserved
 *   -- 16-byte header --
 *   primary body:
 *     secondaryCount x { u32 DgAddress, u32 count }   (8 B each)
 *     featureBytes of FP16 feature data (if flag set)
 *     inPage x u32 neighbour primary DgAddress        (4 B each)
 *   secondary body:
 *     totalNeighbors x u32 neighbour primary DgAddress
 *
 * Sections start at 64-byte aligned offsets within a page (ONFI
 * column-address granularity); at most 16 sections per page (4-bit
 * section index).
 */

#ifndef BEACONGNN_DIRECTGRAPH_CODEC_H
#define BEACONGNN_DIRECTGRAPH_CODEC_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "directgraph/layout.h"

namespace beacongnn::dg {

/** Format constants. */
inline constexpr std::uint32_t kHeaderBytes = 16;
inline constexpr std::uint32_t kSecondaryRefBytes = 8;
inline constexpr std::uint32_t kAddrBytes = 4;
inline constexpr std::uint32_t kSectionAlign = 64;

/** Round @p bytes up to the section alignment. */
constexpr std::uint32_t
alignSection(std::uint32_t bytes)
{
    return (bytes + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

/** Unpadded size of a primary section. */
constexpr std::uint32_t
primarySectionBytes(std::uint32_t secondary_count, std::uint32_t feat_bytes,
                    std::uint32_t in_page_neighbors)
{
    return kHeaderBytes + secondary_count * kSecondaryRefBytes + feat_bytes +
           in_page_neighbors * kAddrBytes;
}

/** Unpadded size of a secondary section holding @p count neighbours. */
constexpr std::uint32_t
secondarySectionBytes(std::uint32_t count)
{
    return kHeaderBytes + count * kAddrBytes;
}

/** Fully decoded section (both byte and layout sources produce this). */
struct SectionData
{
    SectionType type = SectionType::Invalid;
    graph::NodeId node = 0;
    std::uint32_t totalNeighbors = 0; ///< See header doc.
    bool hasFeature = false;
    std::uint32_t inPage = 0;         ///< Primary only.
    std::vector<SecondaryRef> secondaries; ///< Primary only.
    /** Stored neighbour addresses (in-page portion for primaries). */
    std::vector<DgAddress> neighborAddrs;
};

/**
 * Encode a primary section into @p out (must hold the full size).
 *
 * @param node        Owning node.
 * @param degree      Full neighbour count of the node.
 * @param secondaries Secondary refs (addr + count).
 * @param feature     FP16 feature bytes (may be empty).
 * @param in_page     Addresses of the neighbours stored here.
 * @return Bytes written.
 */
std::uint32_t encodePrimary(std::span<std::uint8_t> out,
                            graph::NodeId node, std::uint32_t degree,
                            std::span<const SecondaryRef> secondaries,
                            std::span<const std::uint8_t> feature,
                            std::span<const DgAddress> in_page);

/** Encode a secondary section into @p out. @return Bytes written. */
std::uint32_t encodeSecondary(std::span<std::uint8_t> out,
                              graph::NodeId node,
                              std::span<const DgAddress> neighbors);

/**
 * Decode the section at byte @p offset of a page image.
 *
 * @param page         Full page bytes.
 * @param offset       Aligned section start.
 * @param feature_dim  Feature elements (from the GNN config registers;
 *                     needed to split a primary body into feature and
 *                     neighbour regions).
 * @return Decoded section, or nullopt if the bytes are not a valid
 *         section (type tag 0/unknown, size out of range) — the
 *         condition on which an on-die sampler aborts (§VI-E).
 */
std::optional<SectionData> decodeSection(
    std::span<const std::uint8_t> page, std::uint32_t offset,
    std::uint16_t feature_dim);

/**
 * Walk a page image and decode the section with index @p section_idx
 * (sections are stored back-to-back at aligned offsets — this is the
 * operation the die sampler's section iterator performs).
 */
std::optional<SectionData> findSection(std::span<const std::uint8_t> page,
                                       unsigned section_idx,
                                       std::uint16_t feature_dim);

/** Decode every section in a page image (scrubbing, verification). */
std::vector<SectionData> decodePage(std::span<const std::uint8_t> page,
                                    std::uint16_t feature_dim);

} // namespace beacongnn::dg

#endif // BEACONGNN_DIRECTGRAPH_CODEC_H
