/**
 * @file
 * Security and integrity verification for DirectGraph (§VI-E).
 *
 * Three checkpoints mirror the paper:
 *  1. Flush time: every destination PPA and every section-embedded
 *     address must lie inside the blocks reserved for this
 *     DirectGraph (prevents customized commands from tampering with
 *     regular storage data).
 *  2. Mini-batch start: the primary-section addresses of the received
 *     target nodes undergo the same range check.
 *  3. Runtime: on-die samplers validate section headers; a missing or
 *     mistyped section aborts the command and returns control to the
 *     firmware (modelled by SectionSource::fetch returning nullopt and
 *     the GnnSampleResult::ok flag).
 */

#ifndef BEACONGNN_DIRECTGRAPH_VERIFY_H
#define BEACONGNN_DIRECTGRAPH_VERIFY_H

#include <span>
#include <string>
#include <unordered_set>

#include "directgraph/codec.h"
#include "directgraph/layout.h"

namespace beacongnn::dg {

/** Range checker over the set of blocks reserved for a DirectGraph. */
class AddressVerifier
{
  public:
    AddressVerifier(std::span<const flash::BlockId> blocks,
                    unsigned pages_per_block)
        : pagesPerBlock(pages_per_block)
    {
        for (auto b : blocks)
            allowed.insert(b);
    }

    /** True if @p ppa lies inside a reserved block. */
    bool
    pageAllowed(flash::Ppa ppa) const
    {
        return allowed.count(ppa / pagesPerBlock) != 0;
    }

    /** True if a DirectGraph address targets a reserved block. */
    bool addressAllowed(DgAddress a) const { return pageAllowed(a.page()); }

    /**
     * Flush-time check: the destination page and every address
     * embedded in the page image must stay inside reserved blocks.
     *
     * @param ppa         Destination physical page.
     * @param image       Page content about to be programmed.
     * @param feature_dim Feature elements (to decode primary bodies).
     * @return true if the page is safe to program.
     */
    bool
    pageImageSafe(flash::Ppa ppa, std::span<const std::uint8_t> image,
                  std::uint16_t feature_dim) const
    {
        if (!pageAllowed(ppa))
            return false;
        for (const auto &sec : decodePage(image, feature_dim)) {
            for (const auto &r : sec.secondaries)
                if (!addressAllowed(r.addr))
                    return false;
            for (const auto &a : sec.neighborAddrs)
                if (!addressAllowed(a))
                    return false;
        }
        return true;
    }

  private:
    std::unordered_set<flash::BlockId> allowed;
    unsigned pagesPerBlock;
};

/**
 * Whole-layout invariant check used by tests: every node resolvable,
 * every embedded address inside the reserved blocks, every section
 * within page bounds and below the per-page section cap.
 *
 * @return Empty string when consistent, else a description of the
 *         first violation.
 */
std::string checkLayoutInvariants(const DirectGraphLayout &layout);

} // namespace beacongnn::dg

#endif // BEACONGNN_DIRECTGRAPH_VERIFY_H
