#include "directgraph/builder.h"

#include <algorithm>
#include <limits>

#include "sim/log.h"
#include "sim/ordered.h"

namespace beacongnn::dg {

namespace {

/** Pre-computed section plan for one node (Algorithm 1, step 1). */
struct NodePlan
{
    std::uint32_t inPage = 0;
    std::vector<std::uint32_t> secondaryCounts;
};

/**
 * Decide how a node's neighbours split between its primary section
 * and secondary sections. Nodes whose full record fits in one page
 * keep everything in the primary; otherwise the primary fills an
 * entire page and the remainder spills into secondaries.
 */
NodePlan
planNode(std::uint32_t degree, std::uint32_t feat_bytes,
         std::uint32_t page_size)
{
    NodePlan plan;
    if (primarySectionBytes(0, feat_bytes, degree) <= page_size) {
        plan.inPage = degree;
        return plan;
    }
    const std::uint32_t sec_cap = (page_size - kHeaderBytes) / kAddrBytes;
    // Fixed-point iteration: more secondaries shrink the primary's
    // in-page capacity (each ref costs 8 B), which may require yet
    // another secondary. Converges in a couple of steps.
    std::uint32_t s = 1;
    std::uint32_t in_page = 0;
    for (;;) {
        std::uint32_t meta = kHeaderBytes + s * kSecondaryRefBytes +
                             feat_bytes;
        in_page = meta >= page_size ? 0 : (page_size - meta) / kAddrBytes;
        in_page = std::min(in_page, degree);
        std::uint32_t spill = degree - in_page;
        std::uint32_t need =
            (spill + sec_cap - 1) / sec_cap;
        if (need <= s)
            break;
        s = need;
    }
    plan.inPage = in_page;
    std::uint32_t spill = degree - in_page;
    while (spill > 0) {
        std::uint32_t c = std::min(spill, sec_cap);
        plan.secondaryCounts.push_back(c);
        spill -= c;
    }
    return plan;
}

/** An open page being filled by the best-fit packer. */
struct OpenPage
{
    flash::Ppa ppa;
    std::uint32_t used = 0;     ///< Aligned high-water mark.
    std::uint32_t sections = 0;
};

/**
 * Best-fit section packer over a bounded pool of open pages, drawing
 * fresh pages sequentially from the reserved block list.
 */
class Packer
{
  public:
    Packer(DirectGraphLayout &layout_,
           std::span<const flash::BlockId> blocks_,
           const flash::FlashConfig &cfg_, const BuilderOptions &opts,
           std::uint64_t &pages_used, std::uint64_t &blocks_touched)
        : layout(layout_), blocks(blocks_), cfg(cfg_),
          poolLimit(std::max(1u, opts.openPagePool)),
          pagesUsed(pages_used), blocksTouched(blocks_touched)
    {
        // Pages stripe round-robin across a window of reserved blocks
        // so even a scaled-down dataset exercises every channel and
        // die, the way the paper's 100s-of-GB datasets do naturally.
        stripe = opts.stripeWidth != 0
                     ? opts.stripeWidth
                     : std::max<std::uint64_t>(1, cfg.totalDies());
        stripe = std::min<std::uint64_t>(stripe, blocks.size());
        stripe = std::max<std::uint64_t>(1, stripe);
    }

    /**
     * Place a section of @p size unpadded bytes.
     * @return Its DgAddress; records the placement in the layout.
     */
    DgAddress
    place(graph::NodeId node, SectionType type, std::uint32_t size,
          std::uint32_t secondary_idx)
    {
        if (size > cfg.pageSize)
            sim::panic("DirectGraph section larger than a flash page");
        // Best fit: the open page with the least leftover that still
        // accommodates the section.
        int best = -1;
        std::uint32_t best_left = std::numeric_limits<std::uint32_t>::max();
        for (std::size_t i = 0; i < pool.size(); ++i) {
            const auto &p = pool[i];
            if (p.sections >= kMaxSectionsPerPage)
                continue;
            std::uint32_t start = alignSection(p.used);
            if (start + size > cfg.pageSize)
                continue;
            std::uint32_t left = cfg.pageSize - (start + size);
            if (left < best_left) {
                best_left = left;
                best = static_cast<int>(i);
            }
        }
        if (best < 0) {
            if (pool.size() >= poolLimit) {
                // Retire the fullest page to bound the pool.
                std::size_t fullest = 0;
                for (std::size_t i = 1; i < pool.size(); ++i)
                    if (pool[i].used > pool[fullest].used)
                        fullest = i;
                pool.erase(pool.begin() +
                           static_cast<std::ptrdiff_t>(fullest));
            }
            pool.push_back(OpenPage{nextPage(), 0, 0});
            best = static_cast<int>(pool.size() - 1);
        }
        OpenPage &p = pool[static_cast<std::size_t>(best)];
        std::uint32_t offset = alignSection(p.used);
        DgAddress addr(p.ppa, p.sections);

        SectionPlacement sp;
        sp.node = node;
        sp.type = type;
        sp.byteOffset = offset;
        sp.byteSize = size;
        sp.secondaryIdx = secondary_idx;
        layout.pages[p.ppa].sections.push_back(sp);

        p.used = offset + size;
        ++p.sections;
        layout.stats.usedBytes += size;
        return addr;
    }

  private:
    flash::Ppa
    nextPage()
    {
        std::uint64_t idx = pagesUsed++;
        std::uint64_t per_group = stripe * cfg.pagesPerBlock;
        std::uint64_t group = idx / per_group;
        std::uint64_t within = idx % per_group;
        std::uint64_t block_slot = group * stripe + within % stripe;
        std::uint64_t page_in_block = within / stripe;
        if (block_slot >= blocks.size())
            sim::fatal("DirectGraph build: reserved block list exhausted");
        flash::BlockId b = blocks[block_slot];
        blocksTouched = std::max(blocksTouched, block_slot + 1);
        return b * cfg.pagesPerBlock +
               static_cast<flash::Ppa>(page_in_block);
    }

    DirectGraphLayout &layout;
    std::span<const flash::BlockId> blocks;
    const flash::FlashConfig &cfg;
    unsigned poolLimit;
    std::uint64_t &pagesUsed;
    std::uint64_t &blocksTouched;
    std::uint64_t stripe = 1;
    std::vector<OpenPage> pool;
};

} // namespace

DirectGraphLayout
buildLayout(const graph::Graph &g, const graph::FeatureTable &features,
            const flash::FlashConfig &cfg,
            std::span<const flash::BlockId> blocks,
            const BuilderOptions &opts)
{
    DirectGraphLayout layout;
    layout.featureDim = features.dim();
    layout.pageSize = cfg.pageSize;
    const std::uint32_t feat_bytes = features.bytesPerNode();

    if (kHeaderBytes + feat_bytes > cfg.pageSize)
        sim::fatal("feature vector does not fit in a flash page");

    const graph::NodeId n = g.numNodes();
    layout.nodes.resize(n);

    // ---- Step 1: plan sections per node -------------------------
    std::vector<NodePlan> plans(n);
    for (graph::NodeId v = 0; v < n; ++v) {
        plans[v] = planNode(g.degree(v), feat_bytes, cfg.pageSize);
        layout.nodes[v].degree = g.degree(v);
        layout.nodes[v].inPage = plans[v].inPage;
    }

    // ---- Step 1b: map sections to physical pages ----------------
    // Primary and secondary pages are packed as separate streams
    // (the two page types of Fig. 8) drawn from one page sequence.
    std::uint64_t pages_used = 0;
    std::uint64_t blocks_touched = 0;
    Packer primary_packer(layout, blocks, cfg, opts, pages_used,
                          blocks_touched);
    for (graph::NodeId v = 0; v < n; ++v) {
        const auto &plan = plans[v];
        std::uint32_t size = primarySectionBytes(
            static_cast<std::uint32_t>(plan.secondaryCounts.size()),
            feat_bytes, plan.inPage);
        layout.nodes[v].primary =
            primary_packer.place(v, SectionType::Primary, size, 0);
    }
    layout.stats.primaryPages = pages_used;

    Packer secondary_packer(layout, blocks, cfg, opts, pages_used,
                            blocks_touched);
    for (graph::NodeId v = 0; v < n; ++v) {
        const auto &plan = plans[v];
        if (plan.secondaryCounts.empty())
            continue;
        ++layout.stats.nodesWithSecondaries;
        for (std::uint32_t j = 0; j < plan.secondaryCounts.size(); ++j) {
            std::uint32_t c = plan.secondaryCounts[j];
            DgAddress a = secondary_packer.place(
                v, SectionType::Secondary, secondarySectionBytes(c), j);
            layout.nodes[v].secondaries.push_back({a, c});
            ++layout.stats.secondarySections;
        }
    }
    layout.stats.secondaryPages = pages_used - layout.stats.primaryPages;

    // ---- Accounting (Table IV) -----------------------------------
    layout.blocks.assign(
        blocks.begin(),
        blocks.begin() + static_cast<std::ptrdiff_t>(blocks_touched));
    std::uint64_t blocks_used = blocks_touched;
    layout.stats.flashBytes = pages_used * cfg.pageSize;
    layout.stats.blockBytes = blocks_used *
                              std::uint64_t{cfg.pagesPerBlock} *
                              cfg.pageSize;
    layout.stats.rawBytes =
        g.numEdges() * 4 + std::uint64_t{n} * feat_bytes;
    return layout;
}

void
encodePageImage(const DirectGraphLayout &layout, const graph::Graph &g,
                const graph::FeatureTable &features, flash::Ppa ppa,
                std::span<std::uint8_t> buf)
{
    std::fill(buf.begin(), buf.end(), std::uint8_t{0});
    auto it = layout.pages.find(ppa);
    if (it == layout.pages.end())
        return;
    std::vector<std::uint8_t> feat(features.bytesPerNode());
    for (const auto &sp : it->second.sections) {
        const NodeLayout &nl = layout.nodes[sp.node];
        std::span<std::uint8_t> out =
            buf.subspan(sp.byteOffset, sp.byteSize);
        if (sp.type == SectionType::Primary) {
            features.fill(sp.node, feat);
            std::vector<DgAddress> in_page;
            in_page.reserve(nl.inPage);
            for (std::uint32_t i = 0; i < nl.inPage; ++i)
                in_page.push_back(
                    layout.nodes[g.neighbor(sp.node, i)].primary);
            encodePrimary(out, sp.node, nl.degree, nl.secondaries, feat,
                          in_page);
        } else {
            // Neighbour range covered by this secondary: after the
            // in-page portion and all earlier secondaries.
            std::uint32_t start = nl.inPage;
            for (std::uint32_t j = 0; j < sp.secondaryIdx; ++j)
                start += nl.secondaries[j].count;
            std::uint32_t count = nl.secondaries[sp.secondaryIdx].count;
            std::vector<DgAddress> addrs;
            addrs.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i)
                addrs.push_back(
                    layout.nodes[g.neighbor(sp.node, start + i)].primary);
            encodeSecondary(out, sp.node, addrs);
        }
    }
}

void
materialize(const DirectGraphLayout &layout, const graph::Graph &g,
            const graph::FeatureTable &features, flash::PageStore &store)
{
    std::vector<std::uint8_t> buf(layout.pageSize);
    // Programming order is observable through PageStore program
    // counters; walk the pages in sorted PPA order (BGN002).
    for (flash::Ppa ppa : sim::sortedKeys(layout.pages)) {
        encodePageImage(layout, g, features, ppa, buf);
        if (!store.program(ppa, buf))
            sim::panic("materialize: page already programmed");
    }
}

} // namespace beacongnn::dg
