#include "directgraph/verify.h"

#include <string>

#include "sim/ordered.h"

namespace beacongnn::dg {

std::string
checkLayoutInvariants(const DirectGraphLayout &layout)
{
    for (std::size_t v = 0; v < layout.nodes.size(); ++v) {
        const NodeLayout &nl = layout.nodes[v];
        const SectionPlacement *p = layout.find(nl.primary);
        if (!p)
            return "node " + std::to_string(v) +
                   ": primary address unresolvable";
        if (p->type != SectionType::Primary)
            return "node " + std::to_string(v) +
                   ": primary address resolves to non-primary section";
        if (p->node != v)
            return "node " + std::to_string(v) +
                   ": primary section owned by node " +
                   std::to_string(p->node);
        std::uint32_t covered = nl.inPage;
        for (const auto &r : nl.secondaries) {
            const SectionPlacement *s = layout.find(r.addr);
            if (!s || s->type != SectionType::Secondary || s->node != v)
                return "node " + std::to_string(v) +
                       ": bad secondary reference";
            covered += r.count;
        }
        if (covered != nl.degree)
            return "node " + std::to_string(v) +
                   ": sections cover " + std::to_string(covered) +
                   " of " + std::to_string(nl.degree) + " neighbours";
    }

    // Sorted walk so the *first* violation reported is the same on
    // every build — a hash-order walk made the error message (and
    // thus test expectations) nondeterministic on corrupt layouts.
    for (flash::Ppa ppa : sim::sortedKeys(layout.pages)) {
        const PageDirectory &dir = layout.pages.at(ppa);
        if (dir.sections.size() > kMaxSectionsPerPage)
            return "page " + std::to_string(ppa) +
                   ": too many sections";
        std::uint32_t prev_end = 0;
        for (const auto &sp : dir.sections) {
            if (sp.byteOffset % kSectionAlign != 0)
                return "page " + std::to_string(ppa) +
                       ": unaligned section";
            if (sp.byteOffset < prev_end)
                return "page " + std::to_string(ppa) +
                       ": overlapping sections";
            if (sp.byteOffset + sp.byteSize > layout.pageSize)
                return "page " + std::to_string(ppa) +
                       ": section exceeds page";
            prev_end = sp.byteOffset + sp.byteSize;
        }
    }
    return "";
}

} // namespace beacongnn::dg
