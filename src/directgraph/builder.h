/**
 * @file
 * DirectGraph construction (Algorithm 1, §VI-B).
 *
 * Step 1 (metadata collection): for every node, compute the number and
 * sizes of its primary and secondary sections from the neighbour-list
 * length and feature dimension alone, and map sections onto physical
 * pages drawn from the firmware-reserved block list.
 *
 * Step 2 (serialization): encode each page in a host buffer — headers,
 * secondary refs, feature vector, neighbour addresses — and flush it
 * to its PPA (materialize()).
 *
 * Placement uses a bounded best-fit open-page pool, implementing the
 * paper's "linked array" compaction of small primary sections into
 * shared pages.
 */

#ifndef BEACONGNN_DIRECTGRAPH_BUILDER_H
#define BEACONGNN_DIRECTGRAPH_BUILDER_H

#include <span>

#include "directgraph/codec.h"
#include "directgraph/layout.h"
#include "flash/config.h"
#include "flash/page_store.h"
#include "graph/graph.h"

namespace beacongnn::dg {

/** Tunables of the construction algorithm. */
struct BuilderOptions
{
    /** Open pages kept for best-fit packing before force-closing. */
    unsigned openPagePool = 128;
    /** Blocks the page allocator stripes across (0 = one block per
     *  die, the default; 1 = sequential fill, the ablation point). */
    unsigned stripeWidth = 0;
};

/**
 * Compute the full DirectGraph layout (Algorithm 1, step 1).
 *
 * @param g        Raw graph structure.
 * @param features Node feature table (only its dimension matters here).
 * @param cfg      Flash geometry (page size, pages per block).
 * @param blocks   Reserved physical blocks granted by the firmware
 *                 (§VI-A); consumed in order. fatal() if exhausted.
 */
DirectGraphLayout buildLayout(const graph::Graph &g,
                              const graph::FeatureTable &features,
                              const flash::FlashConfig &cfg,
                              std::span<const flash::BlockId> blocks,
                              const BuilderOptions &opts = {});

/**
 * Serialize one page of the layout into @p buf (Algorithm 1, step 2).
 * @p buf must hold pageSize bytes and is fully overwritten.
 */
void encodePageImage(const DirectGraphLayout &layout, const graph::Graph &g,
                     const graph::FeatureTable &features, flash::Ppa ppa,
                     std::span<std::uint8_t> buf);

/**
 * Materialize every page of @p layout into the flash page store
 * (functional-mode flush; the timing of the flush path is modelled by
 * the firmware's flushDirectGraph()).
 */
void materialize(const DirectGraphLayout &layout, const graph::Graph &g,
                 const graph::FeatureTable &features,
                 flash::PageStore &store);

} // namespace beacongnn::dg

#endif // BEACONGNN_DIRECTGRAPH_BUILDER_H
