#include "directgraph/codec.h"

#include <cstring>

namespace beacongnn::dg {

namespace {

void
put16(std::span<std::uint8_t> out, std::uint32_t off, std::uint16_t v)
{
    out[off] = static_cast<std::uint8_t>(v & 0xff);
    out[off + 1] = static_cast<std::uint8_t>(v >> 8);
}

void
put32(std::span<std::uint8_t> out, std::uint32_t off, std::uint32_t v)
{
    out[off] = static_cast<std::uint8_t>(v & 0xff);
    out[off + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
    out[off + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
    out[off + 3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

std::uint16_t
get16(std::span<const std::uint8_t> in, std::uint32_t off)
{
    return static_cast<std::uint16_t>(in[off] | (in[off + 1] << 8));
}

std::uint32_t
get32(std::span<const std::uint8_t> in, std::uint32_t off)
{
    return static_cast<std::uint32_t>(in[off]) |
           (static_cast<std::uint32_t>(in[off + 1]) << 8) |
           (static_cast<std::uint32_t>(in[off + 2]) << 16) |
           (static_cast<std::uint32_t>(in[off + 3]) << 24);
}

} // namespace

std::uint32_t
encodePrimary(std::span<std::uint8_t> out, graph::NodeId node,
              std::uint32_t degree,
              std::span<const SecondaryRef> secondaries,
              std::span<const std::uint8_t> feature,
              std::span<const DgAddress> in_page)
{
    std::uint32_t size = primarySectionBytes(
        static_cast<std::uint32_t>(secondaries.size()),
        static_cast<std::uint32_t>(feature.size()),
        static_cast<std::uint32_t>(in_page.size()));
    out[0] = static_cast<std::uint8_t>(SectionType::Primary);
    out[1] = feature.empty() ? 0 : 1;
    put16(out, 2, static_cast<std::uint16_t>(size));
    put32(out, 4, node);
    put32(out, 8, degree);
    put16(out, 12, static_cast<std::uint16_t>(secondaries.size()));
    put16(out, 14, 0);

    std::uint32_t off = kHeaderBytes;
    for (const auto &s : secondaries) {
        put32(out, off, s.addr.raw);
        put32(out, off + 4, s.count);
        off += kSecondaryRefBytes;
    }
    if (!feature.empty()) {
        std::memcpy(out.data() + off, feature.data(), feature.size());
        off += static_cast<std::uint32_t>(feature.size());
    }
    for (const auto &a : in_page) {
        put32(out, off, a.raw);
        off += kAddrBytes;
    }
    return off;
}

std::uint32_t
encodeSecondary(std::span<std::uint8_t> out, graph::NodeId node,
                std::span<const DgAddress> neighbors)
{
    std::uint32_t size =
        secondarySectionBytes(static_cast<std::uint32_t>(neighbors.size()));
    out[0] = static_cast<std::uint8_t>(SectionType::Secondary);
    out[1] = 0;
    put16(out, 2, static_cast<std::uint16_t>(size));
    put32(out, 4, node);
    put32(out, 8, static_cast<std::uint32_t>(neighbors.size()));
    put16(out, 12, 0);
    put16(out, 14, 0);

    std::uint32_t off = kHeaderBytes;
    for (const auto &a : neighbors) {
        put32(out, off, a.raw);
        off += kAddrBytes;
    }
    return off;
}

std::optional<SectionData>
decodeSection(std::span<const std::uint8_t> page, std::uint32_t offset,
              std::uint16_t feature_dim)
{
    if (offset + kHeaderBytes > page.size())
        return std::nullopt;
    auto type = page[offset];
    if (type != static_cast<std::uint8_t>(SectionType::Primary) &&
        type != static_cast<std::uint8_t>(SectionType::Secondary)) {
        return std::nullopt;
    }
    SectionData s;
    s.type = static_cast<SectionType>(type);
    s.hasFeature = (page[offset + 1] & 1) != 0;
    std::uint32_t size = get16(page, offset + 2);
    if (size < kHeaderBytes || offset + size > page.size())
        return std::nullopt;
    s.node = get32(page, offset + 4);
    s.totalNeighbors = get32(page, offset + 8);
    std::uint32_t sec_count = get16(page, offset + 12);

    std::uint32_t off = offset + kHeaderBytes;
    if (s.type == SectionType::Primary) {
        if (off + sec_count * kSecondaryRefBytes > offset + size)
            return std::nullopt;
        s.secondaries.reserve(sec_count);
        for (std::uint32_t i = 0; i < sec_count; ++i) {
            SecondaryRef r;
            r.addr = DgAddress(get32(page, off));
            r.count = get32(page, off + 4);
            s.secondaries.push_back(r);
            off += kSecondaryRefBytes;
        }
        std::uint32_t feat_bytes =
            s.hasFeature ? std::uint32_t{feature_dim} * 2 : 0;
        if (off + feat_bytes > offset + size)
            return std::nullopt;
        off += feat_bytes; // The feature body is opaque to the decoder.
        std::uint32_t rest = offset + size - off;
        if (rest % kAddrBytes != 0)
            return std::nullopt;
        s.inPage = rest / kAddrBytes;
        s.neighborAddrs.reserve(s.inPage);
        for (std::uint32_t i = 0; i < s.inPage; ++i) {
            s.neighborAddrs.emplace_back(get32(page, off));
            off += kAddrBytes;
        }
    } else {
        std::uint32_t expect =
            kHeaderBytes + s.totalNeighbors * kAddrBytes;
        if (expect != size)
            return std::nullopt;
        s.neighborAddrs.reserve(s.totalNeighbors);
        for (std::uint32_t i = 0; i < s.totalNeighbors; ++i) {
            s.neighborAddrs.emplace_back(get32(page, off));
            off += kAddrBytes;
        }
    }
    return s;
}

std::optional<SectionData>
findSection(std::span<const std::uint8_t> page, unsigned section_idx,
            std::uint16_t feature_dim)
{
    std::uint32_t offset = 0;
    for (unsigned idx = 0; idx <= section_idx; ++idx) {
        if (offset + kHeaderBytes > page.size())
            return std::nullopt;
        auto sec = decodeSection(page, offset, feature_dim);
        if (!sec)
            return std::nullopt;
        if (idx == section_idx)
            return sec;
        std::uint32_t size = get16(page, offset + 2);
        offset += alignSection(size);
    }
    return std::nullopt;
}

std::vector<SectionData>
decodePage(std::span<const std::uint8_t> page, std::uint16_t feature_dim)
{
    std::vector<SectionData> out;
    std::uint32_t offset = 0;
    while (offset + kHeaderBytes <= page.size() &&
           out.size() < kMaxSectionsPerPage) {
        auto sec = decodeSection(page, offset, feature_dim);
        if (!sec)
            break;
        std::uint32_t size = get16(page, offset + 2);
        out.push_back(std::move(*sec));
        offset += alignSection(size);
    }
    return out;
}

} // namespace beacongnn::dg
