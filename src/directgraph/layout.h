/**
 * @file
 * DirectGraph layout structures: the logical description of where
 * every node's primary and secondary sections live on flash, plus the
 * per-page directories needed to resolve (page, section) back to a
 * node. The layout is the builder's output; it can be *materialized*
 * into real page bytes (tests, small graphs) or used directly as a
 * metadata-only section source (large timing runs) — both paths are
 * checked for equivalence in the test suite.
 */

#ifndef BEACONGNN_DIRECTGRAPH_LAYOUT_H
#define BEACONGNN_DIRECTGRAPH_LAYOUT_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "directgraph/address.h"
#include "graph/graph.h"

namespace beacongnn::dg {

/** Section type tag (first header byte on flash). */
enum class SectionType : std::uint8_t
{
    Invalid = 0,   ///< Erased / end-of-page marker.
    Primary = 1,
    Secondary = 2,
};

/** Reference from a primary section to one of its secondaries. */
struct SecondaryRef
{
    DgAddress addr;      ///< Where the secondary section lives.
    std::uint32_t count; ///< Neighbours stored in that section.
};

/** Layout of one node's data across sections. */
struct NodeLayout
{
    DgAddress primary;      ///< Address of the primary section.
    std::uint32_t degree = 0;
    std::uint32_t inPage = 0; ///< Neighbours stored inside the primary.
    std::vector<SecondaryRef> secondaries;
};

/** One section's placement inside a page. */
struct SectionPlacement
{
    graph::NodeId node = 0;
    SectionType type = SectionType::Invalid;
    std::uint32_t byteOffset = 0;
    std::uint32_t byteSize = 0;   ///< Unpadded size.
    /** For secondaries: index of this secondary in the node's list. */
    std::uint32_t secondaryIdx = 0;
};

/** Directory of the sections stored in one flash page. */
struct PageDirectory
{
    std::vector<SectionPlacement> sections;
};

/** Aggregate construction statistics (Table IV). */
struct BuildStats
{
    std::uint64_t rawBytes = 0;       ///< CSR + feature-table volume.
    std::uint64_t primaryPages = 0;
    std::uint64_t secondaryPages = 0;
    std::uint64_t usedBytes = 0;      ///< Sum of unpadded section bytes.
    std::uint64_t flashBytes = 0;     ///< Pages * pageSize actually used.
    std::uint64_t blockBytes = 0;     ///< Whole allocated blocks.
    std::uint64_t nodesWithSecondaries = 0;
    std::uint64_t secondarySections = 0;

    /** Table IV inflation: extra flash over raw data, page-granular. */
    double
    inflatePct() const
    {
        return rawBytes == 0
                   ? 0.0
                   : 100.0 *
                         (static_cast<double>(flashBytes) -
                          static_cast<double>(rawBytes)) /
                         static_cast<double>(rawBytes);
    }
};

/** The complete DirectGraph layout of a dataset. */
struct DirectGraphLayout
{
    std::vector<NodeLayout> nodes;  ///< Indexed by NodeId.
    std::unordered_map<flash::Ppa, PageDirectory> pages;
    std::vector<flash::BlockId> blocks; ///< Reserved blocks consumed.
    std::uint16_t featureDim = 0;
    std::uint32_t pageSize = 0;
    BuildStats stats;

    /** Primary-section address of @p v (host-provided for targets). */
    DgAddress primaryOf(graph::NodeId v) const { return nodes[v].primary; }

    /** Resolve (page, section) to its placement; nullptr if absent. */
    const SectionPlacement *
    find(DgAddress a) const
    {
        auto it = pages.find(a.page());
        if (it == pages.end())
            return nullptr;
        const auto &secs = it->second.sections;
        if (a.section() >= secs.size())
            return nullptr;
        return &secs[a.section()];
    }
};

} // namespace beacongnn::dg

#endif // BEACONGNN_DIRECTGRAPH_LAYOUT_H
