/**
 * @file
 * Host-side DirectGraph manipulation interface (§VI-A).
 *
 * The paper exposes the customized commands to the host "as
 * customized NVMe commands via the ioctl system call". This class is
 * that surface: each call is timed through an NVMe queue pair with
 * the corresponding vendor opcode and functionally delegated to the
 * firmware.
 *
 *   getBlockList  — fetch reserved physical blocks for DirectGraph
 *   setGnnConfig  — deliver model parameters / sampling configuration
 *   flushDirectGraph — stream verified page images to flash
 *   submitBatch   — hand a mini-batch's target addresses to the
 *                   flash-firmware GNN engine
 */

#ifndef BEACONGNN_SSD_HOST_INTERFACE_H
#define BEACONGNN_SSD_HOST_INTERFACE_H

#include "flash/onfi.h"
#include "ssd/firmware.h"
#include "ssd/nvme.h"

namespace beacongnn::ssd {

/** Timed + functional host handle to the BeaconGNN device. */
class HostInterface
{
  public:
    HostInterface(Firmware &fw_, const NvmeQueueConfig &qcfg = {})
        : fw(fw_), queue(qcfg)
    {
    }

    /**
     * Fetch @p count reserved blocks (vendor GetBlockList).
     * @param now       Submission time.
     * @param completion Optional out: queue-pair timing.
     */
    std::vector<flash::BlockId>
    getBlockList(sim::Tick now, std::uint64_t count,
                 NvmeCompletion *completion = nullptr)
    {
        auto blocks = fw.ftl().reserveBlocks(count);
        NvmeCommand cmd;
        cmd.op = NvmeOp::GetBlockList;
        cmd.bytes = static_cast<std::uint32_t>(blocks.size() * 4);
        // Device-side: firmware walks its allocation metadata.
        sim::Grant core = fw.coreIssue(
            now, fw.config().controller.ftlLookupTime *
                     std::max<std::uint64_t>(1, blocks.size() / 64));
        NvmeCompletion c = queue.submit(now, cmd, core.end - now);
        if (completion)
            *completion = c;
        return blocks;
    }

    /** Deliver the global GNN configuration (vendor SetGnnConfig). */
    NvmeCompletion
    setGnnConfig(sim::Tick now, const flash::GnnGlobalConfig &cfg)
    {
        lastConfig = cfg;
        NvmeCommand cmd;
        cmd.op = NvmeOp::SetGnnConfig;
        cmd.bytes = 16;
        sim::Grant core = fw.coreIssue(now);
        return queue.submit(now, cmd, core.end - now);
    }

    /** The most recent configuration the host delivered. */
    const flash::GnnGlobalConfig &gnnConfig() const { return lastConfig; }

    /**
     * Flush a DirectGraph through the manipulation interface: one
     * FlushDgPage vendor command per page (timed on the queue pair),
     * with verification and programming performed by the firmware.
     */
    FlushResult
    flushDirectGraph(sim::Tick now, const dg::DirectGraphLayout &layout,
                     const graph::Graph &g,
                     const graph::FeatureTable &features,
                     flash::PageStore &store,
                     flash::FlashBackend &backend)
    {
        // Queue-pair occupancy: every page is a vendor write command;
        // the device service is amortized into the firmware flush.
        NvmeCommand cmd;
        cmd.op = NvmeOp::FlushDgPage;
        cmd.bytes = fw.config().flash.pageSize;
        FlushResult res = fw.flushDirectGraph(now, layout, g, features,
                                              store, backend);
        sim::Tick per_page =
            layout.pages.empty()
                ? 0
                : (res.finish - now) / layout.pages.size();
        NvmeCompletion last{};
        for (std::size_t i = 0; i < layout.pages.size(); ++i)
            last = queue.submit(now, cmd, per_page);
        res.finish = std::max(res.finish, last.completed);
        return res;
    }

    /**
     * Submit a mini-batch's target addresses (vendor SubmitBatch).
     * @return Time the firmware GNN engine may begin (completion of
     *         the command at the device).
     */
    sim::Tick
    submitBatch(sim::Tick now, std::size_t n_targets,
                NvmeCompletion *completion = nullptr)
    {
        NvmeCommand cmd;
        cmd.op = NvmeOp::SubmitBatch;
        cmd.bytes = static_cast<std::uint32_t>(n_targets * 4);
        // §VI-E: the firmware verifies every target's primary-section
        // address against the reserved blocks before starting.
        sim::Grant core = fw.coreIssue(
            now, fw.config().controller.ftlLookupTime *
                     std::max<std::size_t>(1, n_targets / 32));
        NvmeCompletion c = queue.submit(now, cmd, core.end - now);
        if (completion)
            *completion = c;
        return c.completed;
    }

    const NvmeQueuePair &nvme() const { return queue; }

  private:
    Firmware &fw;
    NvmeQueuePair queue;
    flash::GnnGlobalConfig lastConfig{};
};

} // namespace beacongnn::ssd

#endif // BEACONGNN_SSD_HOST_INTERFACE_H
