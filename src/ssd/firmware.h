/**
 * @file
 * Flash firmware model: the embedded cores (I/O poller + FTL + flash
 * scheduler threads of Fig. 3) as a multi-server queue, the SSD DRAM
 * port, plus the firmware services BeaconGNN adds — DirectGraph flush
 * with security verification (§VI-A/E), wear-levelling reclamation
 * (§VI-F), and idle-time data scrubbing.
 *
 * The core pool is the performance-critical piece: every backend
 * flash command on BG-1 … BG-DGSP platforms is serviced twice by a
 * core (issue + completion), which is Challenge 3's bottleneck; BG-2
 * bypasses it with the channel-level router.
 */

#ifndef BEACONGNN_SSD_FIRMWARE_H
#define BEACONGNN_SSD_FIRMWARE_H

#include <memory>

#include "directgraph/builder.h"
#include "directgraph/verify.h"
#include "flash/backend.h"
#include "flash/page_store.h"
#include "sim/metrics.h"
#include "sim/resources.h"
#include "ssd/config.h"
#include "ssd/ecc.h"
#include "ssd/ftl.h"

namespace beacongnn::ssd {

/** Result of flushing a DirectGraph into reserved blocks. */
struct FlushResult
{
    bool ok = false;              ///< All pages passed verification.
    sim::Tick finish = 0;         ///< Completion time of the flush.
    std::uint64_t pagesWritten = 0;
    std::uint64_t pagesRejected = 0; ///< Failed §VI-E checks.
};

/** Result of a wear-levelling reclamation (§VI-F). */
struct ReclaimResult
{
    bool ok = false;
    sim::Tick finish = 0;
    dg::DirectGraphLayout layout;  ///< Rebuilt at the new location.
    std::uint64_t blocksMigrated = 0;
};

/** The SSD firmware and its frontend hardware resources. */
class Firmware
{
  public:
    explicit Firmware(const SystemConfig &cfg);

    const SystemConfig &config() const { return cfg; }

    // ---- Timing resources ------------------------------------------
    /** Cores running the I/O poller / issue threads (Fig. 3). */
    sim::ServerPool &issueCores() { return _issueCores; }
    /** Cores running the completion / scheduler threads. */
    sim::ServerPool &completeCores() { return _completeCores; }
    /** Host CPU threads issuing block I/O (CC-style access path). */
    sim::ServerPool &hostIo() { return _hostIo; }
    sim::BandwidthResource &dram() { return _dram; }
    sim::BandwidthResource &pcie() { return _pcie; }
    Ftl &ftl() { return _ftl; }
    EccModel &ecc() { return _ecc; }

    /** Core service: issue one backend flash command. */
    sim::Grant
    coreIssue(sim::Tick ready, sim::Tick extra = 0)
    {
        return _issueCores.acquire(
            ready, cfg.controller.coreIssueTime + extra);
    }

    /** Core service: consume one backend completion. */
    sim::Grant
    coreComplete(sim::Tick ready, sim::Tick extra = 0)
    {
        return _completeCores.acquire(
            ready, cfg.controller.coreCompleteTime + extra);
    }

    /** Host software-stack service for one block I/O. */
    sim::Grant
    hostIoService(sim::Tick ready)
    {
        return _hostIo.acquire(ready, cfg.host.ioOverhead);
    }

    /** Total embedded-core busy time (both pools). */
    sim::Tick
    coreBusyTime() const
    {
        return _issueCores.busyTime() + _completeCores.busyTime();
    }

    /** Mean embedded-core utilization over [0, horizon]. */
    double
    coreUtilization(sim::Tick horizon) const
    {
        if (horizon == 0)
            return 0.0;
        return static_cast<double>(coreBusyTime()) /
               (static_cast<double>(horizon) *
                static_cast<double>(_issueCores.size() +
                                    _completeCores.size()));
    }

    // ---- DirectGraph services ---------------------------------------

    /**
     * Flush a DirectGraph to flash through the customized NVMe
     * manipulation interface: PCIe transfer of each page image,
     * firmware verification that destination and embedded addresses
     * stay inside the reserved blocks (§VI-E), program to flash, ECC
     * checksum recording. Functional content lands in @p store;
     * timing is charged to PCIe, cores and the backend.
     *
     * @param start    Flush begin time.
     * @param layout   DirectGraph layout (its blocks must have come
     *                 from this firmware's FTL reserve list).
     * @param g        Graph (for page-image encoding).
     * @param features Feature table.
     * @param store    Flash contents.
     * @param backend  Flash timing model.
     */
    FlushResult flushDirectGraph(sim::Tick start,
                                 const dg::DirectGraphLayout &layout,
                                 const graph::Graph &g,
                                 const graph::FeatureTable &features,
                                 flash::PageStore &store,
                                 flash::FlashBackend &backend);

    /**
     * Wear-levelling reclamation: migrate the DirectGraph to fresh
     * blocks (rebuilding the layout rewrites all embedded physical
     * addresses), erase and release the old blocks.
     */
    ReclaimResult reclaimDirectGraph(sim::Tick start,
                                     const dg::DirectGraphLayout &old_layout,
                                     const graph::Graph &g,
                                     const graph::FeatureTable &features,
                                     flash::PageStore &store,
                                     flash::FlashBackend &backend);

    /**
     * Idle-time data scrubbing over the DirectGraph blocks: verify
     * ECC, erase + re-program any block with errors (§VI-F).
     */
    ScrubReport scrub(const dg::DirectGraphLayout &layout,
                      const graph::Graph &g,
                      const graph::FeatureTable &features,
                      flash::PageStore &store);

    /**
     * Publish the frontend's instruments into @p reg under the `ssd.`
     * namespace (`ssd.firmware.*` core pools, `ssd.host_io.*`,
     * `ssd.dram.*`, `ssd.pcie.*`, `ssd.ftl.*`).
     */
    void publishMetrics(sim::MetricRegistry &reg) const;

    /** Reset frontend timing resources between runs. */
    void resetStats();

  private:
    SystemConfig cfg;
    sim::ServerPool _issueCores;
    sim::ServerPool _completeCores;
    sim::ServerPool _hostIo;
    sim::BandwidthResource _dram;
    sim::BandwidthResource _pcie;
    Ftl _ftl;
    EccModel _ecc;
};

} // namespace beacongnn::ssd

#endif // BEACONGNN_SSD_FIRMWARE_H
