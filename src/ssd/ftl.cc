#include "ssd/ftl.h"

namespace beacongnn::ssd {

Ftl::Ftl(const flash::FlashConfig &cfg)
    : codec(cfg), nBlocks(cfg.totalBlocks()),
      pagesPerBlock(cfg.pagesPerBlock)
{
}

bool
Ftl::advanceCursor()
{
    // Linear scan for the next block not reserved for DirectGraph.
    for (std::uint64_t tried = 0; tried < nBlocks; ++tried) {
        flash::BlockId cand = allocCursor;
        allocCursor = static_cast<flash::BlockId>((allocCursor + 1) %
                                                  nBlocks);
        if (!isReserved(cand)) {
            writeCursor = codec.firstPage(cand);
            regularUsed.insert(cand);
            cursorValid = true;
            return true;
        }
    }
    cursorValid = false;
    return false;
}

std::optional<flash::Ppa>
Ftl::translate(Lpa lpa, bool write)
{
    ++_translations;
    auto it = map.find(lpa);
    if (it != map.end())
        return it->second;
    if (!write)
        return std::nullopt;
    if (!cursorValid || codec.pageInBlock(writeCursor) == 0) {
        // Need (or about to need) a fresh block.
        if (!cursorValid && !advanceCursor())
            return std::nullopt;
    }
    flash::Ppa ppa = writeCursor;
    map[lpa] = ppa;
    ++valid[codec.blockOf(ppa)];
    // Move to the next page; roll into a new block at the boundary.
    if (codec.pageInBlock(writeCursor) + 1 == pagesPerBlock) {
        cursorValid = false;
    } else {
        ++writeCursor;
    }
    return ppa;
}

std::optional<std::pair<flash::Ppa, flash::Ppa>>
Ftl::update(Lpa lpa)
{
    auto it = map.find(lpa);
    if (it == map.end())
        return std::nullopt;
    flash::Ppa old = it->second;
    map.erase(it);
    auto fresh = translate(lpa, true);
    if (!fresh) {
        map[lpa] = old; // Roll back: device full.
        return std::nullopt;
    }
    flash::BlockId ob = codec.blockOf(old);
    ++invalid[ob];
    if (auto vit = valid.find(ob); vit != valid.end() && vit->second > 0)
        --vit->second;
    return std::make_pair(*fresh, old);
}

std::vector<flash::BlockId>
Ftl::fullyInvalidBlocks() const
{
    std::vector<flash::BlockId> out;
    // `invalid` is an ordered map, so GC victims come back in block
    // order — erase schedules stay reproducible across builds.
    for (const auto &[block, count] : invalid) {
        if (count > 0 && validPages(block) == 0)
            out.push_back(block);
    }
    return out;
}

std::vector<flash::BlockId>
Ftl::reserveBlocks(std::uint64_t count)
{
    std::vector<flash::BlockId> out;
    out.reserve(count);
    // Scan the device for blocks not reserved and not holding regular
    // data; real firmware would pick erased blocks from its free pool.
    for (flash::BlockId b = 0; b < nBlocks && out.size() < count; ++b) {
        if (isReserved(b) || regularUsed.count(b))
            continue;
        out.push_back(b);
    }
    if (out.size() < count)
        return {};
    for (auto b : out)
        reserved.insert(b);
    return out;
}

bool
Ftl::reserveExact(const std::vector<flash::BlockId> &blocks)
{
    for (auto b : blocks) {
        if (b >= nBlocks || isReserved(b) || regularUsed.count(b))
            return false;
    }
    for (auto b : blocks)
        reserved.insert(b);
    return true;
}

void
Ftl::publishMetrics(sim::MetricRegistry &reg) const
{
    reg.counter("ssd.ftl.translations").add(_translations);
    reg.gauge("ssd.ftl.reserved_blocks")
        .set(static_cast<double>(reserved.size()));
    reg.gauge("ssd.ftl.mapped_pages")
        .set(static_cast<double>(map.size()));
}

void
Ftl::releaseBlocks(const std::vector<flash::BlockId> &blocks)
{
    for (auto b : blocks)
        reserved.erase(b);
}

double
Ftl::peGap(const flash::PageStore &store) const
{
    if (reserved.empty())
        return 0.0;
    // Sum P/E counts as integers: exact in any traversal order, so
    // the gap can never pick up FP-reassociation noise (BGN002/005).
    std::uint64_t reserved_sum = 0;
    for (auto b : reserved)
        reserved_sum += store.peCycles(b);
    double reserved_avg = static_cast<double>(reserved_sum) /
                          static_cast<double>(reserved.size());
    std::uint64_t regular_sum = 0;
    std::size_t regular_n = regularUsed.size();
    for (auto b : regularUsed)
        regular_sum += store.peCycles(b);
    double regular_avg =
        regular_n == 0
            ? 0.0
            : static_cast<double>(regular_sum) /
                  static_cast<double>(regular_n);
    return regular_avg - reserved_avg;
}

} // namespace beacongnn::ssd
