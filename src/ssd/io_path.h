/**
 * @file
 * Regular block-I/O path and the two operating modes of §VI-G.
 *
 * In regular-I/O mode the device serves standard NVMe READ/WRITE
 * through the FTL (out-of-place updates, page-mapped). In
 * acceleration mode, incoming regular requests are deferred to the
 * end of the current mini-batch — BeaconGNN's page table stays in
 * SSD DRAM, so service resumes immediately afterwards.
 *
 * The path is functional (bytes round-trip through the page store)
 * and timed (NVMe queue pair + firmware cores + flash backend +
 * PCIe), and it coexists with DirectGraph: reserved blocks are
 * invisible to it, which the isolation tests exercise.
 */

#ifndef BEACONGNN_SSD_IO_PATH_H
#define BEACONGNN_SSD_IO_PATH_H

#include <span>

#include "flash/backend.h"
#include "flash/page_store.h"
#include "ssd/firmware.h"
#include "ssd/nvme.h"

namespace beacongnn::ssd {

/** Outcome of one host block I/O. */
struct IoResult
{
    bool ok = false;
    NvmeCompletion nvme;      ///< Queue-pair timing decomposition.
    sim::Tick deferredBy = 0; ///< Wait caused by acceleration mode.
};

/** The regular storage path of the BeaconGNN SSD. */
class IoPath
{
  public:
    IoPath(Firmware &fw_, flash::FlashBackend &backend_,
           flash::PageStore &store_, const NvmeQueueConfig &qcfg = {})
        : fw(fw_), backend(backend_), store(store_), queue(qcfg)
    {
    }

    // ---- Operating modes (§VI-G) -----------------------------------

    /**
     * Enter acceleration mode until @p until (the end of the current
     * mini-batch). Regular requests arriving before then are deferred.
     */
    void
    enterAccelerationMode(sim::Tick until)
    {
        accelUntil = std::max(accelUntil, until);
    }

    /** True if a request at @p now would be deferred. */
    bool
    inAccelerationMode(sim::Tick now) const
    {
        return now < accelUntil;
    }

    /** Regular requests deferred so far. */
    std::uint64_t deferredCount() const { return _deferred; }

    // ---- Host block operations ---------------------------------------

    /**
     * Host write of one logical page (out-of-place update).
     * @return Timing + success. Fails when the device is out of
     *         non-reserved blocks.
     */
    IoResult hostWrite(sim::Tick now, Lpa lpa,
                       std::span<const std::uint8_t> data);

    /**
     * Host read of one logical page into @p out.
     * @return ok = false for unmapped LPAs.
     */
    IoResult hostRead(sim::Tick now, Lpa lpa,
                      std::span<std::uint8_t> out);

    const NvmeQueuePair &nvme() const { return queue; }

    /**
     * Erase fully-invalidated blocks (simple garbage collection).
     * @return Number of blocks erased.
     */
    std::uint64_t garbageCollect(sim::Tick now);

    /** Publish the regular-I/O path's instruments (`ssd.io.*`). */
    void
    publishMetrics(sim::MetricRegistry &reg) const
    {
        reg.counter("ssd.io.reads").add(_reads);
        reg.counter("ssd.io.writes").add(_writes);
        reg.counter("ssd.io.deferred").add(_deferred);
        reg.counter("ssd.io.gc_blocks_erased").add(_gcErased);
    }

  private:
    /** Defer service start while in acceleration mode. */
    sim::Tick
    gate(sim::Tick now, sim::Tick &deferred_by)
    {
        if (now < accelUntil) {
            deferred_by = accelUntil - now;
            ++_deferred;
            return accelUntil;
        }
        deferred_by = 0;
        return now;
    }

    Firmware &fw;
    flash::FlashBackend &backend;
    flash::PageStore &store;
    NvmeQueuePair queue;
    sim::Tick accelUntil = 0;
    std::uint64_t _deferred = 0;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
    std::uint64_t _gcErased = 0;
};

} // namespace beacongnn::ssd

#endif // BEACONGNN_SSD_IO_PATH_H
