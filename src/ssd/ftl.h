/**
 * @file
 * Flash translation layer (§II-B, §VI-A, §VI-F).
 *
 * Beyond the regular page-mapped LPA->PPA translation, the FTL
 * implements the BeaconGNN extensions:
 *  - a reserved-block list handed to the host for direct DirectGraph
 *    manipulation, exempt from regular allocation and GC;
 *  - isolation: reserved blocks are invisible to regular I/O, and
 *    regular blocks can never be written through the DirectGraph
 *    path;
 *  - wear-levelling reclamation: when the P/E-count gap between
 *    DirectGraph blocks and regular blocks exceeds a threshold, the
 *    DirectGraph migrates to fresh blocks (embedded addresses are
 *    rewritten by rebuilding the layout) and the old blocks rejoin
 *    regular management.
 */

#ifndef BEACONGNN_SSD_FTL_H
#define BEACONGNN_SSD_FTL_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "flash/address.h"
#include "flash/config.h"
#include "flash/page_store.h"
#include "sim/metrics.h"

namespace beacongnn::ssd {

/** Logical page address of the regular block-device interface. */
using Lpa = std::uint64_t;

/** Page-mapped FTL with reserved-block support. */
class Ftl
{
  public:
    explicit Ftl(const flash::FlashConfig &cfg);

    /** Total blocks managed. */
    std::uint64_t totalBlocks() const { return nBlocks; }

    // ---- Regular I/O path ----------------------------------------

    /**
     * Translate a host LPA; allocates on first write.
     * @param write True for write accesses (allocate if unmapped).
     * @return Mapped PPA, or nullopt for reads of unmapped LPAs or
     *         when the device is out of regular blocks.
     */
    std::optional<flash::Ppa> translate(Lpa lpa, bool write);

    /**
     * Out-of-place update of a mapped LPA: allocate a fresh page,
     * move the mapping there and invalidate the old page (flash
     * pages cannot be overwritten in place, §II-B1).
     *
     * @return {new ppa, old ppa}; nullopt when out of blocks or the
     *         LPA was never written (use translate(lpa, true) then).
     */
    std::optional<std::pair<flash::Ppa, flash::Ppa>> update(Lpa lpa);

    /** Invalid (superseded) pages in @p block. */
    std::uint32_t
    invalidPages(flash::BlockId block) const
    {
        auto it = invalid.find(block);
        return it == invalid.end()
                   ? 0
                   : static_cast<std::uint32_t>(it->second);
    }

    /** Valid (currently mapped) pages in @p block. */
    std::uint32_t
    validPages(flash::BlockId block) const
    {
        auto it = valid.find(block);
        return it == valid.end()
                   ? 0
                   : static_cast<std::uint32_t>(it->second);
    }

    /**
     * Blocks whose programmed pages are all invalid — garbage-
     * collection victims that can be erased without relocation.
     */
    std::vector<flash::BlockId> fullyInvalidBlocks() const;

    /** Reset a block's valid/invalid accounting after its erase. */
    void
    onBlockErased(flash::BlockId block)
    {
        invalid.erase(block);
        valid.erase(block);
    }

    /** True if @p lpa currently has a mapping. */
    bool isMapped(Lpa lpa) const { return map.count(lpa) != 0; }

    // ---- DirectGraph reserved blocks (§VI-A) ----------------------

    /**
     * Reserve @p count physical blocks for host DirectGraph
     * manipulation. Reserved blocks are marked unusable for regular
     * allocation/GC.
     * @return The block list, or empty if not enough free blocks.
     */
    std::vector<flash::BlockId> reserveBlocks(std::uint64_t count);

    /**
     * Mirror an existing reservation: reserve exactly @p blocks (the
     * list a layout was built against on another FTL instance), so a
     * run's live FTL and the bundle's layout can never diverge.
     *
     * All-or-nothing: no block is reserved unless every one is in
     * range, unreserved, and free of regular data.
     */
    bool reserveExact(const std::vector<flash::BlockId> &blocks);

    /** Return previously reserved blocks to regular management. */
    void releaseBlocks(const std::vector<flash::BlockId> &blocks);

    /** True if @p block is reserved for DirectGraph. */
    bool
    isReserved(flash::BlockId block) const
    {
        return reserved.count(block) != 0;
    }

    /** True if @p ppa lies in a reserved block. */
    bool
    ppaReserved(flash::Ppa ppa) const
    {
        return isReserved(codec.blockOf(ppa));
    }

    /** Blocks currently reserved. */
    std::size_t reservedCount() const { return reserved.size(); }

    // ---- Wear levelling (§VI-F) ------------------------------------

    /**
     * Compute the P/E gap between the average regular-block erase
     * count and the average reserved-block erase count.
     */
    double peGap(const flash::PageStore &store) const;

    /**
     * @param threshold Gap (in P/E cycles) that triggers reclamation.
     * @return true if reclamation should run now.
     */
    bool
    needsReclaim(const flash::PageStore &store, double threshold) const
    {
        return !reserved.empty() && peGap(store) > threshold;
    }

    const flash::AddressCodec &addressCodec() const { return codec; }

    /** LPA translations served (read + write paths). */
    std::uint64_t translations() const { return _translations; }

    /** Publish FTL instruments into @p reg under `ssd.ftl.*`. */
    void publishMetrics(sim::MetricRegistry &reg) const;

  private:
    flash::AddressCodec codec;
    std::uint64_t nBlocks;
    unsigned pagesPerBlock;

    /** LPA->PPA is the hot lookup path: hash map, never iterated. */
    std::unordered_map<Lpa, flash::Ppa> map;
    // Per-block accounting is iterated (GC victim scan, wear stats),
    // so it lives in ordered containers — determinism contract
    // BGN002: walks must not depend on hash order.
    std::map<flash::BlockId, std::uint64_t> invalid;
    std::map<flash::BlockId, std::uint64_t> valid;
    std::set<flash::BlockId> reserved;
    /** Blocks ever touched by regular writes (for wear stats). */
    std::set<flash::BlockId> regularUsed;

    flash::BlockId allocCursor = 0;  ///< Next candidate block.
    flash::Ppa writeCursor = 0;      ///< Next page in current block.
    bool cursorValid = false;
    std::uint64_t _translations = 0;

    /** Advance to the next non-reserved block; false if exhausted. */
    bool advanceCursor();
};

} // namespace beacongnn::ssd

#endif // BEACONGNN_SSD_FTL_H
