#include "ssd/firmware.h"

#include <algorithm>

#include "sim/log.h"
#include "sim/ordered.h"

namespace beacongnn::ssd {

Firmware::Firmware(const SystemConfig &cfg_)
    : cfg(cfg_),
      _issueCores(std::max(1u, cfg.controller.cores / 2), "fw-issue"),
      _completeCores(std::max(1u, cfg.controller.cores -
                                      cfg.controller.cores / 2),
                     "fw-complete"),
      _hostIo(std::max(1u, cfg.host.ioThreads), "host-io"),
      _dram(cfg.controller.dramMBps, "ssd-dram"),
      _pcie(cfg.host.pcieMBps, "pcie"), _ftl(cfg.flash)
{
}

FlushResult
Firmware::flushDirectGraph(sim::Tick start,
                           const dg::DirectGraphLayout &layout,
                           const graph::Graph &g,
                           const graph::FeatureTable &features,
                           flash::PageStore &store,
                           flash::FlashBackend &backend)
{
    FlushResult res;
    dg::AddressVerifier verifier(layout.blocks,
                                 cfg.flash.pagesPerBlock);
    std::vector<std::uint8_t> buf(cfg.flash.pageSize);
    sim::Tick finish = start;
    res.ok = true;

    // Deterministic page order keeps timing reproducible across runs
    // (unordered_map iteration order is not stable across builds).
    for (flash::Ppa ppa : sim::sortedKeys(layout.pages)) {
        dg::encodePageImage(layout, g, features, ppa, buf);
        // §VI-E: destination and embedded addresses must stay inside
        // the reserved blocks.
        if (!verifier.pageImageSafe(ppa, buf, layout.featureDim) ||
            !_ftl.ppaReserved(ppa)) {
            ++res.pagesRejected;
            res.ok = false;
            continue;
        }
        // Timing: host page image over PCIe, firmware verification on
        // a core, DMA into DRAM, backend program.
        sim::Grant link = _pcie.acquire(start, cfg.flash.pageSize);
        sim::Grant core = _issueCores.acquire(
            link.end, cfg.controller.coreIssueTime +
                          cfg.controller.ftlLookupTime);
        sim::Grant mem = _dram.acquire(core.end, cfg.flash.pageSize);
        flash::FlashOpTiming prog =
            backend.program(mem.end, ppa, cfg.flash.pageSize);
        finish = std::max(finish, prog.senseEnd);

        // Functional: land the bytes and record the ECC checksum.
        if (!store.program(ppa, buf))
            sim::panic("flushDirectGraph: destination page not erased");
        _ecc.onProgram(ppa, buf);
        ++res.pagesWritten;
    }
    res.finish = finish;
    return res;
}

ReclaimResult
Firmware::reclaimDirectGraph(sim::Tick start,
                             const dg::DirectGraphLayout &old_layout,
                             const graph::Graph &g,
                             const graph::FeatureTable &features,
                             flash::PageStore &store,
                             flash::FlashBackend &backend)
{
    ReclaimResult res;
    // Reserve clean blocks for the migrated copy.
    auto fresh = _ftl.reserveBlocks(old_layout.blocks.size() + 1);
    if (fresh.empty()) {
        sim::warn("reclaim: no free blocks for DirectGraph migration");
        return res;
    }
    // Rebuild the layout at the new location: this regenerates every
    // embedded physical address (§VI-F "updating the embedded
    // physical addresses to these new locations").
    res.layout = dg::buildLayout(g, features, cfg.flash, fresh);
    FlushResult flush = flushDirectGraph(start, res.layout, g, features,
                                         store, backend);
    if (!flush.ok) {
        sim::warn("reclaim: migrated flush failed verification");
        _ftl.releaseBlocks(fresh);
        return res;
    }
    // Erase old blocks and hand them back to regular FTL management.
    sim::Tick finish = flush.finish;
    for (flash::BlockId b : old_layout.blocks) {
        store.eraseBlock(b);
        _ecc.onErase(b, cfg.flash.pagesPerBlock);
        flash::FlashOpTiming er = backend.erase(flush.finish, b);
        finish = std::max(finish, er.senseEnd);
        ++res.blocksMigrated;
    }
    _ftl.releaseBlocks(old_layout.blocks);
    // Release the blocks the rebuild did not consume.
    std::vector<flash::BlockId> unused;
    for (flash::BlockId b : fresh) {
        if (std::find(res.layout.blocks.begin(), res.layout.blocks.end(),
                      b) == res.layout.blocks.end()) {
            unused.push_back(b);
        }
    }
    _ftl.releaseBlocks(unused);
    res.finish = finish;
    res.ok = true;
    return res;
}

ScrubReport
Firmware::scrub(const dg::DirectGraphLayout &layout, const graph::Graph &g,
                const graph::FeatureTable &features,
                flash::PageStore &store)
{
    return scrubBlocks(
        store, _ecc, layout.blocks, cfg.flash.pagesPerBlock,
        [&](flash::Ppa ppa, std::span<std::uint8_t> buf) {
            dg::encodePageImage(layout, g, features, ppa, buf);
        });
}

void
Firmware::publishMetrics(sim::MetricRegistry &reg) const
{
    reg.counter("ssd.firmware.core_busy").add(coreBusyTime());
    reg.counter("ssd.firmware.issue.busy_ticks")
        .add(_issueCores.busyTime());
    reg.counter("ssd.firmware.issue.requests")
        .add(_issueCores.requests());
    reg.counter("ssd.firmware.complete.busy_ticks")
        .add(_completeCores.busyTime());
    reg.counter("ssd.firmware.complete.requests")
        .add(_completeCores.requests());
    reg.counter("ssd.host_io.busy_ticks").add(_hostIo.busyTime());
    reg.counter("ssd.host_io.requests").add(_hostIo.requests());
    reg.counter("ssd.dram.busy_ticks").add(_dram.busyTime());
    reg.counter("ssd.dram.bytes").add(_dram.bytesMoved());
    reg.counter("ssd.pcie.busy_ticks").add(_pcie.busyTime());
    reg.counter("ssd.pcie.bytes").add(_pcie.bytesMoved());
    _ftl.publishMetrics(reg);
}

void
Firmware::resetStats()
{
    _issueCores.reset(std::max(1u, cfg.controller.cores / 2));
    _completeCores.reset(
        std::max(1u, cfg.controller.cores - cfg.controller.cores / 2));
    _hostIo.reset(std::max(1u, cfg.host.ioThreads));
    _dram.resetStats();
    _pcie.resetStats();
}

} // namespace beacongnn::ssd
