#include "ssd/ecc.h"

#include <array>

namespace beacongnn::ssd {

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32c(std::span<const std::uint8_t> data)
{
    static const auto table = makeCrcTable();
    std::uint32_t crc = 0xffffffffu;
    for (std::uint8_t b : data)
        crc = table[(crc ^ b) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

ScrubReport
scrubBlocks(flash::PageStore &store, EccModel &ecc,
            std::span<const flash::BlockId> blocks,
            unsigned pages_per_block,
            const std::function<void(flash::Ppa, std::span<std::uint8_t>)>
                &regenerate)
{
    ScrubReport report;
    std::vector<std::uint8_t> buf(store.pageBytes());
    for (flash::BlockId block : blocks) {
        flash::Ppa first = block * pages_per_block;
        bool bad = false;
        // Which pages of the block were programmed (to restore them).
        std::vector<flash::Ppa> programmed;
        for (unsigned p = 0; p < pages_per_block; ++p) {
            flash::Ppa ppa = first + p;
            auto data = store.read(ppa);
            if (data.empty())
                continue;
            programmed.push_back(ppa);
            ++report.pagesChecked;
            if (!ecc.check(ppa, data)) {
                ++report.errorsFound;
                bad = true;
            }
        }
        if (!bad)
            continue;
        // Pages in a block share retention characteristics: erase and
        // re-program the entire block with corrected content.
        store.eraseBlock(block);
        ecc.onErase(block, pages_per_block);
        for (flash::Ppa ppa : programmed) {
            regenerate(ppa, buf);
            store.program(ppa, buf);
            ecc.onProgram(ppa, buf);
        }
        ++report.blocksReprogrammed;
    }
    return report;
}

} // namespace beacongnn::ssd
