/**
 * @file
 * ECC model and DirectGraph data scrubbing (§VI-F).
 *
 * The controller's ECC engine is modelled as a per-page checksum kept
 * in the page's out-of-band spare area at program time. A scrub pass
 * re-reads every page of the DirectGraph blocks, verifies checksums
 * and — because pages of one block share retention characteristics —
 * erases and re-programs the whole block with corrected content on
 * the first error found in it.
 */

#ifndef BEACONGNN_SSD_ECC_H
#define BEACONGNN_SSD_ECC_H

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "flash/page_store.h"

namespace beacongnn::ssd {

/** CRC32 (Castagnoli polynomial, bitwise) over a byte span. */
std::uint32_t crc32c(std::span<const std::uint8_t> data);

/** Per-page checksum registry (the OOB spare area). */
class EccModel
{
  public:
    /** Record the checksum of @p data programmed at @p ppa. */
    void
    onProgram(flash::Ppa ppa, std::span<const std::uint8_t> data)
    {
        oob[ppa] = crc32c(data);
    }

    /** Drop checksums of an erased block. */
    void
    onErase(flash::BlockId block, unsigned pages_per_block)
    {
        flash::Ppa first = block * pages_per_block;
        for (unsigned p = 0; p < pages_per_block; ++p)
            oob.erase(first + p);
    }

    /**
     * Verify @p data against the recorded checksum of @p ppa.
     * @return true if the page decodes clean (or was never recorded —
     *         erased pages carry no ECC).
     */
    bool
    check(flash::Ppa ppa, std::span<const std::uint8_t> data) const
    {
        auto it = oob.find(ppa);
        if (it == oob.end())
            return true;
        return it->second == crc32c(data);
    }

  private:
    std::unordered_map<flash::Ppa, std::uint32_t> oob;
};

/** Outcome of one scrubbing pass. */
struct ScrubReport
{
    std::uint64_t pagesChecked = 0;
    std::uint64_t errorsFound = 0;
    std::uint64_t blocksReprogrammed = 0;
};

/**
 * Scrub the given DirectGraph blocks: verify every programmed page;
 * on the first error in a block, erase it and re-program every page
 * from golden content supplied by @p regenerate (which re-encodes the
 * page image from the layout — the "corrected content" of §VI-F).
 *
 * @param store      Flash contents (modified in place on repair).
 * @param ecc        Checksum registry.
 * @param blocks     Blocks to scrub.
 * @param pages_per_block Geometry.
 * @param regenerate Callback (ppa, out_buffer) producing the correct
 *                   page image; buffer is page-sized.
 */
ScrubReport scrubBlocks(
    flash::PageStore &store, EccModel &ecc,
    std::span<const flash::BlockId> blocks, unsigned pages_per_block,
    const std::function<void(flash::Ppa, std::span<std::uint8_t>)>
        &regenerate);

} // namespace beacongnn::ssd

#endif // BEACONGNN_SSD_ECC_H
