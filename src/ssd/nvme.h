/**
 * @file
 * NVMe host interface model (§II-B2, Fig. 3) with the BeaconGNN
 * customized command set (§VI-A, §VI-D).
 *
 * The model is functional and timed:
 *  - submission/completion queue pairs with doorbell writes; the
 *    firmware I/O poller fetches entries and posts completions;
 *  - queue-depth-limited pipelining (commands overlap up to the
 *    queue depth, the paper's deep-queue NVMe behaviour);
 *  - the standard READ/WRITE opcodes drive the regular block path
 *    (ssd/io_path.h), while the vendor-specific opcodes implement the
 *    DirectGraph manipulation interface exposed through ioctl:
 *      GetBlockList   — fetch reserved physical blocks,
 *      FlushDgPage    — write one verified DirectGraph page,
 *      SetGnnConfig   — deliver model/sampling configuration,
 *      SubmitBatch    — hand a mini-batch of target addresses to the
 *                       flash-firmware GNN engine.
 */

#ifndef BEACONGNN_SSD_NVME_H
#define BEACONGNN_SSD_NVME_H

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/resources.h"
#include "sim/types.h"
#include "ssd/config.h"

namespace beacongnn::ssd {

/** NVMe opcode space used by the model. */
enum class NvmeOp : std::uint8_t
{
    Read,         ///< Standard block read.
    Write,        ///< Standard block write.
    GetBlockList, ///< Vendor: fetch reserved DirectGraph blocks.
    FlushDgPage,  ///< Vendor: program one DirectGraph page.
    SetGnnConfig, ///< Vendor: global GNN configuration.
    SubmitBatch,  ///< Vendor: start a mini-batch (target addresses).
};

/** One submission-queue entry (timing-relevant fields only). */
struct NvmeCommand
{
    NvmeOp op = NvmeOp::Read;
    std::uint64_t lba = 0;      ///< Logical address (block ops).
    std::uint32_t bytes = 0;    ///< Payload size.
    std::uint64_t tag = 0;      ///< Caller correlation id.
};

/** Completion record. */
struct NvmeCompletion
{
    std::uint64_t tag = 0;
    bool ok = true;
    sim::Tick submitted = 0;  ///< Doorbell ring time.
    sim::Tick fetched = 0;    ///< Picked up by the I/O poller.
    sim::Tick completed = 0;  ///< CQ entry visible to the host.

    sim::Tick latency() const { return completed - submitted; }
};

/** Timing parameters of the queue-pair machinery. */
struct NvmeQueueConfig
{
    unsigned queueDepth = 32;
    /** Host-side submission cost (SQE build + doorbell MMIO). */
    sim::Tick submitCost = sim::nanoseconds(400);
    /** Poller fetch + parse of one SQE. */
    sim::Tick fetchCost = sim::nanoseconds(300);
    /** Completion posting + interrupt/poll delivery to the host. */
    sim::Tick completeCost = sim::nanoseconds(700);
};

/**
 * One submission/completion queue pair with an analytic timing model:
 * commands pipeline up to the queue depth; the device-side service
 * time for each command is supplied by the caller (it depends on what
 * the firmware does with the command).
 */
class NvmeQueuePair
{
  public:
    explicit NvmeQueuePair(const NvmeQueueConfig &cfg_ = {})
        : cfg(cfg_), slots(std::max(1u, cfg_.queueDepth))
    {
    }

    const NvmeQueueConfig &config() const { return cfg; }

    /**
     * Submit a command at @p now whose device-side service takes
     * @p device_service once fetched.
     *
     * @return Completion record with the full timing decomposition.
     */
    NvmeCompletion
    submit(sim::Tick now, const NvmeCommand &cmd,
           sim::Tick device_service)
    {
        NvmeCompletion done;
        done.tag = cmd.tag;
        // Host builds the SQE and rings the doorbell.
        sim::Grant sq = hostSide.acquire(now, cfg.submitCost);
        done.submitted = sq.end;
        // A free queue slot bounds the in-flight commands.
        sim::Grant slot = slots.acquire(
            done.submitted,
            cfg.fetchCost + device_service + cfg.completeCost);
        done.fetched = slot.start + cfg.fetchCost;
        done.completed = slot.end;
        ++_completed;
        _totalLatency += done.latency();
        return done;
    }

    std::uint64_t completedCount() const { return _completed; }

    /** Mean end-to-end latency of completed commands. */
    sim::Tick
    meanLatency() const
    {
        return _completed == 0 ? 0 : _totalLatency / _completed;
    }

  private:
    NvmeQueueConfig cfg;
    /** Host submission path is serialized (one submitting thread). */
    sim::Bus hostSide{"nvme-sq"};
    /** Queue slots bound the number of in-flight commands. */
    sim::ServerPool slots;
    std::uint64_t _completed = 0;
    sim::Tick _totalLatency = 0;
};

} // namespace beacongnn::ssd

#endif // BEACONGNN_SSD_NVME_H
