#include "ssd/io_path.h"

namespace beacongnn::ssd {

IoResult
IoPath::hostWrite(sim::Tick now, Lpa lpa,
                  std::span<const std::uint8_t> data)
{
    IoResult res;
    sim::Tick start = gate(now, res.deferredBy);

    // Resolve the destination page: fresh allocation or out-of-place
    // update of a previously written LPA.
    std::optional<flash::Ppa> ppa;
    if (fw.ftl().isMapped(lpa)) {
        auto moved = fw.ftl().update(lpa);
        if (moved)
            ppa = moved->first;
    } else {
        ppa = fw.ftl().translate(lpa, true);
    }
    if (!ppa)
        return res; // Device full.

    const auto &flash_cfg = fw.config().flash;
    // Device-side service: PCIe data-in, FTL on a core, DMA to DRAM,
    // backend program.
    sim::Grant link = fw.pcie().acquire(start, flash_cfg.pageSize);
    sim::Grant core = fw.coreIssue(
        link.end, fw.config().controller.ftlLookupTime);
    sim::Grant mem = fw.dram().acquire(core.end, flash_cfg.pageSize);
    flash::FlashOpTiming prog =
        backend.program(mem.end, *ppa, flash_cfg.pageSize);
    sim::Tick device = prog.senseEnd - start;

    NvmeCommand cmd;
    cmd.op = NvmeOp::Write;
    cmd.lba = lpa;
    cmd.bytes = flash_cfg.pageSize;
    res.nvme = queue.submit(start, cmd, device);
    ++_writes;

    // Functional: land the bytes.
    res.ok = store.program(*ppa, data);
    if (res.ok)
        fw.ecc().onProgram(*ppa, store.read(*ppa));
    return res;
}

IoResult
IoPath::hostRead(sim::Tick now, Lpa lpa, std::span<std::uint8_t> out)
{
    IoResult res;
    sim::Tick start = gate(now, res.deferredBy);

    auto ppa = fw.ftl().translate(lpa, false);
    if (!ppa)
        return res; // Unmapped.

    const auto &flash_cfg = fw.config().flash;
    sim::Grant core = fw.coreIssue(
        start, fw.config().controller.ftlLookupTime);
    flash::FlashOpTiming t =
        backend.read(core.end, *ppa, flash_cfg.pageSize);
    sim::Grant mem = fw.dram().acquire(t.xferEnd, flash_cfg.pageSize);
    sim::Grant done = fw.coreComplete(mem.end);
    sim::Grant link = fw.pcie().acquire(done.end, flash_cfg.pageSize);
    sim::Tick device = link.end - start;

    NvmeCommand cmd;
    cmd.op = NvmeOp::Read;
    cmd.lba = lpa;
    cmd.bytes = flash_cfg.pageSize;
    res.nvme = queue.submit(start, cmd, device);
    ++_reads;

    // Functional: copy the bytes out (with ECC verification).
    auto page = store.read(*ppa);
    if (page.empty())
        return res;
    if (!fw.ecc().check(*ppa, page))
        return res; // Uncorrectable error surfaced to the host.
    std::size_t n = std::min(out.size(), page.size());
    std::copy(page.begin(), page.begin() + static_cast<std::ptrdiff_t>(n),
              out.begin());
    res.ok = true;
    return res;
}

std::uint64_t
IoPath::garbageCollect(sim::Tick now)
{
    std::uint64_t erased = 0;
    for (flash::BlockId b : fw.ftl().fullyInvalidBlocks()) {
        backend.erase(now, b);
        store.eraseBlock(b);
        fw.ecc().onErase(b, fw.config().flash.pagesPerBlock);
        fw.ftl().onBlockErased(b);
        ++erased;
    }
    _gcErased += erased;
    return erased;
}

} // namespace beacongnn::ssd
