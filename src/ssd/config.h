/**
 * @file
 * SSD frontend + host system configuration (Table II).
 *
 * The constants here are the calibration points of the timing model:
 * embedded-core service times (the firmware bottleneck of Challenge
 * 3), SSD DRAM bandwidth (the BG-2 ceiling of Fig. 18d), NVMe/PCIe
 * host-link costs (the CC bottleneck of Fig. 15f), and the latencies
 * of the customized hardware engines (die sampler, channel router).
 */

#ifndef BEACONGNN_SSD_CONFIG_H
#define BEACONGNN_SSD_CONFIG_H

#include "flash/config.h"
#include "flash/disturb.h"
#include "sim/types.h"

namespace beacongnn::ssd {

/** SSD controller frontend parameters. */
struct ControllerConfig
{
    unsigned cores = 4;                     ///< Embedded processors.
    /** Core time to issue one backend flash command (poll queues,
     *  FTL lookup, channel programming). The firmware runs dedicated
     *  hardware threads for the I/O poller and the flash scheduler
     *  (Fig. 3), so half the cores issue and half consume. */
    sim::Tick coreIssueTime = sim::nanoseconds(150);
    /** Core time to consume one backend completion (poll status,
     *  configure DMA, update request queues). */
    sim::Tick coreCompleteTime = sim::nanoseconds(150);
    /** Extra core time to sample one page's neighbour list in
     *  firmware (BG-1 style software sampler). */
    sim::Tick coreSampleTime = sim::nanoseconds(400);
    /** Core time to run FTL translation for one host LPA. */
    sim::Tick ftlLookupTime = sim::nanoseconds(100);

    double dramMBps = 8000.0;              ///< SSD DRAM bandwidth.
    sim::Tick dramLatency = sim::nanoseconds(150);
};

/** Hardware NDP engine latencies (§V). */
struct EngineConfig
{
    /** Die sampler: fixed section-iterator + setup latency. */
    sim::Tick samplerSetup = sim::nanoseconds(200);
    /** Die sampler: per-draw latency (TRNG + modulo + lookup). */
    sim::Tick samplerPerDraw = sim::nanoseconds(30);
    /** Channel router: parse/classify one result frame. */
    sim::Tick routerParse = sim::nanoseconds(100);
    /** Crossbar hop to forward one command to another channel. */
    sim::Tick crossbarHop = sim::nanoseconds(50);
};

/** Host system parameters (CC baseline path). */
struct HostConfig
{
    /** NVMe command round trip (submit -> completion seen by host). */
    sim::Tick nvmeRoundTrip = sim::microseconds(15);
    double pcieMBps = 8000.0;               ///< PCIe Gen4 x4.
    /** Host-side node-index -> LPA translation per node (GNN app +
     *  filesystem metadata, §III Challenge 1). */
    sim::Tick translatePerNode = sim::nanoseconds(60);
    /** Host CPU neighbour-sampling cost per sampled node (parse the
     *  list, draw fanout samples, assemble results). */
    sim::Tick samplePerNode = sim::nanoseconds(2000);
    /** Host-side per-batch software overhead (batch assembly). */
    sim::Tick batchOverhead = sim::microseconds(20);
    /** Host software-stack cost per block I/O (syscall, filesystem,
     *  NVMe driver, completion) — the "redundant data copies and
     *  multiple address translations" of §I. */
    sim::Tick ioOverhead = sim::nanoseconds(4000);
    /** Host threads issuing block I/O in parallel. */
    unsigned ioThreads = 4;
};

/** Complete system configuration. */
struct SystemConfig
{
    flash::FlashConfig flash{};
    ControllerConfig controller{};
    EngineConfig engine{};
    HostConfig host{};
    /** Per-die read-disturbance model (DESIGN.md §17). Unarmed by
     *  default: zero retry probability draws nothing, inflates no
     *  timing and publishes no instruments. Array runs derive each
     *  device's seed from this one, so the dies of different devices
     *  degrade independently. */
    flash::DisturbConfig disturb{};
};

} // namespace beacongnn::ssd

#endif // BEACONGNN_SSD_CONFIG_H
