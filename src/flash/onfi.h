/**
 * @file
 * ONFI command set, including the two customized GNN commands of
 * Section VI-C: a global GNN configuration command (issued once per
 * die before a task) and a sampling command (read a page + sample
 * neighbours on the die). Frames mirror Fig. 13 of the paper.
 */

#ifndef BEACONGNN_FLASH_ONFI_H
#define BEACONGNN_FLASH_ONFI_H

#include <cstdint>
#include <vector>

#include "flash/address.h"

namespace beacongnn::flash {

/** ONFI opcode, extended with the BeaconGNN custom commands. */
enum class OnfiOp : std::uint8_t
{
    ReadPage,    ///< 00h/30h page read into the cache register.
    ProgramPage, ///< 80h/10h page program.
    EraseBlock,  ///< 60h/D0h block erase.
    GnnConfig,   ///< Custom: set global GNN parameters on the die.
    GnnSample,   ///< Custom: read page + on-die neighbour sampling.
};

/**
 * Global GNN configuration delivered to every die before a task
 * (Fig. 13, "global configurations").
 */
struct GnnGlobalConfig
{
    std::uint8_t hops = 3;          ///< Number of sampling hops.
    std::uint8_t fanout = 3;        ///< Samples per node per hop.
    std::uint16_t featureDim = 128; ///< Feature vector length (elements).
    std::uint8_t featureBytesPerElem = 2; ///< FP16 features.
    std::uint64_t seed = 1;         ///< Sampling seed (models TRNG seeding).
    /** Per-hop fanout schedule (empty = uniform `fanout`); one extra
     *  config byte per hop on the broadcast frame when present. */
    std::vector<std::uint8_t> fanouts;
    /** Per-edge coefficient payload (attention models); widens each
     *  emitted next-hop edge in the result frame. Zero = none. */
    std::uint8_t edgeCoeffBytes = 0;

    std::uint32_t
    featureBytes() const
    {
        return std::uint32_t{featureDim} * featureBytesPerElem;
    }

    /** Samples per node at hop @p h. */
    std::uint8_t
    fanoutAt(unsigned h) const
    {
        if (fanouts.empty())
            return fanout;
        return h < fanouts.size() ? fanouts[h] : fanouts.back();
    }
};

/**
 * Per-command sampling parameters (Fig. 13, "sampling parameters").
 * Delivered over the data bus alongside the custom opcode.
 */
struct GnnSampleParams
{
    Ppa ppa = 0;                 ///< Page to read.
    std::uint8_t sectionIndex = 0; ///< Section within the page (4 bits).
    std::uint8_t hop = 0;        ///< Hop id of this command.
    /** Number of samples to draw (coalesced count for secondaries). */
    std::uint8_t sampleCount = 0;
    bool isSecondary = false;    ///< Target is a secondary section.
    /** Ordinal of the target among the owner's secondaries (keys the
     *  coalesced re-draws so they are reproducible out of order). */
    std::uint16_t secondaryOrdinal = 0;
    /** First draw index of this command within the section (nonzero
     *  only when coalescing is disabled for ablation). */
    std::uint8_t firstDraw = 0;
    bool retrieveFeature = true; ///< Return the feature vector (primary).
    bool finalHop = false;       ///< Do not generate further samples.
    /** Subgraph reconstruction metadata (batch id / parent slot). */
    std::uint32_t batchId = 0;
    std::uint32_t parentSlot = 0;
    std::uint64_t nodeHint = 0;  ///< Expected node id (security check aid).
};

/**
 * One follow-up sampling command produced on-die and emitted in the
 * result frame (consumed by the channel-level router in BG-2 or the
 * firmware otherwise).
 */
struct EmittedCommand
{
    GnnSampleParams params;
};

/**
 * Result frame of a sampling command (Fig. 13, "sampling results"):
 * header + retrieved feature vector (primary sections only) + the
 * in-page sampled neighbour addresses + follow-up commands for
 * neighbours resolved to other pages/sections.
 */
struct GnnSampleResult
{
    bool ok = true;               ///< Section checks passed (§VI-E).
    std::uint64_t nodeId = 0;     ///< Node the section belongs to.
    std::uint8_t hop = 0;
    std::uint32_t batchId = 0;
    std::uint32_t parentSlot = 0;
    bool featureIncluded = false;
    std::uint32_t featureBytes = 0;
    /** Sampled neighbour node ids (for subgraph reconstruction). */
    std::vector<std::uint64_t> sampledNodes;
    /** Follow-up commands to route (next-hop / secondary reads). */
    std::vector<EmittedCommand> follow;
    /** Per-edge coefficient payload bytes (GAT attention logits
     *  computed beside the sampler); zero for sum-style models. */
    std::uint32_t edgeCoeffBytes = 0;

    /** Frame size on the channel bus, in bytes (header = 16 B). */
    std::uint32_t
    frameBytes() const
    {
        std::uint32_t b = 16;
        if (featureIncluded)
            b += featureBytes;
        b += static_cast<std::uint32_t>(sampledNodes.size()) * 4;
        b += static_cast<std::uint32_t>(follow.size()) * 12;
        b += edgeCoeffBytes;
        return b;
    }
};

} // namespace beacongnn::flash

#endif // BEACONGNN_FLASH_ONFI_H
