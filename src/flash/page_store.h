/**
 * @file
 * Sparse backing store holding the actual bytes of programmed flash
 * pages. Only pages that have been programmed (DirectGraph pages in
 * practice) consume host memory; the rest of the simulated 1 TB device
 * stays virtual.
 *
 * The store also models the two flash reliability hazards of §VI-F:
 * retention bit errors (injectable, detected by the ECC model) and
 * program/erase wear counting per block.
 */

#ifndef BEACONGNN_FLASH_PAGE_STORE_H
#define BEACONGNN_FLASH_PAGE_STORE_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "flash/address.h"

namespace beacongnn::flash {

/** Sparse page-content store with per-block wear accounting. */
class PageStore
{
  public:
    explicit PageStore(const FlashConfig &cfg)
        : codec(cfg), pageSize(cfg.pageSize)
    {
    }

    /** Page size in bytes. */
    std::uint32_t pageBytes() const { return pageSize; }

    /** True if @p ppa has been programmed since its last erase. */
    bool
    isProgrammed(Ppa ppa) const
    {
        return pages.find(ppa) != pages.end();
    }

    /**
     * Program a page. Overwriting a programmed page without an erase
     * is a flash-protocol violation and is reported to the caller.
     *
     * @return false if the page was already programmed (caller must
     *         erase the block first).
     */
    bool
    program(Ppa ppa, std::span<const std::uint8_t> data)
    {
        if (isProgrammed(ppa))
            return false;
        auto &buf = pages[ppa];
        buf.assign(pageSize, 0);
        std::size_t n = std::min<std::size_t>(data.size(), pageSize);
        std::copy(data.begin(), data.begin() + n, buf.begin());
        ++programCount[codec.blockOf(ppa)];
        return true;
    }

    /**
     * Read a programmed page.
     * @return Span of pageBytes() bytes, or empty span if the page was
     *         never programmed (reads of erased pages return nothing
     *         useful on real flash either).
     */
    std::span<const std::uint8_t>
    read(Ppa ppa) const
    {
        auto it = pages.find(ppa);
        if (it == pages.end())
            return {};
        return {it->second.data(), it->second.size()};
    }

    /** Erase every page of @p block and bump its P/E counter. */
    void
    eraseBlock(BlockId block)
    {
        Ppa first = codec.firstPage(block);
        for (unsigned p = 0; p < codec.config().pagesPerBlock; ++p)
            pages.erase(first + p);
        ++eraseCount[block];
    }

    /** P/E (erase) cycles suffered by @p block so far. */
    std::uint64_t
    peCycles(BlockId block) const
    {
        auto it = eraseCount.find(block);
        return it == eraseCount.end() ? 0 : it->second;
    }

    /**
     * Inject a retention bit error: flips a bit in a programmed page.
     * Used by the reliability tests and the scrubbing model.
     *
     * @return true if the page existed and a bit was flipped.
     */
    bool
    corruptBit(Ppa ppa, std::uint32_t byte_off, unsigned bit)
    {
        auto it = pages.find(ppa);
        if (it == pages.end() || byte_off >= it->second.size())
            return false;
        it->second[byte_off] ^= static_cast<std::uint8_t>(1u << (bit & 7));
        return true;
    }

    /** Number of currently programmed pages. */
    std::size_t programmedPages() const { return pages.size(); }

    const AddressCodec &addressCodec() const { return codec; }

  private:
    AddressCodec codec;
    std::uint32_t pageSize;
    std::unordered_map<Ppa, std::vector<std::uint8_t>> pages;
    std::unordered_map<BlockId, std::uint64_t> programCount;
    std::unordered_map<BlockId, std::uint64_t> eraseCount;
};

} // namespace beacongnn::flash

#endif // BEACONGNN_FLASH_PAGE_STORE_H
