/**
 * @file
 * Flash backend geometry and timing configuration.
 *
 * Defaults follow Table II of the paper: a 1 TB-class ULL (Z-NAND)
 * SSD with 16 channels x 8 dies, 4 KB pages, 3 us read (sense)
 * latency and 800 MB/s per-channel transfer rate. The traditional-SSD
 * configuration of Section VII-E only changes read_latency to 20 us.
 */

#ifndef BEACONGNN_FLASH_CONFIG_H
#define BEACONGNN_FLASH_CONFIG_H

#include <cstdint>

#include "sim/types.h"

namespace beacongnn::flash {

/** Physical organisation and timing of the flash backend. */
struct FlashConfig
{
    // ---- Geometry -------------------------------------------------
    unsigned channels = 16;       ///< Flash channels.
    unsigned diesPerChannel = 8;  ///< Dies per channel (chips collapsed).
    unsigned planesPerDie = 2;    ///< Planes per die.
    unsigned blocksPerPlane = 1024; ///< Blocks per plane.
    unsigned pagesPerBlock = 256; ///< Pages per block.
    std::uint32_t pageSize = 4096; ///< Page size in bytes.

    // ---- Timing ---------------------------------------------------
    sim::Tick readLatency = sim::microseconds(3);    ///< tR (ULL sense).
    sim::Tick programLatency = sim::microseconds(100); ///< tPROG.
    sim::Tick eraseLatency = sim::microseconds(1000);  ///< tBERS.
    double channelMBps = 800.0;   ///< Channel transfer rate (MB/s).
    /** Command/address cycle overhead per channel transaction. */
    sim::Tick commandOverhead = sim::nanoseconds(200);
    /** Dual cache/data registers: a die may sense the next page while
     *  the previous result drains over the channel (one outstanding
     *  transfer). Off = single-buffered, the paper's Fig. 6 regime. */
    bool dualRegister = false;

    // ---- Derived --------------------------------------------------
    unsigned totalDies() const { return channels * diesPerChannel; }

    std::uint64_t
    totalBlocks() const
    {
        return std::uint64_t{channels} * diesPerChannel * planesPerDie *
               blocksPerPlane;
    }

    std::uint64_t totalPages() const { return totalBlocks() * pagesPerBlock; }

    std::uint64_t totalBytes() const { return totalPages() * pageSize; }

    /** Time to move @p bytes over one channel (excl. command cycles). */
    sim::Tick
    channelTime(std::uint64_t bytes) const
    {
        return sim::transferTime(bytes, channelMBps);
    }

    /** Switch read timing to the traditional-SSD point of §VII-E. */
    FlashConfig
    asTraditional() const
    {
        FlashConfig c = *this;
        c.readLatency = sim::microseconds(20);
        return c;
    }
};

} // namespace beacongnn::flash

#endif // BEACONGNN_FLASH_CONFIG_H
