/**
 * @file
 * Timing model of the flash backend: per-die sense units and per-
 * channel buses, with MQSim-style analytic FIFO occupancy.
 *
 * The model captures the three effects the paper's motivation hinges
 * on:
 *  - dies sense in parallel but their results serialize on the shared
 *    channel bus (Fig. 6);
 *  - a die with an undrained data register cannot begin a new sense
 *    (single-buffered cache/data register pair), so channel congestion
 *    back-pressures the dies;
 *  - per-transaction command/address cycles consume channel time.
 */

#ifndef BEACONGNN_FLASH_BACKEND_H
#define BEACONGNN_FLASH_BACKEND_H

#include <cstdint>
#include <string>
#include <vector>

#include "flash/address.h"
#include "flash/config.h"
#include "sim/resources.h"

namespace beacongnn::flash {

/** Timing decomposition of one backend flash operation. */
struct FlashOpTiming
{
    sim::Tick cmdStart = 0;   ///< Command/address cycles begin (channel).
    sim::Tick senseStart = 0; ///< Array sense begins (die).
    sim::Tick senseEnd = 0;   ///< Sense + on-die compute complete.
    sim::Tick xferStart = 0;  ///< Data-out begins (channel).
    sim::Tick xferEnd = 0;    ///< Result fully off the die.

    sim::Tick total(sim::Tick ready) const { return xferEnd - ready; }
};

/**
 * The flash backend: all channels and dies of the device, exposed as
 * analytic timing resources plus physical address decoding.
 */
class FlashBackend
{
  public:
    /**
     * @param cfg   Geometry and timing.
     * @param trace Record per-die / per-channel busy intervals
     *              (needed for Fig. 15, costs memory).
     */
    explicit FlashBackend(const FlashConfig &cfg, bool trace = false);

    const FlashConfig &config() const { return cfg; }
    const AddressCodec &codec() const { return _codec; }

    /**
     * Perform a page read.
     *
     * @param ready          Earliest start time.
     * @param ppa            Target page.
     * @param transfer_bytes Bytes returned over the channel (a full
     *                       page without a die sampler; a result frame
     *                       with one).
     * @param on_die_compute Extra die-side latency after the sense
     *                       (die-level sampler execution time).
     */
    FlashOpTiming read(sim::Tick ready, Ppa ppa,
                       std::uint32_t transfer_bytes,
                       sim::Tick on_die_compute = 0);

    /** Program a page: data-in over the channel, then tPROG on the die. */
    FlashOpTiming program(sim::Tick ready, Ppa ppa,
                          std::uint32_t transfer_bytes);

    /** Erase a block: tBERS occupancy on the owning die. */
    FlashOpTiming erase(sim::Tick ready, BlockId block);

    /** Per-channel bus (index < config().channels). */
    sim::Bus &channel(unsigned idx) { return channels.at(idx); }
    const sim::Bus &channel(unsigned idx) const { return channels.at(idx); }

    /** Per-die sense unit (global die index). */
    sim::Bus &die(unsigned global_idx) { return dies.at(global_idx); }
    const sim::Bus &die(unsigned global_idx) const
    {
        return dies.at(global_idx);
    }

    unsigned channelCount() const
    {
        return static_cast<unsigned>(channels.size());
    }
    unsigned dieCount() const { return static_cast<unsigned>(dies.size()); }

    /** Aggregate busy time over all dies. */
    sim::Tick totalDieBusy() const;
    /** Aggregate busy time over all channels. */
    sim::Tick totalChannelBusy() const;

    /** Reset all occupancy and statistics (keeps configuration). */
    void resetStats();

  private:
    FlashConfig cfg;
    AddressCodec _codec;
    std::vector<sim::Bus> channels;
    std::vector<sim::Bus> dies;
    /** Per-die completion time of the previous data-out (dual-
     *  register pipelining constraint). */
    std::vector<sim::Tick> prevXfer;
};

} // namespace beacongnn::flash

#endif // BEACONGNN_FLASH_BACKEND_H
