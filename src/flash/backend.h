/**
 * @file
 * Timing model of the flash backend: per-die sense units and per-
 * channel buses, with MQSim-style analytic FIFO occupancy.
 *
 * The model captures the three effects the paper's motivation hinges
 * on:
 *  - dies sense in parallel but their results serialize on the shared
 *    channel bus (Fig. 6);
 *  - a die with an undrained data register cannot begin a new sense
 *    (single-buffered cache/data register pair), so channel congestion
 *    back-pressures the dies;
 *  - per-transaction command/address cycles consume channel time.
 */

#ifndef BEACONGNN_FLASH_BACKEND_H
#define BEACONGNN_FLASH_BACKEND_H

#include <cstdint>
#include <string>
#include <vector>

#include "flash/address.h"
#include "flash/config.h"
#include "flash/disturb.h"
#include "sim/resources.h"

namespace beacongnn::sim {
class MetricRegistry;
class TraceSink;
} // namespace beacongnn::sim

namespace beacongnn::flash {

/** Timing decomposition of one backend flash operation. */
struct FlashOpTiming
{
    sim::Tick cmdStart = 0;   ///< Command/address cycles begin (channel).
    sim::Tick senseStart = 0; ///< Array sense begins (die).
    sim::Tick senseEnd = 0;   ///< Sense + on-die compute complete.
    sim::Tick xferStart = 0;  ///< Data-out begins (channel).
    sim::Tick xferEnd = 0;    ///< Result fully off the die.
    /** Read-retry rounds this sense needed (disturbance model). */
    unsigned retries = 0;
    /** The target die was killed: no data came back (DESIGN.md §17).
     *  senseEnd/xferEnd hold the failure-detection time. */
    bool failed = false;

    sim::Tick total(sim::Tick ready) const { return xferEnd - ready; }
};

/**
 * The flash backend: all channels and dies of the device, exposed as
 * analytic timing resources plus physical address decoding.
 */
class FlashBackend
{
  public:
    /**
     * @param cfg   Geometry and timing.
     * @param trace Record per-die / per-channel busy intervals
     *              (needed for Fig. 15, costs memory).
     */
    explicit FlashBackend(const FlashConfig &cfg, bool trace = false);

    const FlashConfig &config() const { return cfg; }
    const AddressCodec &codec() const { return _codec; }

    /**
     * Perform a page read.
     *
     * @param ready          Earliest start time.
     * @param ppa            Target page.
     * @param transfer_bytes Bytes returned over the channel (a full
     *                       page without a die sampler; a result frame
     *                       with one).
     * @param on_die_compute Extra die-side latency after the sense
     *                       (die-level sampler execution time).
     */
    FlashOpTiming read(sim::Tick ready, Ppa ppa,
                       std::uint32_t transfer_bytes,
                       sim::Tick on_die_compute = 0);

    /** Program a page: data-in over the channel, then tPROG on the die. */
    FlashOpTiming program(sim::Tick ready, Ppa ppa,
                          std::uint32_t transfer_bytes);

    /** Erase a block: tBERS occupancy on the owning die. */
    FlashOpTiming erase(sim::Tick ready, BlockId block);

    /** Per-channel bus (index < config().channels). */
    sim::Bus &channel(unsigned idx) { return channels.at(idx); }
    const sim::Bus &channel(unsigned idx) const { return channels.at(idx); }

    /** Per-die sense unit (global die index). */
    sim::Bus &die(unsigned global_idx) { return dies.at(global_idx); }
    const sim::Bus &die(unsigned global_idx) const
    {
        return dies.at(global_idx);
    }

    unsigned channelCount() const
    {
        return static_cast<unsigned>(channels.size());
    }
    unsigned dieCount() const { return static_cast<unsigned>(dies.size()); }

    /** Aggregate busy time over all dies. */
    sim::Tick totalDieBusy() const;
    /** Aggregate busy time over all channels. */
    sim::Tick totalChannelBusy() const;

    /** Backend page operations performed so far. */
    std::uint64_t reads() const { return _reads; }
    std::uint64_t programs() const { return _programs; }
    std::uint64_t erases() const { return _erases; }

    /**
     * Arm the per-die disturbance model (DESIGN.md §17). Call before
     * the first read; an unarmed (default) backend draws nothing and
     * publishes no disturbance instruments, so its timing and metrics
     * stay byte-identical to the historical backend.
     */
    void setDisturb(const DisturbConfig &d);
    const DisturbConfig &disturb() const { return _disturb; }

    /**
     * Kill one die at @p at: reads targeting it at or after that tick
     * fail (FlashOpTiming::failed) instead of sensing, occupying the
     * die only for the command cycles that discover the failure.
     */
    void killDieAt(unsigned global_idx, sim::Tick at);
    /** Any die kill scheduled (regardless of whether it fired)? */
    bool hasDieKills() const { return _hasKills; }

    /** Read-retry rounds performed so far (all dies). */
    std::uint64_t retries() const { return _retries; }
    /** Reads that failed against a killed die so far. */
    std::uint64_t failedReads() const { return _failedReads; }

    /**
     * Publish the backend's instruments into @p reg under the
     * `flash.` namespace: device-wide op counters and busy ticks,
     * plus per-unit `flash.ch<c>[.die<d>].*` counters (and
     * `busy_intervals` traces when interval tracing is enabled).
     */
    void publishMetrics(sim::MetricRegistry &reg) const;

    /** Full metric name of one die's instrument (@p global_idx as in
     *  die()), e.g. dieMetricName(5, "sense_ticks"). */
    std::string dieMetricName(unsigned global_idx,
                              const char *instrument) const;
    /** Full metric name of one channel's instrument. */
    std::string channelMetricName(unsigned channel,
                                  const char *instrument) const;

    /**
     * Attach a Chrome-trace sink: every subsequent read/program/erase
     * emits complete events on per-die and per-channel tracks. Also
     * registers the track names. nullptr detaches.
     *
     * @param pid_base    Added to every TracePid this backend emits,
     *                    so the devices of an array get disjoint
     *                    process tracks (device d uses 4*d).
     * @param name_prefix Prepended to the registered process names
     *                    (e.g. "dev2 ").
     */
    void setTraceSink(sim::TraceSink *sink, std::uint32_t pid_base = 0,
                      const std::string &name_prefix = "");

    /** Reset all occupancy and statistics (keeps configuration). */
    void resetStats();

  private:
    FlashConfig cfg;
    AddressCodec _codec;
    std::vector<sim::Bus> channels;
    std::vector<sim::Bus> dies;
    /** Per-die completion time of the previous data-out (dual-
     *  register pipelining constraint). */
    std::vector<sim::Tick> prevXfer;
    bool tracingIntervals = false;
    std::uint64_t _reads = 0;
    std::uint64_t _programs = 0;
    std::uint64_t _erases = 0;
    // ---- Disturbance model (DESIGN.md §17; unarmed by default) ----
    DisturbConfig _disturb;
    /** Per-die retry probability (base x seeded severity factor). */
    std::vector<double> dieRetryProb;
    /** Per-die read sequence numbers keying the retry draws. */
    std::vector<std::uint64_t> dieReadSeq;
    /** Per-die retry-round tallies (flash.chC.dieD.retries). */
    std::vector<std::uint64_t> dieRetries;
    /** Per-die kill tick (kTickMax = healthy). */
    std::vector<sim::Tick> dieKillAt;
    bool _hasKills = false;
    std::uint64_t _retries = 0;
    std::uint64_t _failedReads = 0;
    sim::TraceSink *traceSink = nullptr;
    std::uint32_t tracePidBase = 0;
};

/** Trace track (pid) ids used by the backend and the engine layer. */
enum TracePid : std::uint32_t
{
    kTraceEnginePid = 0, ///< Command-lifetime async spans + batches.
    kTraceDiePid = 1,    ///< One tid per global die index.
    kTraceChannelPid = 2,///< One tid per channel index.
    kTraceDramPid = 3,   ///< SSD DRAM transfers.
};

} // namespace beacongnn::flash

#endif // BEACONGNN_FLASH_BACKEND_H
