/**
 * @file
 * Physical flash addressing.
 *
 * A physical page address (PPA) is a dense 28-bit page index over the
 * whole device (1 TB / 4 KB = 2^28 pages). Blocks are striped
 * channel-first so that consecutive block allocations land on distinct
 * channels and dies, spreading DirectGraph uniformly over the backend.
 */

#ifndef BEACONGNN_FLASH_ADDRESS_H
#define BEACONGNN_FLASH_ADDRESS_H

#include <cstdint>

#include "flash/config.h"

namespace beacongnn::flash {

/** Dense physical page index (28 significant bits for a 1 TB device). */
using Ppa = std::uint32_t;

/** Dense physical block index. */
using BlockId = std::uint32_t;

/** Fully decoded physical location of a page. */
struct PageLocation
{
    unsigned channel;
    unsigned die;        ///< Die index within the channel.
    unsigned plane;
    unsigned block;      ///< Block index within the plane.
    unsigned page;       ///< Page index within the block.

    bool
    operator==(const PageLocation &o) const
    {
        return channel == o.channel && die == o.die && plane == o.plane &&
               block == o.block && page == o.page;
    }
};

/** Geometry-aware PPA codec. */
class AddressCodec
{
  public:
    explicit AddressCodec(const FlashConfig &cfg) : geo(cfg) {}

    /** Block containing @p ppa. */
    BlockId
    blockOf(Ppa ppa) const
    {
        return ppa / geo.pagesPerBlock;
    }

    /** Page offset of @p ppa inside its block. */
    unsigned
    pageInBlock(Ppa ppa) const
    {
        return ppa % geo.pagesPerBlock;
    }

    /** First PPA of @p block. */
    Ppa
    firstPage(BlockId block) const
    {
        return block * geo.pagesPerBlock;
    }

    /** Decode a block id into its physical location (page = 0). */
    PageLocation
    decodeBlock(BlockId b) const
    {
        PageLocation loc{};
        loc.channel = b % geo.channels;
        b /= geo.channels;
        loc.die = b % geo.diesPerChannel;
        b /= geo.diesPerChannel;
        loc.plane = b % geo.planesPerDie;
        b /= geo.planesPerDie;
        loc.block = b;
        loc.page = 0;
        return loc;
    }

    /** Decode a PPA into channel/die/plane/block/page. */
    PageLocation
    decode(Ppa ppa) const
    {
        PageLocation loc = decodeBlock(blockOf(ppa));
        loc.page = pageInBlock(ppa);
        return loc;
    }

    /** Channel serving @p ppa. */
    unsigned channelOf(Ppa ppa) const { return blockOf(ppa) % geo.channels; }

    /** Die (within its channel) serving @p ppa. */
    unsigned
    dieOf(Ppa ppa) const
    {
        return (blockOf(ppa) / geo.channels) % geo.diesPerChannel;
    }

    /** Global die index in [0, channels * diesPerChannel). */
    unsigned
    globalDieOf(Ppa ppa) const
    {
        return channelOf(ppa) * geo.diesPerChannel + dieOf(ppa);
    }

    /** Re-encode a physical location into a block id. */
    BlockId
    encodeBlock(const PageLocation &loc) const
    {
        return ((loc.block * geo.planesPerDie + loc.plane) *
                    geo.diesPerChannel +
                loc.die) *
                   geo.channels +
               loc.channel;
    }

    const FlashConfig &config() const { return geo; }

  private:
    FlashConfig geo;
};

} // namespace beacongnn::flash

#endif // BEACONGNN_FLASH_ADDRESS_H
