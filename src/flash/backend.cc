#include "flash/backend.h"

namespace beacongnn::flash {

FlashBackend::FlashBackend(const FlashConfig &config, bool trace)
    : cfg(config), _codec(config)
{
    channels.reserve(cfg.channels);
    for (unsigned c = 0; c < cfg.channels; ++c)
        channels.emplace_back("ch" + std::to_string(c), trace);
    dies.reserve(cfg.totalDies());
    for (unsigned d = 0; d < cfg.totalDies(); ++d)
        dies.emplace_back("die" + std::to_string(d), trace);
    prevXfer.assign(cfg.totalDies(), 0);
}

FlashOpTiming
FlashBackend::read(sim::Tick ready, Ppa ppa, std::uint32_t transfer_bytes,
                   sim::Tick on_die_compute)
{
    PageLocation loc = _codec.decode(ppa);
    sim::Bus &ch = channels[loc.channel];
    sim::Bus &d = dies[loc.channel * cfg.diesPerChannel + loc.die];

    FlashOpTiming t;
    // Command/address cycles are modelled as fixed latency: they are
    // two orders of magnitude shorter than a data-out and interleave
    // freely between transfers on real channels.
    t.cmdStart = ready;
    // Array sense plus any on-die sampler time occupies the die.
    sim::Grant sense = d.acquire(ready + cfg.commandOverhead,
                                 cfg.readLatency + on_die_compute);
    t.senseStart = sense.start;
    t.senseEnd = sense.end;
    // Data-out serializes on the channel bus.
    sim::Grant xfer = ch.acquire(sense.end, cfg.channelTime(transfer_bytes));
    t.xferStart = xfer.start;
    t.xferEnd = xfer.end;
    unsigned die_idx = loc.channel * cfg.diesPerChannel + loc.die;
    if (cfg.dualRegister) {
        // Dual cache/data registers: the next sense may overlap this
        // transfer, but the one after must wait for it to drain.
        d.holdUntil(prevXfer[die_idx]);
        prevXfer[die_idx] = xfer.end;
    } else {
        // Single-buffered: the die cannot sense again until its
        // result has drained.
        d.holdUntil(xfer.end);
    }
    return t;
}

FlashOpTiming
FlashBackend::program(sim::Tick ready, Ppa ppa, std::uint32_t transfer_bytes)
{
    PageLocation loc = _codec.decode(ppa);
    sim::Bus &ch = channels[loc.channel];
    sim::Bus &d = dies[loc.channel * cfg.diesPerChannel + loc.die];

    FlashOpTiming t;
    // Data-in (command cycles + payload) over the channel first.
    sim::Grant in = ch.acquire(
        ready, cfg.commandOverhead + cfg.channelTime(transfer_bytes));
    t.cmdStart = in.start;
    t.xferStart = in.start;
    t.xferEnd = in.end;
    // Then the program operation on the die.
    sim::Grant prog = d.acquire(in.end, cfg.programLatency);
    t.senseStart = prog.start;
    t.senseEnd = prog.end;
    return t;
}

FlashOpTiming
FlashBackend::erase(sim::Tick ready, BlockId block)
{
    PageLocation loc = _codec.decodeBlock(block);
    sim::Bus &d = dies[loc.channel * cfg.diesPerChannel + loc.die];

    FlashOpTiming t;
    t.cmdStart = ready;
    sim::Grant er =
        d.acquire(ready + cfg.commandOverhead, cfg.eraseLatency);
    t.senseStart = er.start;
    t.senseEnd = er.end;
    t.xferStart = er.end;
    t.xferEnd = er.end;
    return t;
}

sim::Tick
FlashBackend::totalDieBusy() const
{
    sim::Tick b = 0;
    for (const auto &d : dies)
        b += d.busyTime();
    return b;
}

sim::Tick
FlashBackend::totalChannelBusy() const
{
    sim::Tick b = 0;
    for (const auto &c : channels)
        b += c.busyTime();
    return b;
}

void
FlashBackend::resetStats()
{
    for (auto &c : channels)
        c.resetStats();
    for (auto &d : dies)
        d.resetStats();
    prevXfer.assign(cfg.totalDies(), 0);
}

} // namespace beacongnn::flash
