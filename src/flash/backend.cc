#include "flash/backend.h"

#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/trace_events.h"

namespace beacongnn::flash {

namespace {

/** Stateless uniform draw in [0, 1) keyed on (seed, die, seq, round). */
double
disturbDraw(std::uint64_t seed, unsigned die, std::uint64_t seq,
            unsigned round)
{
    std::uint64_t k = sim::splitmix64(seed ^ (std::uint64_t{die} << 40));
    k = sim::splitmix64(k ^ seq ^ (std::uint64_t{round} << 56));
    return static_cast<double>(k >> 11) * 0x1.0p-53;
}

} // namespace

FlashBackend::FlashBackend(const FlashConfig &config, bool trace)
    : cfg(config), _codec(config), tracingIntervals(trace)
{
    channels.reserve(cfg.channels);
    for (unsigned c = 0; c < cfg.channels; ++c)
        channels.emplace_back("ch" + std::to_string(c), trace);
    dies.reserve(cfg.totalDies());
    for (unsigned d = 0; d < cfg.totalDies(); ++d)
        dies.emplace_back("die" + std::to_string(d), trace);
    prevXfer.assign(cfg.totalDies(), 0);
}

void
FlashBackend::setDisturb(const DisturbConfig &d)
{
    _disturb = d;
    dieRetryProb.assign(cfg.totalDies(), 0.0);
    dieReadSeq.assign(cfg.totalDies(), 0);
    dieRetries.assign(cfg.totalDies(), 0);
    if (!d.armed())
        return;
    // Seeded per-die severity: each die's retry probability is the
    // base scaled by a factor in [0.5, 1.5), so the array of dies
    // degrades unevenly like a real device.
    for (unsigned die = 0; die < cfg.totalDies(); ++die) {
        double f = 0.5 + disturbDraw(sim::splitmix64(d.seed), die, 0, 0);
        dieRetryProb[die] = std::min(1.0, d.retryProb * f);
    }
}

void
FlashBackend::killDieAt(unsigned global_idx, sim::Tick at)
{
    if (dieKillAt.empty())
        dieKillAt.assign(cfg.totalDies(), sim::kTickMax);
    dieKillAt.at(global_idx) = std::min(dieKillAt[global_idx], at);
    _hasKills = true;
}

FlashOpTiming
FlashBackend::read(sim::Tick ready, Ppa ppa, std::uint32_t transfer_bytes,
                   sim::Tick on_die_compute)
{
    PageLocation loc = _codec.decode(ppa);
    sim::Bus &ch = channels[loc.channel];
    unsigned die_at = loc.channel * cfg.diesPerChannel + loc.die;
    sim::Bus &d = dies[die_at];

    FlashOpTiming t;
    // Command/address cycles are modelled as fixed latency: they are
    // two orders of magnitude shorter than a data-out and interleave
    // freely between transfers on real channels.
    t.cmdStart = ready;

    // A killed die fails the read at command time: the status poll
    // discovers the dead die after the command cycles, no sense or
    // transfer happens, and the caller sees FlashOpTiming::failed.
    if (_hasKills && ready >= dieKillAt[die_at]) {
        t.failed = true;
        t.senseStart = t.senseEnd = ready + cfg.commandOverhead;
        t.xferStart = t.xferEnd = t.senseEnd;
        ++_failedReads;
        return t;
    }

    // Disturbance model: each retry round re-draws against this die's
    // severity-scaled probability, re-senses and pays an ECC soft-
    // decode — all of it occupying the die, so disturbed dies are
    // slow dies and channel back-pressure follows naturally.
    sim::Tick retry_time = 0;
    if (_disturb.armed()) {
        std::uint64_t seq = dieReadSeq[die_at]++;
        while (t.retries < _disturb.maxRetries &&
               disturbDraw(_disturb.seed, die_at, seq, t.retries) <
                   dieRetryProb[die_at])
            ++t.retries;
        if (t.retries > 0) {
            retry_time = static_cast<sim::Tick>(t.retries) *
                         (cfg.readLatency + _disturb.eccLatency);
            dieRetries[die_at] += t.retries;
            _retries += t.retries;
        }
    }

    // Array sense plus any on-die sampler time occupies the die.
    sim::Grant sense =
        d.acquire(ready + cfg.commandOverhead,
                  cfg.readLatency + on_die_compute + retry_time);
    t.senseStart = sense.start;
    t.senseEnd = sense.end;
    // Data-out serializes on the channel bus.
    sim::Grant xfer = ch.acquire(sense.end, cfg.channelTime(transfer_bytes));
    t.xferStart = xfer.start;
    t.xferEnd = xfer.end;
    unsigned die_idx = die_at;
    ++_reads;
    if (traceSink) {
        traceSink->complete("sense", "flash", tracePidBase + kTraceDiePid,
                            die_idx, sense.start, sense.end);
        traceSink->complete("xfer", "flash",
                            tracePidBase + kTraceChannelPid,
                            loc.channel, xfer.start, xfer.end);
    }
    if (cfg.dualRegister) {
        // Dual cache/data registers: the next sense may overlap this
        // transfer, but the one after must wait for it to drain.
        d.holdUntil(prevXfer[die_idx]);
        prevXfer[die_idx] = xfer.end;
    } else {
        // Single-buffered: the die cannot sense again until its
        // result has drained.
        d.holdUntil(xfer.end);
    }
    return t;
}

FlashOpTiming
FlashBackend::program(sim::Tick ready, Ppa ppa, std::uint32_t transfer_bytes)
{
    PageLocation loc = _codec.decode(ppa);
    sim::Bus &ch = channels[loc.channel];
    sim::Bus &d = dies[loc.channel * cfg.diesPerChannel + loc.die];

    FlashOpTiming t;
    // Data-in (command cycles + payload) over the channel first.
    sim::Grant in = ch.acquire(
        ready, cfg.commandOverhead + cfg.channelTime(transfer_bytes));
    t.cmdStart = in.start;
    t.xferStart = in.start;
    t.xferEnd = in.end;
    // Then the program operation on the die.
    sim::Grant prog = d.acquire(in.end, cfg.programLatency);
    t.senseStart = prog.start;
    t.senseEnd = prog.end;
    ++_programs;
    if (traceSink) {
        traceSink->complete("data-in", "flash",
                            tracePidBase + kTraceChannelPid,
                            loc.channel, in.start, in.end);
        traceSink->complete(
            "program", "flash", tracePidBase + kTraceDiePid,
            loc.channel * cfg.diesPerChannel + loc.die, prog.start,
            prog.end);
    }
    return t;
}

FlashOpTiming
FlashBackend::erase(sim::Tick ready, BlockId block)
{
    PageLocation loc = _codec.decodeBlock(block);
    sim::Bus &d = dies[loc.channel * cfg.diesPerChannel + loc.die];

    FlashOpTiming t;
    t.cmdStart = ready;
    sim::Grant er =
        d.acquire(ready + cfg.commandOverhead, cfg.eraseLatency);
    t.senseStart = er.start;
    t.senseEnd = er.end;
    t.xferStart = er.end;
    t.xferEnd = er.end;
    ++_erases;
    if (traceSink) {
        traceSink->complete(
            "erase", "flash", tracePidBase + kTraceDiePid,
            loc.channel * cfg.diesPerChannel + loc.die, er.start,
            er.end);
    }
    return t;
}

sim::Tick
FlashBackend::totalDieBusy() const
{
    sim::Tick b = 0;
    for (const auto &d : dies)
        b += d.busyTime();
    return b;
}

sim::Tick
FlashBackend::totalChannelBusy() const
{
    sim::Tick b = 0;
    for (const auto &c : channels)
        b += c.busyTime();
    return b;
}

std::string
FlashBackend::dieMetricName(unsigned global_idx,
                            const char *instrument) const
{
    unsigned ch = global_idx / cfg.diesPerChannel;
    unsigned die = global_idx % cfg.diesPerChannel;
    return "flash.ch" + std::to_string(ch) + ".die" +
           std::to_string(die) + "." + instrument;
}

std::string
FlashBackend::channelMetricName(unsigned channel,
                                const char *instrument) const
{
    return "flash.ch" + std::to_string(channel) + "." + instrument;
}

void
FlashBackend::publishMetrics(sim::MetricRegistry &reg) const
{
    reg.counter("flash.reads").add(_reads);
    reg.counter("flash.programs").add(_programs);
    reg.counter("flash.erases").add(_erases);
    reg.counter("flash.die_busy_ticks").add(totalDieBusy());
    reg.counter("flash.channel_busy_ticks").add(totalChannelBusy());
    // Disturbance instruments exist only when the model is armed (or
    // a die kill is scheduled), so undisturbed snapshots stay byte-
    // identical to the historical backend's.
    if (_disturb.armed())
        reg.counter("flash.retries").add(_retries);
    if (_hasKills)
        reg.counter("flash.failed_reads").add(_failedReads);
    for (unsigned d = 0; d < dieCount(); ++d) {
        const sim::Bus &die_bus = dies[d];
        reg.counter(dieMetricName(d, "sense_ticks"))
            .add(die_bus.busyTime());
        reg.counter(dieMetricName(d, "reads")).add(die_bus.requests());
        if (_disturb.armed())
            reg.counter(dieMetricName(d, "retries")).add(dieRetries[d]);
        if (tracingIntervals) {
            reg.interval(dieMetricName(d, "busy_intervals"))
                .merge(die_bus.intervals());
        }
    }
    for (unsigned c = 0; c < channelCount(); ++c) {
        const sim::Bus &ch = channels[c];
        reg.counter(channelMetricName(c, "xfer_ticks"))
            .add(ch.busyTime());
        reg.counter(channelMetricName(c, "requests"))
            .add(ch.requests());
        if (tracingIntervals) {
            reg.interval(channelMetricName(c, "busy_intervals"))
                .merge(ch.intervals());
        }
    }
}

void
FlashBackend::setTraceSink(sim::TraceSink *sink, std::uint32_t pid_base,
                           const std::string &name_prefix)
{
    traceSink = sink;
    tracePidBase = pid_base;
    if (!sink)
        return;
    sink->setProcessName(pid_base + kTraceDiePid,
                         name_prefix + "flash dies");
    sink->setProcessName(pid_base + kTraceChannelPid,
                         name_prefix + "flash channels");
    for (unsigned d = 0; d < dieCount(); ++d) {
        sink->setThreadName(pid_base + kTraceDiePid, d,
                            "ch" + std::to_string(d / cfg.diesPerChannel) +
                                ".die" +
                                std::to_string(d % cfg.diesPerChannel));
    }
    for (unsigned c = 0; c < channelCount(); ++c)
        sink->setThreadName(pid_base + kTraceChannelPid, c,
                            "ch" + std::to_string(c));
}

void
FlashBackend::resetStats()
{
    for (auto &c : channels)
        c.resetStats();
    for (auto &d : dies)
        d.resetStats();
    prevXfer.assign(cfg.totalDies(), 0);
    _reads = _programs = _erases = 0;
    _retries = _failedReads = 0;
    if (!dieReadSeq.empty())
        dieReadSeq.assign(cfg.totalDies(), 0);
    if (!dieRetries.empty())
        dieRetries.assign(cfg.totalDies(), 0);
}

} // namespace beacongnn::flash
