#include "flash/backend.h"

#include "sim/metrics.h"
#include "sim/trace_events.h"

namespace beacongnn::flash {

FlashBackend::FlashBackend(const FlashConfig &config, bool trace)
    : cfg(config), _codec(config), tracingIntervals(trace)
{
    channels.reserve(cfg.channels);
    for (unsigned c = 0; c < cfg.channels; ++c)
        channels.emplace_back("ch" + std::to_string(c), trace);
    dies.reserve(cfg.totalDies());
    for (unsigned d = 0; d < cfg.totalDies(); ++d)
        dies.emplace_back("die" + std::to_string(d), trace);
    prevXfer.assign(cfg.totalDies(), 0);
}

FlashOpTiming
FlashBackend::read(sim::Tick ready, Ppa ppa, std::uint32_t transfer_bytes,
                   sim::Tick on_die_compute)
{
    PageLocation loc = _codec.decode(ppa);
    sim::Bus &ch = channels[loc.channel];
    sim::Bus &d = dies[loc.channel * cfg.diesPerChannel + loc.die];

    FlashOpTiming t;
    // Command/address cycles are modelled as fixed latency: they are
    // two orders of magnitude shorter than a data-out and interleave
    // freely between transfers on real channels.
    t.cmdStart = ready;
    // Array sense plus any on-die sampler time occupies the die.
    sim::Grant sense = d.acquire(ready + cfg.commandOverhead,
                                 cfg.readLatency + on_die_compute);
    t.senseStart = sense.start;
    t.senseEnd = sense.end;
    // Data-out serializes on the channel bus.
    sim::Grant xfer = ch.acquire(sense.end, cfg.channelTime(transfer_bytes));
    t.xferStart = xfer.start;
    t.xferEnd = xfer.end;
    unsigned die_idx = loc.channel * cfg.diesPerChannel + loc.die;
    ++_reads;
    if (traceSink) {
        traceSink->complete("sense", "flash", tracePidBase + kTraceDiePid,
                            die_idx, sense.start, sense.end);
        traceSink->complete("xfer", "flash",
                            tracePidBase + kTraceChannelPid,
                            loc.channel, xfer.start, xfer.end);
    }
    if (cfg.dualRegister) {
        // Dual cache/data registers: the next sense may overlap this
        // transfer, but the one after must wait for it to drain.
        d.holdUntil(prevXfer[die_idx]);
        prevXfer[die_idx] = xfer.end;
    } else {
        // Single-buffered: the die cannot sense again until its
        // result has drained.
        d.holdUntil(xfer.end);
    }
    return t;
}

FlashOpTiming
FlashBackend::program(sim::Tick ready, Ppa ppa, std::uint32_t transfer_bytes)
{
    PageLocation loc = _codec.decode(ppa);
    sim::Bus &ch = channels[loc.channel];
    sim::Bus &d = dies[loc.channel * cfg.diesPerChannel + loc.die];

    FlashOpTiming t;
    // Data-in (command cycles + payload) over the channel first.
    sim::Grant in = ch.acquire(
        ready, cfg.commandOverhead + cfg.channelTime(transfer_bytes));
    t.cmdStart = in.start;
    t.xferStart = in.start;
    t.xferEnd = in.end;
    // Then the program operation on the die.
    sim::Grant prog = d.acquire(in.end, cfg.programLatency);
    t.senseStart = prog.start;
    t.senseEnd = prog.end;
    ++_programs;
    if (traceSink) {
        traceSink->complete("data-in", "flash",
                            tracePidBase + kTraceChannelPid,
                            loc.channel, in.start, in.end);
        traceSink->complete(
            "program", "flash", tracePidBase + kTraceDiePid,
            loc.channel * cfg.diesPerChannel + loc.die, prog.start,
            prog.end);
    }
    return t;
}

FlashOpTiming
FlashBackend::erase(sim::Tick ready, BlockId block)
{
    PageLocation loc = _codec.decodeBlock(block);
    sim::Bus &d = dies[loc.channel * cfg.diesPerChannel + loc.die];

    FlashOpTiming t;
    t.cmdStart = ready;
    sim::Grant er =
        d.acquire(ready + cfg.commandOverhead, cfg.eraseLatency);
    t.senseStart = er.start;
    t.senseEnd = er.end;
    t.xferStart = er.end;
    t.xferEnd = er.end;
    ++_erases;
    if (traceSink) {
        traceSink->complete(
            "erase", "flash", tracePidBase + kTraceDiePid,
            loc.channel * cfg.diesPerChannel + loc.die, er.start,
            er.end);
    }
    return t;
}

sim::Tick
FlashBackend::totalDieBusy() const
{
    sim::Tick b = 0;
    for (const auto &d : dies)
        b += d.busyTime();
    return b;
}

sim::Tick
FlashBackend::totalChannelBusy() const
{
    sim::Tick b = 0;
    for (const auto &c : channels)
        b += c.busyTime();
    return b;
}

std::string
FlashBackend::dieMetricName(unsigned global_idx,
                            const char *instrument) const
{
    unsigned ch = global_idx / cfg.diesPerChannel;
    unsigned die = global_idx % cfg.diesPerChannel;
    return "flash.ch" + std::to_string(ch) + ".die" +
           std::to_string(die) + "." + instrument;
}

std::string
FlashBackend::channelMetricName(unsigned channel,
                                const char *instrument) const
{
    return "flash.ch" + std::to_string(channel) + "." + instrument;
}

void
FlashBackend::publishMetrics(sim::MetricRegistry &reg) const
{
    reg.counter("flash.reads").add(_reads);
    reg.counter("flash.programs").add(_programs);
    reg.counter("flash.erases").add(_erases);
    reg.counter("flash.die_busy_ticks").add(totalDieBusy());
    reg.counter("flash.channel_busy_ticks").add(totalChannelBusy());
    for (unsigned d = 0; d < dieCount(); ++d) {
        const sim::Bus &die_bus = dies[d];
        reg.counter(dieMetricName(d, "sense_ticks"))
            .add(die_bus.busyTime());
        reg.counter(dieMetricName(d, "reads")).add(die_bus.requests());
        if (tracingIntervals) {
            reg.interval(dieMetricName(d, "busy_intervals"))
                .merge(die_bus.intervals());
        }
    }
    for (unsigned c = 0; c < channelCount(); ++c) {
        const sim::Bus &ch = channels[c];
        reg.counter(channelMetricName(c, "xfer_ticks"))
            .add(ch.busyTime());
        reg.counter(channelMetricName(c, "requests"))
            .add(ch.requests());
        if (tracingIntervals) {
            reg.interval(channelMetricName(c, "busy_intervals"))
                .merge(ch.intervals());
        }
    }
}

void
FlashBackend::setTraceSink(sim::TraceSink *sink, std::uint32_t pid_base,
                           const std::string &name_prefix)
{
    traceSink = sink;
    tracePidBase = pid_base;
    if (!sink)
        return;
    sink->setProcessName(pid_base + kTraceDiePid,
                         name_prefix + "flash dies");
    sink->setProcessName(pid_base + kTraceChannelPid,
                         name_prefix + "flash channels");
    for (unsigned d = 0; d < dieCount(); ++d) {
        sink->setThreadName(pid_base + kTraceDiePid, d,
                            "ch" + std::to_string(d / cfg.diesPerChannel) +
                                ".die" +
                                std::to_string(d % cfg.diesPerChannel));
    }
    for (unsigned c = 0; c < channelCount(); ++c)
        sink->setThreadName(pid_base + kTraceChannelPid, c,
                            "ch" + std::to_string(c));
}

void
FlashBackend::resetStats()
{
    for (auto &c : channels)
        c.resetStats();
    for (auto &d : dies)
        d.resetStats();
    prevXfer.assign(cfg.totalDies(), 0);
    _reads = _programs = _erases = 0;
}

} // namespace beacongnn::flash
