/**
 * @file
 * Per-die flash disturbance model (DESIGN.md §17): seeded read-retry
 * probability with ECC latency inflation, plus die kill schedules.
 *
 * Real NAND dies degrade unevenly — read disturb, retention loss and
 * wear push some dies into read-retry territory long before others.
 * The model captures the tail-latency consequence the routing layer
 * must absorb: a retried sense occupies the die for an extra
 * sense + ECC soft-decode round per retry, so a disturbed die is a
 * slow die, and a killed die fails its reads outright.
 *
 * Determinism: every retry decision is a stateless hash of
 * (seed, die, per-die read sequence, round). A device's reads execute
 * in its event-lane order, so the sequence numbers — and therefore
 * the whole disturbance timeline — are a pure function of the run
 * configuration, independent of the worker count.
 */

#ifndef BEACONGNN_FLASH_DISTURB_H
#define BEACONGNN_FLASH_DISTURB_H

#include <cstdint>

#include "sim/types.h"

namespace beacongnn::flash {

/** Read-disturbance configuration of one device's backend. */
struct DisturbConfig
{
    /**
     * Base per-read probability that a sense needs a read-retry
     * round. Each die scales it by a seeded per-die severity factor
     * in [0.5, 1.5), so dies degrade unevenly; each retry round
     * re-draws, giving a geometric retry-count distribution. 0
     * (default) arms nothing and changes no timing or metrics.
     */
    double retryProb = 0.0;
    /** Retry rounds after which the controller gives up and returns
     *  the best-effort (still ECC-correctable) data. */
    unsigned maxRetries = 4;
    /** ECC soft-decode latency added per retry round, on top of the
     *  re-sense itself. */
    sim::Tick eccLatency = sim::microseconds(2);
    /** Seed of the per-die severity factors and retry draws. */
    std::uint64_t seed = 0xD15Bull;

    bool armed() const { return retryProb > 0.0; }
};

} // namespace beacongnn::flash

#endif // BEACONGNN_FLASH_DISTURB_H
