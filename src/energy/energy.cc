#include "energy/energy.h"

namespace beacongnn::energy {

EnergyBreakdown
account(const EnergyConstants &c, const EnergyInputs &in)
{
    EnergyBreakdown e;
    e.flash = static_cast<double>(in.tally.flashReads) *
              c.flashSenseNJ * 1e-9;
    e.channel = static_cast<double>(in.tally.channelBytes) *
                c.channelPJPerByte * 1e-12;
    e.dram = static_cast<double>(in.tally.dramBytes) * c.dramPJPerByte *
             1e-12;
    e.pcie = static_cast<double>(in.tally.pcieBytes) * c.pciePJPerByte *
             1e-12;
    e.cores = sim::toSeconds(in.coreBusy) * c.coreActiveW;
    e.hostCpu = sim::toSeconds(in.tally.hostCpuBusy) * c.hostCpuW;
    e.accel = static_cast<double>(in.accelMacs) * c.accelPJPerMac *
                  1e-12 +
              static_cast<double>(in.accelSramBytes) * c.sramPJPerByte *
                  1e-12;
    e.engines = static_cast<double>(in.engineCommands) *
                (c.samplerNJPerCmd + c.routerNJPerCmd) * 1e-9;
    e.background = sim::toSeconds(in.duration) * c.ssdStaticW;
    return e;
}

void
publish(sim::MetricRegistry &reg, const EnergyBreakdown &e)
{
    reg.gauge("energy.flash_j").set(e.flash);
    reg.gauge("energy.channel_j").set(e.channel);
    reg.gauge("energy.dram_j").set(e.dram);
    reg.gauge("energy.pcie_j").set(e.pcie);
    reg.gauge("energy.cores_j").set(e.cores);
    reg.gauge("energy.host_cpu_j").set(e.hostCpu);
    reg.gauge("energy.accel_j").set(e.accel);
    reg.gauge("energy.engines_j").set(e.engines);
    reg.gauge("energy.background_j").set(e.background);
    reg.gauge("energy.total_j").set(e.total());
}

} // namespace beacongnn::energy
