/**
 * @file
 * Energy model (§VII-A "Area and Power estimation", Fig. 19).
 *
 * The paper composes McPAT (controller cores), DRAMPower (SSD DRAM),
 * CACTI (accelerator SRAM) and synthesis results (sampler/router) into
 * a per-component energy breakdown. We reproduce that structure with
 * per-event energy constants representative of the 40 nm / 32 nm
 * technology points those tools report. Absolute joules differ from
 * the paper's testbed; the breakdown *shape* (which component
 * dominates on which platform) is the reproduction target.
 */

#ifndef BEACONGNN_ENERGY_ENERGY_H
#define BEACONGNN_ENERGY_ENERGY_H

#include <cstdint>

#include "engines/gnn_engine.h"
#include "sim/metrics.h"
#include "sim/types.h"

namespace beacongnn::energy {

/** Per-event energy constants. */
struct EnergyConstants
{
    double flashSenseNJ = 300.0;    ///< One page array sense (Z-NAND).
    double channelPJPerByte = 100.0; ///< ONFI high-speed IO.
    double dramPJPerByte = 175.0;   ///< SSD DRAM access (DRAMPower).
    double pciePJPerByte = 150.0;   ///< Host link incl. serdes + copies.
    double coreActiveW = 0.35;      ///< One busy embedded core (McPAT).
    double hostCpuW = 1.5;          ///< Host CPU I/O + sampling power.
    double accelPJPerMac = 1.2;     ///< FP16 MAC at 32 nm.
    double sramPJPerByte = 0.6;     ///< Accelerator SRAM (CACTI-7.0).
    double samplerNJPerCmd = 0.05;  ///< Die sampler per command (DC).
    double routerNJPerCmd = 0.08;   ///< Channel router per command.
    double ssdStaticW = 0.3;        ///< Controller + DRAM background.
};

/** Per-component energy breakdown in joules (Fig. 19 categories). */
struct EnergyBreakdown
{
    double flash = 0;    ///< Array senses.
    double channel = 0;  ///< Flash channel transfers.
    double dram = 0;     ///< SSD DRAM traffic.
    double pcie = 0;     ///< Off-storage transfer (PCIe).
    double cores = 0;    ///< Embedded-core activity.
    double hostCpu = 0;  ///< Host CPU sampling/translation.
    double accel = 0;    ///< Accelerator MACs + SRAM.
    double engines = 0;  ///< Die samplers + channel routers.
    double background = 0; ///< Static SSD power over the run.

    double
    total() const
    {
        return flash + channel + dram + pcie + cores + hostCpu + accel +
               engines + background;
    }

    /** Fraction of total spent moving data off-storage. */
    double
    offStorageShare() const
    {
        double t = total();
        return t > 0 ? (pcie + hostCpu) / t : 0.0;
    }
};

/** Inputs gathered by a platform run. */
struct EnergyInputs
{
    engines::PrepTally tally;      ///< Summed over all batches.
    sim::Tick coreBusy = 0;        ///< Embedded-core busy time.
    std::uint64_t accelMacs = 0;
    std::uint64_t accelSramBytes = 0;
    std::uint64_t engineCommands = 0; ///< Sampler/router operations.
    sim::Tick duration = 0;        ///< End-to-end run time.
};

/** Account the energy of one run. */
EnergyBreakdown account(const EnergyConstants &c, const EnergyInputs &in);

/** Publish a breakdown as `energy.*_j` gauges. */
void publish(sim::MetricRegistry &reg, const EnergyBreakdown &e);

} // namespace beacongnn::energy

#endif // BEACONGNN_ENERGY_ENERGY_H
