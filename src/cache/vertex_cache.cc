#include "cache/vertex_cache.h"

#include <algorithm>
#include <cctype>

#include "sim/log.h"

namespace beacongnn::cache {

const char *
cachePolicyName(CachePolicy policy)
{
    switch (policy) {
      case CachePolicy::Lru: return "lru";
      case CachePolicy::MsLru: return "mslru";
      case CachePolicy::Fifo: return "fifo";
    }
    return "?";
}

std::optional<CachePolicy>
findCachePolicy(const std::string &name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    for (CachePolicy p : {CachePolicy::Lru, CachePolicy::MsLru,
                          CachePolicy::Fifo}) {
        if (lower == cachePolicyName(p))
            return p;
    }
    return std::nullopt;
}

std::string
cachePolicyList()
{
    std::string out;
    for (CachePolicy p : {CachePolicy::Lru, CachePolicy::MsLru,
                          CachePolicy::Fifo}) {
        if (!out.empty())
            out += ", ";
        out += cachePolicyName(p);
    }
    return out;
}

std::uint64_t
CacheConfig::lines() const
{
    if (!enabled())
        return 0;
    if (lineBytes == 0)
        sim::fatal("CacheConfig: lineBytes must be positive");
    auto n = static_cast<std::uint64_t>(capacityMB * 1024.0 * 1024.0 /
                                        static_cast<double>(lineBytes));
    return std::max<std::uint64_t>(1, n);
}

VertexCache::VertexCache(const CacheConfig &cfg)
    : _cfg(cfg), _capacity(cfg.lines())
{
    if (_capacity == 0)
        sim::fatal("VertexCache: constructed with a disabled config");
    _sections.resize(_cfg.policy == CachePolicy::MsLru ? 2 : 1);
    if (_cfg.policy == CachePolicy::MsLru)
        _protectedCapacity = std::max<std::uint64_t>(1, _capacity / 2);
    _index.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(_capacity, 1u << 20)));
}

std::optional<sim::Tick>
VertexCache::lookup(std::uint64_t key)
{
    auto it = _index.find(key);
    if (it == _index.end()) {
        ++_stats.misses;
        return std::nullopt;
    }
    ++_stats.hits;
    LineList::iterator line = it->second;
    const sim::Tick filled = line->filledAt;
    switch (_cfg.policy) {
      case CachePolicy::Fifo:
        break; // Insertion order is never disturbed.
      case CachePolicy::Lru:
        _sections[0].splice(_sections[0].begin(), _sections[0], line);
        break;
      case CachePolicy::MsLru: {
        // A re-hit proves the line is hot: promote it to the
        // protected section's MRU end. When the protected section
        // overflows, its LRU line is demoted back to probation's MRU
        // end (it keeps a second chance before eviction).
        LineList &prot = _sections[1];
        prot.splice(prot.begin(), _sections[line->section], line);
        line->section = 1;
        if (prot.size() > _protectedCapacity) {
            LineList::iterator demote = std::prev(prot.end());
            demote->section = 0;
            _sections[0].splice(_sections[0].begin(), prot, demote);
        }
        break;
      }
    }
    return filled;
}

void
VertexCache::fill(std::uint64_t key, sim::Tick when)
{
    if (_index.count(key) != 0)
        return;
    if (_index.size() >= _capacity)
        evictOne();
    _sections[0].push_front(Line{key, when, 0});
    _index.emplace(key, _sections[0].begin());
    ++_stats.fills;
    _stats.bytes += _cfg.lineBytes;
}

void
VertexCache::evictOne()
{
    // Victim: the LRU end of probation; of the protected section only
    // when probation is empty (mslru keeps probation non-empty almost
    // always since fills land there). Deterministic — pure list order.
    LineList &from =
        !_sections[0].empty() ? _sections[0] : _sections.back();
    const Line &victim = from.back();
    _index.erase(victim.key);
    from.pop_back();
    ++_stats.evictions;
    _stats.bytes -= _cfg.lineBytes;
}

} // namespace beacongnn::cache
