/**
 * @file
 * In-SSD vertex/feature cache tier (DESIGN.md §14).
 *
 * BeaconGNN pays a flash sense for every sampled neighbour, but real
 * serving traffic is heavily skewed — the hot vertices of a power-law
 * graph are re-read constantly. The VertexCache models a slice of
 * device DRAM reserved for exactly that hot set: the engine probes it
 * before every sense (streaming: per DirectGraph section; barrier:
 * per physical page) and a hit is served on the short DRAM path with
 * no flash operation at all.
 *
 * Eviction policies sit behind one deterministic interface:
 *  - lru:   single recency list, classic LRU.
 *  - mslru: two-section (probation/protected) segmented LRU — a line
 *    enters probation on fill and is promoted on its first re-hit, so
 *    one-shot scans cannot flush the protected hot set.
 *  - fifo:  insertion order only; the degenerate baseline.
 *
 * Determinism rules: every structure is an intrusive list spliced in
 * event order; the key index is an unordered_map used for point
 * lookups only and never iterated (bgnlint BGN002). One cache per
 * device, touched only from the owning device's event lane, so array
 * runs stay byte-identical for any BGN_JOBS (DESIGN.md §13/§14).
 */

#ifndef BEACONGNN_CACHE_VERTEX_CACHE_H
#define BEACONGNN_CACHE_VERTEX_CACHE_H

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace beacongnn::cache {

/** Eviction policy families of the device-DRAM cache tier. */
enum class CachePolicy : std::uint8_t
{
    Lru,   ///< Single recency list.
    MsLru, ///< Multi-section (probation/protected) segmented LRU.
    Fifo,  ///< Insertion order; the degenerate baseline.
};

/** Short display name ("lru", "mslru", "fifo"). */
const char *cachePolicyName(CachePolicy policy);

/** Lookup by display name (case-insensitive); empty when unknown. */
std::optional<CachePolicy> findCachePolicy(const std::string &name);

/** All policy display names, comma-separated (for CLI messages). */
std::string cachePolicyList();

/**
 * Cache tier sizing of one run. capacityMB = 0 (the default) disables
 * the tier entirely: no cache object is built, no instrument is
 * published, and every run stays byte-identical to the historical
 * cache-less simulator.
 */
struct CacheConfig
{
    /** Device DRAM reserved for the cache, in MiB per device. */
    double capacityMB = 0.0;
    CachePolicy policy = CachePolicy::Lru;
    /** Cache line granularity — one cached section/page occupies one
     *  line (4 KiB, a flash page, by default). */
    std::uint32_t lineBytes = 4096;

    bool enabled() const { return capacityMB > 0.0; }

    /** Capacity in lines (>= 1 whenever the tier is enabled). */
    std::uint64_t lines() const;
};

/** Hit/traffic tallies of one VertexCache (monotonic counters). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    /** Bytes currently resident (lines * lineBytes). */
    std::uint64_t bytes = 0;

    /** hits / (hits + misses); 0.0 when no access ran (never NaN —
     *  the PR 5 crossFraction 0/0 discipline). */
    double
    hitRate() const
    {
        const std::uint64_t accesses = hits + misses;
        return accesses == 0 ? 0.0
                             : static_cast<double>(hits) /
                                   static_cast<double>(accesses);
    }

    void
    merge(const CacheStats &other)
    {
        hits += other.hits;
        misses += other.misses;
        fills += other.fills;
        evictions += other.evictions;
        bytes += other.bytes;
    }
};

/**
 * One device's DRAM-backed vertex/feature cache. Keys are opaque
 * 64-bit line identifiers — the streaming engine uses DirectGraph
 * section addresses, the barrier engine physical page addresses; the
 * two never mix within a run.
 */
class VertexCache
{
  public:
    /** @param cfg Sizing/policy; must be enabled() with lineBytes > 0. */
    explicit VertexCache(const CacheConfig &cfg);

    /**
     * Probe for @p key, counting a hit or a miss and touching the
     * line per the policy. @return the tick the line's fill completed
     * (data availability floor for the hit path); empty on a miss.
     */
    std::optional<sim::Tick> lookup(std::uint64_t key);

    /**
     * Insert @p key after its miss parsed at @p when, evicting per
     * the policy when at capacity. A key already resident is left
     * untouched (no double fill).
     */
    void fill(std::uint64_t key, sim::Tick when);

    const CacheStats &stats() const { return _stats; }
    const CacheConfig &config() const { return _cfg; }
    std::uint64_t capacityLines() const { return _capacity; }
    /** Lines currently resident. */
    std::uint64_t size() const { return _index.size(); }

  private:
    struct Line
    {
        std::uint64_t key;
        sim::Tick filledAt;
        /** Owning section index (0 = probation / the only section). */
        std::uint8_t section;
    };
    using LineList = std::list<Line>;

    /** Evict the policy's victim line (must not be empty). */
    void evictOne();

    CacheConfig _cfg;
    std::uint64_t _capacity;
    /** Recency sections, MRU at front. One section for lru/fifo; two
     *  for mslru (0 = probation, 1 = protected). */
    std::vector<LineList> _sections;
    /** Protected-section capacity (mslru; half the lines). */
    std::uint64_t _protectedCapacity = 0;
    /** Point-lookup index; never iterated (bgnlint BGN002). */
    std::unordered_map<std::uint64_t, LineList::iterator> _index;
    CacheStats _stats;
};

} // namespace beacongnn::cache

#endif // BEACONGNN_CACHE_VERTEX_CACHE_H
