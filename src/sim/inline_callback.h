/**
 * @file
 * Small-buffer-optimized callback for the event kernel.
 *
 * The discrete-event queue schedules millions of closures per run;
 * with std::function every schedule() pays a heap allocation as soon
 * as the capture exceeds the implementation's tiny inline buffer
 * (typically 16 bytes — two pointers). Simulation events almost
 * always capture a component pointer plus a couple of integers, so an
 * InlineCallback with 64 bytes of inline storage keeps the common
 * case allocation-free while still spilling oversized captures to the
 * heap transparently.
 *
 * InlineCallback is move-only: events are executed exactly once and
 * the queue moves them out on pop, so copyability (the expensive part
 * of std::function) is deliberately unsupported.
 */

#ifndef BEACONGNN_SIM_INLINE_CALLBACK_H
#define BEACONGNN_SIM_INLINE_CALLBACK_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace beacongnn::sim {

class InlineCallback
{
  public:
    /** Inline storage for the erased callable, in bytes. */
    static constexpr std::size_t kInlineSize = 64;

    InlineCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage) =
                new Fn(std::forward<F>(f));
            ops = &heapOps<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return ops != nullptr; }

    /** Invoke the held callable (must not be empty). */
    void
    operator()()
    {
        ops->invoke(storage);
    }

    /** Destroy the held callable, leaving the callback empty. */
    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
    }

    /** True when @p Fn would be stored inline (no heap allocation). */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    /** Manual vtable: one static instance per erased callable type. */
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct into @p dst from @p src; destroys src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *storage) noexcept;
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
        [](void *src, void *dst) noexcept {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *s) noexcept {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s) { (**reinterpret_cast<Fn **>(s))(); },
        [](void *src, void *dst) noexcept {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        [](void *s) noexcept { delete *reinterpret_cast<Fn **>(s); },
    };

    void
    moveFrom(InlineCallback &&other) noexcept
    {
        ops = other.ops;
        if (ops) {
            ops->relocate(other.storage, storage);
            other.ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage[kInlineSize];
    const Ops *ops = nullptr;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_INLINE_CALLBACK_H
