#include "sim/parallel_sim.h"

#include <algorithm>
#include <thread>

#include "sim/executor.h"
#include "sim/log.h"

namespace beacongnn::sim {

void
SpinBarrier::yieldNow()
{
    std::this_thread::yield();
}

ParallelSimulator::ParallelSimulator(std::vector<SimStation> stations,
                                     Tick lookahead, unsigned jobs)
    : _stations(std::move(stations)), _lookahead(lookahead),
      _jobsParam(jobs)
{
    for (const SimStation &s : _stations)
        if (!s.queue || !s.drain)
            fatal("ParallelSimulator: station without queue or drain");
}

Tick
ParallelSimulator::deliverAndFloor()
{
    // Drains run serially in station order: each hook sorts its own
    // messages, so the delivery sequence is a pure function of the
    // message set — deterministic for any worker count.
    for (SimStation &s : _stations)
        s.drain();
    Tick floor = kTickMax;
    for (SimStation &s : _stations)
        floor = std::min(floor, s.queue->nextTime());
    return floor;
}

Tick
ParallelSimulator::windowLimit(Tick floor) const
{
    // Inclusive runUntil() limit: [floor, floor + lookahead). With a
    // zero lookahead the window collapses to the single timestamp
    // `floor` — serialized but deadlock-free (messages posted at
    // `floor` are delivered next round, in sorted order).
    if (_lookahead == 0)
        return floor;
    if (_lookahead - 1 > kTickMax - floor)
        return kTickMax;
    return floor + (_lookahead - 1);
}

Tick
ParallelSimulator::runSerial()
{
    for (;;) {
        Tick floor = deliverAndFloor();
        if (floor == kTickMax)
            break;
        Tick limit = windowLimit(floor);
        ++_windows;
        if constexpr (kCheckedBuild) {
            if (_validator)
                _validator->windowOpen(floor, limit);
        }
        for (std::size_t s = 0; s < _stations.size(); ++s) {
            if constexpr (kCheckedBuild) {
                if (_validator)
                    _validator->claimStation(
                        static_cast<unsigned>(s));
            }
            _stations[s].queue->runUntil(limit);
            if constexpr (kCheckedBuild) {
                if (_validator)
                    _validator->releaseStation(
                        static_cast<unsigned>(s));
            }
        }
        if constexpr (kCheckedBuild) {
            if (_validator)
                _validator->windowClose();
        }
    }
    Tick end = 0;
    for (SimStation &s : _stations)
        end = std::max(end, s.queue->now());
    return end;
}

Tick
ParallelSimulator::runParallel(unsigned workers)
{
    // Two barriers per window. `limit` and `stop` are plain values:
    // the main thread writes them strictly before its `ready`
    // arrival, and the barrier's acquire/release generation hand-off
    // orders them before any worker's read (and the workers' station
    // mutations before the main thread's next drain).
    SpinBarrier ready(workers), done(workers);
    Tick limit = 0;
    bool stop = false;

    auto runStations = [&](unsigned w) {
        for (std::size_t s = w; s < _stations.size(); s += workers) {
            if constexpr (kCheckedBuild) {
                if (_validator)
                    _validator->claimStation(
                        static_cast<unsigned>(s));
            }
            _stations[s].queue->runUntil(limit);
            if constexpr (kCheckedBuild) {
                if (_validator)
                    _validator->releaseStation(
                        static_cast<unsigned>(s));
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) {
        pool.emplace_back([&, w] {
            for (;;) {
                ready.arriveAndWait();
                if (stop)
                    return;
                runStations(w);
                done.arriveAndWait();
            }
        });
    }

    for (;;) {
        Tick floor = deliverAndFloor();
        if (floor == kTickMax) {
            stop = true;
            ready.arriveAndWait();
            break;
        }
        limit = windowLimit(floor);
        ++_windows;
        if constexpr (kCheckedBuild) {
            if (_validator)
                _validator->windowOpen(floor, limit);
        }
        ready.arriveAndWait();
        runStations(0);
        done.arriveAndWait();
        if constexpr (kCheckedBuild) {
            if (_validator)
                _validator->windowClose();
        }
    }
    for (std::thread &t : pool)
        t.join();

    Tick end = 0;
    for (SimStation &s : _stations)
        end = std::max(end, s.queue->now());
    return end;
}

Tick
ParallelSimulator::run()
{
    if (_stations.empty())
        return 0;
    unsigned jobs = _jobsParam ? _jobsParam : SimExecutor::defaultJobs();
    unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        std::max(1u, jobs), _stations.size()));
    _lastJobs = workers;
    // The two paths execute the identical window algorithm; jobs = 1
    // simply runs every station on the calling thread. Results are
    // byte-identical by construction.
    if (workers <= 1)
        return runSerial();
    return runParallel(workers);
}

} // namespace beacongnn::sim
