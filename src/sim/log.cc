#include "sim/log.h"

namespace beacongnn::sim {

namespace {
int gLogLevel = 1;
} // namespace

int logLevel() { return gLogLevel; }
void setLogLevel(int level) { gLogLevel = level; }

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

void
inform(const std::string &msg)
{
    if (gLogLevel >= 1)
        detail::emit("info", msg);
}

void
warn(const std::string &msg)
{
    detail::emit("warn", msg);
}

void
debug(const std::string &msg)
{
    if (gLogLevel >= 2)
        detail::emit("debug", msg);
}

void
panic(const std::string &msg)
{
    detail::emit("panic", msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    detail::emit("fatal", msg);
    std::exit(1);
}

} // namespace beacongnn::sim
