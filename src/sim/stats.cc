#include "sim/stats.h"

namespace beacongnn::sim {

std::vector<double>
activeSeries(const std::vector<const IntervalTrace *> &traces, Tick horizon,
             std::size_t buckets)
{
    std::vector<double> out(buckets, 0.0);
    if (horizon == 0 || buckets == 0)
        return out;
    Tick width = std::max<Tick>(1, horizon / buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
        Tick t0 = b * width;
        Tick t1 = t0 + width;
        double active = 0;
        for (const auto *tr : traces) {
            if (tr) {
                // Fractional occupancy: a unit busy for half the
                // bucket counts as 0.5 active units.
                active += static_cast<double>(tr->busyWithin(t0, t1)) /
                          static_cast<double>(width);
            }
        }
        out[b] = active;
    }
    return out;
}

} // namespace beacongnn::sim
