/**
 * @file
 * Seeded Zipf(θ) rank sampler.
 *
 * Serving traffic against power-law graphs concentrates on a small
 * hot set; the cache tier (src/cache) is evaluated under exactly that
 * skew. Rank k (0-based) is drawn with probability proportional to
 * 1/(k+1)^θ — θ → 0 approaches uniform, θ ≈ 1 is the classic web/
 * graph access skew. The caller maps ranks to node ids (the repo
 * convention is the identity map, making low node ids the hot set,
 * which is deterministic and partition-policy friendly).
 *
 * Determinism: the CDF is a pure function of (θ, n) and each draw()
 * consumes exactly one value from the caller's Pcg32, so a given
 * (seed, θ, n) triple always yields byte-identical rank streams —
 * across runs and across worker counts (DESIGN.md §14).
 */

#ifndef BEACONGNN_SIM_ZIPF_H
#define BEACONGNN_SIM_ZIPF_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/log.h"
#include "sim/rng.h"

namespace beacongnn::sim {

/** Zipf(θ) sampler over ranks [0, n). */
class ZipfSampler
{
  public:
    /**
     * Build the cumulative distribution (O(n) once; draws are
     * O(log n) binary searches).
     *
     * @param theta Skew exponent; must be positive (use the plain
     *              uniform path for unskewed streams).
     * @param n     Rank universe size; must be nonzero.
     */
    ZipfSampler(double theta, std::uint64_t n) : _theta(theta)
    {
        if (!(theta > 0.0))
            fatal("ZipfSampler: theta must be positive");
        if (n == 0)
            fatal("ZipfSampler: empty rank universe");
        _cdf.resize(n);
        double cum = 0.0;
        for (std::uint64_t k = 0; k < n; ++k) {
            cum += std::pow(static_cast<double>(k + 1), -theta);
            _cdf[k] = cum;
        }
    }

    /** Draw one rank in [0, n); consumes one uniform from @p rng. */
    std::uint64_t
    draw(Pcg32 &rng) const
    {
        double u = rng.uniform() * _cdf.back();
        auto it = std::lower_bound(_cdf.begin(), _cdf.end(), u);
        if (it == _cdf.end())
            --it; // uniform() < 1, but guard the fp edge anyway.
        return static_cast<std::uint64_t>(it - _cdf.begin());
    }

    double theta() const { return _theta; }
    std::uint64_t ranks() const { return _cdf.size(); }

  private:
    double _theta;
    /** Unnormalized cumulative weights of ranks 0..n-1. */
    std::vector<double> _cdf;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_ZIPF_H
