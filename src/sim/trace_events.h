/**
 * @file
 * Opt-in event trace in the Chrome trace-event JSON format, viewable
 * in Perfetto / chrome://tracing.
 *
 * Two span shapes cover the simulator's needs (DESIGN.md §10):
 *
 *  - complete ("X") events place a duration on a (pid, tid) track —
 *    used for per-die senses, per-channel transfers and batch spans,
 *    where the track identifies the hardware unit;
 *  - nestable async ("b"/"e") events keyed by (category, id) follow
 *    one flash command's lifetime across units: the outer span is
 *    created→parsed, with dispatch / sense / transfer / consume
 *    children nested inside.
 *
 * Timestamps are microseconds (Chrome's unit) at nanosecond
 * resolution; simulator Ticks are nanoseconds, so ts = tick / 1000.
 * The sink caps its event count to bound memory on long runs and
 * reports how many events were dropped.
 */

#ifndef BEACONGNN_SIM_TRACE_EVENTS_H
#define BEACONGNN_SIM_TRACE_EVENTS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/types.h"

namespace beacongnn::sim {

/** Collects Chrome trace events; write() emits the JSON document. */
class TraceSink
{
  public:
    /** @param max_events Events kept before dropping (memory bound). */
    explicit TraceSink(std::size_t max_events = 4000000)
        : maxEvents(max_events)
    {
    }

    /** Complete event: [start, end) on track (pid, tid).
     *  @p name and @p cat must outlive the sink (string literals). */
    void complete(const char *name, const char *cat, std::uint32_t pid,
                  std::uint32_t tid, Tick start, Tick end);

    /** Open a nestable async span under (cat, id). */
    void beginAsync(const char *name, const char *cat, std::uint64_t id,
                    Tick ts);

    /** Close the innermost open span of (cat, id). */
    void endAsync(const char *name, const char *cat, std::uint64_t id,
                  Tick ts);

    /** Fresh id for a new async span family (one per command). */
    std::uint64_t nextId() { return ++idSeq; }

    // Track naming (emitted as metadata events).
    void setProcessName(std::uint32_t pid, const std::string &name);
    void setThreadName(std::uint32_t pid, std::uint32_t tid,
                       const std::string &name);

    std::size_t events() const { return evs.size(); }
    std::size_t dropped() const { return _dropped; }

    /**
     * Append every event of @p shard to this sink, rebasing the
     * shard's async-span ids past this sink's id sequence so two
     * shards' span families never collide. Per-device shard sinks
     * collect events concurrently during a parallel multi-device run;
     * absorbing them in device order afterwards keeps the final trace
     * byte-identical for every worker count (DESIGN.md §13). Track
     * names merge by (pid, tid) key.
     */
    void absorb(const TraceSink &shard);

    /** Emit the {"traceEvents": [...]} JSON document. */
    void write(std::ostream &os) const;

  private:
    struct Event
    {
        const char *name;
        const char *cat;
        std::uint64_t id;  ///< Async span key (b/e only).
        std::uint32_t pid;
        std::uint32_t tid;
        Tick ts;
        Tick dur;          ///< X only.
        char phase;        ///< 'X', 'b' or 'e'.
    };

    bool full();

    std::vector<Event> evs;
    std::map<std::uint32_t, std::string> processNames;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
        threadNames;
    std::size_t maxEvents;
    std::size_t _dropped = 0;
    std::uint64_t idSeq = 0;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_TRACE_EVENTS_H
