/**
 * @file
 * Hierarchically named metric registry: the one instrumentation layer
 * every simulator component publishes into.
 *
 * Instruments are identified by dot-separated names following the
 * `layer.component[.index].instrument` scheme (DESIGN.md §10), e.g.
 * `flash.ch3.die5.sense_ticks`, `ssd.firmware.core_busy`,
 * `engine.router.frames_parsed`, `accel.macs`. Five instrument kinds
 * cover everything the figures need:
 *
 *  - Counter:       monotonic uint64 (events, ticks, bytes);
 *  - Gauge:         point-in-time double (utilization, peak depth);
 *  - Accumulator:   count/sum/min/max/mean of double samples;
 *  - Histogram:     fixed-width linear distribution;
 *  - IntervalTrace: busy spans over time (Fig. 15 inputs).
 *
 * A name maps to exactly one instrument kind for the lifetime of the
 * registry; re-requesting a name with a different kind is a fatal
 * configuration error. Lookup is get-or-create, so publishing sites
 * need no registration ceremony. Iteration order is the sorted name
 * order, which keeps every exported snapshot deterministic.
 */

#ifndef BEACONGNN_SIM_METRICS_H
#define BEACONGNN_SIM_METRICS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>

#include "sim/stats.h"

namespace beacongnn::sim {

/** Monotonic event/tick/byte counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { v += n; }
    std::uint64_t value() const { return v; }
    void merge(const Counter &other) { v += other.v; }
    void clear() { v = 0; }

  private:
    std::uint64_t v = 0;
};

/** Point-in-time scalar; merge is last-write-wins. */
class Gauge
{
  public:
    void set(double x) { v = x; }
    double value() const { return v; }
    void merge(const Gauge &other) { v = other.v; }
    void clear() { v = 0; }

  private:
    double v = 0;
};

/** Per-session registry of named instruments. */
class MetricRegistry
{
  public:
    using Instrument =
        std::variant<Counter, Gauge, Accumulator, Histogram, IntervalTrace>;

    // ---- Get-or-create accessors -----------------------------------
    // fatal() if @p name already holds a different instrument kind.
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Accumulator &accum(const std::string &name);
    /** Geometry applies only on first creation. */
    Histogram &histogram(const std::string &name,
                         double bucket_width = 1000.0,
                         std::size_t buckets = 64);
    IntervalTrace &interval(const std::string &name);

    // ---- Read-only lookup (nullptr when absent or wrong kind) ------
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Accumulator *findAccum(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;
    const IntervalTrace *findInterval(const std::string &name) const;

    bool contains(const std::string &name) const;
    std::size_t size() const { return instruments.size(); }
    bool empty() const { return instruments.empty(); }
    void clear() { instruments.clear(); }

    /** Visit every instrument in sorted name order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[name, ins] : instruments)
            fn(name, ins);
    }

    /**
     * Fold @p other into this registry: counters add, accumulators
     * and histograms merge exactly, interval traces union their
     * spans, gauges take the other's value. Kind mismatches on a
     * shared name are fatal.
     */
    void merge(const MetricRegistry &other);

    /**
     * Like merge(), but every instrument of @p other lands under
     * `<prefix><name>` here (pass e.g. "array.dev0." to namespace one
     * device's snapshot inside an array-wide registry).
     */
    void merge(const MetricRegistry &other, const std::string &prefix);

    /** Human-readable kind name of an instrument. */
    static const char *kindName(const Instrument &ins);

    // ---- Snapshot export -------------------------------------------

    /**
     * Write the registry as one JSON object mapping each full name to
     * an instrument description (kind + values). Doubles are printed
     * with 17 significant digits so snapshots round-trip exactly.
     */
    void writeJson(std::ostream &os) const;

    /** CSV header matching writeCsv rows. @p prefix_header prepends
     *  extra caller columns (e.g. "platform,workload,"). */
    static void writeCsvHeader(std::ostream &os,
                               const std::string &prefix_header = "");

    /** One CSV row per instrument; @p row_prefix prepends the caller
     *  columns declared in the header. */
    void writeCsv(std::ostream &os,
                  const std::string &row_prefix = "") const;

  private:
    template <typename T>
    T &get(const std::string &name);

    std::map<std::string, Instrument> instruments;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_METRICS_H
