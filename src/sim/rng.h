/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Two layers:
 *  - Pcg32: a small, fast, statistically solid PRNG used for workload
 *    generation and as the functional model of the per-die TRNG (true
 *    random number generator) of Section V-A.
 *  - keyedRandom(): a stateless hash-based generator keyed on
 *    (seed, batch, hop, node, draw). Because the value depends only on
 *    the key and never on evaluation order, the die-level sampler, the
 *    host-side reference sampler, and out-of-order executions all draw
 *    identical samples — the foundation of the cross-platform
 *    equivalence tests described in DESIGN.md.
 */

#ifndef BEACONGNN_SIM_RNG_H
#define BEACONGNN_SIM_RNG_H

#include <cstdint>

namespace beacongnn::sim {

/** SplitMix64 finalizer; good avalanche, used for seeding and hashing. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * PCG-XSH-RR 32-bit generator (O'Neill 2014). Deterministic, seedable,
 * and cheap enough to instantiate per flash die.
 */
class Pcg32
{
  public:
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bull,
                   std::uint64_t stream = 0xda3e39cb94b95bdbull)
    {
        state = 0;
        inc = (stream << 1) | 1u;
        next();
        state += splitmix64(seed);
        next();
    }

    /** Next 32 random bits. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ull + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Unbiased draw in [0, bound) via Lemire rejection. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint64_t m = std::uint64_t{next()} * bound;
        auto lo = static_cast<std::uint32_t>(m);
        if (lo < bound) {
            std::uint32_t threshold = (0u - bound) % bound;
            while (lo < threshold) {
                m = std::uint64_t{next()} * bound;
                lo = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 8) * (1.0 / 16777216.0);
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

/**
 * Stateless keyed random draw: identical for identical keys regardless
 * of where or in which order it is evaluated.
 *
 * @param seed  Global experiment seed.
 * @param batch Mini-batch index.
 * @param hop   Sampling hop (0-based).
 * @param node  Graph node id being sampled from.
 * @param draw  Index of the draw within the node's fanout.
 * @return 64 pseudo-random bits.
 */
constexpr std::uint64_t
keyedRandom(std::uint64_t seed, std::uint64_t batch, std::uint32_t hop,
            std::uint64_t node, std::uint32_t draw)
{
    std::uint64_t k = splitmix64(seed ^ (batch * 0x9e3779b97f4a7c15ull));
    k = splitmix64(k ^ (std::uint64_t{hop} << 56) ^ node);
    return splitmix64(k ^ draw);
}

/** Keyed draw reduced to [0, bound). */
constexpr std::uint64_t
keyedBelow(std::uint64_t seed, std::uint64_t batch, std::uint32_t hop,
           std::uint64_t node, std::uint32_t draw, std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // 128-bit multiply-shift reduction keeps the draw unbiased enough
    // for sampling purposes while staying order-independent.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(
             keyedRandom(seed, batch, hop, node, draw)) *
         bound) >> 64);
}

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_RNG_H
