#include "sim/validator.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

namespace beacongnn::sim {

Validator::Validator(std::size_t stations, Tick lookahead)
    : _slots(stations ? stations : 1), _lookahead(lookahead)
{
}

std::size_t
Validator::threadKey()
{
    std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return h ? h : 1; // 0 means "unclaimed".
}

void
Validator::fail(unsigned dev, const char *what, const char *detail,
                Tick a, Tick b)
{
    // fprintf, not iostreams: the abort must not allocate or lock
    // shared stream state while worker threads are mid-window.
    std::fprintf(stderr,
                 "BGN_CHECKED validator abort: device %u: %s: %s "
                 "(%llu vs %llu; window [%llu, %llu] %s; lookahead "
                 "%llu)\n",
                 dev, what, detail,
                 static_cast<unsigned long long>(a),
                 static_cast<unsigned long long>(b),
                 static_cast<unsigned long long>(_floor),
                 static_cast<unsigned long long>(_limit),
                 _active.load(std::memory_order_relaxed) ? "open"
                                                         : "closed",
                 static_cast<unsigned long long>(_lookahead));
    std::abort();
}

void
Validator::checkOwner(unsigned dev, const char *what)
{
    if (!_active.load(std::memory_order_acquire))
        return; // Between windows the driver protocol serializes.
    if (dev >= _slots.size())
        fail(dev, what, "station index out of range", dev,
             _slots.size());
    std::size_t owner =
        _slots[dev].owner.load(std::memory_order_acquire);
    if (owner != threadKey())
        fail(dev, what,
             owner ? "foreign-thread touch of a claimed station"
                   : "touch of an unclaimed station inside a window",
             static_cast<Tick>(owner),
             static_cast<Tick>(threadKey()));
}

void
Validator::windowOpen(Tick floor, Tick limit)
{
    count();
    if (_active.load(std::memory_order_acquire))
        fail(0, "windowOpen", "previous window still open", floor,
             limit);
    _floor = floor;
    _limit = limit;
    _active.store(true, std::memory_order_release);
}

void
Validator::windowClose()
{
    count();
    if (!_active.load(std::memory_order_acquire))
        fail(0, "windowClose", "no window open", 0, 0);
    for (std::size_t d = 0; d < _slots.size(); ++d)
        if (_slots[d].owner.load(std::memory_order_acquire))
            fail(static_cast<unsigned>(d), "windowClose",
                 "station still claimed at window close", 0, 0);
    _active.store(false, std::memory_order_release);
}

void
Validator::claimStation(unsigned dev)
{
    count();
    if (dev >= _slots.size())
        fail(dev, "claimStation", "station index out of range", dev,
             _slots.size());
    std::size_t expect = 0;
    if (!_slots[dev].owner.compare_exchange_strong(
            expect, threadKey(), std::memory_order_acq_rel))
        fail(dev, "claimStation", "station already claimed", expect,
             threadKey());
}

void
Validator::releaseStation(unsigned dev)
{
    count();
    if (dev >= _slots.size())
        fail(dev, "releaseStation", "station index out of range", dev,
             _slots.size());
    std::size_t owner =
        _slots[dev].owner.load(std::memory_order_acquire);
    if (owner != threadKey())
        fail(dev, "releaseStation", "release by a non-owner thread",
             owner, threadKey());
    _slots[dev].owner.store(0, std::memory_order_release);
}

void
Validator::onSchedule(unsigned dev, Tick when, Tick now)
{
    count();
    if (when < now)
        fail(dev, "onSchedule",
             "event scheduled into the queue's past", when, now);
    checkOwner(dev, "onSchedule");
}

void
Validator::onPop(unsigned dev, Tick when)
{
    count();
    if (dev >= _slots.size())
        fail(dev, "onPop", "station index out of range", dev,
             _slots.size());
    checkOwner(dev, "onPop");
    Slot &s = _slots[dev];
    if (when < s.lastPop)
        fail(dev, "onPop", "event pop went backwards in time", when,
             s.lastPop);
    if (_active.load(std::memory_order_acquire) &&
        (when < _floor || when > _limit))
        fail(dev, "onPop", "event popped outside the open window",
             when, _limit);
    s.lastPop = when;
}

void
Validator::onMailboxPost(unsigned src, unsigned dst, Tick when,
                         Tick srcNow)
{
    count();
    if (dst >= _slots.size())
        fail(dst, "onMailboxPost", "destination out of range", dst,
             _slots.size());
    if (when < srcNow || when - srcNow < _lookahead)
        fail(src, "onMailboxPost",
             "message stamped under the lookahead horizon", when,
             srcNow + _lookahead);
    checkOwner(src, "onMailboxPost");
}

void
Validator::onTouch(unsigned dev, const char *what)
{
    count();
    checkOwner(dev, what);
}

} // namespace beacongnn::sim
