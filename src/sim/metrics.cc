#include "sim/metrics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/log.h"

namespace beacongnn::sim {

namespace {

/** %.17g: enough digits for doubles to round-trip exactly. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
fmtU64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Minimal JSON string escape (names are internal identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

template <typename T>
T &
MetricRegistry::get(const std::string &name)
{
    auto [it, inserted] = instruments.try_emplace(name, T{});
    if (!inserted && !std::holds_alternative<T>(it->second))
        fatal("metric '" + name + "' already registered as " +
              kindName(it->second));
    return std::get<T>(it->second);
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    return get<Counter>(name);
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    return get<Gauge>(name);
}

Accumulator &
MetricRegistry::accum(const std::string &name)
{
    return get<Accumulator>(name);
}

Histogram &
MetricRegistry::histogram(const std::string &name, double bucket_width,
                          std::size_t buckets)
{
    auto [it, inserted] =
        instruments.try_emplace(name, Histogram{bucket_width, buckets});
    if (!inserted && !std::holds_alternative<Histogram>(it->second))
        fatal("metric '" + name + "' already registered as " +
              kindName(it->second));
    return std::get<Histogram>(it->second);
}

IntervalTrace &
MetricRegistry::interval(const std::string &name)
{
    return get<IntervalTrace>(name);
}

namespace {

template <typename T>
const T *
find(const std::map<std::string, MetricRegistry::Instrument> &m,
     const std::string &name)
{
    auto it = m.find(name);
    if (it == m.end())
        return nullptr;
    return std::get_if<T>(&it->second);
}

} // namespace

const Counter *
MetricRegistry::findCounter(const std::string &name) const
{
    return find<Counter>(instruments, name);
}

const Gauge *
MetricRegistry::findGauge(const std::string &name) const
{
    return find<Gauge>(instruments, name);
}

const Accumulator *
MetricRegistry::findAccum(const std::string &name) const
{
    return find<Accumulator>(instruments, name);
}

const Histogram *
MetricRegistry::findHistogram(const std::string &name) const
{
    return find<Histogram>(instruments, name);
}

const IntervalTrace *
MetricRegistry::findInterval(const std::string &name) const
{
    return find<IntervalTrace>(instruments, name);
}

bool
MetricRegistry::contains(const std::string &name) const
{
    return instruments.count(name) != 0;
}

const char *
MetricRegistry::kindName(const Instrument &ins)
{
    switch (ins.index()) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "accumulator";
    case 3: return "histogram";
    case 4: return "interval";
    }
    return "unknown";
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    merge(other, std::string());
}

void
MetricRegistry::merge(const MetricRegistry &other,
                      const std::string &prefix)
{
    for (const auto &[name, ins] : other.instruments) {
        const std::string dst = prefix + name;
        std::visit(
            [&, this](const auto &src) {
                using T = std::decay_t<decltype(src)>;
                if constexpr (std::is_same_v<T, Histogram>) {
                    histogram(dst, src.bucketWidth(),
                              src.buckets().size())
                        .merge(src);
                } else if constexpr (std::is_same_v<T, IntervalTrace>) {
                    interval(dst).merge(src);
                } else {
                    get<T>(dst).merge(src);
                }
            },
            ins);
    }
}

void
MetricRegistry::writeJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, ins] : instruments) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    \"" << jsonEscape(name) << "\": {\"kind\": \""
           << kindName(ins) << "\"";
        std::visit(
            [&os](const auto &v) {
                using T = std::decay_t<decltype(v)>;
                if constexpr (std::is_same_v<T, Counter>) {
                    os << ", \"value\": " << fmtU64(v.value());
                } else if constexpr (std::is_same_v<T, Gauge>) {
                    os << ", \"value\": " << fmtDouble(v.value());
                } else if constexpr (std::is_same_v<T, Accumulator>) {
                    os << ", \"count\": " << fmtU64(v.count())
                       << ", \"sum\": " << fmtDouble(v.sum())
                       << ", \"min\": " << fmtDouble(v.min())
                       << ", \"max\": " << fmtDouble(v.max())
                       << ", \"mean\": " << fmtDouble(v.mean());
                } else if constexpr (std::is_same_v<T, Histogram>) {
                    const Accumulator &a = v.summary();
                    os << ", \"bucket_width\": "
                       << fmtDouble(v.bucketWidth())
                       << ", \"buckets\": " << v.buckets().size()
                       << ", \"count\": " << fmtU64(a.count())
                       << ", \"sum\": " << fmtDouble(a.sum())
                       << ", \"min\": " << fmtDouble(a.min())
                       << ", \"max\": " << fmtDouble(a.max())
                       << ", \"nonzero\": [";
                    bool bf = true;
                    for (std::size_t i = 0; i < v.buckets().size();
                         ++i) {
                        if (v.buckets()[i] == 0)
                            continue;
                        if (!bf)
                            os << ", ";
                        bf = false;
                        os << "[" << i << ", "
                           << fmtU64(v.buckets()[i]) << "]";
                    }
                    os << "]";
                } else if constexpr (std::is_same_v<T, IntervalTrace>) {
                    os << ", \"spans\": " << v.get().size()
                       << ", \"busy_ticks\": " << fmtU64(v.busy())
                       << ", \"intervals\": [";
                    bool bf = true;
                    for (const auto &[s, e] : v.get()) {
                        if (!bf)
                            os << ", ";
                        bf = false;
                        os << "[" << fmtU64(s) << ", " << fmtU64(e)
                           << "]";
                    }
                    os << "]";
                }
            },
            ins);
        os << "}";
    }
    os << "\n  }";
}

void
MetricRegistry::writeCsvHeader(std::ostream &os,
                               const std::string &prefix_header)
{
    os << prefix_header << "name,kind,count,sum,min,max,mean,value\n";
}

void
MetricRegistry::writeCsv(std::ostream &os,
                         const std::string &row_prefix) const
{
    for (const auto &[name, ins] : instruments) {
        os << row_prefix << name << "," << kindName(ins) << ",";
        std::visit(
            [&os](const auto &v) {
                using T = std::decay_t<decltype(v)>;
                if constexpr (std::is_same_v<T, Counter>) {
                    os << ",,,,," << fmtU64(v.value());
                } else if constexpr (std::is_same_v<T, Gauge>) {
                    os << ",,,,," << fmtDouble(v.value());
                } else if constexpr (std::is_same_v<T, Accumulator>) {
                    os << fmtU64(v.count()) << "," << fmtDouble(v.sum())
                       << "," << fmtDouble(v.min()) << ","
                       << fmtDouble(v.max()) << ","
                       << fmtDouble(v.mean()) << ",";
                } else if constexpr (std::is_same_v<T, Histogram>) {
                    const Accumulator &a = v.summary();
                    os << fmtU64(a.count()) << "," << fmtDouble(a.sum())
                       << "," << fmtDouble(a.min()) << ","
                       << fmtDouble(a.max()) << ","
                       << fmtDouble(a.mean()) << ","
                       << fmtDouble(v.bucketWidth());
                } else if constexpr (std::is_same_v<T, IntervalTrace>) {
                    os << v.get().size() << "," << fmtU64(v.busy())
                       << ",,,,";
                }
            },
            ins);
        os << "\n";
    }
}

} // namespace beacongnn::sim
