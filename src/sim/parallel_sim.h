/**
 * @file
 * Conservative parallel discrete-event simulation across stations
 * (DESIGN.md §13).
 *
 * Each station owns a private EventQueue (its local clock) and a
 * drain hook that delivers its pending inbound mailbox messages. The
 * driver runs a synchronous-window (YAWNS-style Chandy–Misra)
 * algorithm: per round it drains every inbox, computes the global
 * floor T = min over stations of the earliest pending event, and
 * lets every station advance concurrently through the window
 * [T, T + lookahead). The lookahead is the fabric's minimum
 * cross-station latency (one P2P hop): any message generated inside
 * the window is stamped at or beyond the horizon, so no station can
 * receive work it should already have executed.
 *
 * Determinism contract: the executed event sequence of every station
 * is a pure function of (initial queues, drain hooks, lookahead) —
 * the worker count never changes which window an event lands in or
 * the order inside a window, because windows are global barriers and
 * each drain hook must deliver in a deterministically sorted order.
 * jobs = 1 therefore produces byte-identical results to any other
 * worker count, just on one thread.
 *
 * Zero lookahead does not deadlock: the window degenerates to a
 * single timestamp ([T, T]) and the simulation proceeds as globally
 * serialized tick-stepped rounds — still deterministic for every
 * worker count, merely without look-ahead parallelism.
 */

#ifndef BEACONGNN_SIM_PARALLEL_SIM_H
#define BEACONGNN_SIM_PARALLEL_SIM_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace beacongnn::sim {

/** One parallel station: a device's queue plus its inbox drain. */
struct SimStation
{
    EventQueue *queue = nullptr;
    /** Deliver pending inbound messages into `queue` in a
     *  deterministically sorted order; returns how many. Called only
     *  between windows (no station running). */
    std::function<std::size_t()> drain;
};

/**
 * Reusable spinning barrier for the window loop. std::barrier (or
 * spawning threads per window) costs a futex round-trip per window;
 * windows are microseconds of work, so the workers spin briefly and
 * then yield — oversubscribed hosts degrade gracefully instead of
 * burning a core per waiter.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties) : n(parties) {}

    void
    arriveAndWait()
    {
        std::uint64_t my = gen.load(std::memory_order_acquire);
        if (count.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            count.store(0, std::memory_order_relaxed);
            gen.fetch_add(1, std::memory_order_release);
            return;
        }
        unsigned spins = 0;
        while (gen.load(std::memory_order_acquire) == my) {
            if (++spins > kSpinLimit)
                yieldNow();
        }
    }

  private:
    static constexpr unsigned kSpinLimit = 4096;
    static void yieldNow();

    unsigned n;
    std::atomic<unsigned> count{0};
    std::atomic<std::uint64_t> gen{0};
};

/** Conservative windowed driver over a set of stations. */
class ParallelSimulator
{
  public:
    /**
     * @param stations  The per-device queues + drain hooks.
     * @param lookahead Minimum cross-station latency (ticks). Zero is
     *                  legal and falls back to serialized windows.
     * @param jobs      Worker count; 0 resolves SimExecutor's default
     *                  (--jobs / BGN_JOBS / cores) at each run() and
     *                  is clamped to the station count.
     */
    ParallelSimulator(std::vector<SimStation> stations, Tick lookahead,
                      unsigned jobs = 0);

    /**
     * Run until global quiescence: every queue drained and every
     * mailbox empty. @return max station clock reached.
     */
    Tick run();

    /** Synchronization windows executed across all run() calls. */
    std::uint64_t windows() const { return _windows; }

    /** Lookahead this driver synchronizes with. */
    Tick lookahead() const { return _lookahead; }

    /** Worker count the last run() resolved to (0 before any run). */
    unsigned lastJobs() const { return _lastJobs; }

    /**
     * Attach the checked-build validator (DESIGN.md §16): the driver
     * reports window open/close and workers claim their stations
     * around each runUntil. Station queues register themselves via
     * EventQueue::setValidator. Nullptr detaches; an OFF build
     * compiles every report out.
     */
    void setValidator(Validator *v) { _validator = v; }

  private:
    Tick runSerial();
    Tick runParallel(unsigned workers);
    /** Drain every inbox (station order); then the global floor. */
    Tick deliverAndFloor();
    Tick windowLimit(Tick floor) const;

    std::vector<SimStation> _stations;
    Tick _lookahead;
    unsigned _jobsParam;
    unsigned _lastJobs = 0;
    std::uint64_t _windows = 0;
    /** Checked-build hooks (DESIGN.md §16); unused when off. */
    Validator *_validator = nullptr;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_PARALLEL_SIM_H
