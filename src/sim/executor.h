/**
 * @file
 * Parallel run executor for design-space sweeps.
 *
 * Every simulation run (platforms::runPlatform) owns its private
 * EventQueue and component tree, so an N-point evaluation grid is
 * embarrassingly parallel. SimExecutor fans index-addressed jobs
 * across a fixed pool of worker threads; callers write result i into
 * slot i of a pre-sized vector, so collected results are always in
 * deterministic submission order regardless of which worker finished
 * first — printed tables and CSVs stay byte-identical to a serial
 * run.
 *
 * Job count resolution (first match wins):
 *   1. explicit constructor argument / --jobs flag,
 *   2. the BGN_JOBS environment variable,
 *   3. std::thread::hardware_concurrency().
 * With jobs == 1 the executor runs everything inline on the calling
 * thread — no threads are spawned at all.
 */

#ifndef BEACONGNN_SIM_EXECUTOR_H
#define BEACONGNN_SIM_EXECUTOR_H

#include <cstddef>
#include <functional>
#include <vector>

namespace beacongnn::sim {

class SimExecutor
{
  public:
    /**
     * @param jobs Worker count; 0 means "resolve the default" (BGN_JOBS
     *             env var, else hardware concurrency).
     */
    explicit SimExecutor(unsigned jobs = 0);

    /** Worker count this executor resolved to (>= 1). */
    unsigned jobs() const { return _jobs; }

    /**
     * Execute fn(0) .. fn(n-1) across the workers and block until all
     * are done. fn must be safe to call concurrently for distinct
     * indices. Exceptions escaping fn terminate (the simulator reports
     * errors via sim::fatal/panic, not exceptions).
     */
    void run(std::size_t n, const std::function<void(std::size_t)> &fn);

    /**
     * Map fn over [0, n) and return the results in index order.
     * R must be default-constructible and movable.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn)
    {
        std::vector<R> out(n);
        run(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Resolve the default job count: BGN_JOBS if set (clamped to
     * >= 1), else std::thread::hardware_concurrency(), else 1.
     */
    static unsigned defaultJobs();

    /**
     * Override the process-wide default job count (what a jobs == 0
     * executor resolves to). Used by --jobs command-line flags; 0
     * restores env/hardware resolution.
     */
    static void setDefaultJobs(unsigned jobs);

  private:
    unsigned _jobs;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_EXECUTOR_H
