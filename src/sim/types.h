/**
 * @file
 * Fundamental scalar types and unit helpers for the BeaconGNN simulator.
 *
 * Simulated time is kept in integer nanoseconds (`Tick`). All byte
 * quantities are `uint64_t`. Helper constructors make configuration
 * tables read like the paper ("3 us read latency", "800 MB/s channel").
 */

#ifndef BEACONGNN_SIM_TYPES_H
#define BEACONGNN_SIM_TYPES_H

#include <cstdint>

namespace beacongnn::sim {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no time" / "never". */
inline constexpr Tick kTickMax = ~Tick{0};

/** @name Time constructors (all return nanoseconds) */
///@{
constexpr Tick nanoseconds(std::uint64_t n) { return n; }
constexpr Tick microseconds(std::uint64_t n) { return n * 1000ull; }
constexpr Tick milliseconds(std::uint64_t n) { return n * 1000000ull; }
constexpr Tick seconds(std::uint64_t n) { return n * 1000000000ull; }
///@}

/** @name Size constructors (bytes) */
///@{
constexpr std::uint64_t kib(std::uint64_t n) { return n * 1024ull; }
constexpr std::uint64_t mib(std::uint64_t n) { return n * 1024ull * 1024ull; }
constexpr std::uint64_t gib(std::uint64_t n)
{
    return n * 1024ull * 1024ull * 1024ull;
}
///@}

/**
 * Convert a bandwidth given in MB/s (decimal, as vendor datasheets quote
 * flash channel speeds) into the transfer time in ticks for @p bytes.
 *
 * @param bytes      Number of bytes transferred.
 * @param mbytes_per_s Bandwidth in 10^6 bytes per second.
 * @return Transfer duration in ticks (>= 1 for any nonzero transfer).
 */
constexpr Tick
transferTime(std::uint64_t bytes, double mbytes_per_s)
{
    if (bytes == 0 || mbytes_per_s <= 0.0)
        return 0;
    double ns = static_cast<double>(bytes) * 1000.0 / mbytes_per_s;
    Tick t = static_cast<Tick>(ns);
    return t == 0 ? 1 : t;
}

/** Convert ticks to (double) microseconds for reporting. */
constexpr double toMicros(Tick t) { return static_cast<double>(t) / 1000.0; }

/** Convert ticks to (double) milliseconds for reporting. */
constexpr double toMillis(Tick t)
{
    return static_cast<double>(t) / 1000000.0;
}

/** Convert ticks to (double) seconds for reporting. */
constexpr double toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_TYPES_H
