/**
 * @file
 * Deterministic traversal helpers for unordered containers.
 *
 * The determinism contract (DESIGN.md §11, rule BGN002) bans direct
 * iteration over std::unordered_map/set: hash order differs between
 * standard libraries and builds, so a walk can leak nondeterminism
 * into metrics, emitted files or event schedules. Hot paths keep
 * their O(1) hash lookups; whenever a walk is needed, take a sorted
 * key snapshot through this single audited helper instead of writing
 * another range-for that rule BGN002 would (rightly) flag.
 */

#ifndef BEACONGNN_SIM_ORDERED_H
#define BEACONGNN_SIM_ORDERED_H

#include <algorithm>
#include <type_traits>
#include <vector>

namespace beacongnn::sim {

/**
 * Keys of @p m (a map or a set), sorted ascending. The internal
 * iteration order is irrelevant: the result is a set of keys,
 * independent of hash order.
 */
template <typename Container>
std::vector<typename Container::key_type>
sortedKeys(const Container &m)
{
    using Key = typename Container::key_type;
    std::vector<Key> keys;
    keys.reserve(m.size());
    for (const auto &entry : m) {
        if constexpr (std::is_same_v<
                          std::remove_cv_t<
                              std::remove_reference_t<decltype(entry)>>,
                          Key>)
            keys.push_back(entry); // Set: the entry is the key.
        else
            keys.push_back(entry.first); // Map: (key, value) pairs.
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_ORDERED_H
