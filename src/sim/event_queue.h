/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The kernel is a time-ordered priority queue of closures. Components
 * schedule work with schedule(delay, fn); the main loop pops events in
 * (time, insertion-order) order so simultaneous events execute in a
 * deterministic FIFO order — a requirement for reproducible runs.
 */

#ifndef BEACONGNN_SIM_EVENT_QUEUE_H
#define BEACONGNN_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace beacongnn::sim {

/**
 * Deterministic discrete-event queue.
 *
 * Events at equal timestamps fire in insertion order (stable), which
 * keeps multi-component interactions reproducible across runs and
 * platforms.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @return The absolute tick at which the event will fire.
     */
    Tick
    schedule(Tick delay, Callback fn)
    {
        return scheduleAt(_now + delay, std::move(fn));
    }

    /**
     * Schedule @p fn at absolute time @p when. Scheduling in the past
     * is clamped to "now" (the event still runs, immediately), which
     * lets analytic resource models hand back conservative grant times
     * without extra branching at every call site.
     */
    Tick
    scheduleAt(Tick when, Callback fn)
    {
        if (when < _now)
            when = _now;
        events.push(Event{when, seq++, std::move(fn)});
        return when;
    }

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /**
     * Run until the queue drains.
     * @return Final simulated time.
     */
    Tick
    run()
    {
        return runUntil(kTickMax);
    }

    /**
     * Run events with timestamp <= @p limit.
     * @return Simulated time after the last executed event (or @p limit
     *         if the queue drained earlier than the limit).
     */
    Tick
    runUntil(Tick limit)
    {
        while (!events.empty() && events.top().when <= limit) {
            // Copy out before pop: the callback may schedule new events.
            Event ev = events.top();
            events.pop();
            _now = ev.when;
            ev.fn();
        }
        return _now;
    }

    /** Drop all pending events (used between benchmark repetitions). */
    void
    clear()
    {
        events = {};
        _now = 0;
        seq = 0;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t order;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.order > b.order;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick _now = 0;
    std::uint64_t seq = 0;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_EVENT_QUEUE_H
