/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The kernel is a time-ordered priority queue of closures. Components
 * schedule work with schedule(delay, fn); the main loop pops events in
 * (time, insertion-order) order so simultaneous events execute in a
 * deterministic FIFO order — a requirement for reproducible runs.
 *
 * The hot path is allocation-free: callbacks are stored in a
 * small-buffer-optimized InlineCallback (no heap for typical
 * captures), the heap is a plain std::vector manipulated with
 * std::push_heap/std::pop_heap, and runUntil() moves each event out
 * of the queue instead of copying it (closures are executed exactly
 * once, so copyability is never needed).
 */

#ifndef BEACONGNN_SIM_EVENT_QUEUE_H
#define BEACONGNN_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/types.h"
#include "sim/validator.h"

namespace beacongnn::sim {

/**
 * Deterministic discrete-event queue.
 *
 * Events at equal timestamps fire in insertion order (stable), which
 * keeps multi-component interactions reproducible across runs and
 * platforms.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @return The absolute tick at which the event will fire.
     */
    Tick
    schedule(Tick delay, Callback fn)
    {
        return scheduleAt(_now + delay, std::move(fn));
    }

    /**
     * Schedule @p fn at absolute time @p when. Scheduling in the past
     * is clamped to "now" (the event still runs, immediately), which
     * lets analytic resource models hand back conservative grant times
     * without extra branching at every call site.
     */
    Tick
    scheduleAt(Tick when, Callback fn)
    {
        if constexpr (kCheckedBuild) {
            // Before the clamp: a past-scheduled event is exactly
            // what the checked build exists to catch.
            if (_validator)
                _validator->onSchedule(_station, when, _now);
        }
        if (when < _now)
            when = _now;
        events.push_back(Event{when, seq++, std::move(fn)});
        std::push_heap(events.begin(), events.end(), Later{});
        return when;
    }

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /** Timestamp of the earliest pending event (kTickMax if none).
     *  This is what a conservative parallel driver needs to compute
     *  the global window floor without popping anything. */
    Tick
    nextTime() const
    {
        return events.empty() ? kTickMax : events.front().when;
    }

    /** Pre-size the event heap to avoid growth reallocations. */
    void reserve(std::size_t n) { events.reserve(n); }

    /** Grow capacity by @p n more events beyond the current pending
     *  count (bulk message delivery pre-sizes once, not per event). */
    void reserveAdditional(std::size_t n) { events.reserve(events.size() + n); }

    /** One pre-timed event of a bulkScheduleAt() batch. */
    struct TimedEvent
    {
        Tick when;
        Callback fn;
    };

    /**
     * Schedule a whole message batch at once (mailbox drains). One
     * capacity reservation covers the batch, and a batch that rivals
     * the heap size re-heapifies once (O(n + k)) instead of paying k
     * sift-ups. Execution order is unaffected by the internal path:
     * the pop order is the total order (when, insertion-seq), and the
     * batch receives its sequence numbers in element order exactly as
     * k individual scheduleAt() calls would.
     */
    void
    bulkScheduleAt(std::vector<TimedEvent> batch)
    {
        reserveAdditional(batch.size());
        if (batch.size() >= 8 && batch.size() >= events.size() / 2) {
            for (TimedEvent &e : batch) {
                if constexpr (kCheckedBuild) {
                    if (_validator)
                        _validator->onSchedule(_station, e.when, _now);
                }
                events.push_back(Event{std::max(e.when, _now), seq++,
                                       std::move(e.fn)});
            }
            std::make_heap(events.begin(), events.end(), Later{});
        } else {
            for (TimedEvent &e : batch)
                scheduleAt(e.when, std::move(e.fn));
        }
    }

    /** Allocated heap capacity (events). */
    std::size_t capacity() const { return events.capacity(); }

    /**
     * Attach the checked-build validator, registering this queue as
     * @p station's local clock. A nullptr detaches. The setter is
     * always available; the hooks it feeds are compiled out entirely
     * unless BGN_CHECKED is defined (kCheckedBuild).
     */
    void
    setValidator(Validator *v, unsigned station)
    {
        _validator = v;
        _station = station;
    }

    /**
     * Run until the queue drains.
     * @return Final simulated time.
     */
    Tick
    run()
    {
        return runUntil(kTickMax);
    }

    /**
     * Run events with timestamp <= @p limit.
     * @return Simulated time after the last executed event (or @p limit
     *         if the queue drained earlier than the limit).
     */
    Tick
    runUntil(Tick limit)
    {
        while (!events.empty() && events.front().when <= limit) {
            // Move the top event out before executing: the callback
            // may schedule new events (invalidating references into
            // the heap), and moving avoids copying the closure.
            std::pop_heap(events.begin(), events.end(), Later{});
            Event ev = std::move(events.back());
            events.pop_back();
            _now = ev.when;
            if constexpr (kCheckedBuild) {
                if (_validator)
                    _validator->onPop(_station, ev.when);
            }
            ev.fn();
        }
        return _now;
    }

    /**
     * Drop all pending events and release the heap's memory (used
     * between benchmark repetitions so one oversized run does not pin
     * its peak allocation forever).
     */
    void
    clear()
    {
        std::vector<Event>().swap(events);
        _now = 0;
        seq = 0;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t order;
        Callback fn;
    };

    /** Max-heap comparator: the *earliest* event wins the top slot. */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.order > b.order;
        }
    };

    std::vector<Event> events;
    Tick _now = 0;
    std::uint64_t seq = 0;
    /** Checked-build hooks (DESIGN.md §16); unused when off. */
    Validator *_validator = nullptr;
    unsigned _station = 0;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_EVENT_QUEUE_H
