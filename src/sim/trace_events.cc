#include "sim/trace_events.h"

#include <cstdio>
#include <ostream>

namespace beacongnn::sim {

bool
TraceSink::full()
{
    if (evs.size() < maxEvents)
        return false;
    ++_dropped;
    return true;
}

void
TraceSink::complete(const char *name, const char *cat, std::uint32_t pid,
                    std::uint32_t tid, Tick start, Tick end)
{
    if (full())
        return;
    evs.push_back({name, cat, 0, pid, tid, start, end - start, 'X'});
}

void
TraceSink::beginAsync(const char *name, const char *cat,
                      std::uint64_t id, Tick ts)
{
    if (full())
        return;
    evs.push_back({name, cat, id, 0, 0, ts, 0, 'b'});
}

void
TraceSink::endAsync(const char *name, const char *cat, std::uint64_t id,
                    Tick ts)
{
    if (full())
        return;
    evs.push_back({name, cat, id, 0, 0, ts, 0, 'e'});
}

void
TraceSink::absorb(const TraceSink &shard)
{
    const std::uint64_t offset = idSeq;
    for (const Event &e : shard.evs) {
        if (full())
            continue; // full() tallies each dropped event.
        Event copy = e;
        if (copy.phase != 'X')
            copy.id += offset;
        evs.push_back(copy);
    }
    idSeq += shard.idSeq;
    _dropped += shard._dropped;
    for (const auto &[pid, name] : shard.processNames)
        processNames[pid] = name;
    for (const auto &[key, name] : shard.threadNames)
        threadNames[key] = name;
}

void
TraceSink::setProcessName(std::uint32_t pid, const std::string &name)
{
    processNames[pid] = name;
}

void
TraceSink::setThreadName(std::uint32_t pid, std::uint32_t tid,
                         const std::string &name)
{
    threadNames[{pid, tid}] = name;
}

namespace {

/** Ticks (ns) to Chrome microseconds with ns resolution. */
std::string
fmtTs(Tick t)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03u",
                  static_cast<unsigned long long>(t / 1000),
                  static_cast<unsigned>(t % 1000));
    return buf;
}

} // namespace

void
TraceSink::write(std::ostream &os) const
{
    os << "{\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const auto &[pid, name] : processNames) {
        sep();
        os << "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": "
           << pid << ", \"tid\": 0, \"args\": {\"name\": \"" << name
           << "\"}}";
    }
    for (const auto &[key, name] : threadNames) {
        sep();
        os << "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": "
           << key.first << ", \"tid\": " << key.second
           << ", \"args\": {\"name\": \"" << name << "\"}}";
    }
    for (const Event &e : evs) {
        sep();
        os << "  {\"ph\": \"" << e.phase << "\", \"name\": \"" << e.name
           << "\", \"cat\": \"" << e.cat << "\", \"pid\": " << e.pid
           << ", \"tid\": " << e.tid << ", \"ts\": " << fmtTs(e.ts);
        if (e.phase == 'X')
            os << ", \"dur\": " << fmtTs(e.dur);
        else
            os << ", \"id\": " << e.id;
        os << "}";
    }
    os << "\n]}\n";
}

} // namespace beacongnn::sim
