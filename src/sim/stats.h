/**
 * @file
 * Statistics primitives: scalar accumulators, histograms, and busy-
 * interval traces used to regenerate the paper's utilization figures.
 */

#ifndef BEACONGNN_SIM_STATS_H
#define BEACONGNN_SIM_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/types.h"

namespace beacongnn::sim {

/** Streaming accumulator: count / sum / min / max / mean. */
class Accumulator
{
  public:
    void
    add(double v)
    {
        ++_count;
        _sum += v;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double
    mean() const
    {
        return _count ? _sum / static_cast<double>(_count) : 0.0;
    }

    void
    clear()
    {
        _count = 0;
        _sum = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

    /** Exact in-place merge of another accumulator. */
    void
    merge(const Accumulator &other)
    {
        _count += other._count;
        _sum += other._sum;
        _min = std::min(_min, other._min);
        _max = std::max(_max, other._max);
    }

    /** Exact merge of two accumulators. */
    friend Accumulator
    merged(const Accumulator &a, const Accumulator &b)
    {
        Accumulator m = a;
        m.merge(b);
        return m;
    }

  private:
    std::uint64_t _count = 0;
    double _sum = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Fixed-width linear histogram for latency distributions. */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (same unit as samples).
     * @param buckets      Number of buckets; overflow goes to the last.
     */
    explicit Histogram(double bucket_width = 1000.0,
                       std::size_t buckets = 64)
        : width(bucket_width), counts(buckets, 0)
    {
    }

    void
    add(double v)
    {
        acc.add(v);
        auto idx = static_cast<std::size_t>(std::max(0.0, v) / width);
        if (idx >= counts.size())
            idx = counts.size() - 1;
        ++counts[idx];
    }

    const std::vector<std::uint64_t> &buckets() const { return counts; }
    double bucketWidth() const { return width; }
    const Accumulator &summary() const { return acc; }

    /** Merge another histogram with identical geometry. */
    void
    merge(const Histogram &other)
    {
        if (other.counts.size() != counts.size() ||
            other.width != width) {
            return; // Geometry mismatch: ignore (callers use fixed).
        }
        for (std::size_t i = 0; i < counts.size(); ++i)
            counts[i] += other.counts[i];
        acc = merged(acc, other.acc);
    }

    /**
     * Percentile estimate for @p p in [0, 100], linear within the
     * owning bucket and clamped to the observed sample range.
     *
     * An empty histogram yields 0. The last bucket is the overflow
     * bucket (it holds every sample >= its lower edge, however
     * large), so when the target rank lands there the estimate
     * interpolates between the bucket's lower edge and the observed
     * maximum instead of pretending the bucket has `width` extent.
     */
    double
    percentile(double p) const
    {
        if (acc.count() == 0)
            return 0.0;
        p = std::clamp(p, 0.0, 100.0);
        double target = p / 100.0 * static_cast<double>(acc.count());
        if (target <= 0.0)
            return acc.min();
        double seen = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (counts[i] == 0)
                continue;
            double next = seen + static_cast<double>(counts[i]);
            if (next >= target) {
                double lo = static_cast<double>(i) * width;
                double frac =
                    (target - seen) / static_cast<double>(counts[i]);
                double hi = (i + 1 == counts.size())
                                ? std::max(acc.max(), lo) // overflow
                                : lo + width;
                return std::clamp(lo + frac * (hi - lo), acc.min(),
                                  acc.max());
            }
            seen = next;
        }
        return acc.max();
    }

    /**
     * Batch quantile estimates: one bucket walk resolves every
     * requested quantile, using exactly the percentile() math
     * (linear interpolation within the owning bucket, overflow bucket
     * interpolated against the observed maximum, clamped to the
     * sample range), so `percentiles({q})[0] == percentile(100 * q)`.
     *
     * @param qs Quantiles as fractions in [0, 1] — e.g.
     *           {0.5, 0.99, 0.999} for p50 / p99 / p99.9. Results are
     *           returned in the same order (the input need not be
     *           sorted). High quantiles stay accurate because the
     *           walk interpolates within the owning bucket instead of
     *           returning bucket midpoints: with B buckets the error
     *           is bounded by one bucket width even at p99.9.
     */
    std::vector<double>
    percentiles(const std::vector<double> &qs) const
    {
        std::vector<double> out(qs.size(), 0.0);
        if (acc.count() == 0 || qs.empty())
            return out;
        // Resolve targets in rank order during one walk; `order`
        // restores the caller's ordering afterwards.
        std::vector<std::size_t> order(qs.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return qs[a] < qs[b];
                  });
        const double n = static_cast<double>(acc.count());
        std::size_t next = 0;
        double seen = 0;
        for (std::size_t i = 0; i < counts.size() && next < order.size();
             ++i) {
            if (counts[i] == 0)
                continue;
            double upto = seen + static_cast<double>(counts[i]);
            while (next < order.size()) {
                double target =
                    std::clamp(qs[order[next]], 0.0, 1.0) * n;
                if (target <= 0.0) {
                    out[order[next++]] = acc.min();
                    continue;
                }
                if (upto < target)
                    break;
                double lo = static_cast<double>(i) * width;
                double frac =
                    (target - seen) / static_cast<double>(counts[i]);
                double hi = (i + 1 == counts.size())
                                ? std::max(acc.max(), lo) // overflow
                                : lo + width;
                out[order[next++]] = std::clamp(lo + frac * (hi - lo),
                                                acc.min(), acc.max());
            }
            seen = upto;
        }
        while (next < order.size())
            out[order[next++]] = acc.max();
        return out;
    }

    /** Approximate quantile (linear within bucket). */
    double
    quantile(double q) const
    {
        if (acc.count() == 0)
            return 0.0;
        double target = q * static_cast<double>(acc.count());
        double seen = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            seen += static_cast<double>(counts[i]);
            if (seen >= target)
                return (static_cast<double>(i) + 0.5) * width;
        }
        return static_cast<double>(counts.size()) * width;
    }

  private:
    double width;
    std::vector<std::uint64_t> counts;
    Accumulator acc;
};

/**
 * Record of busy intervals on one unit (die, channel). Post-processed
 * into "active units over time" series for Fig. 15.
 */
class IntervalTrace
{
  public:
    void
    add(Tick start, Tick end)
    {
        // Merge with the previous interval when contiguous to bound
        // memory under saturation.
        if (!spans.empty() && start <= spans.back().second) {
            spans.back().second = std::max(spans.back().second, end);
        } else {
            spans.emplace_back(start, end);
        }
    }

    const std::vector<std::pair<Tick, Tick>> &get() const { return spans; }

    /** Total busy time covered by the (disjoint) spans. */
    Tick
    busy() const
    {
        Tick b = 0;
        for (auto &[s, e] : spans)
            b += e - s;
        return b;
    }

    /** Busy time overlapping [t0, t1). */
    Tick
    busyWithin(Tick t0, Tick t1) const
    {
        Tick b = 0;
        for (auto &[s, e] : spans) {
            if (e <= t0)
                continue;
            if (s >= t1)
                break;
            b += std::min(e, t1) - std::max(s, t0);
        }
        return b;
    }

    /** Union another trace's spans into this one (re-coalescing). */
    void
    merge(const IntervalTrace &other)
    {
        if (other.spans.empty())
            return;
        if (spans.empty()) {
            spans = other.spans;
            return;
        }
        std::vector<std::pair<Tick, Tick>> all = std::move(spans);
        all.insert(all.end(), other.spans.begin(), other.spans.end());
        std::sort(all.begin(), all.end());
        spans.clear();
        for (const auto &[s, e] : all)
            add(s, e);
    }

    void clear() { spans.clear(); }
    bool empty() const { return spans.empty(); }

  private:
    std::vector<std::pair<Tick, Tick>> spans;
};

/**
 * Build an "active unit count over time" series (Fig. 15a-e): for each
 * time bucket, how many of the traced units were busy for more than
 * half of the bucket.
 *
 * @param traces  One IntervalTrace per unit.
 * @param horizon End of the observation window.
 * @param buckets Number of output samples.
 */
std::vector<double> activeSeries(
    const std::vector<const IntervalTrace *> &traces, Tick horizon,
    std::size_t buckets);

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_STATS_H
