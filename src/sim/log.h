/**
 * @file
 * Minimal levelled logging, gem5-flavoured: inform/warn for user-facing
 * conditions, panic for internal invariant violations (aborts), fatal
 * for unrecoverable user configuration errors (clean exit).
 */

#ifndef BEACONGNN_SIM_LOG_H
#define BEACONGNN_SIM_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace beacongnn::sim {

/** Global log verbosity. 0 = quiet, 1 = inform, 2 = debug. */
int logLevel();

/** Set global log verbosity. */
void setLogLevel(int level);

namespace detail {
void emit(const char *tag, const std::string &msg);
} // namespace detail

/** Status message for the user; suppressed when logLevel() < 1. */
void inform(const std::string &msg);

/** Something works, but suspiciously; always printed. */
void warn(const std::string &msg);

/** Debug detail; suppressed when logLevel() < 2. */
void debug(const std::string &msg);

/**
 * Internal invariant violated — a simulator bug. Prints and aborts
 * (may dump core / trap into a debugger).
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Unrecoverable user error (bad configuration, impossible request).
 * Prints and exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_LOG_H
