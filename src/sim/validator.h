/**
 * @file
 * Checked-build runtime validator for the conservative parallel
 * simulator's causality and lane-ownership contract (DESIGN.md §16).
 *
 * The determinism of a multi-device run rests on invariants the
 * compiler never sees: no event is scheduled into a queue's past, a
 * cross-device mailbox message is stamped at least one lookahead
 * beyond its sender's clock, each device's state is touched only by
 * the worker thread that owns its station for the current window,
 * and every queue pops timestamps monotonically inside the window
 * bounds. bgnlint's BGN006/BGN007 prove the lexical side; this class
 * proves the dynamic side by asserting each invariant at runtime and
 * aborting with device/event context on the first violation.
 *
 * Cost model: configuring with -DBGN_CHECKED=ON defines the
 * BGN_CHECKED macro globally, turning ::beacongnn::sim::kCheckedBuild
 * true; every hook call site in the hot paths (EventQueue, Mailbox,
 * ParallelSimulator, GnnEngine) sits under `if constexpr
 * (kCheckedBuild)`, so an OFF build compiles the hooks out entirely —
 * byte- and timing-neutral, enforced by the validator_overhead
 * micro-benchmark. The Validator class itself is always compiled so
 * tests can drive the assertions directly in any build.
 *
 * Threading: one Validator instance per simulation run (bench grids
 * run several simulations concurrently in one process, so this is
 * never a process-global). The driver opens/closes windows; workers
 * claim and release stations; hooks may fire from any claimed
 * thread.
 */

#ifndef BEACONGNN_SIM_VALIDATOR_H
#define BEACONGNN_SIM_VALIDATOR_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace beacongnn::sim {

#if defined(BGN_CHECKED)
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

/** Runtime causality/ownership assertions for one parallel run. */
class Validator
{
  public:
    /**
     * @param stations  Station (device) count of the run.
     * @param lookahead Minimum cross-station latency the driver
     *                  synchronizes with (TopologyConfig lookahead).
     */
    Validator(std::size_t stations, Tick lookahead);

    Validator(const Validator &) = delete;
    Validator &operator=(const Validator &) = delete;

    // ---- driver protocol (ParallelSimulator) ----------------------
    /** A window [floor, limit] is about to run. Driver thread only. */
    void windowOpen(Tick floor, Tick limit);
    /** The window's stations have all quiesced. Driver thread only. */
    void windowClose();
    /** The calling thread takes station @p dev for this window.
     *  Aborts if another live thread still holds it. */
    void claimStation(unsigned dev);
    /** The calling thread hands station @p dev back. */
    void releaseStation(unsigned dev);

    // ---- invariant hooks (abort on violation) ---------------------
    /** EventQueue::scheduleAt on station @p dev: @p when must be
     *  >= @p now — an event scheduled into the queue's past would
     *  have been clamped, silently reordering history. */
    void onSchedule(unsigned dev, Tick when, Tick now);
    /** EventQueue::runUntil pop on station @p dev: timestamps are
     *  monotone per queue and confined to the open window, and only
     *  the claiming thread may pop. */
    void onPop(unsigned dev, Tick when);
    /** Mailbox post from @p src to @p dst: the delivery stamp must
     *  be >= sender clock + lookahead or the conservative window
     *  could deliver work into a station's executed past. */
    void onMailboxPost(unsigned src, unsigned dst, Tick when,
                       Tick srcNow);
    /** Arbitrary lane-owned touch of device @p dev (engine entry
     *  points): inside a window only the owning thread may call. */
    void onTouch(unsigned dev, const char *what);

    // ---- introspection --------------------------------------------
    /** Total invariant checks performed (all hooks). */
    std::uint64_t checks() const
    {
        return _checks.load(std::memory_order_relaxed);
    }
    Tick lookahead() const { return _lookahead; }
    std::size_t stations() const { return _slots.size(); }
    /** True between windowOpen() and windowClose(). */
    bool windowActive() const
    {
        return _active.load(std::memory_order_acquire);
    }

  private:
    /** Per-station ownership + pop history, line-padded so claims on
     *  neighbouring stations never false-share. */
    struct alignas(64) Slot
    {
        /** Hashed id of the claiming thread; 0 = unclaimed. */
        std::atomic<std::size_t> owner{0};
        Tick lastPop = 0;
    };

    [[noreturn]] void fail(unsigned dev, const char *what,
                           const char *detail, Tick a, Tick b);
    void count() { _checks.fetch_add(1, std::memory_order_relaxed); }
    static std::size_t threadKey();
    void checkOwner(unsigned dev, const char *what);

    std::vector<Slot> _slots;
    Tick _lookahead;
    std::atomic<bool> _active{false};
    Tick _floor = 0;
    Tick _limit = kTickMax;
    std::atomic<std::uint64_t> _checks{0};
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_VALIDATOR_H
