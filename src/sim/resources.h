/**
 * @file
 * Analytic FIFO resource primitives for the timing model.
 *
 * The simulator follows the MQSim modelling style: a shared hardware
 * resource (flash die, channel bus, firmware core, DRAM port, PCIe
 * link) is represented by its next-free time(s). A request arriving at
 * time t with a known service time s is granted the earliest interval
 * [start, start+s) with start >= t on the earliest-available server.
 * Because the discrete-event kernel delivers requests in nondecreasing
 * time order, this analytic treatment is exactly equivalent to running
 * a FIFO queue per resource, at a fraction of the event count.
 */

#ifndef BEACONGNN_SIM_RESOURCES_H
#define BEACONGNN_SIM_RESOURCES_H

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/stats.h"
#include "sim/types.h"

namespace beacongnn::sim {

/** Result of a resource acquisition: the granted service interval. */
struct Grant
{
    Tick start; ///< When service begins (>= request time).
    Tick end;   ///< When service completes.

    /** Queueing delay experienced before service. */
    Tick waited(Tick requested) const { return start - requested; }
};

/**
 * A pool of k identical FIFO servers (e.g. the SSD's embedded
 * processor cores, or a bank of DMA engines).
 */
class ServerPool
{
  public:
    /**
     * @param servers Number of parallel servers (>= 1).
     * @param name    Stats label.
     */
    explicit ServerPool(unsigned servers = 1, std::string name = "pool")
        : label(std::move(name))
    {
        reset(servers);
    }

    /** Reinitialize with @p servers idle servers at time 0. */
    void
    reset(unsigned servers)
    {
        free = {};
        for (unsigned i = 0; i < std::max(1u, servers); ++i)
            free.push(0);
        _busyTime = 0;
        _requests = 0;
    }

    /** Number of servers in the pool. */
    std::size_t size() const { return free.size(); }

    /**
     * Acquire the earliest-available server at or after @p ready for
     * @p service ticks.
     */
    Grant
    acquire(Tick ready, Tick service)
    {
        Tick avail = free.top();
        free.pop();
        Tick start = std::max(ready, avail);
        Tick end = start + service;
        free.push(end);
        _busyTime += service;
        ++_requests;
        return {start, end};
    }

    /** Earliest time any server becomes free. */
    Tick earliestFree() const { return free.top(); }

    /** Aggregate busy time across all servers. */
    Tick busyTime() const { return _busyTime; }

    /** Number of acquisitions served. */
    std::uint64_t requests() const { return _requests; }

    /** Mean utilization over [0, horizon] across all servers. */
    double
    utilization(Tick horizon) const
    {
        if (horizon == 0)
            return 0.0;
        return static_cast<double>(_busyTime) /
               (static_cast<double>(horizon) *
                static_cast<double>(free.size()));
    }

    const std::string &name() const { return label; }

  private:
    std::priority_queue<Tick, std::vector<Tick>, std::greater<>> free;
    std::string label;
    Tick _busyTime = 0;
    std::uint64_t _requests = 0;
};

/**
 * A single serialized resource (bus/link) with optional busy-interval
 * recording for utilization-over-time plots (Fig. 15).
 */
class Bus
{
  public:
    explicit Bus(std::string name = "bus", bool trace_busy = false)
        : label(std::move(name)), tracing(trace_busy)
    {
    }

    /** Enable/disable busy-interval tracing. */
    void setTracing(bool on) { tracing = on; }

    /** Acquire the bus at or after @p ready for @p service ticks. */
    Grant
    acquire(Tick ready, Tick service)
    {
        Tick start = std::max(ready, nextFree);
        Tick end = start + service;
        nextFree = end;
        _busyTime += service;
        ++_requests;
        if (tracing && service > 0)
            trace.add(start, end);
        return {start, end};
    }

    /** Next time the bus is free. */
    Tick earliestFree() const { return nextFree; }

    /**
     * Keep the resource occupied (but not "busy working") until @p t.
     * Models a flash die whose data register still holds a result that
     * has not yet drained over the channel: the die cannot start a new
     * sense, but it is not performing useful work either, so the time
     * is not added to busyTime() or the utilization trace.
     */
    void holdUntil(Tick t) { nextFree = std::max(nextFree, t); }

    Tick busyTime() const { return _busyTime; }
    std::uint64_t requests() const { return _requests; }

    double
    utilization(Tick horizon) const
    {
        return horizon == 0
                   ? 0.0
                   : static_cast<double>(_busyTime) /
                         static_cast<double>(horizon);
    }

    /** Busy intervals recorded while tracing was enabled. */
    const IntervalTrace &intervals() const { return trace; }

    const std::string &name() const { return label; }

    void
    resetStats()
    {
        nextFree = 0;
        _busyTime = 0;
        _requests = 0;
        trace.clear();
    }

  private:
    std::string label;
    bool tracing;
    Tick nextFree = 0;
    Tick _busyTime = 0;
    std::uint64_t _requests = 0;
    IntervalTrace trace;
};

/**
 * Bandwidth-shared resource: transfers are serialized at a configured
 * byte rate (models the SSD DRAM port and the PCIe link, where what
 * matters is aggregate bytes/second rather than per-transaction
 * occupancy of a specific server).
 */
class BandwidthResource
{
  public:
    /**
     * @param mbytes_per_s Sustained bandwidth in 10^6 bytes/s.
     * @param name         Stats label.
     */
    explicit BandwidthResource(double mbytes_per_s = 1000.0,
                               std::string name = "bw")
        : rate(mbytes_per_s), label(std::move(name))
    {
    }

    /** Change the modelled bandwidth (sensitivity sweeps). */
    void setRate(double mbytes_per_s) { rate = mbytes_per_s; }
    double rateMBps() const { return rate; }

    /** Transfer @p bytes beginning no earlier than @p ready. */
    Grant
    acquire(Tick ready, std::uint64_t bytes)
    {
        Tick service = transferTime(bytes, rate);
        Tick start = std::max(ready, nextFree);
        Tick end = start + service;
        nextFree = end;
        _busyTime += service;
        _bytes += bytes;
        return {start, end};
    }

    Tick earliestFree() const { return nextFree; }
    Tick busyTime() const { return _busyTime; }
    std::uint64_t bytesMoved() const { return _bytes; }

    double
    utilization(Tick horizon) const
    {
        return horizon == 0
                   ? 0.0
                   : static_cast<double>(_busyTime) /
                         static_cast<double>(horizon);
    }

    const std::string &name() const { return label; }

    void
    resetStats()
    {
        nextFree = 0;
        _busyTime = 0;
        _bytes = 0;
    }

  private:
    double rate;
    std::string label;
    Tick nextFree = 0;
    Tick _busyTime = 0;
    std::uint64_t _bytes = 0;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_RESOURCES_H
