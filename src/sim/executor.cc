#include "sim/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

namespace beacongnn::sim {

namespace {
/** Process-wide --jobs override; 0 = resolve from env/hardware. */
std::atomic<unsigned> gForcedJobs{0};
} // namespace

unsigned
SimExecutor::defaultJobs()
{
    if (unsigned forced = gForcedJobs.load(std::memory_order_relaxed))
        return forced;
    if (const char *env = std::getenv("BGN_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
SimExecutor::setDefaultJobs(unsigned jobs)
{
    gForcedJobs.store(jobs, std::memory_order_relaxed);
}

SimExecutor::SimExecutor(unsigned jobs)
    : _jobs(jobs ? jobs : defaultJobs())
{
}

void
SimExecutor::run(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(_jobs, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Atomic-counter dispatch: each worker claims the next unclaimed
    // index. No per-job queues, no stealing — jobs are coarse
    // (whole simulations), so contention on one counter is nil.
    std::atomic<std::size_t> next{0};
    auto work = [&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < n; i = next.fetch_add(1, std::memory_order_relaxed))
            fn(i);
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned t = 0; t + 1 < workers; ++t)
        threads.emplace_back(work);
    work(); // The calling thread is worker zero.
    for (auto &th : threads)
        th.join();
}

} // namespace beacongnn::sim
