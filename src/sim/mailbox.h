/**
 * @file
 * Timestamped inter-station message queue for the conservative
 * parallel simulator (DESIGN.md §13).
 *
 * Stations (per-device event queues) must never schedule work
 * directly onto another station's queue — that queue may be mid-run
 * on another worker thread, and even under a lock the insertion order
 * would depend on thread scheduling. Instead a cross-station effect
 * is posted here as a message carrying its delivery timestamp; the
 * simulation driver drains each station's inbox at a window boundary,
 * sorts the messages by a deterministic key supplied by the caller,
 * and bulk-schedules them. The mailbox is mutex-sharded per
 * destination, so concurrent posters to different stations never
 * contend.
 */

#ifndef BEACONGNN_SIM_MAILBOX_H
#define BEACONGNN_SIM_MAILBOX_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/types.h"
#include "sim/validator.h"

namespace beacongnn::sim {

/**
 * Per-destination message inbox. @p Message is caller-defined; the
 * caller owns the deterministic sort applied after drain() (typically
 * by (deliveryTime, sourceStation, sourceSequence)).
 *
 * Thread contract: post() may be called concurrently from any thread;
 * drain() takes the whole inbox under the same per-destination mutex.
 * The conservative driver only drains between windows, when no
 * station is running.
 */
template <typename Message>
class Mailbox
{
  public:
    explicit Mailbox(std::size_t stations) : slots(stations) {}

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    /** Enqueue @p msg for station @p dst. */
    void
    post(std::size_t dst, Message msg)
    {
        Slot &s = slots[dst];
        std::lock_guard<std::mutex> lock(s.mutex);
        s.inbox.push_back(std::move(msg));
        ++s.posted;
    }

    /**
     * Checked post: like post(), but carries the causality facts a
     * checked build (DESIGN.md §16) asserts — the message's delivery
     * stamp @p when must be at least one lookahead beyond the
     * sender's clock @p srcNow, and the calling thread must own
     * station @p src for the current window. An OFF build compiles
     * the check out and this is exactly post().
     */
    void
    post(std::size_t dst, Message msg, Tick when, unsigned src,
         Tick srcNow)
    {
        if constexpr (kCheckedBuild) {
            if (_validator)
                _validator->onMailboxPost(
                    src, static_cast<unsigned>(dst), when, srcNow);
        }
        post(dst, std::move(msg));
    }

    /** Attach the checked-build validator (nullptr detaches). */
    void setValidator(Validator *v) { _validator = v; }

    /** Take station @p dst's whole inbox (arrival order, unsorted). */
    std::vector<Message>
    drain(std::size_t dst)
    {
        Slot &s = slots[dst];
        std::lock_guard<std::mutex> lock(s.mutex);
        std::vector<Message> out;
        out.swap(s.inbox);
        return out;
    }

    /** Messages ever posted to station @p dst (drained or not). */
    std::uint64_t
    posted(std::size_t dst) const
    {
        const Slot &s = slots[dst];
        std::lock_guard<std::mutex> lock(s.mutex);
        return s.posted;
    }

    std::size_t stations() const { return slots.size(); }

  private:
    /** Cache-line padded so two stations' locks never false-share. */
    struct alignas(64) Slot
    {
        mutable std::mutex mutex;
        std::vector<Message> inbox;
        std::uint64_t posted = 0;
    };

    std::vector<Slot> slots;
    /** Checked-build hooks (DESIGN.md §16); unused when off. */
    Validator *_validator = nullptr;
};

} // namespace beacongnn::sim

#endif // BEACONGNN_SIM_MAILBOX_H
