#include "core/beacongnn.h"

#include "sim/log.h"

namespace beacongnn {

BeaconGnnSystem::BeaconGnnSystem(graph::Graph g,
                                 graph::FeatureTable features,
                                 const SystemOptions &options)
    : opts(options), _graph(std::move(g)), _features(std::move(features)),
      _backend(opts.system.flash), _store(opts.system.flash),
      _fw(opts.system),
      _accel(platforms::makePlatform(opts.platform).ssdCompute
                 ? accel::ssdAcceleratorConfig()
                 : accel::discreteTpuConfig()),
      _accelBus("accel")
{
    opts.model.featureDim = _features.dim();

    // §VI-A: the host fetches reserved block addresses, converts the
    // dataset and flushes it through the manipulation interface.
    std::uint64_t raw = _graph.numEdges() * 4 +
                        std::uint64_t{_graph.numNodes()} *
                            _features.bytesPerNode();
    std::uint64_t block_bytes =
        std::uint64_t{opts.system.flash.pagesPerBlock} *
        opts.system.flash.pageSize;
    std::uint64_t want = std::max<std::uint64_t>(
        (raw * 3) / block_bytes + 16,
        opts.system.flash.totalDies() + 8);
    _host = std::make_unique<ssd::HostInterface>(_fw);
    // §VI-A flow: fetch the reserved block list, deliver the GNN
    // configuration, convert, then flush through the verified path.
    auto blocks = _host->getBlockList(0, want);
    if (blocks.empty())
        sim::fatal("BeaconGnnSystem: device too small for this graph");
    _host->setGnnConfig(0, engines::gnnGlobalConfig(opts.model));

    _layout = dg::buildLayout(_graph, _features, opts.system.flash,
                              blocks);
    // Hand unused reserved blocks back.
    std::vector<flash::BlockId> unused(blocks.begin() +
                                           _layout.blocks.size(),
                                       blocks.end());
    _fw.ftl().releaseBlocks(unused);

    ssd::FlushResult flush = _host->flushDirectGraph(
        0, _layout, _graph, _features, _store, _backend);
    if (!flush.ok)
        sim::fatal("BeaconGnnSystem: DirectGraph flush failed "
                   "verification");
    _flushTime = flush.finish;
    _prepCursor = flush.finish;

    _io = std::make_unique<ssd::IoPath>(_fw, _backend, _store);
    _source = std::make_unique<dg::PageByteSource>(_store,
                                                   _features.dim());
    _engine = std::make_unique<engines::GnnEngine>(
        _queue, _backend, _fw, _layout, _graph, opts.model,
        platforms::makePlatform(opts.platform).flags, *_source);
}

BeaconGnnSystem::~BeaconGnnSystem() = default;

MiniBatchResult
BeaconGnnSystem::runMiniBatch(std::span<const graph::NodeId> targets)
{
    MiniBatchResult out;
    bool got = false;
    // The target list reaches the device as a SubmitBatch command.
    _prepCursor = _host->submitBatch(_prepCursor, targets.size());
    _engine->prepare(_prepCursor, _batchCounter++, targets,
                     [&](engines::PrepResult &&r) {
                         out.prep = std::move(r);
                         got = true;
                     });
    _queue.run();
    if (!got)
        sim::panic("runMiniBatch: preparation did not complete");
    _prepCursor = out.prep.finish;
    // §VI-G: regular storage requests arriving during the mini-batch
    // are deferred to its end.
    _io->enterAccelerationMode(out.prep.finish);

    // Functional forward pass on the sampled subgraph.
    out.embeddings = gnn::forward(out.prep.subgraph, _features,
                                  opts.model);

    // Timing of the compute stage, pipelined behind the previous
    // batch on the accelerator.
    gnn::ComputeWorkload w =
        gnn::measureCompute(out.prep.subgraph, opts.model);
    accel::ComputeEstimate est = _accel.estimate(w);
    sim::Grant grant = _accelBus.acquire(out.prep.finish, est.total());
    out.computeTime = est.total();
    out.finish = grant.end;
    return out;
}

ssd::ScrubReport
BeaconGnnSystem::scrub()
{
    return _fw.scrub(_layout, _graph, _features, _store);
}

bool
BeaconGnnSystem::reclaimIfNeeded(double threshold)
{
    if (!_fw.ftl().needsReclaim(_store, threshold))
        return false;
    // Erase the old copy only after the migrated one is verified;
    // reclaimDirectGraph handles the whole sequence.
    ssd::ReclaimResult r = _fw.reclaimDirectGraph(
        _prepCursor, _layout, _graph, _features, _store, _backend);
    if (!r.ok)
        return false;
    _layout = std::move(r.layout);
    _prepCursor = r.finish;
    // Rebind the engine and source to the migrated layout.
    _source = std::make_unique<dg::PageByteSource>(_store,
                                                   _features.dim());
    _engine = std::make_unique<engines::GnnEngine>(
        _queue, _backend, _fw, _layout, _graph, opts.model,
        platforms::makePlatform(opts.platform).flags, *_source);
    return true;
}

} // namespace beacongnn
