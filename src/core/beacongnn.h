/**
 * @file
 * BeaconGNN public API.
 *
 * BeaconGnnSystem is the downstream-facing facade: hand it a graph and
 * a feature table and it performs the full system flow of the paper —
 * reserve physical blocks (§VI-A), build the DirectGraph (Algorithm
 * 1), flush it through the verified manipulation interface (§VI-E),
 * and then serve mini-batches end to end: out-of-order in-storage
 * sampling + feature retrieval on the selected platform, functional
 * GNN forward pass, timing and energy statistics.
 *
 * For the evaluation harness (many platforms x workloads x sweeps)
 * use platforms/runner.h directly; this facade favours clarity over
 * sweep throughput.
 */

#ifndef BEACONGNN_CORE_BEACONGNN_H
#define BEACONGNN_CORE_BEACONGNN_H

#include <memory>

#include "accel/accelerator.h"
#include "engines/gnn_engine.h"
#include "gnn/compute.h"
#include "platforms/platform.h"
#include "ssd/firmware.h"
#include "ssd/host_interface.h"
#include "ssd/io_path.h"

namespace beacongnn {

/** Construction options of a BeaconGNN system instance. */
struct SystemOptions
{
    ssd::SystemConfig system{};
    gnn::ModelConfig model{};
    /** Which platform timing model serves mini-batches. */
    platforms::PlatformKind platform = platforms::PlatformKind::BG2;
};

/** Result of one end-to-end mini-batch. */
struct MiniBatchResult
{
    /** Final embeddings of the targets (hop-0 order). */
    std::vector<std::vector<float>> embeddings;
    /** Data-preparation record (timing, subgraph, tallies). */
    engines::PrepResult prep;
    /** Accelerator time of the compute stage. */
    sim::Tick computeTime = 0;
    /** End of compute (prep pipelined with previous batch). */
    sim::Tick finish = 0;
};

/** The BeaconGNN SSD: one device holding one DirectGraph. */
class BeaconGnnSystem
{
  public:
    /**
     * Ingest a dataset: build + verify + flush the DirectGraph.
     * fatal() if the graph does not fit the device.
     */
    BeaconGnnSystem(graph::Graph g, graph::FeatureTable features,
                    const SystemOptions &opts = {});
    ~BeaconGnnSystem();

    BeaconGnnSystem(const BeaconGnnSystem &) = delete;
    BeaconGnnSystem &operator=(const BeaconGnnSystem &) = delete;

    /** The on-flash layout (addresses, build statistics). */
    const dg::DirectGraphLayout &layout() const { return _layout; }
    const dg::BuildStats &buildStats() const { return _layout.stats; }

    /** Time the initial flush took (construction cost). */
    sim::Tick flushTime() const { return _flushTime; }

    /**
     * Run one mini-batch end to end (in-storage data preparation +
     * GNN computation) and return target embeddings with timing.
     */
    MiniBatchResult runMiniBatch(std::span<const graph::NodeId> targets);

    /** Idle-time scrubbing pass over the DirectGraph blocks (§VI-F). */
    ssd::ScrubReport scrub();

    /**
     * Check the P/E gap and migrate the DirectGraph if it exceeds
     * @p threshold (§VI-F wear-levelling reclamation).
     * @return true if a migration ran.
     */
    bool reclaimIfNeeded(double threshold = 64.0);

    /** Inject a retention bit error (testing / fault injection). */
    bool corruptBit(flash::Ppa ppa, std::uint32_t byte, unsigned bit)
    {
        return _store.corruptBit(ppa, byte, bit);
    }

    /**
     * Regular block-I/O interface of the device (§VI-G): standard
     * reads/writes coexist with the DirectGraph; requests issued
     * while a mini-batch is in flight are deferred to its end.
     */
    ssd::IoPath &io() { return *_io; }

    /** The §VI-A manipulation interface the constructor used (block
     *  list fetch, config delivery, verified flush, batch submit). */
    ssd::HostInterface &hostInterface() { return *_host; }

    ssd::Firmware &firmware() { return _fw; }
    flash::PageStore &pageStore() { return _store; }
    const graph::Graph &graph() const { return _graph; }
    const gnn::ModelConfig &model() const { return opts.model; }

  private:
    SystemOptions opts;
    graph::Graph _graph;
    graph::FeatureTable _features;
    sim::EventQueue _queue;
    flash::FlashBackend _backend;
    flash::PageStore _store;
    ssd::Firmware _fw;
    dg::DirectGraphLayout _layout;
    std::unique_ptr<ssd::HostInterface> _host;
    std::unique_ptr<ssd::IoPath> _io;
    std::unique_ptr<dg::PageByteSource> _source;
    std::unique_ptr<engines::GnnEngine> _engine;
    accel::Accelerator _accel;
    sim::Bus _accelBus;
    sim::Tick _flushTime = 0;
    sim::Tick _prepCursor = 0;
    std::uint64_t _batchCounter = 0;
};

} // namespace beacongnn

#endif // BEACONGNN_CORE_BEACONGNN_H
