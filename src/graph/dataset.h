/**
 * @file
 * The five evaluation workloads (Table III/IV) as synthetic specs.
 *
 * Each spec preserves the shape parameters that drive every evaluated
 * effect — average degree (pages per neighbour list) and feature
 * dimension (bytes per channel transfer) — while scaling the node
 * count down so a full simulation completes in seconds. `simNodes`
 * can be overridden for larger runs.
 */

#ifndef BEACONGNN_GRAPH_DATASET_H
#define BEACONGNN_GRAPH_DATASET_H

#include <string>
#include <vector>

#include "graph/generator.h"
#include "graph/graph.h"

namespace beacongnn::graph {

/** One evaluation workload. */
struct WorkloadSpec
{
    std::string name;
    NodeId simNodes;         ///< Scaled node count for simulation.
    double avgDegree;        ///< Table III average degree.
    std::uint16_t featureDim; ///< FP16 elements per node.
    double paperRawGB;       ///< Raw dataset volume (Table IV).
    double paperInflatePct;  ///< DirectGraph inflation (Table IV).
    std::uint64_t seed;

    /** Bytes of one feature vector. */
    std::uint32_t featureBytes() const { return std::uint32_t{featureDim} * 2; }

    /** Instantiate the synthetic graph for this spec. */
    Graph
    makeGraph() const
    {
        GeneratorParams p;
        p.nodes = simNodes;
        p.avgDegree = avgDegree;
        p.seed = seed;
        return generatePowerLaw(p);
    }

    /** Instantiate the (procedural) feature table for this spec. */
    FeatureTable makeFeatures() const { return FeatureTable(featureDim, seed); }
};

/** The five workloads of the evaluation section. */
const std::vector<WorkloadSpec> &workloads();

/** Lookup by name; fatal() on unknown names. */
const WorkloadSpec &workload(const std::string &name);

/** Lookup by name (case-insensitive); nullptr on unknown names. */
const WorkloadSpec *findWorkload(const std::string &name);

/** All workload names, comma-separated (for CLI messages). */
std::string workloadNameList();

} // namespace beacongnn::graph

#endif // BEACONGNN_GRAPH_DATASET_H
