/**
 * @file
 * In-memory CSR graph and procedural FP16 feature table.
 *
 * The CSR graph is the "raw dataset" input to DirectGraph conversion
 * and the golden reference for all samplers. Features are procedural:
 * element (node, i) is a deterministic function of both, so a feature
 * table of any size can be checked byte-for-byte after a round trip
 * through flash pages without storing it twice.
 */

#ifndef BEACONGNN_GRAPH_GRAPH_H
#define BEACONGNN_GRAPH_GRAPH_H

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.h"

namespace beacongnn::graph {

/** Graph node id (INT-32 per §VII-A). */
using NodeId = std::uint32_t;

/** Compressed sparse row adjacency. */
class Graph
{
  public:
    Graph() { offsets.push_back(0); }

    /**
     * Build from explicit adjacency.
     * @param adjacency adjacency[v] lists the out-neighbours of v.
     */
    explicit Graph(const std::vector<std::vector<NodeId>> &adjacency)
    {
        offsets.reserve(adjacency.size() + 1);
        offsets.push_back(0);
        for (const auto &nbrs : adjacency) {
            edges.insert(edges.end(), nbrs.begin(), nbrs.end());
            offsets.push_back(static_cast<std::uint64_t>(edges.size()));
        }
    }

    /** Build from CSR arrays directly (generator fast path). */
    Graph(std::vector<std::uint64_t> offs, std::vector<NodeId> dst)
        : offsets(std::move(offs)), edges(std::move(dst))
    {
    }

    NodeId numNodes() const
    {
        return static_cast<NodeId>(offsets.size() - 1);
    }

    std::uint64_t numEdges() const { return edges.size(); }

    std::uint32_t
    degree(NodeId v) const
    {
        return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
    }

    /** Neighbour list of @p v. */
    std::span<const NodeId>
    neighbors(NodeId v) const
    {
        return {edges.data() + offsets[v],
                static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
    }

    /** i-th neighbour of @p v. */
    NodeId
    neighbor(NodeId v, std::uint32_t i) const
    {
        return edges[offsets[v] + i];
    }

    double
    avgDegree() const
    {
        return numNodes() == 0
                   ? 0.0
                   : static_cast<double>(numEdges()) / numNodes();
    }

  private:
    std::vector<std::uint64_t> offsets;
    std::vector<NodeId> edges;
};

/**
 * Procedural FP16 feature table: X[v][i] is a pure function of (v, i),
 * reproducible anywhere (host builder, die sampler verification,
 * golden compute) without storage.
 */
class FeatureTable
{
  public:
    /**
     * @param dim  Feature dimension (elements per node).
     * @param seed Dataset seed.
     */
    explicit FeatureTable(std::uint16_t dim, std::uint64_t seed_ = 7)
        : _dim(dim), seed(seed_)
    {
    }

    std::uint16_t dim() const { return _dim; }
    std::uint32_t bytesPerNode() const { return std::uint32_t{_dim} * 2; }

    /** Raw FP16 bits of element (v, i). */
    std::uint16_t
    raw(NodeId v, std::uint16_t i) const
    {
        return static_cast<std::uint16_t>(
            sim::splitmix64(seed ^ (std::uint64_t{v} << 20) ^ i));
    }

    /**
     * Element (v, i) as a float in roughly [-1, 1) (deterministic;
     * used by the functional GNN compute path).
     */
    float
    value(NodeId v, std::uint16_t i) const
    {
        auto bits = raw(v, i);
        return (static_cast<float>(bits) / 32768.0f) - 1.0f;
    }

    /** Serialize node @p v's vector into @p out (little endian FP16 bits). */
    void
    fill(NodeId v, std::span<std::uint8_t> out) const
    {
        for (std::uint16_t i = 0; i < _dim && (2u * i + 1) < out.size();
             ++i) {
            std::uint16_t b = raw(v, i);
            out[2 * i] = static_cast<std::uint8_t>(b & 0xff);
            out[2 * i + 1] = static_cast<std::uint8_t>(b >> 8);
        }
    }

  private:
    std::uint16_t _dim;
    std::uint64_t seed;
};

} // namespace beacongnn::graph

#endif // BEACONGNN_GRAPH_GRAPH_H
