#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/log.h"
#include "sim/rng.h"

namespace beacongnn::graph {

namespace {

/**
 * Draw from a truncated power law P(d) ~ d^-alpha on
 * [min_deg, max_deg] via inverse-CDF sampling.
 */
std::uint32_t
powerLawDraw(sim::Pcg32 &rng, double alpha, double min_deg, double max_deg)
{
    double u = rng.uniform();
    double one_m_a = 1.0 - alpha;
    double lo = std::pow(min_deg, one_m_a);
    double hi = std::pow(max_deg, one_m_a);
    double d = std::pow(lo + u * (hi - lo), 1.0 / one_m_a);
    return static_cast<std::uint32_t>(std::max(min_deg, d));
}

} // namespace

Graph
generatePowerLaw(const GeneratorParams &p)
{
    if (p.nodes == 0)
        sim::fatal("generatePowerLaw: zero nodes requested");
    sim::Pcg32 rng(p.seed, 0x7ea7);

    // Draw raw degrees, then rescale to the requested mean. The
    // rescale keeps the distribution's shape while making the
    // synthetic dataset match the paper workload's average degree.
    std::vector<std::uint32_t> degrees(p.nodes);
    double raw_sum = 0;
    for (auto &d : degrees) {
        d = powerLawDraw(rng, p.exponent, p.minDegree,
                         static_cast<double>(p.maxDegree));
        raw_sum += d;
    }
    double scale = p.avgDegree * p.nodes / std::max(1.0, raw_sum);
    std::vector<std::uint64_t> offsets(p.nodes + 1, 0);
    for (NodeId v = 0; v < p.nodes; ++v) {
        auto d = static_cast<std::uint32_t>(
            std::lround(degrees[v] * scale));
        d = std::clamp<std::uint32_t>(d, 1, p.maxDegree);
        offsets[v + 1] = offsets[v] + d;
    }

    std::vector<NodeId> edges(offsets.back());
    for (std::uint64_t e = 0; e < edges.size(); ++e)
        edges[e] = rng.below(p.nodes);

    return Graph(std::move(offsets), std::move(edges));
}

Graph
generateRmat(const RmatParams &p)
{
    if (p.nodes == 0)
        sim::fatal("generateRmat: zero nodes requested");
    double psum = p.a + p.b + p.c + p.d;
    if (psum < 0.99 || psum > 1.01)
        sim::fatal("generateRmat: quadrant probabilities must sum to 1");

    unsigned levels = 0;
    while ((NodeId{1} << levels) < p.nodes)
        ++levels;
    sim::Pcg32 rng(p.seed, 0x52AA7);
    auto edges_wanted = static_cast<std::uint64_t>(
        p.avgDegree * static_cast<double>(p.nodes));

    std::vector<std::vector<NodeId>> adj(p.nodes);
    std::uint64_t placed = 0;
    // Draw edges by recursive quadrant descent; redraw any edge whose
    // endpoint lands beyond the (non-power-of-two) node count.
    while (placed < edges_wanted) {
        NodeId src = 0, dst = 0;
        for (unsigned l = 0; l < levels; ++l) {
            double u = rng.uniform();
            NodeId bit = NodeId{1} << (levels - 1 - l);
            if (u < p.a) {
                // Top-left: no bits set.
            } else if (u < p.a + p.b) {
                dst |= bit;
            } else if (u < p.a + p.b + p.c) {
                src |= bit;
            } else {
                src |= bit;
                dst |= bit;
            }
        }
        if (src >= p.nodes || dst >= p.nodes)
            continue;
        adj[src].push_back(dst);
        ++placed;
    }
    // R-MAT leaves some nodes isolated; give every node one edge so
    // samplers never dead-end (matches the power-law generator's
    // minimum-degree guarantee).
    for (NodeId v = 0; v < p.nodes; ++v)
        if (adj[v].empty())
            adj[v].push_back(rng.below(p.nodes));
    return Graph(adj);
}

Graph
generateRing(NodeId nodes, std::uint32_t degree)
{
    std::vector<std::uint64_t> offsets(nodes + 1, 0);
    for (NodeId v = 0; v < nodes; ++v)
        offsets[v + 1] = offsets[v] + degree;
    std::vector<NodeId> edges(offsets.back());
    std::uint64_t e = 0;
    for (NodeId v = 0; v < nodes; ++v)
        for (std::uint32_t i = 1; i <= degree; ++i)
            edges[e++] = (v + i) % nodes;
    return Graph(std::move(offsets), std::move(edges));
}

} // namespace beacongnn::graph
