/**
 * @file
 * Synthetic graph generators.
 *
 * The evaluation workloads are synthetic stand-ins for the scaled PyG
 * datasets of Table III: truncated-power-law degree sequences with a
 * configurable mean, uniform random endpoints. See DESIGN.md §1 for
 * the substitution rationale.
 */

#ifndef BEACONGNN_GRAPH_GENERATOR_H
#define BEACONGNN_GRAPH_GENERATOR_H

#include <cstdint>

#include "graph/graph.h"

namespace beacongnn::graph {

/** Parameters of the synthetic power-law generator. */
struct GeneratorParams
{
    NodeId nodes = 10000;
    double avgDegree = 32.0;
    /** Power-law exponent of the degree distribution (> 1). */
    double exponent = 2.1;
    std::uint32_t minDegree = 2;
    /** Cap on any single node's degree (keeps memory bounded). */
    std::uint32_t maxDegree = 60000;
    std::uint64_t seed = 42;
};

/**
 * Generate a directed graph with a truncated-power-law out-degree
 * distribution rescaled to hit @p params.avgDegree on average.
 */
Graph generatePowerLaw(const GeneratorParams &params);

/**
 * Small deterministic ring+chords graph for unit tests: node v links
 * to (v+1), (v+2), ... (v+degree) mod n.
 */
Graph generateRing(NodeId nodes, std::uint32_t degree);

/** Parameters of the R-MAT (Graph500-style) generator. */
struct RmatParams
{
    /** Nodes are rounded up to the next power of two internally and
     *  edges with endpoints >= nodes are re-drawn. */
    NodeId nodes = 16384;
    double avgDegree = 16.0;
    /** Quadrant probabilities; a+b+c+d must be ~1. The Graph500
     *  defaults (0.57/0.19/0.19/0.05) give strong community skew. */
    double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
    std::uint64_t seed = 42;
};

/**
 * Generate an R-MAT graph: recursively subdivided adjacency matrix
 * with biased quadrant probabilities. Produces skewed degrees and
 * community structure, a common alternative to the power-law
 * configuration model for storage-system benchmarking.
 */
Graph generateRmat(const RmatParams &params);

} // namespace beacongnn::graph

#endif // BEACONGNN_GRAPH_GENERATOR_H
