#include "graph/dataset.h"

#include <cctype>

#include "sim/log.h"

namespace beacongnn::graph {

const std::vector<WorkloadSpec> &
workloads()
{
    // Shape parameters per DESIGN.md §6: reddit/PPI are feature-
    // transfer-bound (high dims), movielens/OGBN die-read-bound (short
    // features), amazon representative of both (§VII-B).
    // Degrees reflect the paper's *scaled-up* datasets (§VII-A "we
    // follow [40] to synthesize benchmarks by scaling up real
    // datasets"): roughly 10x the PyG originals, except OGBN whose
    // low average degree of 28 the paper calls out explicitly.
    static const std::vector<WorkloadSpec> specs = {
        {"reddit", 4000, 4920.0, 602, 242.6, 2.8, 0xBEAC01},
        {"amazon", 12000, 1680.0, 200, 397.2, 4.1, 0xBEAC02},
        {"movielens", 12000, 2040.0, 32, 221.8, 3.5, 0xBEAC03},
        {"OGBN", 120000, 28.0, 100, 30.02, 32.3, 0xBEAC04},
        {"PPI", 8000, 3000.0, 512, 37.1, 3.5, 0xBEAC05},
    };
    return specs;
}

const WorkloadSpec &
workload(const std::string &name)
{
    for (const auto &w : workloads())
        if (w.name == name)
            return w;
    sim::fatal("unknown workload: " + name);
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    auto lower = [](const std::string &s) {
        std::string out;
        for (char c : s)
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        return out;
    };
    std::string want = lower(name);
    for (const auto &w : workloads())
        if (lower(w.name) == want)
            return &w;
    return nullptr;
}

std::string
workloadNameList()
{
    std::string out;
    for (const auto &w : workloads()) {
        if (!out.empty())
            out += ", ";
        out += w.name;
    }
    return out;
}

} // namespace beacongnn::graph
