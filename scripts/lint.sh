#!/usr/bin/env bash
# Run the full static-analysis stack (DESIGN.md §11):
#
#   1. bgnlint      — repo-specific determinism/invariant rules
#                     (always; built from tools/bgnlint if needed)
#   2. clang-tidy   — curated bug-prone/perf profile from .clang-tidy
#                     (only if installed; needs compile_commands.json)
#   3. cppcheck     — whole-program checks with the reviewed
#                     suppression list (only if installed)
#
# Usage: scripts/lint.sh [build-dir]      (default: build)
#
# Exit status is non-zero if any stage that actually ran reported a
# problem. Stages whose tool is not installed are skipped with a note
# — CI installs everything, developer machines may not.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
[[ "$BUILD" = /* ]] || BUILD="$ROOT/$BUILD"
STATUS=0

note() { printf '== %s\n' "$*"; }

# ------------------------------------------------------------------
# 1. bgnlint (mandatory — build it if the tree hasn't been built).
# ------------------------------------------------------------------
BGNLINT="$BUILD/tools/bgnlint/bgnlint"
if [[ ! -x "$BGNLINT" ]]; then
    note "building bgnlint"
    cmake -S "$ROOT" -B "$BUILD" >/dev/null &&
        cmake --build "$BUILD" --target bgnlint -j >/dev/null || {
        echo "error: could not build bgnlint" >&2
        exit 2
    }
fi
note "bgnlint"
"$BGNLINT" --root "$ROOT" --hints src tools bench || STATUS=1

# ------------------------------------------------------------------
# 2. clang-tidy (optional).
# ------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [[ -f "$BUILD/compile_commands.json" ]]; then
        note "clang-tidy"
        # Lint the library and tool sources; tests inherit the same
        # headers and gtest macros trip several checks by design.
        mapfile -t TIDY_SRCS < <(find "$ROOT/src" "$ROOT/tools" \
            -name '*.cc' ! -path '*/build/*' | sort)
        clang-tidy -p "$BUILD" --quiet "${TIDY_SRCS[@]}" || STATUS=1
    else
        note "clang-tidy: skipped ($BUILD/compile_commands.json missing)"
    fi
else
    note "clang-tidy: not installed, skipped"
fi

# ------------------------------------------------------------------
# 3. cppcheck (optional).
# ------------------------------------------------------------------
if command -v cppcheck >/dev/null 2>&1; then
    note "cppcheck"
    cppcheck --enable=warning,performance,portability \
        --suppressions-list="$ROOT/tools/lint/cppcheck-suppressions.txt" \
        --inline-suppr --std=c++20 --language=c++ \
        --error-exitcode=1 --quiet \
        -I "$ROOT/src" \
        "$ROOT/src" "$ROOT/tools" "$ROOT/bench" || STATUS=1
else
    note "cppcheck: not installed, skipped"
fi

exit "$STATUS"
