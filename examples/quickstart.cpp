/**
 * @file
 * Quickstart: the 60-second tour of the BeaconGNN public API.
 *
 * 1. Synthesize a small graph + feature table.
 * 2. Construct a BeaconGnnSystem — this reserves flash blocks, builds
 *    the DirectGraph (Algorithm 1) and flushes it through the
 *    verified manipulation interface (§VI-A/E).
 * 3. Run a mini-batch end to end: out-of-order in-storage sampling on
 *    the BG-2 platform, then the GNN forward pass.
 * 4. Print the timing/tally statistics a practitioner would look at.
 */

#include <cstdio>

#include "core/beacongnn.h"
#include "graph/generator.h"

using namespace beacongnn;

int
main()
{
    // A small social-network-like graph: 5000 users, power-law
    // follower counts averaging 48, 64-dim FP16 profiles.
    graph::GeneratorParams gp;
    gp.nodes = 5000;
    gp.avgDegree = 48;
    gp.maxDegree = 4000;
    gp.seed = 2024;
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable features(64, gp.seed);

    SystemOptions opts;
    opts.platform = platforms::PlatformKind::BG2;
    opts.model.hops = 3;
    opts.model.fanout = 3;
    opts.model.hiddenDim = 128;

    std::printf("Ingesting graph: %u nodes, %llu edges, %u-dim "
                "features...\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()),
                features.dim());
    BeaconGnnSystem sys(std::move(g), std::move(features), opts);

    const auto &st = sys.buildStats();
    std::printf("DirectGraph: %llu primary + %llu secondary pages, "
                "%.1f%% inflation, flush took %.2f ms\n",
                static_cast<unsigned long long>(st.primaryPages),
                static_cast<unsigned long long>(st.secondaryPages),
                st.inflatePct(), sim::toMillis(sys.flushTime()));

    // One mini-batch of 8 target users.
    std::vector<graph::NodeId> targets = {1, 42, 100, 512, 1024,
                                          2048, 3000, 4999};
    MiniBatchResult r = sys.runMiniBatch(targets);

    std::printf("\nMini-batch of %zu targets:\n", targets.size());
    std::printf("  subgraph nodes     : %zu (%u per target)\n",
                r.prep.subgraph.size(), opts.model.subgraphNodes());
    std::printf("  flash commands     : %llu\n",
                static_cast<unsigned long long>(r.prep.commands));
    std::printf("  data preparation   : %.1f us\n",
                sim::toMicros(r.prep.finish - r.prep.start));
    std::printf("  GNN computation    : %.1f us\n",
                sim::toMicros(r.computeTime));
    std::printf("  channel traffic    : %.1f KB (vs %.1f KB of raw "
                "pages)\n",
                static_cast<double>(r.prep.tally.channelBytes) /
                    1024.0,
                static_cast<double>(r.prep.tally.flashReads * 4096) /
                    1024.0);
    std::printf("  bytes over PCIe    : %llu\n",
                static_cast<unsigned long long>(r.prep.tally.pcieBytes));

    std::printf("\nFirst 8 dims of target 0's embedding: ");
    for (int i = 0; i < 8; ++i)
        std::printf("%+.3f ",
                    static_cast<double>(
                        r.embeddings[0][static_cast<std::size_t>(i)]));
    std::printf("\nDone.\n");
    return 0;
}
