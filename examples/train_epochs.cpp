/**
 * @file
 * End-to-end GNN training on a BeaconGNN SSD (the paper's actual
 * evaluation scenario, §VII-A): every mini-batch is sampled in
 * storage (out-of-order streaming, BG-2) and the returned subgraph
 * drives a real SGD step through the message-passing network. Prints
 * the loss curve alongside the device-side timing.
 */

#include <cstdio>

#include "core/beacongnn.h"
#include "gnn/training.h"
#include "graph/generator.h"

using namespace beacongnn;

int
main()
{
    graph::GeneratorParams gp;
    gp.nodes = 8000;
    gp.avgDegree = 32;
    gp.maxDegree = 4000;
    gp.seed = 77;
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable features(32, gp.seed);

    SystemOptions opts;
    opts.platform = platforms::PlatformKind::BG2;
    opts.model.hops = 2;
    opts.model.fanout = 4;
    opts.model.featureDim = 32;
    opts.model.hiddenDim = 32;
    BeaconGnnSystem ssd(g, features, opts);
    gnn::TrainState state = gnn::TrainState::init(ssd.model());

    std::printf("Training a %u-hop GraphSage model on a %u-node graph "
                "stored as DirectGraph\n(%zu flash pages). 12 epochs x "
                "8 mini-batches of 64 targets, SGD lr=0.3.\n\n",
                ssd.model().hops, g.numNodes(),
                ssd.layout().pages.size());
    std::printf("%6s %12s %12s %14s %14s\n", "epoch", "loss",
                "grad-norm", "prep us/batch", "train MMACs");

    sim::Pcg32 rng(5);
    for (int epoch = 0; epoch < 12; ++epoch) {
        double loss_sum = 0, gnorm = 0;
        sim::Tick prep_time = 0;
        std::uint64_t macs = 0;
        for (int b = 0; b < 8; ++b) {
            std::vector<graph::NodeId> targets(64);
            for (auto &t : targets)
                t = rng.below(g.numNodes());
            // Data preparation runs in storage...
            MiniBatchResult r = ssd.runMiniBatch(targets);
            prep_time += r.prep.finish - r.prep.start;
            // ...and the sampled subgraph drives the SGD step.
            gnn::StepResult sr = gnn::trainStep(
                r.prep.subgraph, features, ssd.model(), state, 0.3f);
            loss_sum += sr.loss;
            gnorm += sr.gradNorm;
            macs += sr.macsForward + sr.macsBackward;
        }
        std::printf("%6d %12.6f %12.4f %14.1f %14.1f\n", epoch,
                    loss_sum / 8, gnorm / 8,
                    sim::toMicros(prep_time) / 8,
                    static_cast<double>(macs) / 1e6);
    }
    std::printf("\nThe loss falls while every sampled node, feature "
                "vector and page read came\nthrough the simulated "
                "flash backend.\n");
    return 0;
}
