/**
 * @file
 * Recommendation-system training (the motivating workload of §I):
 * an amazon-like product co-purchase graph trained with GraphSage
 * mini-batches. Compares the CPU-centric pipeline against BeaconGNN
 * (BG-2) on throughput, energy per epoch and PCIe traffic — the
 * practitioner-facing view of Fig. 14/19.
 */

#include <cstdio>

#include "platforms/runner.h"

using namespace beacongnn;
using namespace beacongnn::platforms;

int
main()
{
    // Product graph in the amazon shape (Table III), scaled down.
    auto spec = graph::workload("amazon");
    spec.simNodes = 8000;

    gnn::ModelConfig model;
    model.hops = 3;
    model.fanout = 3;
    model.hiddenDim = 128;

    ssd::SystemConfig sys;
    auto bundle = makeBundle(spec, sys.flash, model);
    std::printf("Product graph: %u products, avg degree %.0f, "
                "%u-dim FP16 features\n",
                bundle->graph.numNodes(), bundle->graph.avgDegree(),
                bundle->features.dim());
    std::printf("DirectGraph conversion: %.1f MB raw -> %.1f MB flash "
                "(%.1f%% inflation)\n\n",
                static_cast<double>(bundle->layout.stats.rawBytes) /
                    1048576.0,
                static_cast<double>(bundle->layout.stats.flashBytes) /
                    1048576.0,
                bundle->layout.stats.inflatePct());

    RunConfig rc;
    rc.batchSize = 256;
    rc.batches = 8; // One "epoch slice" of 2048 targets.

    std::printf("%-12s %14s %12s %12s %14s %10s\n", "platform",
                "targets/s", "ms/epoch", "mJ/target", "PCIe MB/epoch",
                "avg W");
    RunResult cc, bg2;
    for (auto kind : {PlatformKind::CC, PlatformKind::SmartSage,
                      PlatformKind::GLIST, PlatformKind::BG2}) {
        auto p = makePlatform(kind);
        RunResult r = runPlatform(p, rc, *bundle);
        if (kind == PlatformKind::CC)
            cc = r;
        if (kind == PlatformKind::BG2)
            bg2 = r;
        std::printf("%-12s %14.0f %12.2f %12.3f %14.2f %10.1f\n",
                    p.name.c_str(), r.throughput,
                    sim::toMillis(r.totalTime),
                    1000.0 * r.energy.total() /
                        static_cast<double>(r.targets),
                    static_cast<double>(r.tally.pcieBytes) / 1048576.0,
                    r.avgPowerW);
    }

    std::printf("\nBeaconGNN-2.0 vs the CPU-centric pipeline:\n");
    std::printf("  %.1fx training throughput\n",
                bg2.throughput / cc.throughput);
    std::printf("  %.1fx better energy per target\n",
                (cc.energy.total() /
                 static_cast<double>(cc.targets)) /
                    (bg2.energy.total() /
                     static_cast<double>(bg2.targets)));
    if (bg2.tally.pcieBytes == 0) {
        std::printf("  %.0f MB of PCIe traffic eliminated entirely\n",
                    static_cast<double>(cc.tally.pcieBytes) /
                        1048576.0);
    } else {
        std::printf("  %.0fx less PCIe traffic\n",
                    static_cast<double>(cc.tally.pcieBytes) /
                        static_cast<double>(bg2.tally.pcieBytes));
    }
    return 0;
}
