/**
 * @file
 * Real-time GNN query serving (§VIII "Support for GNN query"):
 * small-batch inference where latency, not throughput, matters.
 * BeaconGNN reduces host-SSD communication to one round and avoids
 * channel congestion, which shows up as tail-latency improvements on
 * single-target queries.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/beacongnn.h"
#include "graph/generator.h"

using namespace beacongnn;

namespace {

struct LatencyStats
{
    double p50, p95, mean;
};

LatencyStats
serveQueries(platforms::PlatformKind kind, const graph::Graph &g,
             const graph::FeatureTable &features, int queries)
{
    SystemOptions opts;
    opts.platform = kind;
    opts.model.hops = 2; // Query models are shallower (latency SLO).
    opts.model.fanout = 5;
    opts.model.hiddenDim = 128;
    BeaconGnnSystem sys(g, features, opts);

    std::vector<double> lat;
    sim::Pcg32 rng(99);
    for (int q = 0; q < queries; ++q) {
        std::vector<graph::NodeId> target = {rng.below(g.numNodes())};
        MiniBatchResult r = sys.runMiniBatch(target);
        lat.push_back(sim::toMicros((r.prep.finish - r.prep.start) +
                                    r.computeTime));
    }
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (double v : lat)
        sum += v;
    return {lat[lat.size() / 2], lat[lat.size() * 95 / 100],
            sum / static_cast<double>(lat.size())};
}

} // namespace

int
main()
{
    graph::GeneratorParams gp;
    gp.nodes = 20000;
    gp.avgDegree = 64;
    gp.maxDegree = 8000;
    gp.seed = 5;
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable features(128, gp.seed);

    std::printf("GNN query serving: 2-hop fanout-5 subgraphs, single-"
                "target batches,\n%u-node graph, 200 queries per "
                "platform.\n\n",
                g.numNodes());
    std::printf("%-12s %12s %12s %12s\n", "platform", "p50 (us)",
                "p95 (us)", "mean (us)");

    double cc_mean = 0;
    for (auto kind :
         {platforms::PlatformKind::CC, platforms::PlatformKind::BG1,
          platforms::PlatformKind::BG_DGSP,
          platforms::PlatformKind::BG2}) {
        LatencyStats s = serveQueries(kind, g, features, 200);
        if (kind == platforms::PlatformKind::CC)
            cc_mean = s.mean;
        std::printf("%-12s %12.1f %12.1f %12.1f\n",
                    platforms::platformName(kind).c_str(), s.p50, s.p95,
                    s.mean);
    }
    std::printf("\nBG-2 reduces the host round trips to one per query "
                "and keeps sampling\ninside the flash backend "
                "(%.1fx mean latency vs CC in this setup).\n",
                cc_mean /
                    serveQueries(platforms::PlatformKind::BG2, g,
                                 features, 50)
                        .mean);
    return 0;
}
