/**
 * @file
 * Operating a BeaconGNN SSD over its lifetime (§VI-E/F): retention
 * errors caught by on-die checks, repaired by idle-time scrubbing;
 * wear imbalance against pinned DirectGraph blocks resolved by
 * reclamation (migration + embedded-address rewrite); and the
 * security property that DirectGraph manipulation cannot touch
 * regular storage.
 */

#include <cstdio>
#include <unordered_set>

#include "core/beacongnn.h"
#include "directgraph/verify.h"
#include "graph/generator.h"

using namespace beacongnn;

int
main()
{
    graph::GeneratorParams gp;
    gp.nodes = 3000;
    gp.avgDegree = 40;
    gp.seed = 11;
    graph::Graph g = graph::generatePowerLaw(gp);
    graph::FeatureTable features(32, gp.seed);

    SystemOptions opts;
    opts.model.hops = 2;
    BeaconGnnSystem sys(g, features, opts);
    std::printf("Deployed: %zu DirectGraph pages in %zu reserved "
                "blocks.\n\n",
                sys.layout().pages.size(), sys.layout().blocks.size());

    // --- 1. Retention error -> on-die abort -> scrub repair --------
    std::printf("[1] Injecting a retention bit flip into node 7's "
                "primary section header...\n");
    dg::DgAddress a = sys.layout().primaryOf(7);
    sys.corruptBit(a.page(), sys.layout().find(a)->byteOffset, 6);

    std::vector<graph::NodeId> targets = {7};
    auto bad = sys.runMiniBatch(targets);
    std::printf("    mini-batch on node 7: %s (%llu on-die aborts, "
                "control returned to firmware)\n",
                bad.prep.ok ? "ok" : "ABORTED",
                static_cast<unsigned long long>(
                    bad.prep.tally.abortedCommands));

    ssd::ScrubReport rep = sys.scrub();
    std::printf("    scrub: %llu pages checked, %llu errors, %llu "
                "blocks re-programmed\n",
                static_cast<unsigned long long>(rep.pagesChecked),
                static_cast<unsigned long long>(rep.errorsFound),
                static_cast<unsigned long long>(rep.blocksReprogrammed));
    auto good = sys.runMiniBatch(targets);
    std::printf("    retry: %s, %zu subgraph nodes\n\n",
                good.prep.ok ? "ok" : "still broken",
                good.prep.subgraph.size());

    // --- 2. Wear imbalance -> reclamation ---------------------------
    std::printf("[2] Simulating heavy regular-I/O wear on non-pinned "
                "blocks...\n");
    auto &ftl = sys.firmware().ftl();
    auto &store = sys.pageStore();
    std::unordered_set<flash::BlockId> worn;
    for (ssd::Lpa l = 0; l < 128; ++l) {
        auto p = ftl.translate(l, true);
        if (p)
            worn.insert(store.addressCodec().blockOf(*p));
    }
    for (auto b : worn)
        for (int i = 0; i < 200; ++i)
            store.eraseBlock(b);
    std::printf("    P/E gap (regular - DirectGraph blocks): %.0f "
                "cycles\n",
                ftl.peGap(store));
    bool migrated = sys.reclaimIfNeeded(64.0);
    std::printf("    reclamation: %s\n",
                migrated ? "DirectGraph migrated to fresh blocks, "
                           "embedded addresses rewritten, old blocks "
                           "rejoin the FTL"
                         : "not needed");
    auto after = sys.runMiniBatch(targets);
    std::printf("    post-migration mini-batch: %s\n\n",
                after.prep.ok ? "ok" : "broken");

    // --- 3. Isolation check -----------------------------------------
    std::printf("[3] Security: a page image embedding an address "
                "outside the reserved\n    blocks is rejected at flush "
                "time...\n");
    dg::AddressVerifier verifier(
        sys.layout().blocks,
        sys.firmware().config().flash.pagesPerBlock);
    std::vector<std::uint8_t> evil(
        sys.firmware().config().flash.pageSize, 0);
    std::vector<dg::DgAddress> outside = {
        dg::DgAddress(static_cast<flash::Ppa>(
                          sys.firmware().config().flash.totalPages() - 1),
                      0)};
    dg::encodeSecondary(evil, 1, outside);
    bool safe = verifier.pageImageSafe(sys.layout().primaryOf(0).page(),
                                       evil, features.dim());
    std::printf("    verifier verdict: %s\n",
                safe ? "ACCEPTED (BUG!)" : "rejected, as required");
    return 0;
}
