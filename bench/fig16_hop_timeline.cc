/**
 * @file
 * Figure 16: timeline of the k+1 data-preparation steps (3 samplings
 * + final-hop feature retrieval) on amazon. BG-1 and BG-SP execute
 * hops in strict order with gaps between them; BG-DG, BG-DGSP and
 * BG-2 overlap hops, BG-2 creating the largest overlap and the
 * shortest overall time.
 */

#include "common.h"

using namespace bench;

namespace {

void
timelineRow(const char *label, const engines::HopSpan &h,
            sim::Tick origin, sim::Tick horizon, int width)
{
    std::printf("  %-10s", label);
    double scale = static_cast<double>(width) /
                   static_cast<double>(std::max<sim::Tick>(1, horizon));
    int a = static_cast<int>(static_cast<double>(h.first - origin) *
                             scale);
    int b = std::max(
        a + 1, static_cast<int>(static_cast<double>(h.last - origin) *
                                scale));
    for (int i = 0; i < width && i < a; ++i)
        std::putchar(' ');
    for (int i = a; i < b && i < width; ++i)
        std::putchar('#');
    std::printf("  [%.0f..%.0f us]\n", sim::toMicros(h.first - origin),
                sim::toMicros(h.last - origin));
}

} // namespace

int
main()
{
    banner("Figure 16: hop timeline, amazon (last mini-batch)");
    RunConfig rc = defaultRun();
    const auto &b = bundle("amazon");
    const int width = 60;

    for (auto kind : platforms::bgLadder()) {
        auto p = platforms::makePlatform(kind);
        RunResult r = runPlatform(p, rc, b);
        sim::Tick origin = r.lastBatchStart;
        sim::Tick horizon = 0;
        for (const auto &h : r.hops)
            horizon = std::max(horizon, h.last - origin);
        std::printf("%s  (batch wall %0.f us)\n", p.name.c_str(),
                    sim::toMicros(horizon));
        const char *labels[] = {"hop1", "hop2", "hop3", "features"};
        double overlap = 0;
        for (std::size_t h = 0; h < r.hops.size(); ++h) {
            timelineRow(h < 4 ? labels[h] : "?", r.hops[h], origin,
                        horizon, width);
            if (h + 1 < r.hops.size() &&
                r.hops[h + 1].first < r.hops[h].last) {
                overlap += sim::toMicros(r.hops[h].last -
                                         r.hops[h + 1].first);
            }
        }
        std::printf("  overlap between consecutive steps: %.0f us%s\n\n",
                    overlap,
                    overlap > 0 ? "" : "  (strict hop-by-hop order)");
    }
    std::printf("Paper: BG-1/BG-SP run hops strictly in order with "
                "gaps; BG-DG, BG-DGSP and\nBG-2 overlap them; BG-2 has "
                "the shortest overall time.\n");
    return 0;
}
