/**
 * @file
 * Cache tier sweep (DESIGN.md §14): hit rate, flash-sense savings and
 * serving tail latency versus cache size, eviction policy and target
 * skew.
 *
 * Two parts, one CSV (results/cache_sweep.csv):
 *
 *  1. Offline prep (BG-2 on amazon): policy x capacity x Zipf(θ)
 *     grid, reporting the cache hit rate and the flash reads saved
 *     against the cache-less run at the same skew.
 *
 *  2. Serving crossover: CC with a device cache versus plain BG-2
 *     over an offered-rate ladder at each skew — the question being
 *     whether DRAM caching alone can carry the CPU-centric baseline
 *     past the in-storage pipeline (it narrows the gap on hot
 *     traffic; the crossover line reports where, if anywhere, the
 *     p99 curves cross).
 *
 * Wall-clock lands in results/bench_timing.json via the shared hook.
 */

#include "common.h"

#include "cache/vertex_cache.h"
#include "serve/serve.h"
#include "sim/metrics.h"

using namespace bench;
using beacongnn::cache::CachePolicy;
using beacongnn::serve::ServeConfig;
using beacongnn::serve::ServeResult;

namespace {

constexpr const char *kWorkload = "amazon";

struct PrepPoint
{
    CachePolicy policy;
    double theta;
    double cacheMB;
    double hitRate = 0;
    std::uint64_t flashReads = 0;
};

PrepPoint
runPrep(CachePolicy policy, double theta, double cache_mb)
{
    PrepPoint p;
    p.policy = policy;
    p.theta = theta;
    p.cacheMB = cache_mb;
    RunConfig rc = defaultRun();
    rc.zipfTheta = theta;
    rc.cache.capacityMB = cache_mb;
    rc.cache.policy = policy;
    beacongnn::sim::MetricRegistry reg;
    RunResult r =
        runPlatform(platforms::makePlatform(PlatformKind::BG2), rc,
                    bundle(kWorkload), &reg);
    p.flashReads = r.tally.flashReads;
    p.hitRate = cache_mb > 0.0
                    ? reg.gauge("engine.cache.hit_rate").value()
                    : 0.0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    std::filesystem::create_directories("results");
    TimingLog timing("cache_sweep");

    const std::vector<double> thetas = {0.6, 0.9, 1.2};
    const std::vector<double> sizes = {16.0, 64.0};
    const std::vector<CachePolicy> policies = {
        CachePolicy::Lru, CachePolicy::MsLru, CachePolicy::Fifo};

    std::ofstream csv("results/cache_sweep.csv");
    csv << "section,platform,policy,theta,cache_mb,rate_per_s,"
           "hit_rate,flash_reads,sense_savings,p50_us,p99_us,"
           "achieved_rate\n";

    // ---- Part 1: offline prep hit rate and sense savings -----------
    banner("Cache sweep 1/2: BG-2 prep, hit rate and sense savings");
    Stopwatch sw;

    // Grid rows: per theta, the cache-less baseline plus every
    // (policy, size) point.
    struct PrepCell
    {
        CachePolicy policy;
        double theta, mb;
    };
    std::vector<PrepCell> cells;
    for (double theta : thetas) {
        cells.push_back({CachePolicy::Lru, theta, 0.0});
        for (CachePolicy pol : policies)
            for (double mb : sizes)
                cells.push_back({pol, theta, mb});
    }
    auto prep = parallelMap<PrepPoint>(cells.size(), [&](std::size_t i) {
        return runPrep(cells[i].policy, cells[i].theta, cells[i].mb);
    });
    timing.section("prep_grid", sw.seconds());

    std::printf("%-8s %6s %9s %9s %12s %13s\n", "policy", "theta",
                "cache_mb", "hit_rate", "flash_reads", "sense_savings");
    for (double theta : thetas) {
        std::uint64_t baseline_reads = 0;
        for (const PrepPoint &p : prep)
            if (p.theta == theta && p.cacheMB == 0.0)
                baseline_reads = p.flashReads;
        for (const PrepPoint &p : prep) {
            if (p.theta != theta)
                continue;
            // Saved senses vs the cache-less run at the same skew;
            // 0/0-guarded like every ratio in the registry.
            double savings =
                baseline_reads == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(p.flashReads) /
                                static_cast<double>(baseline_reads);
            const char *pol =
                p.cacheMB == 0.0 ? "off"
                                 : beacongnn::cache::cachePolicyName(
                                       p.policy);
            std::printf("%-8s %6.2f %9.0f %9.3f %12llu %12.1f%%\n",
                        pol, p.theta, p.cacheMB, p.hitRate,
                        static_cast<unsigned long long>(p.flashReads),
                        100.0 * savings);
            csv << "prep,BG-2," << pol << ',' << p.theta << ','
                << p.cacheMB << ",0," << p.hitRate << ','
                << p.flashReads << ',' << savings << ",0,0,0\n";
        }
    }

    // ---- Part 2: serving crossover, CC+cache vs BG-2 ---------------
    banner("Cache sweep 2/2: serving p99, CC + 64 MiB cache vs BG-2");
    const std::vector<double> rates = {1000, 2000, 5000, 10000, 20000};
    const double kServeCacheMB = 64.0;

    ServeConfig sc;
    sc.arrivals.requests = 192;
    sc.arrivals.seed = 0x5EED;
    sc.policy.maxBatch = 32;
    sc.policy.timeout = beacongnn::sim::microseconds(200);

    sw.restart();
    const std::size_t nr = rates.size();
    const std::size_t per_theta = 2 * nr; // CC+cache, then BG-2.
    auto serve_results = parallelMap<ServeResult>(
        thetas.size() * per_theta, [&](std::size_t i) {
            const double theta = thetas[i / per_theta];
            const bool cc = (i % per_theta) < nr;
            ServeConfig point = sc;
            point.arrivals.ratePerSec = rates[i % nr];
            point.arrivals.zipfTheta = theta;
            RunConfig rc = defaultRun();
            if (cc) {
                rc.cache.capacityMB = kServeCacheMB;
                rc.cache.policy = CachePolicy::MsLru;
            }
            return serveWorkload(
                platforms::makePlatform(cc ? PlatformKind::CC
                                           : PlatformKind::BG2),
                rc, bundle(kWorkload), point);
        });
    timing.section("serve_grid", sw.seconds());

    for (std::size_t t = 0; t < thetas.size(); ++t) {
        std::printf("\ntheta %.2f   %10s %12s %12s\n", thetas[t],
                    "rate", "CC p99 us", "BG-2 p99 us");
        double crossover = 0.0;
        for (std::size_t r = 0; r < nr; ++r) {
            const ServeResult &cc = serve_results[t * per_theta + r];
            const ServeResult &bg =
                serve_results[t * per_theta + nr + r];
            std::printf("            %10.0f %12.1f %12.1f\n", rates[r],
                        cc.p(99.0), bg.p(99.0));
            if (crossover == 0.0 && cc.p(99.0) <= bg.p(99.0))
                crossover = rates[r];
            csv << "serve,CC,mslru," << thetas[t] << ','
                << kServeCacheMB << ',' << rates[r] << ",0,0,0,"
                << cc.p(50.0) << ',' << cc.p(99.0) << ','
                << cc.achievedRate << '\n';
            csv << "serve,BG-2,off," << thetas[t] << ",0," << rates[r]
                << ",0,0,0," << bg.p(50.0) << ',' << bg.p(99.0) << ','
                << bg.achievedRate << '\n';
        }
        if (crossover > 0.0)
            std::printf("  crossover: CC+cache p99 at or below BG-2 "
                        "from %.0f req/s\n",
                        crossover);
        else
            std::printf("  no crossover: BG-2 keeps the lower p99 at "
                        "every offered rate\n");
    }

    std::printf("\nWrote results/cache_sweep.csv\n");
    timing.write();
    return 0;
}
