/**
 * @file
 * Model zoo sweep (DESIGN.md §15): every model-zoo entry (gcn, gin,
 * gat) and every vertex program (pagerank, bfs, kcore) on the
 * CPU-centric baseline and the full BeaconGNN pipeline, one unified
 * CSV (results/model_zoo.csv). The GNN half reports mini-batch
 * throughput and the per-kind compute volume (MACs and per-edge ops)
 * the accelerator timed; the algorithm half reports supersteps to
 * convergence and frontier-read throughput over the same in-storage
 * session, so the speedup story carries from GNN inference to
 * classical graph analytics.
 *
 * Wall-clock lands in results/bench_timing.json via the shared hook.
 */

#include "common.h"

#include "platforms/algo_runner.h"
#include "sim/metrics.h"

using namespace bench;

namespace {

constexpr const char *kWorkload = "amazon";
constexpr graph::NodeId kNodes = 4000;

const std::vector<PlatformKind> &
zooPlatforms()
{
    static const std::vector<PlatformKind> kinds = {PlatformKind::CC,
                                                    PlatformKind::BG2};
    return kinds;
}

std::unique_ptr<WorkloadBundle>
zooBundle(const gnn::ModelConfig &model, const RunConfig &rc)
{
    graph::WorkloadSpec spec = graph::workload(kWorkload);
    spec.simNodes = kNodes;
    return platforms::makeBundle(spec, rc.system.flash, model);
}

} // namespace

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    TimingLog timing("model_zoo");
    Stopwatch watch;
    banner("Model zoo: GNN kinds and vertex programs x platforms");

    RunConfig rc = defaultRun();
    rc.batchSize = 64;
    rc.batches = 4;

    std::filesystem::create_directories("results");
    std::ofstream csv("results/model_zoo.csv");
    csv << "mode,name,platform,workload,units,unit_kind,"
           "total_time_us,throughput,macs,edge_ops,iterations,"
           "converged,checksum\n";

    // ---- GNN model kinds ------------------------------------------
    const std::vector<gnn::ModelKind> kinds = {gnn::ModelKind::GCN,
                                               gnn::ModelKind::GIN,
                                               gnn::ModelKind::GAT};
    std::printf("%-6s %-6s %10s %12s %14s %12s\n", "model", "plat",
                "time(ms)", "targets/s", "macs", "edge-ops");
    struct ModelPoint
    {
        RunResult r;
        std::uint64_t macs = 0;
        std::uint64_t edgeOps = 0;
    };
    const std::size_t np = zooPlatforms().size();
    auto model_points =
        parallelMap<ModelPoint>(kinds.size() * np, [&](std::size_t i) {
            gnn::ModelConfig m = defaultModel();
            m.kind = kinds[i / np];
            auto b = zooBundle(m, rc);
            ModelPoint p;
            p.r = runPlatform(
                platforms::makePlatform(zooPlatforms()[i % np]), rc,
                *b);
            gnn::ComputeWorkload w = m.workFor(rc.batchSize);
            p.macs = w.totalMacs() * rc.batches;
            p.edgeOps = w.edgeOps * rc.batches;
            return p;
        });
    for (std::size_t i = 0; i < model_points.size(); ++i) {
        const ModelPoint &p = model_points[i];
        std::printf("%-6s %-6s %10.2f %12.0f %14llu %12llu\n",
                    gnn::modelKindName(kinds[i / np]),
                    p.r.platform.c_str(), sim::toMillis(p.r.totalTime),
                    p.r.throughput,
                    static_cast<unsigned long long>(p.macs),
                    static_cast<unsigned long long>(p.edgeOps));
        csv << "model," << gnn::modelKindName(kinds[i / np]) << ','
            << p.r.platform << ',' << p.r.workload << ','
            << p.r.targets << ",targets,"
            << sim::toMicros(p.r.totalTime) << ',' << p.r.throughput
            << ',' << p.macs << ',' << p.edgeOps << ",,,\n";
    }
    timing.section("models", watch.seconds());
    watch.restart();
    rule();

    // ---- Vertex programs ------------------------------------------
    const std::vector<gnn::AlgoKind> algos = {gnn::AlgoKind::PageRank,
                                              gnn::AlgoKind::Bfs,
                                              gnn::AlgoKind::KCore};
    std::printf("%-9s %-6s %10s %12s %6s %5s %12s\n", "algo", "plat",
                "time(ms)", "reads/s", "iters", "conv", "checksum");
    auto algo_points = parallelMap<platforms::AlgoRunResult>(
        algos.size() * np, [&](std::size_t i) {
            auto b = zooBundle(defaultModel(), rc);
            platforms::AlgoRunConfig ac;
            ac.program.algo = algos[i / np];
            return runVertexProgram(
                platforms::makePlatform(zooPlatforms()[i % np]), rc,
                *b, ac);
        });
    for (const platforms::AlgoRunResult &r : algo_points) {
        std::printf("%-9s %-6s %10.2f %12.0f %6u %5s %12.6g\n",
                    r.algo.c_str(), r.platform.c_str(),
                    sim::toMillis(r.totalTime), r.throughput,
                    r.iterations, r.converged ? "yes" : "CAP",
                    r.checksum);
        csv << "algo," << r.algo << ',' << r.platform << ','
            << r.workload << ',' << r.frontierNodes
            << ",frontier_reads," << sim::toMicros(r.totalTime) << ','
            << r.throughput << ",,," << r.iterations << ','
            << (r.converged ? 1 : 0) << ',' << r.checksum << '\n';
    }
    timing.section("algos", watch.seconds());
    rule();
    std::printf("Shape targets: BG-2 beats CC on every model kind and "
                "every vertex program;\ngin/gat add compute but keep "
                "the in-storage sampling advantage.\n");
    std::printf("wrote results/model_zoo.csv\n");
    timing.write();
    return 0;
}
