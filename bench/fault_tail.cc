/**
 * @file
 * Fault-tail sweep (DESIGN.md §17): an 8-device BG-2 array serving a
 * saturating open-loop stream while device 3 dies 1 ms in, over a
 * replication x read-disturbance grid. Replication 1 has nowhere to
 * reroute — every command whose primary is the dead device aborts, so
 * the stream fails (its nominal throughput is hollow: aborted
 * commands complete instantly) — while replication >= 2 absorbs the
 * kill through replica fallbacks at the throughput and tail-latency
 * cost the thru(%)/p99.9 columns quantify. Commands already in flight
 * on the dying device at the kill instant are lost at any replication
 * factor, exactly as a real device loss would lose them. A fault-free
 * baseline row anchors the comparison. Full grid lands in
 * results/fault_tail.csv.
 */

#include "common.h"

#include "serve/serve.h"

using namespace bench;

namespace {

serve::ServeConfig
serveConfig()
{
    serve::ServeConfig sc;
    // Offered above the 8-device array's ~330k req/s service capacity:
    // every cell saturates, so achievedRate measures capacity and the
    // killed device shows up as lost throughput, not just a fatter
    // tail.
    sc.arrivals.requests = 1024;
    sc.arrivals.ratePerSec = 400000;
    return sc;
}

platforms::RunConfig
arrayRun(unsigned replication, double retry_prob, bool kill)
{
    platforms::RunConfig rc;
    rc.topology.devices = 8;
    rc.topology.replication = replication;
    rc.system.disturb.retryProb = retry_prob;
    if (kill)
        rc.kills.push_back(
            platforms::KillEvent{3, -1, sim::milliseconds(1)});
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    banner("Fault tail: replication x disturbance under a device kill");
    TimingLog timing("fault_tail");
    Stopwatch sw;

    const auto &b = bundle("amazon");
    const std::vector<unsigned> reps = {1, 2, 3};
    const std::vector<double> retry_probs = {0.0, 0.01, 0.05};
    const std::size_t nf = retry_probs.size();
    const serve::ServeConfig sc = serveConfig();
    auto platform = [] {
        return platforms::makePlatform(platforms::PlatformKind::BG2);
    };

    // Cell 0 is the fault-free baseline; the grid follows.
    auto results = parallelMap<serve::ServeResult>(
        1 + reps.size() * nf, [&](std::size_t i) {
            platforms::RunConfig rc =
                i == 0 ? arrayRun(1, 0.0, false)
                       : arrayRun(reps[(i - 1) / nf],
                                  retry_probs[(i - 1) % nf], true);
            return serve::serveWorkload(platform(), rc, b, sc);
        });
    timing.section("grid", sw.seconds());

    const serve::ServeResult &base = results[0];
    std::printf("fault-free baseline: %.0f req/s, p99.9 %.2f ms\n\n",
                base.achievedRate, base.p(99.9) / 1e3);
    std::printf("%5s %10s %10s %9s %9s %9s %10s %5s\n", "R",
                "retry-prob", "thru(r/s)", "thru(%)", "p99(ms)",
                "p99.9(ms)", "fallbacks", "ok");
    for (std::size_t i = 1; i < results.size(); ++i) {
        const serve::ServeResult &r = results[i];
        const std::vector<double> ps = r.percentiles({0.99, 0.999});
        std::printf("%5u %10.2f %10.0f %8.1f%% %9.2f %9.2f %10llu %5s\n",
                    reps[(i - 1) / nf], retry_probs[(i - 1) % nf],
                    r.achievedRate,
                    100.0 * r.achievedRate / base.achievedRate,
                    ps[0] / 1e3, ps[1] / 1e3,
                    static_cast<unsigned long long>(r.replicaFallbacks),
                    r.ok ? "yes" : "NO");
    }

    std::filesystem::create_directories("results");
    std::ofstream csv("results/fault_tail.csv");
    csv << "replication,retry_prob,killed,achieved_rps,thru_vs_"
           "baseline,p50_us,p99_us,p999_us,replica_fallbacks,ok\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const serve::ServeResult &r = results[i];
        const std::vector<double> ps =
            r.percentiles({0.5, 0.99, 0.999});
        csv << (i == 0 ? 1 : reps[(i - 1) / nf]) << ','
            << (i == 0 ? 0.0 : retry_probs[(i - 1) % nf]) << ','
            << (i == 0 ? 0 : 1) << ',' << r.achievedRate << ','
            << r.achievedRate / base.achievedRate << ',' << ps[0]
            << ',' << ps[1] << ',' << ps[2] << ','
            << r.replicaFallbacks << ',' << (r.ok ? 1 : 0) << '\n';
    }
    std::printf("\nwrote %zu row(s) to results/fault_tail.csv\n",
                results.size());

    std::printf("\nShape: replication 1 cannot survive the kill; "
                "replication >= 2 reroutes to\nsurviving replicas and "
                "trades throughput and a fatter tail for a live\n"
                "stream, with read retries inflating p99.9 further. "
                "Commands in flight on\nthe dying device at the kill "
                "instant are lost at any replication factor\n(an "
                "ok=NO cell with R >= 2 is that in-flight loss, not a "
                "routing gap).\n");
    timing.write();
    return 0;
}
