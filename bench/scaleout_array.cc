/**
 * @file
 * §VIII scale-out: a computational storage array of BeaconGNN SSDs
 * with direct P2P links. The paper projects that storage capacity and
 * computation scale linearly with the number of devices while the
 * BG-2 optimizations keep working; this bench measures array
 * throughput for 1..8 devices and the P2P forwarding fraction.
 */

#include "common.h"

#include "platforms/array.h"

using namespace bench;

int
main()
{
    banner("Scale-out: BeaconGNN computational storage array (#VIII)");
    const auto &b = bundle("amazon");
    RunConfig rc = defaultRun();
    rc.batchSize = 256;
    rc.batches = 3;

    std::printf("%8s %14s %10s %14s %12s\n", "devices", "targets/s",
                "speedup", "cross-device", "p2p-frac");
    double base = 0;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        platforms::ArrayConfig acfg;
        acfg.devices = n;
        auto r = platforms::runArray(acfg, rc, b);
        if (n == 1)
            base = r.throughput;
        std::printf("%8u %14.0f %9.2fx %14llu %11.1f%%\n", n,
                    r.throughput, r.throughput / base,
                    static_cast<unsigned long long>(r.crossDevice),
                    100.0 * r.crossFraction);
    }
    std::printf("\nPaper projection: capacity and compute scale "
                "linearly with devices; the\nP2P command descriptors "
                "are small, so forwarding does not erode the gain.\n");
    return 0;
}
