/**
 * @file
 * §VIII scale-out: a computational storage array of BeaconGNN SSDs
 * with direct P2P links. The paper projects that storage capacity and
 * computation scale linearly with the number of devices while the
 * BG-2 optimizations keep working; this bench measures array
 * throughput over a device-count x partition-policy grid, prints the
 * speedup and P2P forwarding fraction per policy, and writes the full
 * grid to results/scaleout_array.csv.
 */

#include "common.h"

#include <algorithm>

#include "platforms/array.h"

using namespace bench;

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    banner("Scale-out: BeaconGNN computational storage array (#VIII)");
    TimingLog timing("scaleout_array");
    Stopwatch sw;

    const auto &b = bundle("amazon");
    RunConfig rc = defaultRun();
    rc.batchSize = 256;
    rc.batches = 3;

    const std::vector<unsigned> device_counts = {1, 2, 4, 8};
    const std::vector<platforms::PartitionPolicy> policies = {
        platforms::PartitionPolicy::Hash,
        platforms::PartitionPolicy::Range,
        platforms::PartitionPolicy::Balanced};
    const std::size_t np = policies.size();

    // Each cell records its own wall-clock alongside the result, so
    // results/bench_timing.json carries a per-cell breakdown (the
    // grid runs concurrently; per-cell seconds are real time inside
    // one cell, not a share of the grid wall-clock).
    struct Cell
    {
        platforms::ArrayRunResult res;
        double seconds = 0.0;
    };
    auto results = parallelMap<Cell>(
        device_counts.size() * np, [&](std::size_t i) {
            Stopwatch cell_sw;
            platforms::ArrayConfig acfg;
            acfg.devices = device_counts[i / np];
            acfg.partition = policies[i % np];
            Cell c;
            c.res = platforms::runArray(acfg, rc, b);
            c.seconds = cell_sw.seconds();
            return c;
        });
    timing.section("grid", sw.seconds());
    for (std::size_t i = 0; i < results.size(); ++i) {
        timing.section("cell_dev" +
                           std::to_string(device_counts[i / np]) + "_" +
                           platforms::partitionPolicyName(
                               policies[i % np]),
                       results[i].seconds);
    }

    // Intra-run parallelism: the 8-device cell again, first with the
    // device queues serialized and then on the configured worker
    // count — the bench_timing.json pair quantifies the conservative
    // parallel simulator's wall-clock gain on this host.
    {
        platforms::ArrayConfig acfg;
        acfg.devices = 8;
        acfg.partition = platforms::PartitionPolicy::Hash;
        const unsigned saved = sim::SimExecutor::defaultJobs();
        sim::SimExecutor::setDefaultJobs(1);
        Stopwatch j1;
        platforms::runArray(acfg, rc, b);
        timing.section("dev8_jobs1", j1.seconds());
        sim::SimExecutor::setDefaultJobs(saved);
        Stopwatch jn;
        platforms::runArray(acfg, rc, b);
        timing.section("dev8_jobs" + std::to_string(saved),
                       jn.seconds());
    }

    for (std::size_t p = 0; p < np; ++p) {
        std::printf("\npartition: %s\n",
                    platforms::partitionPolicyName(policies[p]));
        std::printf("%8s %14s %10s %14s %12s\n", "devices",
                    "targets/s", "speedup", "cross-device", "p2p-frac");
        double base = results[p].res.throughput; // devices=1, policy p.
        for (std::size_t d = 0; d < device_counts.size(); ++d) {
            const auto &r = results[d * np + p].res;
            std::printf("%8u %14.0f %9.2fx %14llu %11.1f%%\n",
                        device_counts[d], r.throughput,
                        r.throughput / base,
                        static_cast<unsigned long long>(r.crossDevice),
                        100.0 * r.crossFraction);
        }
    }

    std::filesystem::create_directories("results");
    std::ofstream csv("results/scaleout_array.csv");
    csv << "devices,partition,throughput,commands,cross_device,"
           "cross_fraction,min_dev_commands,max_dev_commands\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i].res;
        std::uint64_t lo = r.commands, hi = 0;
        for (std::uint64_t c : r.perDeviceCommands) {
            lo = std::min(lo, c);
            hi = std::max(hi, c);
        }
        csv << device_counts[i / np] << ','
            << platforms::partitionPolicyName(policies[i % np]) << ','
            << r.throughput << ',' << r.commands << ','
            << r.crossDevice << ',' << r.crossFraction << ',' << lo
            << ',' << hi << '\n';
    }
    std::printf("\nwrote %zu grid row(s) to "
                "results/scaleout_array.csv\n",
                results.size());

    std::printf("\nPaper projection: capacity and compute scale "
                "linearly with devices; the\nP2P command descriptors "
                "are small, so forwarding does not erode the gain.\n");
    timing.write();
    return 0;
}
