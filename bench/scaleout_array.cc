/**
 * @file
 * §VIII scale-out: a computational storage array of BeaconGNN SSDs
 * with direct P2P links. The paper projects that storage capacity and
 * computation scale linearly with the number of devices while the
 * BG-2 optimizations keep working; this bench measures array
 * throughput for 1..8 devices and the P2P forwarding fraction.
 */

#include "common.h"

#include "platforms/array.h"

using namespace bench;

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    banner("Scale-out: BeaconGNN computational storage array (#VIII)");
    const auto &b = bundle("amazon");
    RunConfig rc = defaultRun();
    rc.batchSize = 256;
    rc.batches = 3;

    std::printf("%8s %14s %10s %14s %12s\n", "devices", "targets/s",
                "speedup", "cross-device", "p2p-frac");
    const std::vector<unsigned> device_counts = {1, 2, 4, 8};
    auto results = parallelMap<platforms::ArrayRunResult>(
        device_counts.size(), [&](std::size_t i) {
            platforms::ArrayConfig acfg;
            acfg.devices = device_counts[i];
            return platforms::runArray(acfg, rc, b);
        });
    double base = results.front().throughput;
    for (std::size_t i = 0; i < device_counts.size(); ++i) {
        const auto &r = results[i];
        std::printf("%8u %14.0f %9.2fx %14llu %11.1f%%\n",
                    device_counts[i], r.throughput,
                    r.throughput / base,
                    static_cast<unsigned long long>(r.crossDevice),
                    100.0 * r.crossFraction);
    }
    std::printf("\nPaper projection: capacity and compute scale "
                "linearly with devices; the\nP2P command descriptors "
                "are small, so forwarding does not erode the gain.\n");
    return 0;
}
