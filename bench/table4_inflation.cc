/**
 * @file
 * Table IV: storage inflation of the DirectGraph conversion for each
 * workload — extra flash consumed (page-granular) over the raw
 * dataset volume.
 *
 * Paper: reddit 2.8%, amazon 4.1%, movielens 3.5%, OGBN 32.3%,
 * PPI 3.5%. OGBN inflates most because its low average degree (28)
 * yields short sections that leave page space unusable even after
 * compaction; the shape target is OGBN >> the others.
 */

#include "common.h"

using namespace bench;

int
main()
{
    banner("Table IV: DirectGraph storage inflation");
    std::printf("%-10s %10s %12s %12s %10s %10s %12s\n", "dataset",
                "paper-GB", "sim-raw-MB", "flash-MB", "measured",
                "paper", "2nd-pages");
    for (const auto &name : workloadNames()) {
        const auto &spec = graph::workload(name);
        const auto &b = bundle(name);
        const auto &st = b.layout.stats;
        std::printf("%-10s %10.1f %12.1f %12.1f %9.1f%% %9.1f%% %12llu\n",
                    name.c_str(), spec.paperRawGB,
                    static_cast<double>(st.rawBytes) / 1048576.0,
                    static_cast<double>(st.flashBytes) / 1048576.0,
                    st.inflatePct(), spec.paperInflatePct,
                    static_cast<unsigned long long>(
                        st.secondaryPages));
    }
    rule();
    std::printf("Shape target: OGBN inflates far more than the other "
                "four (short sections\nfrom its low degree leave page "
                "space stranded); the rest stay in single\ndigits.\n");
    return 0;
}
