/**
 * @file
 * Export the full evaluation grid (8 platforms x 5 workloads, plus
 * the traditional-SSD point) to CSV files under ./results/ for
 * external plotting:
 *
 *   results/fig14_runs.csv     — one row per (platform, workload)
 *   results/fig15_series.csv   — utilization time series
 *   results/sec7e_runs.csv     — the 20 us SSD grid
 *   results/bench_timing.json  — simulator wall-clock self-timing
 *
 * The grids run in parallel (--jobs N / BGN_JOBS, default = cores);
 * results are collected in submission order so the CSVs are byte-
 * identical to a serial run.
 */

#include "common.h"

#include <filesystem>
#include <fstream>

#include "platforms/report.h"

using namespace bench;

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    std::filesystem::create_directories("results");

    TimingLog timing("export_results");

    {
        Stopwatch sw;
        std::ofstream runs("results/fig14_runs.csv");
        std::ofstream series("results/fig15_series.csv");
        platforms::writeCsvHeader(runs);
        RunConfig rc = defaultRun();
        rc.traceUtilization = true;
        rc.utilizationBuckets = 64;
        auto results =
            runGrid(platforms::allPlatforms(), workloadNames(), rc);
        for (const RunResult &r : results) {
            platforms::writeCsvRow(runs, r);
            platforms::writeSeriesCsv(series, r);
            std::printf("%s\n", platforms::summaryLine(r).c_str());
        }
        timing.section("fig14_grid", sw.seconds());
    }

    {
        Stopwatch sw;
        std::ofstream runs("results/sec7e_runs.csv");
        platforms::writeCsvHeader(runs);
        RunConfig rc = defaultRun();
        rc.system.flash = rc.system.flash.asTraditional();
        std::vector<PlatformKind> kinds = {PlatformKind::CC};
        for (auto k : platforms::bgLadder())
            kinds.push_back(k);
        for (const RunResult &r : runGrid(kinds, workloadNames(), rc))
            platforms::writeCsvRow(runs, r);
        timing.section("sec7e_grid", sw.seconds());
    }

    timing.write();

    std::printf("\nWrote results/fig14_runs.csv, "
                "results/fig15_series.csv, results/sec7e_runs.csv, "
                "results/bench_timing.json\n");
    return 0;
}
