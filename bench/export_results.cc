/**
 * @file
 * Export the full evaluation grid (8 platforms x 5 workloads, plus
 * the traditional-SSD point) to CSV files under ./results/ for
 * external plotting:
 *
 *   results/fig14_runs.csv     — one row per (platform, workload)
 *   results/fig15_series.csv   — utilization time series
 *   results/sec7e_runs.csv     — the 20 us SSD grid
 */

#include "common.h"

#include <filesystem>
#include <fstream>

#include "platforms/report.h"

using namespace bench;

int
main()
{
    std::filesystem::create_directories("results");

    {
        std::ofstream runs("results/fig14_runs.csv");
        std::ofstream series("results/fig15_series.csv");
        platforms::writeCsvHeader(runs);
        RunConfig rc = defaultRun();
        rc.traceUtilization = true;
        rc.utilizationBuckets = 64;
        for (auto kind : platforms::allPlatforms()) {
            auto p = platforms::makePlatform(kind);
            for (const auto &w : workloadNames()) {
                RunResult r = runPlatform(p, rc, bundle(w));
                platforms::writeCsvRow(runs, r);
                platforms::writeSeriesCsv(series, r);
                std::printf("%s\n",
                            platforms::summaryLine(r).c_str());
            }
        }
    }

    {
        std::ofstream runs("results/sec7e_runs.csv");
        platforms::writeCsvHeader(runs);
        RunConfig rc = defaultRun();
        rc.system.flash = rc.system.flash.asTraditional();
        std::vector<PlatformKind> kinds = {PlatformKind::CC};
        for (auto k : platforms::bgLadder())
            kinds.push_back(k);
        for (auto kind : kinds) {
            auto p = platforms::makePlatform(kind);
            for (const auto &w : workloadNames())
                platforms::writeCsvRow(runs,
                                       runPlatform(p, rc, bundle(w)));
        }
    }

    std::printf("\nWrote results/fig14_runs.csv, "
                "results/fig15_series.csv, results/sec7e_runs.csv\n");
    return 0;
}
