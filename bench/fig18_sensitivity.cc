/**
 * @file
 * Figure 18: sensitivity of the BG-X ladder to one configuration
 * parameter at a time, on amazon, normalized to the lowest point of
 * each sweep (as in the paper).
 *
 *   batch     — mini-batch size 32..256 (18a)
 *   chbw      — channel bandwidth 333/800/1600/2400 MB/s (18b)
 *   cores     — controller cores 1..8 (18c)
 *   channels  — flash channel count 4..32 (18d)
 *   dies      — dies per channel 2..16 (18e)
 *   pagesize  — flash page size 2..16 KB (18f)
 *
 * Run with no arguments for all six sweeps, or name one.
 */

#include "common.h"

#include <cstring>

using namespace bench;

namespace {

using Mutator = void (*)(RunConfig &, double);

void
sweep(const char *title, const char *paper_note,
      const std::vector<double> &points, Mutator apply,
      bool rebuild_bundle = false)
{
    banner(title);
    std::printf("%-10s", "platform");
    for (double pt : points)
        std::printf(" %9.0f", pt);
    std::printf("   (normalized to each platform's lowest point)\n");

    // One parallel job per (platform, sweep point); the flattened
    // result vector is in submission order, so the printed table is
    // identical to the serial nested loop.
    const auto &kinds = platforms::bgLadder();
    const std::size_t np = points.size();
    auto thr = parallelMap<double>(
        kinds.size() * np, [&](std::size_t i) {
            auto p = platforms::makePlatform(kinds[i / np]);
            RunConfig rc = defaultRun();
            rc.batches = 3;
            apply(rc, points[i % np]);
            const auto &b = rebuild_bundle
                                ? bundle("amazon", rc.system.flash)
                                : bundle("amazon");
            return runPlatform(p, rc, b).throughput;
        });

    for (std::size_t k = 0; k < kinds.size(); ++k) {
        auto first = thr.begin() + static_cast<std::ptrdiff_t>(k * np);
        double lo = *std::min_element(
            first, first + static_cast<std::ptrdiff_t>(np));
        std::printf("%-10s",
                    platforms::platformName(kinds[k]).c_str());
        for (std::size_t j = 0; j < np; ++j)
            std::printf(" %9.2f", thr[k * np + j] / lo);
        std::printf("\n");
    }
    std::printf("%s\n\n", paper_note);
}

void
batchSweep()
{
    sweep("Figure 18a: mini-batch size",
          "Paper: BG-1/BG-DG stay low regardless; BG-SP approaches "
          "BG-DGSP as the batch\ngrows (valleys amortized); BG-DGSP "
          "converges to the firmware limit; BG-2\nscales best.",
          {32, 64, 128, 256},
          [](RunConfig &rc, double v) {
              rc.batchSize = static_cast<std::uint32_t>(v);
          });
}

void
chbwSweep()
{
    sweep("Figure 18b: channel bandwidth (MB/s)",
          "Paper: BG-1/BG-DG improve strongly with bandwidth "
          "(page-transfer-bound);\nBG-SP/BG-DGSP are firmware-"
          "constrained; BG-2 gains little past 800 MB/s\n(die "
          "throughput saturates).",
          {333, 800, 1600, 2400},
          [](RunConfig &rc, double v) {
              rc.system.flash.channelMBps = v;
          });
}

void
coresSweep()
{
    sweep("Figure 18c: controller cores",
          "Paper: BG-SP/BG-DGSP widen their lead as cores are added; "
          "BG-2 is\nunaffected, and the BG-DGSP..BG-2 gap narrows with "
          "more cores.",
          {1, 2, 4, 8},
          [](RunConfig &rc, double v) {
              rc.system.controller.cores =
                  static_cast<unsigned>(v);
          });
}

void
channelsSweep()
{
    sweep("Figure 18d: flash channels (dies/channel fixed)",
          "Paper: BG-1/BG-DG improve steadily; BG-SP/BG-DGSP stop "
          "improving past ~8\nchannels (firmware-bound); BG-2 scales "
          "to 16 channels, then SSD DRAM\nbandwidth becomes the "
          "bottleneck.",
          {4, 8, 16, 32},
          [](RunConfig &rc, double v) {
              rc.system.flash.channels = static_cast<unsigned>(v);
          },
          true);
}

void
diesSweep()
{
    sweep("Figure 18e: dies per channel (channels fixed)",
          "Paper: BG-1/BG-DG stay low (page transfer inefficient even "
          "for 2 dies);\nBG-SP/BG-DGSP rise then converge to the "
          "firmware limit; BG-2 scales until\n~16 dies/channel where "
          "the channel cannot drain all dies.",
          {2, 4, 8, 16},
          [](RunConfig &rc, double v) {
              rc.system.flash.diesPerChannel =
                  static_cast<unsigned>(v);
          },
          true);
}

void
pagesizeSweep()
{
    sweep("Figure 18f: flash page size (KB)",
          "Paper: BG-1/BG-DG prefer small pages (less read "
          "amplification); BG-SP/\nBG-DGSP slightly prefer large pages "
          "(fewer secondary reads); BG-2 shows no\nsignificant "
          "variance.",
          {2, 4, 8, 16},
          [](RunConfig &rc, double v) {
              rc.system.flash.pageSize =
                  static_cast<std::uint32_t>(v) * 1024;
          },
          true);
}

} // namespace

int
main(int argc, char **argv)
{
    auto rest = parseJobs(argc, argv);
    const std::string which = rest.empty() ? "all" : rest.front();
    bool all = which == "all";
    if (all || which == "batch")
        batchSweep();
    if (all || which == "chbw")
        chbwSweep();
    if (all || which == "cores")
        coresSweep();
    if (all || which == "channels")
        channelsSweep();
    if (all || which == "dies")
        diesSweep();
    if (all || which == "pagesize")
        pagesizeSweep();
    return 0;
}
