/**
 * @file
 * Figure 15(a-e): active flash channels and dies over time for BG-SP,
 * BG-DGSP and BG-2 on each workload — BG-SP shows utilization valleys
 * at the hop barriers, BG-DGSP fills them, BG-2 lifts utilization
 * (+76% in the paper) and cuts total sampling latency (-78%).
 *
 * Figure 15(f): overall latency/resource breakdown on amazon —
 * PCIe-dominated CC, flash-dominated BG-1, shrinking flash I/O down
 * the BG ladder.
 */

#include "common.h"

using namespace bench;

namespace {

void
series(const char *label, const std::vector<double> &values, double cap)
{
    std::printf("%-8s", label);
    for (double v : values) {
        int level = cap > 0 ? static_cast<int>(9.99 * v / cap) : 0;
        std::putchar(level <= 0 ? '.' : static_cast<char>('0' + std::min(
                                                                    9,
                                                                    level)));
    }
    std::printf("  (peak %.0f of %.0f)\n",
                *std::max_element(values.begin(), values.end()), cap);
}

void
utilizationOverTime()
{
    banner("Figure 15a-e: active channels/dies over time "
           "(one row per platform; 0-9 deciles of peak capacity)");
    RunConfig rc = defaultRun();
    rc.batches = 2;
    rc.traceUtilization = true;
    rc.utilizationBuckets = 64;
    ssd::SystemConfig sys;
    double die_cap = sys.flash.channels * sys.flash.diesPerChannel;
    double ch_cap = sys.flash.channels;

    const std::vector<PlatformKind> kinds = {
        PlatformKind::BG_SP, PlatformKind::BG_DGSP, PlatformKind::BG2};
    const std::size_t nw = workloadNames().size();
    auto results = runGrid(kinds, workloadNames(), rc);

    for (std::size_t wi = 0; wi < nw; ++wi) {
        const auto &w = workloadNames()[wi];
        std::printf("\n[%s]\n", w.c_str());
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            auto p = platforms::makePlatform(kinds[k]);
            const RunResult &r = results[k * nw + wi];
            std::printf("%-8s dies    ", p.name.c_str());
            series("", r.dieSeries, die_cap);
            std::printf("%-8s channels", p.name.c_str());
            series("", r.channelSeries, ch_cap);
            std::printf("%-8s  avg die util %.3f, avg ch util %.3f, "
                        "prep %.2f ms\n",
                        "", r.dieUtil, r.channelUtil,
                        sim::toMillis(r.prepTime));
        }
    }
    std::printf("\nPaper: BG-SP shows low-utilization valleys at hop "
                "barriers; BG-DGSP is\nconsistently higher; BG-2 raises "
                "utilization (+76%%) and cuts sampling\nlatency (-78%%). "
                "reddit/PPI stay channel-transfer-bound (high feature "
                "dims),\nmovielens/OGBN die-read-bound (short "
                "features); amazon exercises both.\n");
}

void
latencyBreakdown()
{
    banner("Figure 15f: resource-time breakdown, amazon "
           "(busy ms over the run)");
    RunConfig rc = defaultRun();
    std::printf("%-10s %9s %9s %9s %9s %9s %9s %9s\n", "platform",
                "total", "pcie", "flashdie", "channel", "fw-cores",
                "host", "accel");
    const auto &kinds = platforms::allPlatforms();
    auto results = runGrid(kinds, {"amazon"}, rc);
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        auto p = platforms::makePlatform(kinds[k]);
        const RunResult &r = results[k];
        ssd::SystemConfig sys = rc.system;
        double total = sim::toMillis(r.totalTime);
        std::printf("%-10s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                    p.name.c_str(), total,
                    r.pcieUtil * total,
                    r.dieUtil * total * sys.flash.totalDies() /
                        sys.flash.totalDies(),
                    r.channelUtil * total,
                    r.coreUtil * total,
                    sim::toMillis(r.hostBusy),
                    sim::toMillis(r.accelBusy));
    }
    std::printf("Paper: CC is dominated by PCIe transfer; BG-1 by "
                "flash page transfer;\nfrom BG-SP to BG-2 the flash I/O "
                "share keeps shrinking; host-side delay\nis minor "
                "everywhere.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    utilizationOverTime();
    latencyBreakdown();
    return 0;
}
