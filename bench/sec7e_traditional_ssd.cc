/**
 * @file
 * Section VII-E: the same platforms on a traditional 20 us read-
 * latency SSD. Paper: BG-1, BG-DG, BG-SP, BG-DGSP and BG-2 reach
 * 2.20x, 2.50x, 3.19x, 4.19x and 4.19x over CC on average — the
 * DirectGraph and die-sampler techniques still help, but firmware
 * suffices for I/O processing at such latencies, so channel-level
 * routing adds nothing (BG-DGSP ~= BG-2).
 */

#include "common.h"

using namespace bench;

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    banner("Section VII-E: traditional SSD (tR = 20 us)");
    RunConfig rc = defaultRun();
    rc.system.flash = rc.system.flash.asTraditional();

    std::map<PlatformKind, double> paper = {
        {PlatformKind::BG1, 2.20},     {PlatformKind::BG_DG, 2.50},
        {PlatformKind::BG_SP, 3.19},   {PlatformKind::BG_DGSP, 4.19},
        {PlatformKind::BG2, 4.19},
    };

    std::printf("%-10s", "platform");
    for (const auto &w : workloadNames())
        std::printf(" %9s", w.c_str());
    std::printf(" %9s %9s\n", "mean", "paper");

    std::map<std::string, double> cc_thr;
    std::vector<PlatformKind> kinds = {PlatformKind::CC};
    for (auto k : platforms::bgLadder())
        kinds.push_back(k);

    // The bundle layout is geometry-independent of tR, so the cached
    // ULL bundle is shared with the other benches.
    const std::size_t nw = workloadNames().size();
    auto results = runGrid(kinds, workloadNames(), rc);

    double dgsp_mean = 0, bg2_mean = 0;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        PlatformKind kind = kinds[k];
        std::printf("%-10s", platforms::platformName(kind).c_str());
        double mean = 0;
        for (std::size_t w = 0; w < nw; ++w) {
            const RunResult &r = results[k * nw + w];
            if (kind == PlatformKind::CC)
                cc_thr[workloadNames()[w]] = r.throughput;
            double norm = r.throughput / cc_thr[workloadNames()[w]];
            std::printf(" %9.2f", norm);
            mean += norm;
        }
        mean /= static_cast<double>(nw);
        if (kind == PlatformKind::BG_DGSP)
            dgsp_mean = mean;
        if (kind == PlatformKind::BG2)
            bg2_mean = mean;
        std::printf(" %9.2f %9.2f\n", mean,
                    kind == PlatformKind::CC ? 1.0 : paper[kind]);
    }
    rule();
    std::printf("BG-2 / BG-DGSP on traditional flash: %.2f (paper: "
                "~1.00 — with 20 us reads\nthe firmware keeps up and "
                "hardware routing is unnecessary)\n",
                bg2_mean / std::max(1e-9, dgsp_mean));
    return 0;
}
