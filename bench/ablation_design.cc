/**
 * @file
 * Ablations of BeaconGNN's design choices (DESIGN.md §5) — the
 * studies the paper motivates but does not run:
 *
 *  1. Secondary-command coalescing (§V-A "all commands for the same
 *     secondary section will coalesce"): on vs off, on a
 *     high-spill workload.
 *  2. DirectGraph block striping: spreading pages across one block
 *     per die vs sequential block fill (parallelism vs locality).
 *  3. Best-fit page packing pool size: inflation vs packing effort.
 *  4. Accelerator dataflow and array geometry for the paper's GEMM
 *     shapes (weight- vs output-stationary, 16..128 PEs).
 *  5. Batch-level node deduplication (extension): repeated subgraph
 *     nodes served from SSD DRAM instead of re-read from flash.
 *  6. Direct flash->accelerator-SRAM I/O (§VIII): bypassing the SSD
 *     DRAM lifts the Fig. 18d scaling wall at high channel counts.
 */

#include "common.h"

#include <set>

#include "accel/systolic.h"
#include "sim/ordered.h"

using namespace bench;

namespace {

void
coalescingAblation()
{
    banner("Ablation 1: secondary-command coalescing "
           "(hub-heavy graph, fanout 16)");
    // Coalescing matters when many draws land in the same secondary
    // section: a hub-heavy graph sampled with a wide fanout.
    gnn::ModelConfig model = defaultModel();
    model.fanout = 16;
    ssd::SystemConfig sys;
    auto spec = graph::workload("reddit");
    spec.simNodes = 8000;
    spec.avgDegree = 2500; // Deep secondary spill.
    auto bptr = platforms::makeBundle(spec, sys.flash, model);
    RunConfig rc = defaultRun();
    rc.batches = 2;
    rc.batchSize = 32;

    for (bool coalesce : {true, false}) {
        auto p = platforms::makePlatform(PlatformKind::BG2);
        p.flags.coalesceSecondary = coalesce;
        RunResult r = runPlatform(p, rc, *bptr);
        std::printf("%-14s flash reads %8llu  channel %7.1f KB  "
                    "prep %7.2f ms  thr %9.0f t/s\n",
                    coalesce ? "coalesced" : "per-hit",
                    static_cast<unsigned long long>(
                        r.tally.flashReads),
                    static_cast<double>(r.tally.channelBytes) /
                        1024.0,
                    sim::toMillis(r.prepTime), r.throughput);
    }
    std::printf("Coalescing removes redundant secondary-page reads "
                "without changing the\nsampled subgraph (the draws are "
                "keyed by index; verified in tests).\n\n");
}

void
stripingAblation()
{
    banner("Ablation 2: DirectGraph block striping (amazon)");
    gnn::ModelConfig model = defaultModel();
    ssd::SystemConfig sys;
    auto spec = graph::workload("amazon");
    spec.simNodes = 8000;
    RunConfig rc = defaultRun();
    rc.batches = 2;

    for (unsigned stripe : {1u, 8u, 32u, 0u}) {
        // Rebuild the layout with the requested stripe width.
        auto g = spec.makeGraph();
        auto feat = spec.makeFeatures();
        ssd::Ftl ftl(sys.flash);
        std::uint64_t raw =
            g.numEdges() * 4 +
            std::uint64_t{g.numNodes()} * feat.bytesPerNode();
        std::uint64_t block_bytes =
            std::uint64_t{sys.flash.pagesPerBlock} * sys.flash.pageSize;
        auto blocks = ftl.reserveBlocks(std::max<std::uint64_t>(
            (raw * 3) / block_bytes + 16, sys.flash.totalDies() + 64));
        dg::BuilderOptions opts;
        opts.stripeWidth = stripe;
        auto layout = dg::buildLayout(g, feat, sys.flash, blocks, opts);
        dg::LayoutSource src(layout, g);

        // Count distinct dies the layout touches.
        std::set<unsigned> dies;
        flash::AddressCodec codec(sys.flash);
        for (auto ppa : sim::sortedKeys(layout.pages))
            dies.insert(codec.globalDieOf(ppa));

        // Time BG-2 on this layout.
        sim::EventQueue q;
        flash::FlashBackend backend(sys.flash);
        ssd::Firmware fw(rc.system);
        auto p = platforms::makePlatform(PlatformKind::BG2);
        gnn::ModelConfig m = model;
        m.featureDim = feat.dim();
        engines::GnnEngine engine(q, backend, fw, layout, g, m,
                                  p.flags, src);
        std::vector<graph::NodeId> targets(rc.batchSize);
        sim::Pcg32 rng(1);
        for (auto &t : targets)
            t = rng.below(g.numNodes());
        engines::PrepResult pr;
        engine.prepare(0, 0, targets,
                       [&](engines::PrepResult &&r) { pr = std::move(r); });
        q.run();

        std::printf("stripe %-9s dies touched %4zu / %u   prep "
                    "%8.2f ms\n",
                    stripe == 0 ? "(per-die)"
                                : std::to_string(stripe).c_str(),
                    dies.size(), sys.flash.totalDies(),
                    sim::toMillis(pr.finish - pr.start));
    }
    std::printf("Sequential block fill (stripe 1) concentrates a "
                "scaled graph on few dies\nand forfeits backend "
                "parallelism; striping one block per die restores "
                "it.\n\n");
}

void
packingAblation()
{
    banner("Ablation 3: best-fit open-page pool size (amazon "
           "inflation)");
    ssd::SystemConfig sys;
    auto spec = graph::workload("amazon");
    spec.simNodes = 8000;
    auto g = spec.makeGraph();
    auto feat = spec.makeFeatures();
    ssd::Ftl ftl(sys.flash);
    std::uint64_t raw = g.numEdges() * 4 +
                        std::uint64_t{g.numNodes()} * feat.bytesPerNode();
    std::uint64_t block_bytes =
        std::uint64_t{sys.flash.pagesPerBlock} * sys.flash.pageSize;
    auto blocks = ftl.reserveBlocks(std::max<std::uint64_t>(
        (raw * 3) / block_bytes + 16, sys.flash.totalDies() + 64));

    std::printf("%10s %12s %12s\n", "pool", "pages", "inflation");
    for (unsigned pool : {1u, 4u, 16u, 64u, 128u}) {
        dg::BuilderOptions opts;
        opts.openPagePool = pool;
        auto layout = dg::buildLayout(g, feat, sys.flash, blocks, opts);
        std::printf("%10u %12zu %11.1f%%\n", pool,
                    layout.pages.size(), layout.stats.inflatePct());
    }
    std::printf("A deeper best-fit pool packs mixed-size sections "
                "tighter (the paper's\n\"linked array\" compaction); "
                "returns diminish quickly.\n\n");
}

void
acceleratorAblation()
{
    banner("Ablation 4: accelerator dataflow / geometry "
           "(batch-256 layer-1 GEMM, amazon dims)");
    // Layer 1 of the paper's model on amazon: M = 256 targets x 13
    // nodes, K = 200-dim features, N = 128 hidden.
    gnn::GemmShape g{256 * 13, 128, 200};
    std::printf("%8s %6s %14s %14s %12s\n", "array", "flow",
                "cycles", "util", "sram KB");
    for (std::uint32_t dim : {16u, 32u, 64u, 128u}) {
        for (auto flow : {accel::Dataflow::WeightStationary,
                          accel::Dataflow::OutputStationary}) {
            accel::SystolicConfig cfg;
            cfg.rows = cfg.cols = dim;
            cfg.dataflow = flow;
            auto e = accel::estimateGemm(cfg, g);
            std::printf("%5ux%-3u %6s %14llu %13.1f%% %12.1f\n", dim,
                        dim,
                        flow == accel::Dataflow::WeightStationary
                            ? "WS"
                            : "OS",
                        static_cast<unsigned long long>(e.cycles),
                        100.0 * e.utilization(cfg),
                        static_cast<double>(e.sramReadBytes +
                                            e.sramWriteBytes) /
                            1024.0);
        }
    }
    std::printf("The 32x32 WS point (Table II's SSD budget) balances "
                "utilization against\nSRAM traffic. WS wins on these "
                "tall (M-dominated) GNN GEMMs because the\nweights "
                "load once per tile while rows stream; OS would win "
                "on K-dominated\nshapes where partial sums stay "
                "resident.\n");
}

void
dedupAblation()
{
    banner("Ablation 5: batch-level node deduplication (extension)");
    // Small graphs make repeated nodes within one batch frequent.
    gnn::ModelConfig model = defaultModel();
    ssd::SystemConfig sys;
    std::printf("%12s %6s %14s %14s %12s\n", "graph-nodes", "dedup",
                "flash reads", "prep ms", "thr t/s");
    for (graph::NodeId nodes : {2000u, 20000u}) {
        auto spec = graph::workload("amazon");
        spec.simNodes = nodes;
        auto b = platforms::makeBundle(spec, sys.flash, model);
        RunConfig rc = defaultRun();
        rc.batchSize = 256;
        rc.batches = 2;
        for (bool dedup : {false, true}) {
            auto p = platforms::makePlatform(PlatformKind::BG2);
            p.flags.dedupeNodes = dedup;
            RunResult r = runPlatform(p, rc, *b);
            std::printf("%12u %6s %14llu %14.2f %12.0f\n", nodes,
                        dedup ? "on" : "off",
                        static_cast<unsigned long long>(
                            r.tally.flashReads),
                        sim::toMillis(r.prepTime), r.throughput);
        }
    }
    std::printf("Deduplication pays off when mini-batches revisit "
                "nodes (small graphs, hot\nhubs); the sampled subgraph "
                "is unchanged (tests verify instance-level\n"
                "equality).\n");
}

void
dramBypassAblation()
{
    banner("Ablation 6: direct flash->accelerator SRAM path (#VIII)");
    std::printf("%10s %8s %14s %12s\n", "channels", "bypass",
                "thr t/s", "dram util");
    for (unsigned channels : {16u, 32u}) {
        for (bool bypass : {false, true}) {
            RunConfig rc = defaultRun();
            rc.batches = 2;
            rc.system.flash.channels = channels;
            const auto &b = bundle("amazon", rc.system.flash);
            auto p = platforms::makePlatform(PlatformKind::BG2);
            p.flags.bypassDram = bypass;
            RunResult r = runPlatform(p, rc, b);
            std::printf("%10u %8s %14.0f %12.2f\n", channels,
                        bypass ? "on" : "off", r.throughput,
                        r.dramUtil);
        }
    }
    std::printf("The paper's proposed fix for its own DRAM-bandwidth "
                "limitation: once the\nbackend outgrows the DRAM port, "
                "streaming features straight into the\naccelerator "
                "SRAM recovers the scaling.\n");
}

} // namespace

int
main()
{
    coalescingAblation();
    stripingAblation();
    packingAblation();
    acceleratorAblation();
    dedupAblation();
    dramBypassAblation();
    return 0;
}
