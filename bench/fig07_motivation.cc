/**
 * @file
 * Figure 7: the two motivation experiments of Section III.
 *
 * (a) Page-granular channel transfer: raising the number of active
 *     ULL dies on one channel from 1 to 8 improves throughput only
 *     ~49% while average latency grows ~7.7x, because page transfers
 *     serialize on the shared channel bus (Fig. 6).
 *
 * (b) Inter-hop sampling barrier: hop-by-hop ordering (BG-1 path)
 *     idles flash resources at hop boundaries; relaxing the order
 *     (DirectGraph streaming) removes the utilization valleys.
 */

#include "common.h"

#include "flash/backend.h"

using namespace bench;

namespace {

void
figure7a()
{
    banner("Figure 7a: active ULL dies on one channel "
           "(page-granular transfer)");
    std::printf("%6s %14s %14s %12s %12s\n", "dies", "thr(pages/s)",
                "norm-thr", "avg-lat(us)", "norm-lat");

    flash::FlashConfig cfg; // 3 us ULL, 800 MB/s, 4 KB pages.
    const int reads_per_die = 64;
    double base_thr = 0, base_lat = 0;
    for (unsigned dies = 1; dies <= 8; ++dies) {
        flash::FlashBackend be(cfg);
        (void)be;
        // Blocks d*channels land on channel 0, die d.
        sim::Tick end = 0;
        double lat_sum = 0;
        int n = 0;
        // Keep every die continuously loaded (saturation, as in the
        // paper's experiment).
        for (int r = 0; r < reads_per_die; ++r) {
            for (unsigned d = 0; d < dies; ++d) {
                flash::Ppa ppa =
                    (d * cfg.channels) * cfg.pagesPerBlock +
                    static_cast<flash::Ppa>(r);
                flash::FlashOpTiming t = be.read(0, ppa, cfg.pageSize);
                end = std::max(end, t.xferEnd);
                lat_sum += sim::toMicros(t.xferEnd);
                ++n;
            }
        }
        double thr = n / sim::toSeconds(end);
        double lat = lat_sum / n; // Mean completion time under load.
        if (dies == 1) {
            base_thr = thr;
            base_lat = lat;
        }
        std::printf("%6u %14.0f %14.2f %12.1f %12.2f\n", dies, thr,
                    thr / base_thr, lat, lat / base_lat);
    }
    std::printf("Paper: 1->8 dies gives only ~1.49x throughput at "
                "~7.7x average latency.\n");

    // Ablation: dual cache/data registers pipeline sense under
    // transfer — the single-die point improves, but the channel
    // ceiling is unchanged.
    std::printf("\nWith dual-register die pipelining (ablation):\n");
    flash::FlashConfig dual = cfg;
    dual.dualRegister = true;
    for (unsigned dies : {1u, 8u}) {
        flash::FlashBackend be(dual);
        sim::Tick end = 0;
        int n = 0;
        for (int r = 0; r < reads_per_die; ++r) {
            for (unsigned d = 0; d < dies; ++d) {
                flash::Ppa ppa =
                    (d * dual.channels) * dual.pagesPerBlock +
                    static_cast<flash::Ppa>(r);
                end = std::max(end,
                               be.read(0, ppa, dual.pageSize).xferEnd);
                ++n;
            }
        }
        std::printf("%6u dies: %14.0f pages/s (%.2fx of the single-"
                    "buffered 1-die point)\n",
                    dies, n / sim::toSeconds(end),
                    (n / sim::toSeconds(end)) / base_thr);
    }
}

void
figure7b()
{
    banner("Figure 7b: inter-hop barrier vs out-of-order sampling");
    const auto &b = bundle("amazon");
    RunConfig rc = defaultRun();
    rc.batches = 2;

    auto barrier =
        runPlatform(platforms::makePlatform(PlatformKind::BG_SP), rc, b);
    auto relaxed = runPlatform(
        platforms::makePlatform(PlatformKind::BG_DGSP), rc, b);

    std::printf("%-28s %14s %14s\n", "", "hop-by-hop", "out-of-order");
    std::printf("%-28s %14.2f %14.2f\n", "prep time (ms)",
                sim::toMillis(barrier.prepTime),
                sim::toMillis(relaxed.prepTime));
    std::printf("%-28s %14.3f %14.3f\n", "die utilization",
                barrier.dieUtil, relaxed.dieUtil);
    std::printf("%-28s %14.3f %14.3f\n", "channel utilization",
                barrier.channelUtil, relaxed.channelUtil);
    std::printf("%-28s %14.0f %14.0f\n", "throughput (targets/s)",
                barrier.throughput, relaxed.throughput);
    std::printf("Paper: the strict order prevents overlap of hops and "
                "wastes idle flash\nresources at every hop boundary.\n");
}

} // namespace

int
main()
{
    figure7a();
    figure7b();
    return 0;
}
