/**
 * @file
 * Figure 19: energy breakdown and energy efficiency on amazon.
 *
 * Paper reference points: CC spends 57% of energy moving data off
 * storage; BG-1/BG-DG spend ~75% transferring whole pages to SSD
 * DRAM (channel + DRAM); BG-SP.. BG-2 eliminate that and split ~57%
 * flash backend / 43% DRAM buffer + accelerator. BG-2 is 9.86x /
 * 4.25x more energy-efficient than CC / BG-1 and draws ~13.4 W on
 * average, far below the 75 W PCIe limit.
 */

#include "common.h"

using namespace bench;

int
main()
{
    banner("Figure 19: energy breakdown + efficiency, amazon");
    RunConfig rc = defaultRun();
    const auto &b = bundle("amazon");

    std::printf("%-10s %8s %8s %8s %8s %8s %8s %8s %8s | %9s %8s %7s\n",
                "platform", "flash", "chan", "dram", "pcie", "cores",
                "host", "accel", "bkgnd", "mJ/target", "eff-x", "avg-W");
    double cc_eff = 0, bg1_eff = 0, bg2_eff = 0, bg2_w = 0;
    for (auto kind : platforms::allPlatforms()) {
        auto p = platforms::makePlatform(kind);
        RunResult r = runPlatform(p, rc, b);
        const auto &e = r.energy;
        double total = e.total();
        auto pct = [&](double x) { return 100.0 * x / total; };
        double per_target =
            1000.0 * total / static_cast<double>(r.targets);
        double eff = 1.0 / per_target; // Targets per mJ.
        if (kind == PlatformKind::CC)
            cc_eff = eff;
        if (kind == PlatformKind::BG1)
            bg1_eff = eff;
        if (kind == PlatformKind::BG2) {
            bg2_eff = eff;
            bg2_w = r.avgPowerW;
        }
        std::printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% "
                    "%7.1f%% %7.1f%% %7.1f%% | %9.3f %8.2f %7.1f\n",
                    p.name.c_str(), pct(e.flash), pct(e.channel),
                    pct(e.dram), pct(e.pcie), pct(e.cores),
                    pct(e.hostCpu), pct(e.accel + e.engines),
                    pct(e.background), per_target, eff / cc_eff,
                    r.avgPowerW);
    }
    rule();
    std::printf("BG-2 efficiency vs CC: %.2fx (paper 9.86x); vs BG-1: "
                "%.2fx (paper 4.25x)\n",
                bg2_eff / cc_eff, bg2_eff / bg1_eff);
    std::printf("BG-2 average power: %.1f W (paper 13.4 W; PCIe limit "
                "75 W)\n",
                bg2_w);
    return 0;
}
