/**
 * @file
 * Figure 17: flash-command lifetime breakdown on amazon — the time a
 * command spends waiting before its flash operation, in flash
 * processing (sense + transfer), and waiting after, until its result
 * is available at the frontend.
 *
 * Paper reference points: commands spend most of their lifetime
 * waiting; BG-SP drastically reduces both waits by cutting flash
 * transfers; BG-DG/BG-DGSP have ~41-42% longer wait_before than
 * their bases (more commands ready at once); BG-2 cuts wait time by
 * ~68% vs BG-DGSP by processing commands in hardware.
 */

#include "common.h"

using namespace bench;

int
main()
{
    banner("Figure 17: flash command latency breakdown, amazon (us)");
    RunConfig rc = defaultRun();
    const auto &b = bundle("amazon");

    std::printf("%-10s %12s %12s %12s %12s %10s %10s %10s\n",
                "platform", "wait_before", "flash", "wait_after",
                "lifetime", "p95", "p99", "commands");
    double dgsp_wait = 0, bg1_waitb = 0, dg_waitb = 0;
    for (auto kind : platforms::bgLadder()) {
        auto p = platforms::makePlatform(kind);
        RunResult r = runPlatform(p, rc, b);
        double wb = r.cmdStats.waitBefore.mean();
        double fl = r.cmdStats.flashTime.mean();
        double wa = r.cmdStats.waitAfter.mean();
        double lt = r.cmdStats.lifetime.mean();
        // One bucket walk resolves the whole tail-percentile set.
        const std::vector<double> ps =
            r.cmdStats.lifetimeHist.percentiles({0.95, 0.99});
        std::printf("%-10s %12.2f %12.2f %12.2f %12.2f %10.1f %10.1f "
                    "%10llu\n",
                    p.name.c_str(), wb, fl, wa, lt, ps[0], ps[1],
                    static_cast<unsigned long long>(
                        r.cmdStats.lifetime.count()));
        if (kind == PlatformKind::BG1)
            bg1_waitb = wb;
        if (kind == PlatformKind::BG_DG)
            dg_waitb = wb;
        if (kind == PlatformKind::BG_DGSP)
            dgsp_wait = wb + wa;
        if (kind == PlatformKind::BG2 && dgsp_wait > 0) {
            double cut = 100.0 * (1.0 - (wb + wa) / dgsp_wait);
            std::printf("  -> BG-2 cuts total wait by %.0f%% vs "
                        "BG-DGSP (paper: 68%%)\n",
                        cut);
        }
    }
    if (bg1_waitb > 0) {
        std::printf("  -> BG-DG wait_before vs BG-1: %+.0f%% "
                    "(paper: +41%%, more commands ready)\n",
                    100.0 * (dg_waitb / bg1_waitb - 1.0));
    }
    std::printf("Shape: flash processing is a small share of the "
                "lifetime; waits dominate\nand shrink down the BG "
                "ladder.\n");
    return 0;
}
