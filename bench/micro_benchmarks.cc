/**
 * @file
 * Component microbenchmarks (google-benchmark): event-queue
 * throughput, DirectGraph construction, section decode, die-sampler
 * execution, systolic estimation and end-to-end mini-batch prep.
 * These guard against performance regressions of the simulator
 * itself (not of the modelled system).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>

#include "directgraph/builder.h"
#include "directgraph/source.h"
#include "engines/die_sampler.h"
#include "graph/generator.h"
#include "platforms/runner.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"

using namespace beacongnn;

namespace {

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t fired = 0;
        for (int i = 0; i < 10000; ++i)
            q.schedule(static_cast<sim::Tick>((i * 37) % 1000),
                       [&fired] { ++fired; });
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

/**
 * Replica of the pre-InlineCallback event kernel (std::function
 * callbacks in a std::priority_queue, full Event copy on every pop)
 * so BM_EventKernel* measures the SBO + move-out win on the same
 * machine and workload.
 */
class StdFunctionEventQueue
{
  public:
    void
    schedule(sim::Tick delay, std::function<void()> fn)
    {
        events.push(Event{now + delay, seq++, std::move(fn)});
    }

    void
    run()
    {
        while (!events.empty()) {
            Event ev = events.top();
            events.pop();
            now = ev.when;
            ev.fn();
        }
    }

  private:
    struct Event
    {
        sim::Tick when;
        std::uint64_t order;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.order > b.order;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> events;
    sim::Tick now = 0;
    std::uint64_t seq = 0;
};

/**
 * The realistic event capture: a component pointer plus a few words
 * of payload (32 bytes). Too big for libstdc++'s 16-byte
 * std::function buffer (heap per schedule), comfortably inside
 * InlineCallback's 64 bytes (no heap).
 */
template <typename Queue>
void
eventKernelWorkload(Queue &q, std::uint64_t *acc)
{
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t a = static_cast<std::uint64_t>(i);
        std::uint64_t b = a * 3;
        std::uint64_t c = a ^ 0xBEAC0;
        q.schedule(static_cast<sim::Tick>((i * 37) % 1000),
                   [acc, a, b, c] { *acc += a + b + c; });
    }
    q.run();
}

void
BM_EventKernelStdFunction(benchmark::State &state)
{
    for (auto _ : state) {
        StdFunctionEventQueue q;
        std::uint64_t acc = 0;
        eventKernelWorkload(q, &acc);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventKernelStdFunction);

void
BM_EventKernelInlineCallback(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t acc = 0;
        eventKernelWorkload(q, &acc);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventKernelInlineCallback);

/**
 * Event loop in the instrumentation pattern the simulator uses:
 * references resolved from the registry once per session (outside the
 * hot path), plain add() calls inside event callbacks. The raw-uint64
 * variant is the pre-MetricRegistry baseline; checkRegistryOverhead()
 * in main() asserts the delta stays under 5%.
 */
std::uint64_t
eventLoopRegistryOff()
{
    sim::EventQueue q;
    std::uint64_t fired = 0, ticks = 0;
    for (int i = 0; i < 10000; ++i) {
        sim::Tick d = static_cast<sim::Tick>((i * 37) % 1000);
        q.schedule(d, [&fired, &ticks, d] {
            ++fired;
            ticks += d;
        });
    }
    q.run();
    return fired + ticks;
}

std::uint64_t
eventLoopRegistryOn(sim::MetricRegistry &reg)
{
    sim::EventQueue q;
    // Synthetic probes of the overhead microbenchmark, not real
    // instruments — deliberately outside the §10 namespace so they
    // can never collide with a component name.
    sim::Counter &fired =
        reg.counter("bench.events_fired"); // bgnlint:allow(BGN004)
    sim::Counter &ticks =
        reg.counter("bench.event_ticks"); // bgnlint:allow(BGN004)
    for (int i = 0; i < 10000; ++i) {
        sim::Tick d = static_cast<sim::Tick>((i * 37) % 1000);
        q.schedule(d, [&fired, &ticks, d] {
            fired.add(1);
            ticks.add(d);
        });
    }
    q.run();
    return fired.value() + ticks.value();
}

void
BM_EventLoopRegistryOff(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(eventLoopRegistryOff());
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoopRegistryOff);

void
BM_EventLoopRegistryOn(benchmark::State &state)
{
    for (auto _ : state) {
        sim::MetricRegistry reg;
        benchmark::DoNotOptimize(eventLoopRegistryOn(reg));
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoopRegistryOn);

graph::Graph &
benchGraph()
{
    static graph::Graph g = [] {
        graph::GeneratorParams p;
        p.nodes = 20000;
        p.avgDegree = 64;
        p.maxDegree = 20000;
        return graph::generatePowerLaw(p);
    }();
    return g;
}

void
BM_DirectGraphBuild(benchmark::State &state)
{
    flash::FlashConfig cfg;
    graph::FeatureTable feat(128, 1);
    ssd::Ftl ftl(cfg);
    auto blocks = ftl.reserveBlocks(512);
    for (auto _ : state) {
        auto layout = dg::buildLayout(benchGraph(), feat, cfg, blocks);
        benchmark::DoNotOptimize(layout.pages.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            benchGraph().numNodes());
}
BENCHMARK(BM_DirectGraphBuild);

void
BM_SectionDecode(benchmark::State &state)
{
    std::vector<std::uint8_t> page(4096, 0);
    std::vector<dg::SecondaryRef> secs = {{dg::DgAddress(9, 1), 500}};
    std::vector<std::uint8_t> feat(256, 7);
    std::vector<dg::DgAddress> nbrs;
    for (std::uint32_t i = 0; i < 500; ++i)
        nbrs.emplace_back(i, i % 16);
    dg::encodePrimary(page, 1, 1000, secs, feat, nbrs);
    for (auto _ : state) {
        auto sec = dg::decodeSection(page, 0, 128);
        benchmark::DoNotOptimize(sec->neighborAddrs.size());
    }
}
BENCHMARK(BM_SectionDecode);

void
BM_DieSampler(benchmark::State &state)
{
    flash::FlashConfig cfg;
    graph::FeatureTable feat(128, 1);
    ssd::Ftl ftl(cfg);
    auto blocks = ftl.reserveBlocks(512);
    auto layout = dg::buildLayout(benchGraph(), feat, cfg, blocks);
    dg::LayoutSource src(layout, benchGraph());
    ssd::EngineConfig ecfg;
    flash::GnnGlobalConfig gcfg;
    engines::DieSampler sampler(ecfg, gcfg);
    std::uint64_t node = 0;
    for (auto _ : state) {
        flash::GnnSampleParams p;
        dg::DgAddress a = layout.primaryOf(
            static_cast<graph::NodeId>(node++ % 20000));
        p.ppa = a.page();
        p.sectionIndex = static_cast<std::uint8_t>(a.section());
        p.sampleCount = 3;
        p.retrieveFeature = true;
        auto r = sampler.execute(src.fetch(a), p);
        benchmark::DoNotOptimize(r.follow.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DieSampler);

void
BM_SystolicEstimate(benchmark::State &state)
{
    accel::SystolicConfig cfg;
    for (auto _ : state) {
        auto e = accel::estimateGemm(cfg, gnn::GemmShape{5120, 128, 602});
        benchmark::DoNotOptimize(e.cycles);
    }
}
BENCHMARK(BM_SystolicEstimate);

void
BM_MiniBatchPrepBg2(benchmark::State &state)
{
    gnn::ModelConfig model;
    model.hops = 3;
    model.fanout = 3;
    ssd::SystemConfig sys;
    auto spec = graph::workload("amazon");
    spec.simNodes = 10000;
    static auto bundle_ptr =
        platforms::makeBundle(spec, sys.flash, model);
    const platforms::WorkloadBundle &bundle = *bundle_ptr;
    platforms::RunConfig rc;
    rc.batchSize = 64;
    rc.batches = 1;
    auto p = platforms::makePlatform(platforms::PlatformKind::BG2);
    for (auto _ : state) {
        auto r = platforms::runPlatform(p, rc, bundle);
        benchmark::DoNotOptimize(r.totalTime);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MiniBatchPrepBg2);

/**
 * Direct timing check backing the <5% instrumentation budget: min of
 * @p reps wall-clock runs per variant (min-of-k discards scheduler
 * noise; both variants suffer it equally). Nonzero overhead here is
 * counter indirection only — name lookup happens once per session.
 */
bool
checkRegistryOverhead()
{
    constexpr int kReps = 15, kRunsPerRep = 10;
    constexpr double kBudget = 0.05;
    using clock = std::chrono::steady_clock;
    auto timeMin = [&](auto &&body) {
        double best = 1e300;
        for (int r = 0; r < kReps; ++r) {
            auto t0 = clock::now();
            for (int i = 0; i < kRunsPerRep; ++i)
                body();
            best = std::min(
                best, std::chrono::duration<double>(clock::now() - t0)
                          .count());
        }
        return best;
    };
    // Warm both paths (page-in, branch predictors) before timing.
    std::uint64_t sink = eventLoopRegistryOff();
    {
        sim::MetricRegistry reg;
        sink += eventLoopRegistryOn(reg);
    }
    benchmark::DoNotOptimize(sink);

    double off = timeMin([] {
        benchmark::DoNotOptimize(eventLoopRegistryOff());
    });
    double on = timeMin([] {
        sim::MetricRegistry reg;
        benchmark::DoNotOptimize(eventLoopRegistryOn(reg));
    });
    double overhead = on / off - 1.0;
    std::printf("registry overhead: %+.2f%% (off %.3f ms, on %.3f ms, "
                "min of %d; budget %.0f%%)\n",
                100.0 * overhead, 1e3 * off, 1e3 * on, kReps,
                100.0 * kBudget);
    if (overhead > kBudget) {
        std::fprintf(stderr,
                     "FAIL: metric-registry overhead %.2f%% exceeds "
                     "the %.0f%% budget\n",
                     100.0 * overhead, 100.0 * kBudget);
        return false;
    }
    return true;
}

/** The BM_EventQueue workload, optionally with a validator armed.
 *  The validator is constructed either way (it is per-run state —
 *  pop monotonicity would trip across queue lifetimes otherwise), so
 *  the two variants differ only in the attachment. */
std::uint64_t
eventLoopValidator(bool armed)
{
    sim::Validator v(1, 0);
    sim::EventQueue q;
    if (armed)
        q.setValidator(&v, 0);
    std::uint64_t fired = 0, ticks = 0;
    for (int i = 0; i < 10000; ++i) {
        sim::Tick d = static_cast<sim::Tick>((i * 37) % 1000);
        q.schedule(d, [&fired, &ticks, d] {
            ++fired;
            ticks += d;
        });
    }
    q.run();
    return fired * 1000003u + ticks;
}

/**
 * Checked-build cost contract (DESIGN.md §16): with BGN_CHECKED=OFF
 * the validator hooks are compiled out, so attaching a validator to
 * an event queue must be byte-neutral (identical loop result) and
 * timing-neutral (same <5% budget discipline as the registry check).
 * A checked build reports the measured hook overhead but never
 * fails — paying for the assertions is that build's purpose.
 */
bool
checkValidatorOverhead()
{
    constexpr int kReps = 15, kRunsPerRep = 10;
    constexpr double kBudget = 0.05;
    using clock = std::chrono::steady_clock;
    auto timeMin = [&](auto &&body) {
        double best = 1e300;
        for (int r = 0; r < kReps; ++r) {
            auto t0 = clock::now();
            for (int i = 0; i < kRunsPerRep; ++i)
                body();
            best = std::min(
                best, std::chrono::duration<double>(clock::now() - t0)
                          .count());
        }
        return best;
    };
    std::uint64_t plain = eventLoopValidator(false);
    std::uint64_t armed = eventLoopValidator(true);
    if (plain != armed) {
        std::fprintf(stderr,
                     "FAIL: validator attachment changed the event "
                     "loop result (%llu vs %llu)\n",
                     static_cast<unsigned long long>(plain),
                     static_cast<unsigned long long>(armed));
        return false;
    }
    double off = timeMin([] {
        benchmark::DoNotOptimize(eventLoopValidator(false));
    });
    double on = timeMin([] {
        benchmark::DoNotOptimize(eventLoopValidator(true));
    });
    double overhead = on / off - 1.0;
    std::printf("validator overhead (%s build): %+.2f%% (plain %.3f "
                "ms, armed %.3f ms, min of %d)\n",
                sim::kCheckedBuild ? "BGN_CHECKED" : "off",
                100.0 * overhead, 1e3 * off, 1e3 * on, kReps);
    if (!sim::kCheckedBuild && overhead > kBudget) {
        std::fprintf(stderr,
                     "FAIL: compiled-out validator hooks cost %.2f%% "
                     "— an OFF build must be timing-neutral "
                     "(budget %.0f%%)\n",
                     100.0 * overhead, 100.0 * kBudget);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bool registryOk = checkRegistryOverhead();
    bool validatorOk = checkValidatorOverhead();
    return (registryOk && validatorOk) ? 0 : 1;
}
