/**
 * @file
 * Figure 14: normalized GNN training throughput of all eight
 * platforms on the five workloads, normalized to the CPU-centric
 * baseline. Also prints the Table II system configuration and the
 * Table III workload parameters the run uses.
 *
 * Paper reference points (averages over the five workloads):
 *   SmartSage 2.11x, GLIST 1.42x, BG-1 2.35x,
 *   BG-SP = 5.47x over BG-1, BG-DGSP = +20% over BG-SP (w/ DG),
 *   BG-2 = +41% over BG-DGSP, overall 21.70x (up to 27.3x).
 */

#include "common.h"

using namespace bench;

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    banner("Figure 14: normalized throughput (baseline = CC)");

    ssd::SystemConfig sys;
    std::printf("Table II system: %u channels x %u dies, %u KB pages, "
                "tR=%.0f us, %.0f MB/s/channel,\n"
                "  %u cores, DRAM %.1f GB/s, PCIe %.1f GB/s, "
                "SSD accel 32x32 @0.5 GHz, TPU 128x128 @0.94 GHz\n",
                sys.flash.channels, sys.flash.diesPerChannel,
                sys.flash.pageSize / 1024,
                sim::toMicros(sys.flash.readLatency),
                sys.flash.channelMBps, sys.controller.cores,
                sys.controller.dramMBps / 1000.0,
                sys.host.pcieMBps / 1000.0);
    rule();

    std::printf("Table III workloads (synthetic stand-ins, DESIGN.md "
                "section 1):\n");
    std::printf("%-10s %9s %8s %8s %10s\n", "dataset", "sim-nodes",
                "avg-deg", "featdim", "paper-GB");
    for (const auto &name : workloadNames()) {
        const auto &s = graph::workload(name);
        std::printf("%-10s %9u %8.0f %8u %10.1f\n", s.name.c_str(),
                    s.simNodes, s.avgDegree, s.featureDim, s.paperRawGB);
    }
    rule();

    RunConfig rc = defaultRun();
    std::printf("%-10s", "platform");
    for (const auto &w : workloadNames())
        std::printf(" %9s", w.c_str());
    std::printf(" %9s %9s\n", "mean", "paper");

    // Paper-reported mean normalized throughputs (Fig. 14 text).
    std::map<PlatformKind, double> paper_mean = {
        {PlatformKind::CC, 1.0},        {PlatformKind::SmartSage, 2.11},
        {PlatformKind::GLIST, 1.42},    {PlatformKind::BG1, 2.35},
        {PlatformKind::BG_DG, 2.49},    {PlatformKind::BG_SP, 12.85},
        {PlatformKind::BG_DGSP, 15.42}, {PlatformKind::BG2, 21.70},
    };

    const auto &kinds = platforms::allPlatforms();
    const std::size_t nw = workloadNames().size();
    auto results = runGrid(kinds, workloadNames(), rc);

    std::map<std::string, double> cc_thr;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        auto p = platforms::makePlatform(kinds[k]);
        std::printf("%-10s", p.name.c_str());
        double geo = 0;
        for (std::size_t w = 0; w < nw; ++w) {
            const RunResult &r = results[k * nw + w];
            if (kinds[k] == PlatformKind::CC)
                cc_thr[workloadNames()[w]] = r.throughput;
            double norm = r.throughput / cc_thr[workloadNames()[w]];
            std::printf(" %9.2f", norm);
            geo += norm;
        }
        geo /= static_cast<double>(nw);
        std::printf(" %9.2f %9.2f\n", geo, paper_mean[kinds[k]]);
    }
    rule();
    std::printf("Shape targets: every BG-X step improves on its base; "
                "SmartSage > GLIST;\nBG-SP is the largest single jump; "
                "BG-2 is best overall.\n");
    return 0;
}
