/**
 * @file
 * Online serving: latency-vs-load curves for CC vs BG-2.
 *
 * Sweeps an open-loop Poisson arrival stream over a ladder of offered
 * rates on both platforms and prints, per platform, the throughput,
 * mean/p50/p95/p99 latency and SLO-violation curve — showing where
 * each platform saturates. The same rows land in
 * results/serve_latency.csv for external plotting, and the binary's
 * wall-clock lands in results/bench_timing.json via the shared
 * timing hook.
 *
 * The paper evaluates offline throughput only; this is the serving
 * view of the same hardware gap: CC's host-centric prep path caps
 * its service rate an order of magnitude below BG-2's in-storage
 * pipeline, so its latency curve lifts off at a far lower load.
 */

#include "common.h"

#include "serve/report.h"
#include "serve/serve.h"

using namespace bench;
using namespace beacongnn::serve;

int
main(int argc, char **argv)
{
    parseJobs(argc, argv);
    std::filesystem::create_directories("results");
    TimingLog timing("serve_latency");

    banner("Serving: latency vs offered load, amazon, CC vs BG-2");

    const std::vector<PlatformKind> kinds = {PlatformKind::CC,
                                             PlatformKind::BG2};
    const std::vector<double> rates = {1000,  2000,  5000,   10000,
                                       20000, 50000, 100000, 200000};

    ServeConfig sc;
    sc.arrivals.requests = 192;
    sc.arrivals.seed = 0x5EED;
    sc.policy.maxBatch = 32;
    sc.policy.timeout = sim::microseconds(200);

    RunConfig rc = defaultRun();
    const WorkloadBundle &b = bundle("amazon");

    Stopwatch sw;
    const std::size_t nr = rates.size();
    auto results = parallelMap<ServeResult>(
        kinds.size() * nr, [&](std::size_t i) {
            ServeConfig point = sc;
            point.arrivals.ratePerSec = rates[i % nr];
            return serveWorkload(platforms::makePlatform(kinds[i / nr]),
                                 rc, b, point);
        });
    timing.section("serve_grid", sw.seconds());

    std::ofstream csv("results/serve_latency.csv");
    writeServeCsvHeader(csv);

    std::vector<double> sustained;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        std::vector<ServeResult> curve(results.begin() + k * nr,
                                       results.begin() + (k + 1) * nr);
        std::printf("\n%s on amazon (poisson, %llu requests, max "
                    "batch %u, timeout %llu us)\n",
                    curve.front().platform.c_str(),
                    static_cast<unsigned long long>(
                        sc.arrivals.requests),
                    sc.policy.maxBatch,
                    static_cast<unsigned long long>(sc.policy.timeout /
                                                    1000));
        printRateHeader();
        for (const ServeResult &r : curve) {
            printRateRow(r);
            writeServeCsvRow(csv, r);
        }
        sustained.push_back(printSaturation(curve));
    }

    std::printf("\nShape: CC's latency curve lifts off an order of "
                "magnitude below BG-2's;\nbeyond saturation the "
                "open-loop queue grows without bound and tail\n"
                "latency is set by the backlog, not the pipeline.\n");
    std::printf("Wrote results/serve_latency.csv\n");
    timing.write();

    // The serving claim of the whole exercise: the in-storage
    // pipeline sustains strictly more open-loop load than the
    // CPU-centric baseline.
    if (sustained.size() == 2 && sustained[1] <= sustained[0]) {
        std::printf("FAIL: BG-2 sustained rate (%.0f) <= CC (%.0f)\n",
                    sustained[1], sustained[0]);
        return 1;
    }
    return 0;
}
