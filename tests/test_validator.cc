/**
 * @file
 * sim::Validator tests (DESIGN.md §16): the checked-build causality
 * and lane-ownership assertions. The Validator class is compiled in
 * every build, so the death tests drive it directly and hold in OFF
 * builds too; the wiring tests prove the EventQueue/Mailbox hooks
 * actually fire, and therefore only run when kCheckedBuild is true.
 * Each seeded negative is one invariant of the conservative parallel
 * simulator: no past schedules, lookahead-stamped mailbox posts,
 * window-scoped thread ownership, monotone in-window pops.
 */

#include <gtest/gtest.h>

#include <thread>

#include "sim/event_queue.h"
#include "sim/mailbox.h"
#include "sim/validator.h"

namespace {

using beacongnn::sim::EventQueue;
using beacongnn::sim::kCheckedBuild;
using beacongnn::sim::kTickMax;
using beacongnn::sim::Mailbox;
using beacongnn::sim::Tick;
using beacongnn::sim::Validator;

// ==================================================================
// Compliant protocol: nothing aborts, every hook is counted.
// ==================================================================

TEST(Validator, CompliantWindowSequenceRunsClean)
{
    Validator v(2, 10);
    EXPECT_EQ(v.stations(), 2u);
    EXPECT_EQ(v.lookahead(), 10u);
    EXPECT_FALSE(v.windowActive());

    v.windowOpen(0, 99);
    EXPECT_TRUE(v.windowActive());
    v.claimStation(0);
    v.onSchedule(0, 50, 20);
    v.onPop(0, 20);
    v.onPop(0, 20); // Equal timestamps are fine (FIFO at a tick).
    v.onMailboxPost(0, 1, 110, 99);
    v.onTouch(0, "engine");
    v.releaseStation(0);
    v.windowClose();
    EXPECT_FALSE(v.windowActive());
    EXPECT_EQ(v.checks(), 9u); // One per protocol call and hook.
}

TEST(Validator, TouchesBetweenWindowsAreSerializedByTheDriver)
{
    // With no window open the driver protocol guarantees exclusivity,
    // so ownership checks pass from any thread.
    Validator v(1, 1);
    v.onTouch(0, "drain");
    v.onSchedule(0, 5, 0);
    v.onPop(0, 5);
    EXPECT_EQ(v.checks(), 3u);
}

// ==================================================================
// Seeded negatives: each invariant aborts with context.
// ==================================================================

TEST(ValidatorDeath, SchedulingIntoTheQueuesPastAborts)
{
    Validator v(1, 1);
    EXPECT_DEATH(v.onSchedule(0, 5, 10),
                 "scheduled into the queue's past");
}

TEST(ValidatorDeath, ShortLookaheadMailboxPostAborts)
{
    Validator v(2, 10);
    // Stamped 9 ticks out; the window protocol needs >= 10.
    EXPECT_DEATH(v.onMailboxPost(0, 1, 14, 5),
                 "under the lookahead horizon");
}

TEST(ValidatorDeath, MailboxStampBeforeSenderClockAborts)
{
    Validator v(2, 1);
    EXPECT_DEATH(v.onMailboxPost(0, 1, 4, 5),
                 "under the lookahead horizon");
}

TEST(ValidatorDeath, ForeignThreadTouchAborts)
{
    EXPECT_DEATH(
        {
            Validator v(1, 1);
            v.windowOpen(0, 100);
            std::thread claimer([&v] { v.claimStation(0); });
            claimer.join();
            v.onTouch(0, "engine"); // Not the claiming thread.
        },
        "foreign-thread touch");
}

TEST(ValidatorDeath, UnclaimedTouchInsideAWindowAborts)
{
    EXPECT_DEATH(
        {
            Validator v(1, 1);
            v.windowOpen(0, 100);
            v.onTouch(0, "engine");
        },
        "unclaimed station inside a window");
}

TEST(ValidatorDeath, BackwardsPopAborts)
{
    EXPECT_DEATH(
        {
            Validator v(1, 1);
            v.windowOpen(0, 100);
            v.claimStation(0);
            v.onPop(0, 20);
            v.onPop(0, 10);
        },
        "went backwards in time");
}

TEST(ValidatorDeath, PopOutsideTheOpenWindowAborts)
{
    EXPECT_DEATH(
        {
            Validator v(1, 1);
            v.windowOpen(50, 100);
            v.claimStation(0);
            v.onPop(0, 10);
        },
        "outside the open window");
}

TEST(ValidatorDeath, DoubleClaimAborts)
{
    EXPECT_DEATH(
        {
            Validator v(1, 1);
            v.windowOpen(0, 100);
            v.claimStation(0);
            v.claimStation(0);
        },
        "already claimed");
}

TEST(ValidatorDeath, WindowCloseWithAClaimedStationAborts)
{
    EXPECT_DEATH(
        {
            Validator v(1, 1);
            v.windowOpen(0, 100);
            v.claimStation(0);
            v.windowClose();
        },
        "still claimed at window close");
}

// ==================================================================
// Wiring: the hot-path hooks actually reach the validator. These
// only exist in BGN_CHECKED builds — OFF builds compile them out
// (that's the point), so the tests skip themselves there.
// ==================================================================

TEST(ValidatorWiring, EventQueuePastScheduleAborts)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "hooks compiled out (BGN_CHECKED=OFF)";
    EXPECT_DEATH(
        {
            EventQueue q;
            Validator v(1, 1);
            q.setValidator(&v, 0);
            q.scheduleAt(10, [] {});
            q.run(); // Clock now at 10.
            q.scheduleAt(5, [] {});
        },
        "scheduled into the queue's past");
}

TEST(ValidatorWiring, MailboxShortStampAborts)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "hooks compiled out (BGN_CHECKED=OFF)";
    EXPECT_DEATH(
        {
            Mailbox<int> mb(2);
            Validator v(2, 5);
            mb.setValidator(&v);
            mb.post(1, 7, /*when=*/3, /*src=*/0, /*srcNow=*/0);
        },
        "under the lookahead horizon");
}

TEST(ValidatorWiring, CompliantTrafficIsSilentInEveryBuild)
{
    // The checked post/schedule paths with legal stamps never abort,
    // whatever the build; in checked builds they are also counted.
    EventQueue q;
    Mailbox<int> mb(2);
    Validator v(2, 5);
    q.setValidator(&v, 0);
    mb.setValidator(&v);
    q.scheduleAt(10, [] {});
    EXPECT_EQ(q.run(), 10u);
    mb.post(1, 7, /*when=*/15, /*src=*/0, /*srcNow=*/10);
    if (kCheckedBuild)
        EXPECT_GT(v.checks(), 0u);
    else
        EXPECT_EQ(v.checks(), 0u);
}

} // namespace
