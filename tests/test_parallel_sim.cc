/**
 * @file
 * Conservative parallel simulation tests (DESIGN.md §13): the
 * sim::Mailbox / SpinBarrier / ParallelSimulator primitives, the
 * EventQueue bulk-schedule fast path, and — the property the whole
 * design exists for — byte-identical metrics JSON and CSV from
 * multi-device array runs regardless of the worker count, including
 * the zero-lookahead edge case and a partition policy that maximizes
 * cross-device traffic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "platforms/array.h"
#include "platforms/report.h"
#include "sim/executor.h"
#include "sim/mailbox.h"
#include "sim/metrics.h"
#include "sim/parallel_sim.h"
#include "sim/trace_events.h"

namespace {

using namespace beacongnn;

// ==================================================================
// Mailbox.
// ==================================================================

TEST(Mailbox, PostDrainAndPostedCount)
{
    sim::Mailbox<int> mb(3);
    EXPECT_EQ(mb.stations(), 3u);
    mb.post(1, 10);
    mb.post(1, 20);
    mb.post(2, 30);
    EXPECT_EQ(mb.posted(1), 2u);
    EXPECT_EQ(mb.posted(2), 1u);

    std::vector<int> got = mb.drain(1);
    std::vector<int> want = {10, 20};
    EXPECT_EQ(got, want); // FIFO per destination.
    EXPECT_TRUE(mb.drain(1).empty());
    EXPECT_EQ(mb.posted(1), 2u); // posted() is a lifetime tally.
    EXPECT_TRUE(mb.drain(0).empty());
}

TEST(Mailbox, ConcurrentPostsAllArrive)
{
    sim::Mailbox<unsigned> mb(1);
    constexpr unsigned kThreads = 4, kEach = 500;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t)
        ts.emplace_back([&mb, t] {
            for (unsigned i = 0; i < kEach; ++i)
                mb.post(0, t * kEach + i);
        });
    for (auto &t : ts)
        t.join();
    std::vector<unsigned> all = mb.drain(0);
    ASSERT_EQ(all.size(), std::size_t{kThreads} * kEach);
    std::sort(all.begin(), all.end());
    for (unsigned i = 0; i < kThreads * kEach; ++i)
        EXPECT_EQ(all[i], i);
}

// ==================================================================
// SpinBarrier.
// ==================================================================

TEST(SpinBarrier, RoundsNeverOverlap)
{
    constexpr unsigned kParties = 4, kRounds = 200;
    sim::SpinBarrier barrier(kParties);
    std::atomic<unsigned> in_round{0};
    std::atomic<bool> overlap{false};
    std::vector<std::thread> ts;
    for (unsigned p = 0; p < kParties; ++p)
        ts.emplace_back([&] {
            for (unsigned r = 0; r < kRounds; ++r) {
                in_round.fetch_add(1);
                barrier.arriveAndWait();
                // Everyone from round r has arrived before anyone
                // proceeds; a later arrival from round r would mean
                // the barrier released early.
                if (in_round.load() < kParties * (r + 1))
                    overlap.store(true);
                barrier.arriveAndWait();
            }
        });
    for (auto &t : ts)
        t.join();
    EXPECT_FALSE(overlap.load());
    EXPECT_EQ(in_round.load(), kParties * kRounds);
}

// ==================================================================
// EventQueue::bulkScheduleAt.
// ==================================================================

TEST(BulkSchedule, MatchesIndividualSchedulesIncludingTies)
{
    // The same (when, insertion-order) stream through scheduleAt and
    // through bulkScheduleAt must execute identically — including the
    // heap-rebuild fast path, which the large batch below triggers.
    std::vector<std::pair<sim::Tick, int>> plan;
    for (int i = 0; i < 40; ++i)
        plan.emplace_back(static_cast<sim::Tick>((i * 7) % 10), i);

    auto execute = [&](bool bulk) {
        sim::EventQueue q;
        std::vector<int> order;
        q.scheduleAt(5, [&order] { order.push_back(-1); });
        if (bulk) {
            std::vector<sim::EventQueue::TimedEvent> batch;
            for (auto &[when, id] : plan) {
                int v = id;
                batch.push_back(
                    {when, [&order, v] { order.push_back(v); }});
            }
            q.bulkScheduleAt(std::move(batch));
        } else {
            for (auto &[when, id] : plan) {
                int v = id;
                q.scheduleAt(when, [&order, v] { order.push_back(v); });
            }
        }
        q.run();
        return order;
    };

    std::vector<int> a = execute(false), b = execute(true);
    ASSERT_EQ(a.size(), plan.size() + 1);
    EXPECT_EQ(a, b);
}

// ==================================================================
// ParallelSimulator on a synthetic station ring.
// ==================================================================

/**
 * N stations in a ring; every handled message is logged and forwarded
 * to the next station one lookahead later, until its hop budget runs
 * out. The executed log stream is the determinism witness.
 */
struct MiniRing
{
    struct Msg
    {
        sim::Tick when = 0;
        unsigned src = 0;
        std::uint64_t seq = 0;
        unsigned hops = 0;
    };

    sim::Tick lookahead;
    std::vector<std::unique_ptr<sim::EventQueue>> queues;
    sim::Mailbox<Msg> mailbox;
    std::vector<std::uint64_t> seq;
    std::vector<std::vector<std::pair<sim::Tick, std::uint64_t>>> logs;

    MiniRing(unsigned n, sim::Tick la)
        : lookahead(la), mailbox(n), seq(n, 0), logs(n)
    {
        for (unsigned i = 0; i < n; ++i)
            queues.push_back(std::make_unique<sim::EventQueue>());
        for (unsigned i = 0; i < n; ++i) {
            Msg m{/*when=*/i + 1, i, seq[i]++, /*hops=*/24};
            queues[i]->scheduleAt(
                m.when, [this, i, m] { handle(i, m); });
        }
    }

    void
    handle(unsigned d, const Msg &m)
    {
        logs[d].emplace_back(m.when, (std::uint64_t{m.src} << 32) |
                                         m.seq);
        if (m.hops == 0)
            return;
        unsigned dst = (d + 1) % static_cast<unsigned>(queues.size());
        // Conservative stamp: at least one lookahead in the future
        // (a zero lookahead degenerates to same-tick rounds).
        mailbox.post(dst, Msg{queues[d]->now() + lookahead, d,
                              seq[d]++, m.hops - 1});
    }

    std::size_t
    drain(unsigned d)
    {
        std::vector<Msg> msgs = mailbox.drain(d);
        std::sort(msgs.begin(), msgs.end(),
                  [](const Msg &a, const Msg &b) {
                      return std::tie(a.when, a.src, a.seq) <
                             std::tie(b.when, b.src, b.seq);
                  });
        std::vector<sim::EventQueue::TimedEvent> batch;
        batch.reserve(msgs.size());
        for (const Msg &m : msgs)
            batch.push_back({m.when, [this, d, m] { handle(d, m); }});
        queues[d]->bulkScheduleAt(std::move(batch));
        return msgs.size();
    }

    sim::Tick
    run(unsigned jobs)
    {
        std::vector<sim::SimStation> stations;
        for (unsigned d = 0;
             d < static_cast<unsigned>(queues.size()); ++d)
            stations.push_back(
                {queues[d].get(), [this, d] { return drain(d); }});
        sim::ParallelSimulator psim(std::move(stations), lookahead,
                                    jobs);
        sim::Tick end = psim.run();
        EXPECT_GT(psim.windows(), 0u);
        EXPECT_GE(psim.lastJobs(), 1u);
        return end;
    }
};

TEST(ParallelSim, RingLogsIdenticalAcrossWorkerCounts)
{
    MiniRing a(4, sim::microseconds(1));
    sim::Tick ta = a.run(/*jobs=*/1);
    MiniRing b(4, sim::microseconds(1));
    sim::Tick tb = b.run(/*jobs=*/3);
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(a.logs, b.logs);
    // Every seeded message visited all 25 stations of its walk.
    std::size_t total = 0;
    for (const auto &l : a.logs)
        total += l.size();
    EXPECT_EQ(total, 4u * 25u);
}

TEST(ParallelSim, ZeroLookaheadSerializesWithoutDeadlock)
{
    MiniRing a(3, 0);
    sim::Tick ta = a.run(1);
    MiniRing b(3, 0);
    sim::Tick tb = b.run(4);
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(a.logs, b.logs);
}

TEST(ParallelSim, EmptyStationsQuiesceImmediately)
{
    sim::EventQueue q;
    sim::ParallelSimulator psim({{&q, [] { return std::size_t{0}; }}},
                                sim::microseconds(1), 2);
    EXPECT_EQ(psim.run(), 0u);
}

// ==================================================================
// End-to-end: multi-device array runs are byte-identical across
// worker counts (metrics JSON, CSV row and Chrome trace).
// ==================================================================

struct ArrayRig
{
    std::unique_ptr<platforms::WorkloadBundle> bundle;
    platforms::RunConfig rc;

    ArrayRig()
    {
        gnn::ModelConfig model;
        ssd::SystemConfig sys;
        auto spec = graph::workload("amazon");
        spec.simNodes = 4000;
        bundle = platforms::makeBundle(spec, sys.flash, model);
        rc.batchSize = 32;
        rc.batches = 2;
    }

    ~ArrayRig() { sim::SimExecutor::setDefaultJobs(0); }

    /** metrics JSON + CSV row + trace of one run at @p jobs. */
    struct Fingerprint
    {
        std::string json, csv, trace;
        std::uint64_t crossDevice = 0;
        bool ok = false;

        bool
        operator==(const Fingerprint &o) const
        {
            return json == o.json && csv == o.csv &&
                   trace == o.trace && crossDevice == o.crossDevice;
        }
    };

    Fingerprint
    run(const platforms::ArrayConfig &acfg, unsigned jobs)
    {
        sim::SimExecutor::setDefaultJobs(jobs);
        sim::TraceSink sink;
        platforms::RunConfig traced = rc;
        traced.traceSink = &sink;
        sim::MetricRegistry reg;
        auto r = platforms::runArray(acfg, traced, *bundle, &reg);
        Fingerprint fp;
        fp.ok = r.ok;
        fp.crossDevice = r.crossDevice;
        std::ostringstream json, csv, trace;
        reg.writeJson(json);
        platforms::writeCsvRow(csv, r.run);
        sink.write(trace);
        fp.json = json.str();
        fp.csv = csv.str();
        fp.trace = trace.str();
        return fp;
    }
};

TEST(ArrayDeterminism, TwoDevicesByteIdenticalAcrossJobCounts)
{
    ArrayRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 2;
    auto j1 = rig.run(acfg, 1);
    auto j2 = rig.run(acfg, 2);
    auto j8 = rig.run(acfg, 8);
    EXPECT_TRUE(j1.ok);
    EXPECT_FALSE(j1.json.empty());
    EXPECT_FALSE(j1.trace.empty());
    EXPECT_EQ(j1, j2);
    EXPECT_EQ(j1, j8);
}

TEST(ArrayDeterminism, EightDevicesByteIdenticalAcrossJobCounts)
{
    ArrayRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 8;
    auto j1 = rig.run(acfg, 1);
    auto j2 = rig.run(acfg, 2);
    auto j8 = rig.run(acfg, 8);
    EXPECT_TRUE(j1.ok);
    EXPECT_GT(j1.crossDevice, 0u);
    EXPECT_EQ(j1, j2);
    EXPECT_EQ(j1, j8);
}

TEST(ArrayDeterminism, ZeroP2pLatencyStillTerminatesAndMatches)
{
    // lookahead = p2pLatency = 0: the simulator degenerates to
    // serialized tick-stepped windows — slower, never wrong.
    ArrayRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 4;
    acfg.p2pLatency = 0;
    auto j1 = rig.run(acfg, 1);
    auto j4 = rig.run(acfg, 4);
    EXPECT_TRUE(j1.ok);
    EXPECT_EQ(j1, j4);
}

TEST(ArrayDeterminism, RangePartitionCrossDeviceStressMatches)
{
    // Range partition on a hub-heavy graph maximizes cross-device
    // forwarding, so the mailbox path carries most of the traffic.
    ArrayRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 8;
    acfg.partition = platforms::PartitionPolicy::Range;
    auto j1 = rig.run(acfg, 1);
    auto j8 = rig.run(acfg, 8);
    EXPECT_TRUE(j1.ok);
    EXPECT_GT(j1.crossDevice, 0u);
    EXPECT_EQ(j1, j8);
}

TEST(ArrayDeterminism, SingleDeviceUnaffectedByJobOverride)
{
    // devices = 1 never builds the parallel driver; the historical
    // single-queue path must be identical under any jobs setting.
    ArrayRig rig;
    platforms::ArrayConfig acfg;
    acfg.devices = 1;
    auto j1 = rig.run(acfg, 1);
    auto j8 = rig.run(acfg, 8);
    EXPECT_TRUE(j1.ok);
    EXPECT_EQ(j1.crossDevice, 0u);
    EXPECT_EQ(j1, j8);
}

} // namespace
