/**
 * @file
 * Tests for the performance layer: the InlineCallback SBO type, the
 * allocation-free EventQueue pop path, the SimExecutor thread pool,
 * and the determinism guarantee of the parallel bench grid (parallel
 * results identical to serial execution).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "sim/event_queue.h"
#include "sim/executor.h"
#include "sim/inline_callback.h"

using namespace beacongnn;

namespace {

TEST(InlineCallback, InvokesAndEmpties)
{
    int hits = 0;
    sim::InlineCallback cb([&hits] { ++hits; });
    EXPECT_TRUE(static_cast<bool>(cb));
    cb();
    cb();
    EXPECT_EQ(hits, 2);
    cb.reset();
    EXPECT_FALSE(static_cast<bool>(cb));

    sim::InlineCallback empty;
    EXPECT_FALSE(static_cast<bool>(empty));
}

TEST(InlineCallback, MoveOnlyCapture)
{
    auto value = std::make_unique<int>(41);
    int got = 0;
    sim::InlineCallback cb(
        [v = std::move(value), &got] { got = *v + 1; });
    sim::InlineCallback moved = std::move(cb);
    EXPECT_FALSE(static_cast<bool>(cb));
    EXPECT_TRUE(static_cast<bool>(moved));
    moved();
    EXPECT_EQ(got, 42);
}

TEST(InlineCallback, SmallCaptureStaysInline)
{
    struct Small
    {
        std::uint64_t a, b, c, d;
        void operator()() {}
    };
    static_assert(sim::InlineCallback::fitsInline<Small>(),
                  "32-byte captures must not heap-allocate");
}

TEST(InlineCallback, OversizeCaptureFallsBackToHeap)
{
    struct Big
    {
        char blob[128];
        int *out;
        void operator()() { *out = blob[0] + blob[127]; }
    };
    static_assert(!sim::InlineCallback::fitsInline<Big>(),
                  "128-byte captures must take the heap path");

    int out = 0;
    Big big{};
    big.blob[0] = 20;
    big.blob[127] = 22;
    big.out = &out;
    sim::InlineCallback cb(big);
    sim::InlineCallback moved(std::move(cb));
    EXPECT_FALSE(static_cast<bool>(cb));
    moved();
    EXPECT_EQ(out, 42);
}

/** Functor counting constructions and destructions via shared tallies. */
struct Counting
{
    int *ctor;
    int *dtor;
    char pad[48] = {}; // Keep the inline path exercised (<= 64 B).

    Counting(int *c, int *d) : ctor(c), dtor(d) { ++*ctor; }
    Counting(const Counting &o) : ctor(o.ctor), dtor(o.dtor)
    {
        ++*ctor;
    }
    Counting(Counting &&o) noexcept : ctor(o.ctor), dtor(o.dtor)
    {
        ++*ctor;
    }
    ~Counting() { ++*dtor; }
    void operator()() {}
};

TEST(InlineCallback, DestructionCountsBalanceInline)
{
    static_assert(sim::InlineCallback::fitsInline<Counting>());
    int ctor = 0, dtor = 0;
    {
        sim::InlineCallback cb(Counting{&ctor, &dtor});
        sim::InlineCallback moved(std::move(cb));
        moved();
        sim::InlineCallback assigned;
        assigned = std::move(moved);
        assigned();
    }
    EXPECT_GT(ctor, 0);
    EXPECT_EQ(ctor, dtor) << "every constructed functor must be "
                             "destroyed exactly once";
}

TEST(InlineCallback, DestructionCountsBalanceHeap)
{
    struct BigCounting : Counting
    {
        char more[128] = {};
        using Counting::Counting;
        void operator()() {}
    };
    static_assert(!sim::InlineCallback::fitsInline<BigCounting>());
    int ctor = 0, dtor = 0;
    {
        sim::InlineCallback cb(BigCounting{&ctor, &dtor});
        sim::InlineCallback moved(std::move(cb));
        moved();
    }
    EXPECT_GT(ctor, 0);
    EXPECT_EQ(ctor, dtor);
}

TEST(EventQueue, MovesEventsOutInDeterministicOrder)
{
    sim::EventQueue q;
    std::vector<int> order;
    // Same timestamp: insertion order must be preserved; the payload
    // is move-only so any copy in the pop path would not compile.
    for (int i = 0; i < 8; ++i) {
        auto tag = std::make_unique<int>(i);
        q.schedule(5, [t = std::move(tag), &order] {
            order.push_back(*t);
        });
    }
    q.schedule(1, [&order] { order.push_back(-1); });
    q.run();
    ASSERT_EQ(order.size(), 9u);
    EXPECT_EQ(order[0], -1);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i + 1)], i);
}

TEST(EventQueue, ClearReleasesMemoryAndReserveSizes)
{
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i)
        q.schedule(static_cast<sim::Tick>(i), [] {});
    EXPECT_GE(q.capacity(), 1000u);
    q.clear();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.capacity(), 0u) << "clear() must free, not just empty";
    EXPECT_EQ(q.now(), 0u);

    q.reserve(256);
    EXPECT_GE(q.capacity(), 256u);
    int fired = 0;
    q.schedule(3, [&fired] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(SimExecutor, MapReturnsResultsInSubmissionOrder)
{
    sim::SimExecutor ex(4);
    EXPECT_EQ(ex.jobs(), 4u);
    auto out = ex.map<std::size_t>(100, [](std::size_t i) {
        return i * i;
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SimExecutor, RunCoversEveryIndexExactlyOnce)
{
    sim::SimExecutor ex(8);
    std::vector<std::atomic<int>> counts(257);
    ex.run(counts.size(), [&](std::size_t i) { counts[i]++; });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(SimExecutor, DefaultJobsHonorsOverride)
{
    sim::SimExecutor::setDefaultJobs(3);
    EXPECT_EQ(sim::SimExecutor::defaultJobs(), 3u);
    sim::SimExecutor ex;
    EXPECT_EQ(ex.jobs(), 3u);
    sim::SimExecutor::setDefaultJobs(0);
    EXPECT_GE(sim::SimExecutor::defaultJobs(), 1u);
}

/** Field-by-field identity of two RunResults. */
void
expectSameResult(const platforms::RunResult &a,
                 const platforms::RunResult &b)
{
    EXPECT_EQ(a.platform, b.platform);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.targets, b.targets);
    EXPECT_EQ(a.prepTime, b.prepTime);
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.tally.flashReads, b.tally.flashReads);
    EXPECT_EQ(a.tally.channelBytes, b.tally.channelBytes);
    EXPECT_EQ(a.tally.pcieBytes, b.tally.pcieBytes);
    EXPECT_EQ(a.dieUtil, b.dieUtil);
    EXPECT_EQ(a.channelUtil, b.channelUtil);
    EXPECT_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
}

TEST(ParallelGrid, MatchesSerialExecutionExactly)
{
    std::vector<platforms::PlatformKind> kinds = {
        platforms::PlatformKind::CC, platforms::PlatformKind::BG2};
    std::vector<std::string> workloads = {"movielens", "PPI"};
    platforms::RunConfig rc;
    rc.batchSize = 32;
    rc.batches = 2;

    auto serial = bench::runGrid(kinds, workloads, rc, /*jobs=*/1);
    auto parallel = bench::runGrid(kinds, workloads, rc, /*jobs=*/4);

    ASSERT_EQ(serial.size(), kinds.size() * workloads.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].platform + "/" + serial[i].workload);
        expectSameResult(serial[i], parallel[i]);
    }
}

} // namespace
