/**
 * @file
 * Unit tests for the discrete-event kernel, RNG, statistics and
 * analytic resource primitives.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/resources.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace {

using namespace beacongnn::sim;

TEST(Units, TimeConstructors)
{
    EXPECT_EQ(microseconds(3), 3000u);
    EXPECT_EQ(milliseconds(1), 1000000u);
    EXPECT_EQ(seconds(2), 2000000000u);
    EXPECT_DOUBLE_EQ(toMicros(1500), 1.5);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(4)), 4.0);
}

TEST(Units, TransferTime)
{
    // 800 MB/s: 4096 bytes take 5.12 us.
    EXPECT_EQ(transferTime(4096, 800.0), 5120u);
    // Zero bytes, zero time.
    EXPECT_EQ(transferTime(0, 800.0), 0u);
    // Tiny transfers still take at least one tick.
    EXPECT_GE(transferTime(1, 1e9), 1u);
}

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, StableAtEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        q.schedule(5, [&] {
            ++fired;
            EXPECT_EQ(q.now(), 15u);
        });
    });
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, PastSchedulingClamps)
{
    EventQueue q;
    bool ran = false;
    q.schedule(10, [&] {
        q.scheduleAt(3, [&] {
            ran = true;
            EXPECT_EQ(q.now(), 10u);
        });
    });
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.runUntil(15);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(count, 2);
}

TEST(Rng, Deterministic)
{
    Pcg32 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Pcg32 rng(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRoughlyUniform)
{
    Pcg32 rng(123);
    std::vector<int> counts(8, 0);
    const int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(8)];
    for (int c : counts) {
        EXPECT_GT(c, draws / 8 - draws / 40);
        EXPECT_LT(c, draws / 8 + draws / 40);
    }
}

TEST(Rng, KeyedIsOrderIndependent)
{
    // Same key, same value, no matter how many times or when.
    auto a = keyedRandom(1, 2, 3, 4, 5);
    auto b = keyedRandom(1, 2, 3, 4, 5);
    EXPECT_EQ(a, b);
    // Different keys give different values (with high probability).
    EXPECT_NE(keyedRandom(1, 2, 3, 4, 5), keyedRandom(1, 2, 3, 4, 6));
    EXPECT_NE(keyedRandom(1, 2, 3, 4, 5), keyedRandom(1, 2, 3, 5, 5));
    EXPECT_NE(keyedRandom(1, 2, 3, 4, 5), keyedRandom(2, 2, 3, 4, 5));
}

TEST(Rng, KeyedBelowBounds)
{
    for (std::uint32_t draw = 0; draw < 500; ++draw)
        EXPECT_LT(keyedBelow(9, 1, 2, 3, draw, 13), 13u);
    EXPECT_EQ(keyedBelow(9, 1, 2, 3, 0, 1), 0u);
    EXPECT_EQ(keyedBelow(9, 1, 2, 3, 0, 0), 0u);
}

TEST(Stats, Accumulator)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.add(2.0);
    a.add(4.0);
    a.add(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(Stats, AccumulatorMerge)
{
    Accumulator a, b;
    a.add(1.0);
    a.add(3.0);
    b.add(10.0);
    Accumulator m = merged(a, b);
    EXPECT_EQ(m.count(), 3u);
    EXPECT_DOUBLE_EQ(m.sum(), 14.0);
    EXPECT_DOUBLE_EQ(m.min(), 1.0);
    EXPECT_DOUBLE_EQ(m.max(), 10.0);
}

TEST(Stats, HistogramQuantiles)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Stats, IntervalTraceMergesContiguous)
{
    IntervalTrace t;
    t.add(0, 10);
    t.add(10, 20); // Contiguous: merged.
    t.add(30, 40);
    EXPECT_EQ(t.get().size(), 2u);
    EXPECT_EQ(t.busy(), 30u);
    EXPECT_EQ(t.busyWithin(5, 35), 20u);
}

TEST(Stats, ActiveSeries)
{
    IntervalTrace a, b;
    a.add(0, 100); // Busy in the whole window.
    b.add(0, 50);  // Busy in the first half.
    std::vector<const IntervalTrace *> traces = {&a, &b};
    auto series = activeSeries(traces, 100, 4);
    ASSERT_EQ(series.size(), 4u);
    EXPECT_DOUBLE_EQ(series[0], 2.0);
    EXPECT_DOUBLE_EQ(series[1], 2.0);
    EXPECT_DOUBLE_EQ(series[2], 1.0);
    EXPECT_DOUBLE_EQ(series[3], 1.0);
}

TEST(Resources, ServerPoolQueues)
{
    ServerPool pool(2);
    // Two servers: first two requests start immediately.
    Grant a = pool.acquire(0, 10);
    Grant b = pool.acquire(0, 10);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u);
    // Third waits for the earliest server.
    Grant c = pool.acquire(0, 10);
    EXPECT_EQ(c.start, 10u);
    EXPECT_EQ(c.waited(0), 10u);
    EXPECT_EQ(pool.busyTime(), 30u);
    EXPECT_EQ(pool.requests(), 3u);
}

TEST(Resources, ServerPoolRespectsReadyTime)
{
    ServerPool pool(1);
    Grant a = pool.acquire(100, 10);
    EXPECT_EQ(a.start, 100u);
    Grant b = pool.acquire(50, 10); // Ready earlier, but queued behind.
    EXPECT_EQ(b.start, 110u);
}

TEST(Resources, BusSerializesAndTracks)
{
    Bus bus("b", true);
    Grant a = bus.acquire(0, 5);
    Grant b = bus.acquire(0, 5);
    EXPECT_EQ(a.end, 5u);
    EXPECT_EQ(b.start, 5u);
    EXPECT_EQ(bus.busyTime(), 10u);
    EXPECT_EQ(bus.intervals().busy(), 10u);
}

TEST(Resources, BusHoldUntil)
{
    Bus bus;
    bus.acquire(0, 5);
    bus.holdUntil(20);
    Grant g = bus.acquire(0, 5);
    EXPECT_EQ(g.start, 20u);
    // holdUntil adds no busy time.
    EXPECT_EQ(bus.busyTime(), 10u);
}

TEST(Resources, BandwidthResource)
{
    BandwidthResource bw(1000.0); // 1000 MB/s = 1 byte/ns.
    Grant a = bw.acquire(0, 1000);
    EXPECT_EQ(a.end, 1000u);
    Grant b = bw.acquire(500, 1000);
    EXPECT_EQ(b.start, 1000u);
    EXPECT_EQ(bw.bytesMoved(), 2000u);
}

TEST(Resources, UtilizationComputation)
{
    Bus bus;
    bus.acquire(0, 25);
    EXPECT_DOUBLE_EQ(bus.utilization(100), 0.25);
    ServerPool pool(4);
    pool.acquire(0, 100);
    EXPECT_DOUBLE_EQ(pool.utilization(100), 0.25);
}

} // namespace
