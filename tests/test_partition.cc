/**
 * @file
 * Tests for the array graph partitioner (§VIII): determinism across
 * rebuilds, the degenerate single-device map, policy semantics (hash
 * spread, range contiguity) and the balance guarantee of the degree-
 * aware LPT policy on a heavily skewed graph.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/dataset.h"
#include "platforms/partition.h"
#include "sim/rng.h"

namespace {

using namespace beacongnn;
using platforms::Partition;
using platforms::PartitionPolicy;

/** A star-heavy graph: a few hubs own almost all the degree. */
graph::Graph
skewedGraph(graph::NodeId nodes = 400, unsigned hubs = 4)
{
    std::vector<std::vector<graph::NodeId>> adj(nodes);
    for (graph::NodeId v = hubs; v < nodes; ++v) {
        // Every leaf points at one hub; hubs point back at every leaf.
        graph::NodeId hub = v % hubs;
        adj[v].push_back(hub);
        adj[hub].push_back(v);
    }
    return graph::Graph(adj);
}

TEST(Partition, DeterministicAcrossRebuilds)
{
    auto spec = graph::workload("amazon");
    spec.simNodes = 2000;
    auto g = spec.makeGraph();
    for (PartitionPolicy p :
         {PartitionPolicy::Hash, PartitionPolicy::Range,
          PartitionPolicy::Balanced}) {
        Partition a = Partition::build(g, p, 4);
        Partition b = Partition::build(g, p, 4);
        EXPECT_EQ(a.table(), b.table())
            << platforms::partitionPolicyName(p);
    }
}

TEST(Partition, SingleDeviceIsDegenerate)
{
    auto g = skewedGraph();
    Partition p = Partition::build(g, PartitionPolicy::Hash, 1);
    EXPECT_TRUE(p.table().empty());
    EXPECT_EQ(p.ownerOf(0), 0u);
    EXPECT_EQ(p.ownerOf(g.numNodes() - 1), 0u);
    EXPECT_EQ(p.nodesOn(0), g.numNodes());
    EXPECT_EQ(p.degreeOn(0), g.numEdges());
}

TEST(Partition, HashMatchesKeyedSplitmix)
{
    // The hash policy must reproduce the historical array mapping so
    // cross-device fractions stay comparable across versions.
    auto g = skewedGraph();
    Partition p = Partition::build(g, PartitionPolicy::Hash, 4);
    for (graph::NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(p.ownerOf(v), sim::splitmix64(v) % 4) << v;
}

TEST(Partition, RangeIsContiguousAndCoversAllDevices)
{
    auto g = skewedGraph(997); // Deliberately not divisible by 4.
    Partition p = Partition::build(g, PartitionPolicy::Range, 4);
    unsigned prev = 0;
    for (graph::NodeId v = 0; v < g.numNodes(); ++v) {
        EXPECT_GE(p.ownerOf(v), prev);
        prev = p.ownerOf(v);
    }
    EXPECT_EQ(prev, 3u); // Last device reached.
    for (unsigned d = 0; d < 4; ++d)
        EXPECT_GT(p.nodesOn(d), 0u);
}

TEST(Partition, BalancedBoundsLoadOnSkewedGraph)
{
    const unsigned devices = 4;
    auto g = skewedGraph(400, devices);
    Partition bal = Partition::build(g, PartitionPolicy::Balanced,
                                     devices);

    std::uint64_t max_degree = 0;
    for (graph::NodeId v = 0; v < g.numNodes(); ++v)
        max_degree = std::max<std::uint64_t>(max_degree, g.degree(v));

    std::uint64_t max_load = 0;
    for (unsigned d = 0; d < devices; ++d)
        max_load = std::max(max_load, bal.degreeOn(d));
    // LPT guarantee: max load <= average load + max node degree.
    std::uint64_t avg = g.numEdges() / devices;
    EXPECT_LE(max_load, avg + max_degree);

    // And on this graph the degree-aware policy must beat the range
    // policy, which piles all hubs (low ids) onto device 0.
    Partition rng = Partition::build(g, PartitionPolicy::Range,
                                     devices);
    EXPECT_LT(bal.degreeSpread(), rng.degreeSpread());
}

TEST(Partition, TalliesSumToWholeGraph)
{
    auto spec = graph::workload("amazon");
    spec.simNodes = 1500;
    auto g = spec.makeGraph();
    for (PartitionPolicy pol :
         {PartitionPolicy::Hash, PartitionPolicy::Range,
          PartitionPolicy::Balanced}) {
        Partition p = Partition::build(g, pol, 3);
        std::uint64_t nodes = 0, degree = 0;
        for (unsigned d = 0; d < 3; ++d) {
            nodes += p.nodesOn(d);
            degree += p.degreeOn(d);
        }
        EXPECT_EQ(nodes, g.numNodes());
        EXPECT_EQ(degree, g.numEdges());
    }
}

} // namespace
