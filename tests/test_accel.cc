/**
 * @file
 * Tests for the ScaleSim-style systolic model and the accelerator
 * configurations, including property-style sweeps of the cycle model.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "accel/systolic.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::accel;

TEST(Systolic, SingleTileCycles)
{
    SystolicConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    gnn::GemmShape g{100, 32, 32};
    GemmEstimate e = estimateGemm(cfg, g);
    // One tile: R (load) + M (stream) + R + C - 2 (skew).
    EXPECT_EQ(e.cycles, 32u + 100 + 32 + 32 - 2);
    EXPECT_EQ(e.macs, 100u * 32 * 32);
}

TEST(Systolic, TilingMultipliesCycles)
{
    SystolicConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    gnn::GemmShape g{100, 64, 64}; // 2 x 2 tiles.
    GemmEstimate e = estimateGemm(cfg, g);
    EXPECT_EQ(e.cycles, 4u * (32 + 100 + 32 + 32 - 2));
}

TEST(Systolic, ZeroDimensions)
{
    SystolicConfig cfg;
    GemmEstimate e = estimateGemm(cfg, gnn::GemmShape{0, 32, 32});
    EXPECT_EQ(e.cycles, 0u);
    EXPECT_EQ(e.macs, 0u);
}

TEST(Systolic, UtilizationBounded)
{
    SystolicConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    for (std::uint64_t m : {1ull, 10ull, 1000ull, 100000ull}) {
        GemmEstimate e = estimateGemm(cfg, gnn::GemmShape{m, 128, 128});
        double u = e.utilization(cfg);
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    // Utilization approaches 1 as M grows (fill/drain amortized).
    GemmEstimate big =
        estimateGemm(cfg, gnn::GemmShape{1000000, 128, 128});
    EXPECT_GT(big.utilization(cfg), 0.95);
}

class SystolicMonotone
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SystolicMonotone, CyclesGrowWithWork)
{
    auto [rows, cols] = GetParam();
    SystolicConfig cfg;
    cfg.rows = static_cast<std::uint32_t>(rows);
    cfg.cols = static_cast<std::uint32_t>(cols);
    std::uint64_t prev = 0;
    for (std::uint64_t m = 16; m <= 4096; m *= 4) {
        GemmEstimate e = estimateGemm(cfg, gnn::GemmShape{m, 256, 256});
        EXPECT_GT(e.cycles, prev);
        prev = e.cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SystolicMonotone,
    ::testing::Values(std::make_tuple(8, 8), std::make_tuple(32, 32),
                      std::make_tuple(128, 128),
                      std::make_tuple(16, 64)));

TEST(Systolic, BiggerArrayNeverSlower)
{
    gnn::GemmShape g{5000, 512, 512};
    SystolicConfig small;
    small.rows = small.cols = 16;
    SystolicConfig big;
    big.rows = big.cols = 128;
    EXPECT_GT(estimateGemm(small, g).cycles, estimateGemm(big, g).cycles);
}

TEST(Systolic, CyclesToTicks)
{
    SystolicConfig cfg;
    cfg.freqGHz = 0.5; // 2 ns per cycle.
    EXPECT_EQ(cyclesToTicks(cfg, 1000), 2000u);
    cfg.freqGHz = 2.0;
    EXPECT_EQ(cyclesToTicks(cfg, 1000), 500u);
}

TEST(Accelerator, EstimateComposesGemmsAndAggregation)
{
    Accelerator a(ssdAcceleratorConfig());
    gnn::ModelConfig m;
    m.hops = 3;
    m.fanout = 3;
    m.featureDim = 256;
    m.hiddenDim = 128;
    gnn::ComputeWorkload w = gnn::estimateCompute(m, 64);
    ComputeEstimate e = a.estimate(w);
    EXPECT_GT(e.gemmTime, 0u);
    EXPECT_GT(e.aggregateTime, 0u);
    EXPECT_EQ(e.macs, w.totalMacs());
    EXPECT_EQ(e.total(), e.gemmTime + e.aggregateTime);
}

TEST(Accelerator, DiscreteTpuMuchFasterThanSsdAccel)
{
    // The CC baseline's discrete accelerator is server-scale; the
    // SSD-bus instance fits SSD budgets (Table II).
    Accelerator ssd(ssdAcceleratorConfig());
    Accelerator tpu(discreteTpuConfig());
    gnn::ModelConfig m;
    m.featureDim = 602;
    m.hiddenDim = 128;
    gnn::ComputeWorkload w = gnn::estimateCompute(m, 256);
    EXPECT_GT(ssd.estimate(w).total(), 4 * tpu.estimate(w).total());
}

TEST(Accelerator, EmptyWorkload)
{
    Accelerator a(ssdAcceleratorConfig());
    gnn::ComputeWorkload w;
    ComputeEstimate e = a.estimate(w);
    EXPECT_EQ(e.total(), 0u);
    EXPECT_EQ(e.macs, 0u);
}

} // namespace

#include "accel/systolic_functional.h"

#include "sim/rng.h"

namespace {

using namespace beacongnn;
using namespace beacongnn::accel;

std::vector<float>
randomMatrix(std::uint32_t rows, std::uint32_t cols, std::uint64_t seed)
{
    sim::Pcg32 rng(seed);
    std::vector<float> m(std::size_t{rows} * cols);
    for (auto &v : m)
        v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
    return m;
}

/** Reference multiply accumulating in ascending-k order (the order
 *  partial sums take through the array). */
std::vector<float>
refGemm(std::uint32_t m, std::uint32_t n, std::uint32_t k,
        const std::vector<float> &a, const std::vector<float> &b)
{
    std::vector<float> c(std::size_t{m} * n, 0.0f);
    for (std::uint32_t i = 0; i < m; ++i)
        for (std::uint32_t kk = 0; kk < k; ++kk)
            for (std::uint32_t j = 0; j < n; ++j)
                c[std::size_t{i} * n + j] +=
                    a[std::size_t{i} * k + kk] * b[std::size_t{kk} * n + j];
    return c;
}

class FunctionalSystolic
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(FunctionalSystolic, MatchesReferenceAndAnalyticCycles)
{
    auto [m, n, k, dim] = GetParam();
    SystolicConfig cfg;
    cfg.rows = cfg.cols = static_cast<std::uint32_t>(dim);

    auto a = randomMatrix(m, k, 7);
    auto b = randomMatrix(k, n, 9);
    FunctionalRunResult run = runSystolic(
        cfg, static_cast<std::uint32_t>(m),
        static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(k),
        a, b);

    // Functional correctness: bit-exact against the reference (the
    // accumulation order through the array is ascending k).
    auto ref = refGemm(static_cast<std::uint32_t>(m),
                       static_cast<std::uint32_t>(n),
                       static_cast<std::uint32_t>(k), a, b);
    ASSERT_EQ(run.output.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(run.output[i], ref[i], 1e-4)
            << "element " << i;

    // Timing-model validation: the cycle-level simulation takes
    // exactly the cycles the ScaleSim-style formula predicts.
    GemmEstimate est =
        estimateGemm(cfg, gnn::GemmShape{static_cast<std::uint64_t>(m),
                                         static_cast<std::uint64_t>(n),
                                         static_cast<std::uint64_t>(k)});
    EXPECT_EQ(run.cycles, est.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FunctionalSystolic,
    ::testing::Values(std::make_tuple(5, 4, 4, 4),
                      std::make_tuple(13, 8, 8, 8),
                      std::make_tuple(9, 10, 12, 4),
                      std::make_tuple(20, 7, 5, 8),
                      std::make_tuple(1, 1, 1, 4),
                      std::make_tuple(16, 16, 16, 16)));

TEST(FunctionalSystolic, PaddedTilesContributeNothing)
{
    // Shapes that do not divide the array exercise zero-padded PEs.
    SystolicConfig cfg;
    cfg.rows = cfg.cols = 8;
    auto a = randomMatrix(3, 5, 1);
    auto b = randomMatrix(5, 3, 2);
    auto run = runSystolic(cfg, 3, 3, 5, a, b);
    auto ref = refGemm(3, 3, 5, a, b);
    for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(run.output[i], ref[i], 1e-5);
}

} // namespace
