/**
 * @file
 * bgnlint rule engine tests (DESIGN.md §11, §16): every rule
 * BGN001–BGN009 is demonstrated caught on a fixture that seeds
 * exactly one kind of violation, suppression comments are honoured
 * (and audited for staleness), clean code stays clean, and the file
 * walker behaves. Closes with the determinism
 * regression the linter exists to protect: a CC and a BG-2 point run
 * twice must export byte-identical metrics JSON.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.h"

#include "platforms/platform.h"
#include "platforms/runner.h"
#include "sim/metrics.h"

namespace {

using bgnlint::FileInput;
using bgnlint::Finding;
using bgnlint::LintOptions;

std::vector<Finding>
lintOne(const std::string &path, const std::string &content,
        const LintOptions &opt = {})
{
    return bgnlint::lintFiles({{path, content}}, opt);
}

/** (rule, line) pairs, for compact assertions. */
std::vector<std::pair<std::string, int>>
ruleLines(const std::vector<Finding> &fs)
{
    std::vector<std::pair<std::string, int>> out;
    out.reserve(fs.size());
    for (const auto &f : fs)
        out.emplace_back(f.rule, f.line);
    return out;
}

// ==================================================================
// BGN001 — wall clock / ambient randomness.
// ==================================================================

const char *kClockFixture = R"cpp(
#include <chrono>
int tick() {
    int a = std::rand();
    auto t = time(nullptr);
    auto n = std::chrono::steady_clock::now();
    std::random_device rd;
    return a;
}
)cpp";

TEST(Bgn001, CatchesEveryAmbientSourceWithExactLines)
{
    auto fs = lintOne("src/ssd/fixture.cc", kClockFixture);
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN001", 4}, // std::rand()
        {"BGN001", 5}, // time(nullptr)
        {"BGN001", 6}, // steady_clock
        {"BGN001", 7}, // random_device
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn001, BenchHarnessMayReadWallClocks)
{
    EXPECT_TRUE(lintOne("bench/fixture.cc", kClockFixture).empty());
}

TEST(Bgn001, SimTimeAndPcg32AreNotFlagged)
{
    auto fs = lintOne("src/serve/ok.cc", R"cpp(
#include "sim/rng.h"
unsigned draw() {
    beacongnn::sim::Pcg32 rng(42);
    SimTime when = 7;      // An identifier containing 'time' is fine.
    return rng.next() + static_cast<unsigned>(when);
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

TEST(Bgn001, MemberFunctionNamedTimeIsNotFlagged)
{
    auto fs = lintOne("src/ssd/ok.cc",
                      "int f(Stopwatch &w) { return w.time(); }\n");
    EXPECT_TRUE(fs.empty());
}

// ==================================================================
// BGN002 — unordered-container iteration.
// ==================================================================

TEST(Bgn002, RangeForAndBeginOverUnorderedAreFlagged)
{
    auto fs = lintOne("src/ssd/fixture.h", R"cpp(
#include <unordered_map>
#include <unordered_set>
struct S {
    std::unordered_map<int, long> table;
    std::unordered_set<int> members;
    long sum() const {
        long s = 0;
        for (const auto &kv : table)
            s += kv.second;
        auto it = members.begin();
        return s + *it;
    }
};
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN002", 9},  // range-for over table
        {"BGN002", 11}, // members.begin()
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn002, CrossFileMemberIterationIsFlagged)
{
    // Header declares the unordered member; another TU iterates it.
    std::vector<FileInput> files = {
        {"src/a/decl.h", "#include <unordered_map>\n"
                         "struct L { std::unordered_map<int,int> "
                         "pages_by_id; };\n"},
        {"src/b/use.cc", "long f(const L &l) {\n"
                         "    long n = 0;\n"
                         "    for (const auto &kv : l.pages_by_id)\n"
                         "        n += kv.second;\n"
                         "    return n;\n"
                         "}\n"},
    };
    auto fs = bgnlint::lintFiles(files);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "BGN002");
    EXPECT_EQ(fs[0].file, "src/b/use.cc");
    EXPECT_EQ(fs[0].line, 3);
}

TEST(Bgn002, LocalOrderedDeclarationShadowsGlobalName)
{
    // `pages` is unordered in some header, but this file's `pages` is
    // a vector — the nearest declaration wins, no finding.
    std::vector<FileInput> files = {
        {"src/a/decl.h", "#include <unordered_map>\n"
                         "struct L { std::unordered_map<int,int> "
                         "pages; };\n"},
        {"src/b/ok.cc", "#include <vector>\n"
                        "int f() {\n"
                        "    std::vector<int> pages = {1, 2};\n"
                        "    int n = 0;\n"
                        "    for (int p : pages)\n"
                        "        n += p;\n"
                        "    return n;\n"
                        "}\n"},
    };
    EXPECT_TRUE(bgnlint::lintFiles(files).empty());
}

TEST(Bgn002, SortedSnapshotCallIsNotFlagged)
{
    auto fs = lintOne("src/a/ok.cc", R"cpp(
#include <unordered_map>
struct M { std::unordered_map<int, int> items; };
int f(const M &m) {
    int n = 0;
    for (int k : sortedKeys(m.items))
        n += k;
    return n;
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

// ==================================================================
// BGN003 — raw new/delete outside src/sim/.
// ==================================================================

TEST(Bgn003, RawNewAndDeleteFlaggedOutsideSim)
{
    auto fs = lintOne("src/engines/fixture.cc", R"cpp(
int *make() { return new int(7); }
void unmake(int *p) { delete p; }
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN003", 2},
        {"BGN003", 3},
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn003, SimSboKernelIsExempt)
{
    EXPECT_TRUE(lintOne("src/sim/fixture.h",
                        "int *make() { return new int(7); }\n")
                    .empty());
}

TEST(Bgn003, DeletedSpecialMembersAreNotFlagged)
{
    auto fs = lintOne("src/serve/ok.h", R"cpp(
struct NoCopy {
    NoCopy(const NoCopy &) = delete;
    NoCopy &operator=(const NoCopy &) = delete;
};
)cpp");
    EXPECT_TRUE(fs.empty());
}

// ==================================================================
// BGN004 — metric-name grammar.
// ==================================================================

TEST(Bgn004, BadRootAndBadComponentFlagged)
{
    auto fs = lintOne("src/ssd/fixture.cc", R"cpp(
void publish(Reg &reg) {
    reg.counter("firmware.core_busy").add(1);
    reg.gauge("ssd.Firmware.Util").set(0.5);
    reg.counter("ssd.ftl.translations").add(1);
}
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN004", 3}, // unknown root 'firmware'
        {"BGN004", 4}, // upper-case components
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn004, AllSixRootsPlusRunAccepted)
{
    auto fs = lintOne("src/ssd/ok.cc", R"cpp(
void publish(Reg &reg) {
    reg.counter("flash.ch0.die1.sense_ticks").add(1);
    reg.counter("ssd.io.reads").add(1);
    reg.accum("engine.cmd.lifetime_us").add(2.0);
    reg.counter("accel.macs").add(1);
    reg.gauge("energy.total_j").set(1.0);
    reg.histogram("serve.latency_us_hist").add(3.0);
    reg.counter("run.batches").add(1);
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

TEST(Bgn004, ArrayRootAccepted)
{
    // Scale-out instruments live under the `array.` root (§10/§12):
    // aggregate names plus the per-device `array.dev<D>.` namespace.
    auto fs = lintOne("src/platforms/ok.cc", R"cpp(
void publish(Reg &reg) {
    reg.gauge("array.devices").set(4.0);
    reg.counter("array.cross_device").add(1);
    reg.counter("array.dev0.commands").add(7);
    reg.counter("array.p2p.bytes").add(16);
}
)cpp");
    EXPECT_TRUE(fs.empty());
    // ...but the components still have to be lower_snake.
    auto bad = lintOne("src/platforms/bad.cc", R"cpp(
void publish(Reg &reg) {
    reg.counter("array.Dev0.Commands").add(7);
}
)cpp");
    auto got = ruleLines(bad);
    std::vector<std::pair<std::string, int>> want = {{"BGN004", 3}};
    EXPECT_EQ(got, want);
}

TEST(Bgn004, CacheNamespaceLeavesClosed)
{
    // The cache tier (DESIGN.md §14) publishes a closed leaf set
    // under engine.cache.* and array.dev<D>.cache.* — every leaf is
    // accepted, and a misspelled leaf, a bare "cache", or extra
    // nesting under it fails lint.
    auto fs = lintOne("src/platforms/cache_ok.cc", R"cpp(
void publish(Reg &reg) {
    reg.counter("engine.cache.hits").add(1);
    reg.counter("engine.cache.misses").add(1);
    reg.counter("engine.cache.fills").add(1);
    reg.counter("engine.cache.evictions").add(1);
    reg.counter("engine.cache.bytes").add(4096);
    reg.gauge("engine.cache.hit_rate").set(0.5);
    reg.counter("array.dev3.cache.hits").add(1);
    reg.gauge("array.dev3.cache.hit_rate").set(0.5);
}
)cpp");
    EXPECT_TRUE(fs.empty());

    auto bad = lintOne("src/platforms/cache_bad.cc", R"cpp(
void publish(Reg &reg) {
    reg.counter("engine.cache.hitz").add(1);
    reg.counter("engine.cache").add(1);
    reg.counter("engine.cache.hits.total").add(1);
    reg.gauge("array.dev0.cache.hit_ratio").set(0.5);
}
)cpp");
    auto got = ruleLines(bad);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN004", 3}, // unknown leaf 'hitz'
        {"BGN004", 4}, // bare cache namespace
        {"BGN004", 5}, // extra nesting below a leaf
        {"BGN004", 6}, // 'hit_ratio' is not 'hit_rate'
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn004, HealthAndRouterNamespacesAccepted)
{
    // The fault-injection instruments of DESIGN.md §17: per-die retry
    // counters, per-device health, and the replica router.
    auto fs = lintOne("src/platforms/fixture.cc", R"cpp(
void publish(Reg &reg) {
    reg.counter("flash.ch0.die3.retries").add(2);
    reg.counter("flash.failed_reads").add(1);
    reg.gauge("array.dev2.health.latency_ewma_us").set(12.5);
    reg.counter("array.dev2.health.samples").add(9);
    reg.gauge("array.dev2.health.alive").set(1.0);
    reg.counter("engine.router.replica_fallbacks").add(3);
    reg.counter("array.replica_fallbacks").add(3);
    reg.gauge("serve.degraded").set(1.0);
    reg.gauge("serve.replication").set(2.0);
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

TEST(Bgn004, HealthAndRouterLeavesClosed)
{
    auto bad = lintOne("src/platforms/bad.cc", R"cpp(
void publish(Reg &reg) {
    reg.gauge("array.dev0.health.latency").set(1.0);
    reg.counter("array.dev0.health").add(1);
    reg.counter("array.dev0.health.alive.total").add(1);
    reg.counter("engine.router.fallbacks").add(1);
}
)cpp");
    auto got = ruleLines(bad);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN004", 3}, // 'latency' is not a health leaf
        {"BGN004", 4}, // bare health namespace
        {"BGN004", 5}, // extra nesting below a health leaf
        {"BGN004", 6}, // 'fallbacks' is not a router leaf
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn004, ModelNamespaceGrammar)
{
    // The model zoo (DESIGN.md §15) publishes under the `model.` root:
    // closed spec leaves (model.kind_id, ...) plus per-model groups
    // (model.gin.*, model.algo.*). A bare group, an unknown second
    // segment, or extra nesting below a spec leaf fails lint.
    auto fs = lintOne("src/platforms/model_ok.cc", R"cpp(
void publish(Reg &reg) {
    reg.gauge("model.kind_id").set(1.0);
    reg.gauge("model.hops").set(3.0);
    reg.gauge("model.fanout_total").set(9.0);
    reg.gauge("model.feature_dim").set(128.0);
    reg.gauge("model.hidden_dim").set(128.0);
    reg.gauge("model.edge_coeff_bytes").set(2.0);
    reg.counter("model.gcn.requests").add(1);
    reg.counter("model.gin.requests").add(1);
    reg.counter("model.gat.requests").add(1);
    reg.counter("model.algo.iterations").add(4);
    reg.counter("model.algo.frontier_nodes").add(100);
    reg.gauge("model.algo.converged").set(1.0);
}
)cpp");
    EXPECT_TRUE(fs.empty());

    auto bad = lintOne("src/platforms/model_bad.cc", R"cpp(
void publish(Reg &reg) {
    reg.counter("model.bogus").add(1);
    reg.gauge("model.kind_id.extra").set(1.0);
    reg.counter("model.gcn").add(1);
    reg.counter("model.sage.requests").add(1);
}
)cpp");
    auto got = ruleLines(bad);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN004", 3}, // unknown leaf 'bogus'
        {"BGN004", 4}, // nesting below a spec leaf
        {"BGN004", 5}, // bare group needs a third segment
        {"BGN004", 6}, // 'sage' is not a known group
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn004, DynamicNamesAreNotChecked)
{
    // Prefix-built names can't be validated statically — no finding.
    auto fs = lintOne(
        "src/engines/ok.cc",
        "void p(Reg &reg, const std::string &prefix) {\n"
        "    reg.counter(prefix + \".executed\").add(1);\n"
        "}\n");
    EXPECT_TRUE(fs.empty());
}

// ==================================================================
// BGN005 — float accumulation in parallel regions.
// ==================================================================

TEST(Bgn005, UntaggedFloatAccumulationFlagged)
{
    auto fs = lintOne("bench/fixture.cc", R"cpp(
double f(std::size_t n) {
    double total = 0.0;
    parallelMap<int>(n, [&](std::size_t i) {
        total += static_cast<double>(i);
        return 0;
    });
    return total;
}
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {{"BGN005", 5}};
    EXPECT_EQ(got, want);
}

TEST(Bgn005, DeterministicOrderTagSilences)
{
    auto fs = lintOne("bench/ok.cc", R"cpp(
double f(std::size_t n) {
    double total = 0.0;
    parallelMap<int>(n, [&](std::size_t i) {
        // Guarded by a mutex and folded in index order afterwards:
        // bgnlint:deterministic-order
        total += static_cast<double>(i);
        return 0;
    });
    return total;
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

TEST(Bgn005, IntegerAccumulationIsFine)
{
    auto fs = lintOne("bench/ok2.cc", R"cpp(
std::uint64_t f(std::size_t n) {
    std::uint64_t total = 0;
    runGrid(n, [&](std::size_t i) { total += i; });
    return total;
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

// ==================================================================
// BGN006 — direct schedule on a foreign device queue.
// ==================================================================

TEST(Bgn006, ForeignQueueSchedulesAreFlagged)
{
    auto fs = lintOne("src/engines/fixture.cc", R"cpp(
void f(DevicePort &port, DeviceContext *dc, Event ev) {
    port.queue->scheduleAt(7, ev);
    dc->queue().schedule(ev);
    ports[d].queue->bulkScheduleAt(std::move(batch));
}
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN006", 3}, // port.queue->scheduleAt
        {"BGN006", 4}, // dc->queue().schedule
        {"BGN006", 5}, // ports[d].queue->bulkScheduleAt
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn006, OwnQueueAndAccessorsAreNotFlagged)
{
    auto fs = lintOne("src/engines/ok.cc", R"cpp(
void f(unsigned dev, Event ev) {
    queue.scheduleAt(3, ev);          // A station's own queue.
    homeQueue(dev).scheduleAt(5, ev); // Resolves to this station.
    auto &q = devices[0]->queue();    // Accessor without a schedule.
    q.run();
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

TEST(Bgn006, BenchAndTestCodeIsOutOfScope)
{
    auto fs = lintOne(
        "bench/fixture.cc",
        "void f(P &p, E ev) { p.queue->scheduleAt(1, ev); }\n");
    EXPECT_TRUE(fs.empty());
}

TEST(Bgn006, AllowTagMarksSanctionedSyncSeam)
{
    auto fs = lintOne("src/engines/seam.cc", R"cpp(
void f(unsigned dev, Batch batch) {
    // bgnlint:allow(BGN006)
    ports[dev].queue->bulkScheduleAt(std::move(batch));
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

// ==================================================================
// BGN007 — write to lane-owned state not indexed by its owner.
// ==================================================================

/** Header fixture that seeds the cross-TU lane table: `lanes` is a
 *  container of the lane class, `fetched`/`credits` are its fields. */
const char *kLaneHeader = R"cpp(
#include <vector>
struct Lane {
    std::vector<unsigned> fetched;
    long credits = 0;
};
struct Batch {
    std::vector<Lane> lanes;
};
)cpp";

std::vector<Finding>
lintWithLanes(const std::string &path, const std::string &content,
              const LintOptions &opt = {})
{
    return bgnlint::lintFiles(
        {{"src/engines/lane.h", kLaneHeader}, {path, content}}, opt);
}

TEST(Bgn007, NonOwnerIndexedWritesAreFlagged)
{
    auto fs = lintWithLanes("src/engines/fixture.cc", R"cpp(
void f(unsigned dev) {
    lanes[0].credits = 7;
    lanes[dev + 1].credits = 7;
    anything[0].fetched.push_back(3);
}
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN007", 3}, // Literal index.
        {"BGN007", 4}, // Compound index.
        {"BGN007", 5}, // Foreign container, lane member field.
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn007, OwnerIndexedWritesAndReadsAreClean)
{
    auto fs = lintWithLanes("src/engines/ok.cc", R"cpp(
long f(unsigned dev) {
    lanes[dev].credits = 7;          // Single owning-device index.
    lanes[dev].fetched.push_back(3); // Ditto, mutating call.
    return lanes[0].credits;         // Read access is free.
}
)cpp");
    EXPECT_TRUE(fs.empty());
}

TEST(Bgn007, MutableRangeForOverLaneContainerIsFlagged)
{
    auto fs = lintWithLanes("src/engines/fixture.cc", R"cpp(
void f(Batch &b) {
    for (Lane &l : b.lanes)
        l.credits = 0;
    for (const Lane &l : b.lanes)
        use(l);
}
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN007", 3}, // Mutable ref; the const loop is clean.
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn007, AllowTagMarksQuiescentSeam)
{
    auto fs = lintWithLanes("src/engines/seam.cc", R"cpp(
void reset(Batch &b) {
    // bgnlint:allow(BGN007) setup seam: no window open yet.
    for (Lane &l : b.lanes)
        l.credits = 0;
}
)cpp");
    EXPECT_TRUE(fs.empty()); // Suppressed, and the tag is not stale.
}

TEST(Bgn007, LaneOwnedTagEnrollsForeignContainers)
{
    auto fs = lintWithLanes("src/engines/tagged.cc", R"cpp(
#include <vector>
struct Shards {
    std::vector<Tally> perDevice; // bgnlint:lane-owned
};
void f(Shards &s, Tally &t) {
    s.perDevice[0].merge(t);
}
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN007", 7},
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn007, BenchAndParallelSimDriverAreOutOfScope)
{
    const char *body = "void f() { lanes[0].credits = 7; }\n";
    EXPECT_TRUE(lintWithLanes("bench/fixture.cc", body).empty());
    EXPECT_TRUE(
        lintWithLanes("src/sim/parallel_sim.cc", body).empty());
}

// ==================================================================
// BGN008 — stale allow suppressions.
// ==================================================================

TEST(Bgn008, StaleAndUnknownTagsAreFlagged)
{
    auto fs = lintOne("src/x/f.cc", R"cpp(
// bgnlint:allow(BGN003)
int *live = new int(1);
// bgnlint:allow(BGN003)
int dead = 2;
// bgnlint:allow(BGN099)
int unknown = 3;
)cpp");
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN008", 4}, // Masks nothing: stale.
        {"BGN008", 6}, // BGN099 names no catalog rule.
    };
    EXPECT_EQ(got, want);
}

TEST(Bgn008, StalenessIgnoresTheRuleFilter)
{
    // --rule BGN003 must not turn a live BGN003 suppression stale:
    // all rules always run and onlyRules filters post-hoc.
    LintOptions opt;
    opt.onlyRules = {"BGN003"};
    auto fs = lintOne("src/x/f.cc",
                      "// bgnlint:allow(BGN003)\n"
                      "int *p = new int(1);\n",
                      opt);
    EXPECT_TRUE(fs.empty());
}

// ==================================================================
// BGN009 — include-graph layering.
// ==================================================================

TEST(Bgn009, SimMayIncludeNoOtherLayer)
{
    auto fs = bgnlint::lintFiles(
        {{"src/sim/clock.h", "#include \"flash/chip.h\"\n"},
         {"src/flash/chip.h", "int f();\n"}},
        {});
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN009", 1},
    };
    EXPECT_EQ(got, want);
    EXPECT_EQ(fs[0].file, "src/sim/clock.h");
}

TEST(Bgn009, DeviceLayerMayNotIncludeOrchestration)
{
    auto fs = bgnlint::lintFiles(
        {{"src/flash/chip.cc", "#include \"platforms/runner.h\"\n"},
         {"src/platforms/runner.h", "int f();\n"}},
        {});
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "BGN009");
    EXPECT_EQ(fs[0].file, "src/flash/chip.cc");
}

TEST(Bgn009, CyclesAreReportedAtBothEnds)
{
    auto fs = bgnlint::lintFiles(
        {{"src/engines/a.h", "#include \"cache/b.h\"\n"},
         {"src/cache/b.h", "#include \"engines/a.h\"\n"}},
        {});
    auto got = ruleLines(fs);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(fs[0].rule, "BGN009");
    EXPECT_EQ(fs[1].rule, "BGN009");
}

TEST(Bgn009, AcyclicDownwardIncludesAreClean)
{
    auto fs = bgnlint::lintFiles(
        {{"src/platforms/runner.cc",
          "#include \"sim/clock.h\"\n#include \"flash/chip.h\"\n"},
         {"src/flash/chip.h", "#include \"sim/clock.h\"\n"},
         {"src/sim/clock.h", "int now();\n"}},
        {});
    EXPECT_TRUE(fs.empty());
}

// ==================================================================
// Suppression comments.
// ==================================================================

TEST(Suppression, TrailingAndPrecedingLineAllowsWork)
{
    const char *src = R"cpp(
int *a() { return new int(1); } // bgnlint:allow(BGN003)
// bgnlint:allow(BGN003)
int *b() { return new int(2); }
int *c() { return new int(3); }
)cpp";
    auto visible = lintOne("src/x/f.cc", src);
    ASSERT_EQ(visible.size(), 1u); // Only c() survives.
    EXPECT_EQ(visible[0].line, 5);

    LintOptions opt;
    opt.showSuppressed = true;
    auto all = lintOne("src/x/f.cc", src, opt);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_TRUE(all[0].suppressed);
    EXPECT_TRUE(all[1].suppressed);
    EXPECT_FALSE(all[2].suppressed);
}

TEST(Suppression, AllowListsSeveralRules)
{
    auto fs = lintOne("src/x/f.cc",
                      "// bgnlint:allow(BGN001, BGN003)\n"
                      "int *p = new int(time(nullptr));\n");
    EXPECT_TRUE(fs.empty());
}

TEST(Suppression, AllowOfOtherRuleDoesNotHide)
{
    auto fs = lintOne("src/x/f.cc",
                      "// bgnlint:allow(BGN001)\n"
                      "int *p = new int(7);\n");
    // The BGN003 finding survives, and the BGN001 tag that masks
    // nothing is itself reported stale (BGN008).
    auto got = ruleLines(fs);
    std::vector<std::pair<std::string, int>> want = {
        {"BGN008", 1},
        {"BGN003", 2},
    };
    EXPECT_EQ(got, want);
}

// ==================================================================
// Clean file, rule filter, catalog, JSON.
// ==================================================================

TEST(Driver, CleanFileProducesNoFindings)
{
    auto fs = lintOne("src/clean/code.cc", R"cpp(
#include <map>
#include <vector>
struct Tally {
    std::map<int, long> perBlock;
    long total() const {
        long s = 0;
        for (const auto &kv : perBlock)
            s += kv.second;
        return s;
    }
};
)cpp");
    EXPECT_TRUE(fs.empty());
}

TEST(Driver, RuleFilterRestricts)
{
    LintOptions opt;
    opt.onlyRules = {"BGN001"};
    auto fs = lintOne("src/x/f.cc",
                      "int *p = new int(time(nullptr));\n", opt);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "BGN001");
}

TEST(Driver, CatalogHasNineRulesInOrder)
{
    const auto &rules = bgnlint::ruleCatalog();
    ASSERT_EQ(rules.size(), 9u);
    for (std::size_t i = 0; i < rules.size(); ++i)
        EXPECT_EQ(rules[i].id, "BGN00" + std::to_string(i + 1));
}

TEST(Driver, JsonReportShape)
{
    auto fs = lintOne("src/x/f.cc", "int *p = new int(7);\n");
    std::ostringstream os;
    bgnlint::writeJson(os, fs);
    std::string j = os.str();
    EXPECT_NE(j.find("\"tool\": \"bgnlint\""), std::string::npos);
    EXPECT_NE(j.find("\"rule\": \"BGN003\""), std::string::npos);
    EXPECT_NE(j.find("\"counts\": {\"BGN003\": 1}"),
              std::string::npos);
    EXPECT_NE(j.find("\"unsuppressed\": 1"), std::string::npos);
}

TEST(Driver, LoadTreeWalksAndSortsSources)
{
    namespace fs = std::filesystem;
    fs::path root =
        fs::temp_directory_path() / "bgnlint_walk_fixture";
    fs::remove_all(root);
    fs::create_directories(root / "src" / "sub");
    fs::create_directories(root / "build"); // Must be skipped.
    auto put = [&](const fs::path &p, const char *text) {
        std::ofstream(p) << text;
    };
    put(root / "src" / "b.cc", "int b;\n");
    put(root / "src" / "sub" / "a.h", "int a;\n");
    put(root / "src" / "note.md", "not code\n");
    put(root / "build" / "gen.cc", "int g;\n");

    std::string err;
    auto files = bgnlint::loadTree(root, {"src"}, &err);
    EXPECT_TRUE(err.empty());
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0].path, "src/b.cc");
    EXPECT_EQ(files[1].path, "src/sub/a.h");
    fs::remove_all(root);
}

// ==================================================================
// Determinism regression: the property the linter protects. A CC and
// a BG-2 grid point run twice must export byte-identical metrics
// JSON (same property bgnsim --metrics relies on).
// ==================================================================

class DeterminismRegression : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        using namespace beacongnn;
        gnn::ModelConfig model;
        model.hops = 2;
        model.fanout = 2;
        model.hiddenDim = 128;
        model.seed = 0xBEAC0;
        graph::WorkloadSpec spec = graph::workload("amazon");
        spec.simNodes = 2000;
        platforms::RunConfig rc;
        rc.batchSize = 16;
        rc.batches = 2;
        bundle = platforms::makeBundle(spec, rc.system.flash, model)
                     .release();
        run = rc;
    }

    static void
    TearDownTestSuite()
    {
        delete bundle;
        bundle = nullptr;
    }

    static std::string
    metricsJson(beacongnn::platforms::PlatformKind kind)
    {
        using namespace beacongnn;
        sim::MetricRegistry reg;
        platforms::RunResult r = platforms::runPlatform(
            platforms::makePlatform(kind), run, *bundle, &reg);
        EXPECT_TRUE(r.ok);
        std::ostringstream os;
        reg.writeJson(os);
        return os.str();
    }

    static beacongnn::platforms::WorkloadBundle *bundle;
    static beacongnn::platforms::RunConfig run;
};

beacongnn::platforms::WorkloadBundle *DeterminismRegression::bundle =
    nullptr;
beacongnn::platforms::RunConfig DeterminismRegression::run;

TEST_F(DeterminismRegression, CcMetricsJsonByteIdenticalAcrossRuns)
{
    std::string a =
        metricsJson(beacongnn::platforms::PlatformKind::CC);
    std::string b =
        metricsJson(beacongnn::platforms::PlatformKind::CC);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST_F(DeterminismRegression, Bg2MetricsJsonByteIdenticalAcrossRuns)
{
    std::string a =
        metricsJson(beacongnn::platforms::PlatformKind::BG2);
    std::string b =
        metricsJson(beacongnn::platforms::PlatformKind::BG2);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

} // namespace
