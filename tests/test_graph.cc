/**
 * @file
 * Tests for the CSR graph, synthetic generators, feature tables and
 * the workload specs of Table III.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/dataset.h"
#include "graph/generator.h"
#include "graph/graph.h"

namespace {

using namespace beacongnn::graph;

TEST(Graph, AdjacencyConstruction)
{
    std::vector<std::vector<NodeId>> adj = {{1, 2}, {2}, {}, {0, 1, 2}};
    Graph g(adj);
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 6u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(2), 0u);
    EXPECT_EQ(g.degree(3), 3u);
    EXPECT_EQ(g.neighbor(0, 1), 2u);
    auto n3 = g.neighbors(3);
    ASSERT_EQ(n3.size(), 3u);
    EXPECT_EQ(n3[0], 0u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 1.5);
}

TEST(Graph, EmptyGraph)
{
    Graph g;
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 0.0);
}

TEST(Generator, RingStructure)
{
    Graph g = generateRing(10, 3);
    EXPECT_EQ(g.numNodes(), 10u);
    EXPECT_EQ(g.numEdges(), 30u);
    for (NodeId v = 0; v < 10; ++v) {
        EXPECT_EQ(g.degree(v), 3u);
        EXPECT_EQ(g.neighbor(v, 0), (v + 1) % 10);
        EXPECT_EQ(g.neighbor(v, 2), (v + 3) % 10);
    }
}

TEST(Generator, PowerLawHitsAverageDegree)
{
    GeneratorParams p;
    p.nodes = 20000;
    p.avgDegree = 48.0;
    p.seed = 99;
    Graph g = generatePowerLaw(p);
    EXPECT_EQ(g.numNodes(), 20000u);
    EXPECT_NEAR(g.avgDegree(), 48.0, 48.0 * 0.1);
    // All endpoints in range.
    for (NodeId v = 0; v < 100; ++v)
        for (NodeId n : g.neighbors(v))
            EXPECT_LT(n, g.numNodes());
}

TEST(Generator, PowerLawIsSkewed)
{
    GeneratorParams p;
    p.nodes = 20000;
    p.avgDegree = 30.0;
    p.maxDegree = 20000;
    Graph g = generatePowerLaw(p);
    std::uint32_t max_deg = 0;
    std::uint64_t small = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        max_deg = std::max(max_deg, g.degree(v));
        if (g.degree(v) <= 30)
            ++small;
    }
    // Heavy tail: the max far exceeds the mean; most nodes are below.
    EXPECT_GT(max_deg, 300u);
    EXPECT_GT(small, g.numNodes() / 2);
}

TEST(Generator, Deterministic)
{
    GeneratorParams p;
    p.nodes = 500;
    p.avgDegree = 16;
    Graph a = generatePowerLaw(p);
    Graph b = generatePowerLaw(p);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (NodeId v = 0; v < a.numNodes(); ++v) {
        ASSERT_EQ(a.degree(v), b.degree(v));
        for (std::uint32_t i = 0; i < a.degree(v); ++i)
            ASSERT_EQ(a.neighbor(v, i), b.neighbor(v, i));
    }
}

TEST(Generator, SeedChangesGraph)
{
    GeneratorParams p;
    p.nodes = 500;
    p.avgDegree = 16;
    Graph a = generatePowerLaw(p);
    p.seed = 43;
    Graph b = generatePowerLaw(p);
    bool differs = a.numEdges() != b.numEdges();
    for (NodeId v = 0; !differs && v < a.numNodes(); ++v)
        differs = a.degree(v) != b.degree(v) ||
                  (a.degree(v) > 0 && a.neighbor(v, 0) != b.neighbor(v, 0));
    EXPECT_TRUE(differs);
}

TEST(FeatureTable, DeterministicAndSeeded)
{
    FeatureTable a(64, 7), b(64, 7), c(64, 8);
    EXPECT_EQ(a.raw(10, 3), b.raw(10, 3));
    EXPECT_NE(a.raw(10, 3), c.raw(10, 3));
    EXPECT_EQ(a.bytesPerNode(), 128u);
    float v = a.value(5, 5);
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
}

TEST(FeatureTable, FillMatchesRaw)
{
    FeatureTable f(8, 3);
    std::vector<std::uint8_t> buf(16);
    f.fill(42, buf);
    for (std::uint16_t i = 0; i < 8; ++i) {
        std::uint16_t got = static_cast<std::uint16_t>(
            buf[2 * i] | (buf[2 * i + 1] << 8));
        EXPECT_EQ(got, f.raw(42, i));
    }
}

TEST(Workloads, FiveSpecsOfTableIII)
{
    const auto &specs = workloads();
    ASSERT_EQ(specs.size(), 5u);
    std::set<std::string> names;
    for (const auto &s : specs) {
        names.insert(s.name);
        EXPECT_GT(s.simNodes, 0u);
        EXPECT_GT(s.avgDegree, 0.0);
        EXPECT_GT(s.featureDim, 0u);
        EXPECT_GT(s.paperRawGB, 0.0);
    }
    EXPECT_EQ(names.size(), 5u);
    EXPECT_TRUE(names.count("reddit"));
    EXPECT_TRUE(names.count("amazon"));
    EXPECT_TRUE(names.count("OGBN"));
}

TEST(Workloads, LookupByName)
{
    const auto &amazon = workload("amazon");
    EXPECT_EQ(amazon.name, "amazon");
    EXPECT_EQ(amazon.featureBytes(), amazon.featureDim * 2u);
    EXPECT_DEATH({ workload("nope"); }, "unknown workload");
}

TEST(Workloads, InstantiationMatchesSpec)
{
    auto spec = workload("OGBN");
    spec.simNodes = 5000; // Shrink for the test.
    Graph g = spec.makeGraph();
    EXPECT_EQ(g.numNodes(), 5000u);
    EXPECT_NEAR(g.avgDegree(), spec.avgDegree, spec.avgDegree * 0.15);
    FeatureTable f = spec.makeFeatures();
    EXPECT_EQ(f.dim(), spec.featureDim);
}

} // namespace

namespace {

using namespace beacongnn::graph;

TEST(Rmat, ShapeAndDeterminism)
{
    RmatParams p;
    p.nodes = 4000;
    p.avgDegree = 12;
    Graph a = generateRmat(p);
    Graph b = generateRmat(p);
    EXPECT_EQ(a.numNodes(), 4000u);
    EXPECT_NEAR(a.avgDegree(), 12.0, 2.0);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (NodeId v = 0; v < a.numNodes(); v += 97)
        ASSERT_EQ(a.degree(v), b.degree(v));
    // Every node can be sampled from (min degree 1).
    for (NodeId v = 0; v < a.numNodes(); ++v)
        ASSERT_GE(a.degree(v), 1u);
}

TEST(Rmat, SkewedDegrees)
{
    RmatParams p;
    p.nodes = 8192;
    p.avgDegree = 20;
    Graph g = generateRmat(p);
    std::uint32_t max_deg = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    // Graph500 parameters concentrate edges heavily.
    EXPECT_GT(max_deg, 10u * 20u);
}

TEST(Rmat, RejectsBadProbabilities)
{
    RmatParams p;
    p.a = 0.9;
    p.b = 0.9; // Sums to 2.03.
    EXPECT_DEATH({ generateRmat(p); }, "sum to 1");
}

} // namespace
